"""Legacy setup shim.

Kept so `python setup.py develop` works in offline environments without the
`wheel` package; all real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
