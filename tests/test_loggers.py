"""FWB and MorLog logger behavior tests (paper sections II, III, V)."""

import pytest

from repro.cache.cacheline import LogState
from repro.common.bitops import WORD_BYTES
from tests.conftest import make_tiny_system


def store(system, core, addr, value):
    system.store_word(core, addr, value)


def begin(system, core=0):
    return system.begin_tx(core)


class TestFwbLogger:
    def test_entry_per_store(self):
        system = make_tiny_system("FWB-CRADE")
        base = system.config.nvmm_base
        begin(system)
        for i in range(8):
            store(system, 0, base + 8 * i, i + 1)
        system.end_tx(0)
        # 8 undo+redo entries + 1 commit record.
        assert system.stats.get("entries_appended") == 9

    def test_buffer_coalesces_back_to_back_rewrites(self):
        system = make_tiny_system("FWB-CRADE")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        store(system, 0, base, 2)   # within the eager window: coalesces
        system.end_tx(0)
        assert system.stats.get("entries_appended") == 2  # 1 entry + commit
        assert system.stats.get("coalesced") == 1

    def test_aged_out_rewrite_logs_twice(self):
        system = make_tiny_system("FWB-CRADE")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 10_000)   # way past the eager window
        store(system, 0, base, 2)
        system.end_tx(0)
        assert system.stats.get("entries_appended") == 3

    def test_unsafe_variant_coalesces_across_time(self):
        system = make_tiny_system("FWB-Unsafe")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 10_000)
        store(system, 0, base, 2)
        system.end_tx(0)
        assert system.stats.get("entries_appended") == 2

    def test_commit_marks_tx(self):
        system = make_tiny_system("FWB-CRADE")
        begin(system)
        store(system, 0, system.config.nvmm_base, 1)
        tx = system.current_tx[0]
        system.end_tx(0)
        assert tx.committed and tx.commit_ns > 0

    def test_slde_drops_silent_entries(self):
        system = make_tiny_system("FWB-SLDE")
        base = system.config.nvmm_base
        system.setup_store(base, 7)
        system.reset_measurement()
        begin(system)
        store(system, 0, base, 7)   # value unchanged
        system.end_tx(0)
        assert system.stats.get("silent_drops") == 1
        assert system.stats.get("entries_appended") == 1  # commit only


class TestMorLogStateMachine:
    """The Figure 8 transitions, driven through real stores."""

    def _fresh(self, design="MorLog-SLDE"):
        system = make_tiny_system(design)
        return system, system.config.nvmm_base

    def _line(self, system, addr, core=0):
        return system.hierarchy.l1s[core].lookup(addr, touch=False)

    def test_clean_to_dirty_on_first_update(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        line = self._line(system, base)
        assert line.state(0) is LogState.DIRTY
        assert line.txid == system.current_tx[0].txid

    def test_dirty_to_urlog_on_persist(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        system.logger.tick(system.core_time_ns[0])  # age out the entry
        line = self._line(system, base)
        assert line.state(0) is LogState.URLOG
        assert line.word_dirty_flags[0] == 0

    def test_urlog_to_ulog_on_rewrite(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 0xFF00000001)
        line = self._line(system, base)
        assert line.state(0) is LogState.ULOG
        # Flag covers bytes differing between 1 and 0xFF00000001.
        assert line.word_dirty_flags[0] == 0b0001_0000

    def test_ulog_accumulates_flags(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)          # URLOG -> ULOG
        store(system, 0, base, 0x0200)     # ULOG stays, flag grows
        line = self._line(system, base)
        assert line.state(0) is LogState.ULOG
        assert line.word_dirty_flags[0] == 0b11

    def test_silent_store_leaves_clean(self):
        system, base = self._fresh()
        system.setup_store(base, 42)
        system.reset_measurement()
        begin(system)
        store(system, 0, base, 42)
        line = self._line(system, base)
        assert line.state(0) is LogState.CLEAN
        assert system.stats.get("silent_stores") == 1

    def test_without_slde_silent_store_still_logs(self):
        system, base = self._fresh("MorLog-CRADE")
        system.setup_store(base, 42)
        system.reset_measurement()
        begin(system)
        store(system, 0, base, 42)
        line = self._line(system, base)
        assert line.state(0) is LogState.DIRTY

    def test_dirty_rewrite_coalesces_in_buffer(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        store(system, 0, base, 2)   # DIRTY -> DIRTY (coalesce)
        system.end_tx(0)
        # One undo+redo entry + commit; no redo entry needed.
        assert system.stats.get("entries_appended") == 2

    def test_ulog_word_produces_one_redo_entry_at_commit(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)
        store(system, 0, base, 3)
        system.end_tx(0)
        # undo+redo + redo + commit.
        assert system.stats.get("entries_appended") == 3
        # The redo entry carries the newest value.
        records = system.recover(verify_decode=False).records
        redo_records = [r for r in records if r.meta.type.name == "REDO"]
        assert len(redo_records) == 1
        assert redo_records[0].redo == 3

    def test_new_tx_on_ulog_word_emits_redo_for_old_tx(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)
        tx1 = system.current_tx[0]
        # Delay-persistence off: commit flushes; use a second word to keep
        # ULOG alive across commit instead.
        system.config  # (commit would flush; test the close-out path pre-commit)
        # New transaction on the same core touches the same line.
        system.end_tx(0)
        begin(system)
        store(system, 0, base, 5)
        line = self._line(system, base)
        assert line.txid == system.current_tx[0].txid
        assert line.state(0) is LogState.DIRTY
        system.end_tx(0)

    def test_l1_eviction_closes_out_line(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)   # ULOG
        # Force the line out of the tiny L1 by touching many lines in the
        # same set.
        n_sets = system.config.caches.l1.n_sets
        for i in range(1, system.config.caches.l1.assoc + 2):
            store(system, 0, base + i * n_sets * 64, i)
        before_commit = system.stats.get("entries_appended")
        assert before_commit >= 2  # undo+redo persisted + redo emitted path
        system.end_tx(0)

    def test_commit_clears_tx_lines(self):
        system, base = self._fresh()
        begin(system)
        store(system, 0, base, 1)
        tx = system.current_tx[0]
        system.end_tx(0)
        assert (tx.tid, tx.txid) not in system.logger._tx_lines


class TestDelayPersistenceCommit:
    def test_commit_record_carries_ulog_counter(self):
        system = make_tiny_system("MorLog-DP")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)      # ULOG at commit
        store(system, 0, base + 8, 3)  # DIRTY at commit (flushed)
        system.end_tx(0)
        records = system.recover(verify_decode=False).records
        commits = [r for r in records if r.meta.type.name == "COMMIT"]
        assert len(commits) == 1
        assert commits[0].meta.ulog_counter == 1

    def test_ulog_word_keeps_state_after_commit(self):
        system = make_tiny_system("MorLog-DP")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)
        system.end_tx(0)
        line = system.hierarchy.l1s[0].lookup(base, touch=False)
        assert line.state(0) is LogState.ULOG

    def test_drain_emits_pending_redo(self):
        system = make_tiny_system("MorLog-DP")
        base = system.config.nvmm_base
        begin(system)
        store(system, 0, base, 1)
        system.advance(0, 1000)
        store(system, 0, base, 2)
        system.end_tx(0)
        system.logger.drain(system.core_time_ns[0])
        records = system.recover(verify_decode=False).records
        redo_records = [r for r in records if r.meta.type.name == "REDO"]
        assert len(redo_records) == 1
        # Now the transaction is persisted.
        assert system.recover(verify_decode=False).persisted_txids


class TestWalOrdering:
    """In-place data must never reach NVMM before their undo data."""

    @pytest.mark.parametrize("design", ["FWB-CRADE", "MorLog-SLDE"])
    def test_fwb_scan_flushes_entries_first(self, design):
        system = make_tiny_system(design)
        base = system.config.nvmm_base
        system.setup_store(base, 0xAAAA)
        system.reset_measurement()
        begin(system)
        store(system, 0, base, 0xBBBB)
        # Two scans force the dirty line to NVMM while the tx is open.
        t = system.core_time_ns[0]
        system.hierarchy.force_write_back_scan(t)
        system.hierarchy.force_write_back_scan(t)
        assert system.persistent_word(base) == 0xBBBB
        # The undo value must be recoverable: crash now, roll back.
        state = system.recover(verify_decode=False)
        assert not state.committed_txids
        assert system.persistent_word(base) == 0xAAAA
