"""Edge-case tests: flush_line, drain paths, secure module internals."""

import pytest

from repro.cache.cacheline import LogState
from repro.common.config import EncodingConfig, NVMConfig
from repro.nvm.module import NvmModule
from tests.conftest import make_tiny_system


class TestFlushLine:
    def test_flush_uncached_line_noop(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        t = system.hierarchy.flush_line(addr, 5.0)
        assert t >= 5.0
        assert system.persistent_word(addr) == 0

    def test_flush_writes_back_dirty_l1_line(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.store_word(0, addr, 0x77)
        system.hierarchy.flush_line(addr, system.core_time_ns[0])
        assert system.persistent_word(addr) == 0x77
        assert system.hierarchy.l1s[0].lookup(addr) is None

    def test_flush_closes_out_log_state(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, addr, 0x11)
        line = system.hierarchy.l1s[0].lookup(addr, touch=False)
        assert line.state(0) is LogState.DIRTY
        system.hierarchy.flush_line(addr, system.core_time_ns[0])
        # The undo+redo entry was forced out before the line left.
        assert system.stats.get("entries_persisted") >= 1
        system.end_tx(0)

    def test_flush_finds_line_in_l3(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        # Put a dirty line in L3 directly.
        from repro.cache.cacheline import CacheLine

        line = CacheLine(addr, [9] * 8)
        line.dirty = True
        system.hierarchy.l3.insert(line)
        system.hierarchy.flush_line(addr, 0.0)
        assert system.persistent_word(addr) == 9


class TestSecureModuleInternals:
    def test_cipher_deterministic_and_spread(self):
        a = NvmModule._cipher(0x40, 1)
        b = NvmModule._cipher(0x40, 1)
        c = NvmModule._cipher(0x48, 1)
        d = NvmModule._cipher(0x40, 2)
        assert a == b
        assert a != c and a != d
        assert a.bit_length() > 32  # high-entropy output

    def test_full_mode_reprograms_whole_line(self):
        module = NvmModule(NVMConfig(), EncodingConfig(secure_mode="full"))
        words = [5] * 8
        module.write_data_line(0x40, words, 0.0)
        # Rewriting the *same* data still re-encrypts everything.
        result = module.write_data_line(0x40, words, 1.0)
        assert result.cost.cells_programmed > 100

    def test_deuce_mode_silent_on_unchanged_line(self):
        module = NvmModule(NVMConfig(), EncodingConfig(secure_mode="deuce"))
        words = [5] * 8
        module.write_data_line(0x40, words, 0.0)
        result = module.write_data_line(0x40, words, 1.0)
        assert result.cost.cells_programmed == 0

    def test_plaintext_logical_preserved_in_secure_modes(self):
        for mode in ("deuce", "full"):
            module = NvmModule(NVMConfig(), EncodingConfig(secure_mode=mode))
            module.write_data_line(0x40, list(range(8)), 0.0)
            words, _t = module.read_line(0x40, 1.0)
            assert list(words) == list(range(8)), mode


class TestDrainPaths:
    def test_logger_drain_idempotent(self):
        system = make_tiny_system()
        system.begin_tx(0)
        system.store_word(0, system.config.nvmm_base, 1)
        system.end_tx(0)
        t1 = system.logger.drain(system.core_time_ns[0])
        persisted = system.stats.get("entries_persisted")
        system.logger.drain(t1)
        assert system.stats.get("entries_persisted") == persisted

    def test_hierarchy_drain_clears_dirty_bits(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.store_word(0, addr, 3)
        system.hierarchy.drain_all(system.core_time_ns[0])
        for cache in system.hierarchy.l1s + system.hierarchy.l2s + [system.hierarchy.l3]:
            for line in cache.iter_lines():
                assert not line.dirty
