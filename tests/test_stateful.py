"""Model-based (stateful) property tests.

Two machines:

- :class:`DurableMemoryMachine` drives random begin/store/load/commit
  traffic against the simulated machine and an in-Python oracle, checking
  read values continuously and crash-recovering at teardown: everything
  the oracle says is committed must be in NVMM, and in-flight updates
  must have vanished.
- :class:`LogRegionMachine` exercises the circular log region against a
  reference deque: appends, truncations and rescans must agree.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.stats import StatGroup
from repro.core.designs import make_system
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.recovery import scan_log
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from tests.conftest import tiny_config

N_WORDS = 24
N_THREADS = 2


class DurableMemoryMachine(RuleBasedStateMachine):
    design = "MorLog-SLDE"

    def __init__(self):
        super().__init__()
        self.system = make_system(self.design, tiny_config())
        self.base = self.system.config.nvmm_base
        self.committed = {}    # addr -> value at last commit
        self.pending = [dict() for _ in range(N_THREADS)]
        self.in_tx = [False] * N_THREADS

    def _addr(self, slot):
        return self.base + 8 * (slot % N_WORDS)

    @rule(tid=st.integers(0, N_THREADS - 1))
    def begin(self, tid):
        if not self.in_tx[tid]:
            self.system.begin_tx(tid)
            self.in_tx[tid] = True

    @precondition(lambda self: any(self.in_tx))
    @rule(tid=st.integers(0, N_THREADS - 1), slot=st.integers(0, N_WORDS - 1),
          value=st.integers(0, (1 << 64) - 1))
    def store(self, tid, slot, value):
        if not self.in_tx[tid]:
            return
        addr = self._addr(slot)
        # Threads own disjoint word sets (software isolation, §III-A).
        if slot % N_THREADS != tid:
            return
        self.system.store_word(tid, addr, value)
        self.pending[tid][addr] = value

    @rule(tid=st.integers(0, N_THREADS - 1), slot=st.integers(0, N_WORDS - 1))
    def load_checks_architectural_value(self, tid, slot):
        if slot % N_THREADS != tid:
            return
        addr = self._addr(slot)
        expected = self.pending[tid].get(addr) if self.in_tx[tid] else None
        if expected is None:
            expected = self.committed.get(addr, 0)
        assert self.system.load_word(tid, addr) == expected

    @rule(tid=st.integers(0, N_THREADS - 1))
    def commit(self, tid):
        if not self.in_tx[tid]:
            return
        self.system.end_tx(tid)
        self.in_tx[tid] = False
        self.committed.update(self.pending[tid])
        self.pending[tid].clear()

    @invariant()
    def log_region_never_leaks(self):
        assert self.system.log_region.free_slots() >= 0

    def teardown(self):
        # Power loss: volatile state gone; recovery must restore exactly
        # the committed oracle for every word ever committed, and roll
        # back any in-flight transaction.
        state = self.system.recover(verify_decode=True)
        for addr, value in self.committed.items():
            assert self.system.persistent_word(addr) == value, hex(addr)
        # In-flight words not previously committed must be back to 0.
        for tid in range(N_THREADS):
            for addr in self.pending[tid]:
                if addr not in self.committed:
                    assert self.system.persistent_word(addr) == 0


class DurableMemoryMachineDP(DurableMemoryMachine):
    """Same machine under the delay-persistence protocol.

    DP sacrifices a committed *suffix* at the crash, so teardown checks
    the persisted prefix only.
    """

    design = "MorLog-DP"

    def teardown(self):
        state = self.system.recover(verify_decode=True)
        # Atomicity: every persistent word equals either its committed
        # value or a value from before some suffix of transactions.
        # Strong prefix check: persisted txids form a prefix of commits.
        # (The oracle cannot reconstruct per-tx write sets here, so the
        # detailed all-or-nothing matrix lives in test_crash_recovery.)
        records = state.records
        committed_order = [
            r.meta.txid for r in records if r.meta.type.name == "COMMIT"
        ]
        flags = [txid in state.persisted_txids for txid in committed_order]
        if False in flags:
            assert True not in flags[flags.index(False):]


class LogRegionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        config = tiny_config()
        self.controller = MemoryController(config, StatGroup("t"))
        self.region = LogRegion(
            self.controller, 0x9000_0000, 4096, StatGroup("t")
        )
        self.reference = []   # list of (txid, kind)
        self.next_txid = 1

    @rule(kind=st.sampled_from(["ur", "redo", "commit"]))
    def append(self, kind):
        if self.region.free_slots() < 8:
            return
        txid = self.next_txid
        self.next_txid += 1
        if kind == "ur":
            record = LogEntry(EntryType.UNDO_REDO, 0, txid, 0x100, 2, 1)
        elif kind == "redo":
            record = LogEntry(EntryType.REDO, 0, txid, 0x100, 2)
        else:
            record = CommitRecord(tid=0, txid=txid)
        self.region.append(record, 0.0)
        self.reference.append((txid, kind))

    @rule(count=st.integers(0, 6))
    def truncate_prefix(self, count):
        eligible = {txid for txid, _k in self.reference[:count]}
        freed = self.region.truncate(lambda e: e.txid in eligible, 0.0)
        del self.reference[:freed]

    @invariant()
    def scan_matches_reference(self):
        records = scan_log(self.controller, self.region.base_addr, 4096)
        assert len(records) == len(self.reference)
        for record, (txid, kind) in zip(records, self.reference):
            assert record.meta.txid == txid
            expected = {
                "ur": EntryType.UNDO_REDO,
                "redo": EntryType.REDO,
                "commit": EntryType.COMMIT,
            }[kind]
            assert record.meta.type is expected


TestDurableMemory = DurableMemoryMachine.TestCase
TestDurableMemory.settings = settings(
    max_examples=12, stateful_step_count=40, deadline=None
)
TestDurableMemoryDP = DurableMemoryMachineDP.TestCase
TestDurableMemoryDP.settings = settings(
    max_examples=8, stateful_step_count=30, deadline=None
)
TestLogRegion = LogRegionMachine.TestCase
TestLogRegion.settings = settings(
    max_examples=10, stateful_step_count=40, deadline=None
)
