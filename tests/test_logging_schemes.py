"""Undo-only and redo-only logging baselines (Figure 1's taxonomy)."""

import pytest

from repro.core.designs import ABLATION_DESIGN_NAMES, make_system
from repro.core.system import CrashInjected
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config

PARAMS = WorkloadParams(initial_items=32, key_space=64, seed=12)


def build(name):
    return make_system(name, tiny_config())


class TestUndoOnly:
    def test_runs_and_recovers(self):
        system = build("Undo-CRADE")
        workload = make_workload("hash", PARAMS)
        result = system.run(workload, 60, n_threads=2)
        assert result.transactions == 60
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 60

    def test_commit_forces_data_write_back(self):
        system = build("Undo-CRADE")
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 0x99)
        system.end_tx(0)
        # Figure 1(c): the updated data are persistent at commit, without
        # any drain.
        assert system.persistent_word(base) == 0x99
        assert system.stats.get("forced_data_write_backs") >= 1

    def test_crash_mid_tx_rolls_back_with_undo(self):
        system = build("Undo-CRADE")
        base = system.config.nvmm_base
        system.setup_store(base, 0xAA)
        system.reset_measurement()
        system.begin_tx(0)
        system.store_word(0, base, 0xBB)
        # Force the dirty line to NVMM pre-commit (allowed: undo first).
        system.hierarchy.write_back_line(base, system.core_time_ns[0])
        assert system.persistent_word(base) == 0xBB
        system.current_tx[0] = None  # crash
        state = system.recover(verify_decode=True)
        assert not state.committed_txids
        assert system.persistent_word(base) == 0xAA

    def test_committed_tx_needs_no_redo(self):
        system = build("Undo-CRADE")
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 7)
        system.end_tx(0)
        state = system.recover(verify_decode=True)
        assert state.redone_words == 0
        assert system.persistent_word(base) == 7


class TestRedoOnly:
    def test_runs_and_recovers(self):
        system = build("Redo-CRADE")
        workload = make_workload("hash", PARAMS)
        result = system.run(workload, 60, n_threads=2)
        assert result.transactions == 60
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 60

    def test_inflight_write_back_is_diverted(self):
        system = build("Redo-CRADE")
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 0x55)
        # Evicting the line mid-transaction must not touch NVMM.
        line = system.hierarchy.l1s[0].lookup(base, touch=False)
        system.hierarchy._write_back(line, system.core_time_ns[0])
        assert system.persistent_word(base) == 0
        assert system.stats.get("staged_write_backs") == 1
        assert system.logger.stage  # staged in DRAM
        system.end_tx(0)
        assert system.persistent_word(base) == 0x55  # released at commit

    def test_staged_line_readable_through_interceptor(self):
        system = build("Redo-CRADE")
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 0x42)
        line = system.hierarchy.l1s[0].lookup(base, touch=False)
        system.hierarchy._write_back(line, system.core_time_ns[0])
        system.hierarchy.l1s[0].remove(base)
        system.hierarchy._owner.pop(base, None)
        # A refetch must see the staged value, not stale NVMM.
        assert system.load_word(0, base) == 0x42
        system.end_tx(0)

    def test_crash_mid_tx_leaves_nvmm_untouched(self):
        system = build("Redo-CRADE")
        base = system.config.nvmm_base
        system.setup_store(base, 0x11)
        system.reset_measurement()
        system.begin_tx(0)
        system.store_word(0, base, 0x22)
        line = system.hierarchy.l1s[0].lookup(base, touch=False)
        system.hierarchy._write_back(line, system.core_time_ns[0])
        system.current_tx[0] = None  # crash; the stage is volatile
        system.logger.stage.clear()
        state = system.recover(verify_decode=True)
        assert state.undone_words == 0  # nothing to roll back
        assert system.persistent_word(base) == 0x11

    def test_committed_tx_rolls_forward_from_redo(self):
        system = build("Redo-CRADE")
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 9)
        system.end_tx(0)
        # Crash before any cache write-back: the redo log carries it.
        state = system.recover(verify_decode=True)
        assert state.redone_words >= 1
        assert system.persistent_word(base) == 9


@pytest.mark.parametrize("design", ABLATION_DESIGN_NAMES)
def test_crash_consistency_matrix(design):
    from tests.test_crash_recovery import WriteSetTap

    system = make_system(design, tiny_config())
    workload = make_workload("hash", PARAMS)
    workload.setup(system, 2)
    system.reset_measurement()
    tap = WriteSetTap()
    system.trace = tap
    counter = [0]

    def hook():
        counter[0] += 1
        if counter[0] >= 250:
            raise CrashInjected()

    system.crash_hook = hook
    committed = []
    try:
        while True:
            core = min(range(2), key=system.core_time_ns.__getitem__)
            body = workload.transaction(core)
            tx = system.begin_tx(core)
            try:
                body(system.contexts[core])
            except CrashInjected:
                system.current_tx[core] = None
                raise
            system.end_tx(core)
            committed.append(tx.txid)
    except CrashInjected:
        pass
    # The volatile stage dies with the machine.
    if hasattr(system.logger, "stage"):
        system.logger.stage.clear()
    state = system.recover(verify_decode=True)
    assert set(committed) <= state.persisted_txids
    expected = {}
    for txid in sorted(tap.tx_writes):
        for addr, (old, new) in tap.tx_writes[txid].items():
            if txid in state.persisted_txids:
                expected[addr] = new
            elif addr not in expected:
                expected[addr] = old
    mismatches = [
        hex(addr) for addr, value in expected.items()
        if system.persistent_word(addr) != value
    ]
    assert not mismatches, "%s corrupted %d words" % (design, len(mismatches))
