"""Correctness of the persistent B-tree and red-black tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.heap.allocator import PersistentHeap
from repro.workloads.btree import PersistentBTree
from repro.workloads.rbtree import BLACK, RED, PersistentRBTree


class DictContext:
    """A plain in-memory word store standing in for the simulator."""

    def __init__(self):
        self.words = {}

    def load(self, addr):
        return self.words.get(addr, 0)

    def store(self, addr, value):
        self.words[addr] = value

    def load_words(self, addr, count):
        return [self.load(addr + 8 * i) for i in range(count)]

    def store_words(self, addr, values):
        for i, value in enumerate(values):
            self.store(addr + 8 * i, value)


def fresh_btree(item_words=8):
    heap = PersistentHeap(0x1000, 1 << 24)
    ctx = DictContext()
    tree = PersistentBTree(heap, item_words)
    tree.create(ctx)
    return tree, ctx


class TestBTree:
    def test_insert_search(self):
        tree, ctx = fresh_btree()
        for key in (5, 3, 9, 1, 7):
            tree.insert(ctx, key)
        for key in (5, 3, 9, 1, 7):
            assert tree.search(ctx, key)
        assert not tree.search(ctx, 4)

    def test_items_sorted_after_many_inserts(self):
        tree, ctx = fresh_btree()
        rng = random.Random(1)
        keys = [rng.randrange(1, 10_000) for _ in range(500)]
        for key in keys:
            tree.insert(ctx, key)
        items = list(tree.items(ctx))
        assert items == sorted(keys)

    def test_delete_from_leaf(self):
        tree, ctx = fresh_btree()
        for key in range(1, 20):
            tree.insert(ctx, key)
        assert tree.delete(ctx, 7)
        assert not tree.search(ctx, 7)
        assert sorted(tree.items(ctx)) == [k for k in range(1, 20) if k != 7]

    def test_delete_internal_key(self):
        tree, ctx = fresh_btree()
        keys = list(range(1, 64))
        for key in keys:
            tree.insert(ctx, key)
        # Delete every key, including internal ones.
        rng = random.Random(2)
        rng.shuffle(keys)
        remaining = set(keys)
        for key in keys[:40]:
            assert tree.delete(ctx, key)
            remaining.discard(key)
            assert sorted(tree.items(ctx)) == sorted(remaining)

    def test_delete_missing_returns_false(self):
        tree, ctx = fresh_btree()
        tree.insert(ctx, 1)
        assert not tree.delete(ctx, 99)

    def test_large_nodes(self):
        tree, ctx = fresh_btree(item_words=512)
        keys = list(range(1, 600))
        for key in keys:
            tree.insert(ctx, key)
        assert list(tree.items(ctx)) == keys
        assert tree.max_keys == 255

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 64)), max_size=120))
    def test_matches_multiset_oracle(self, ops):
        tree, ctx = fresh_btree()
        oracle = []
        for insert, key in ops:
            if insert:
                tree.insert(ctx, key)
                oracle.append(key)
            else:
                removed = tree.delete(ctx, key)
                assert removed == (key in oracle)
                if removed:
                    oracle.remove(key)
        assert sorted(tree.items(ctx)) == sorted(oracle)


def fresh_rbtree(item_words=8):
    heap = PersistentHeap(0x1000, 1 << 24)
    ctx = DictContext()
    tree = PersistentRBTree(heap, item_words)
    tree.create(ctx)
    return tree, ctx


def check_rb_invariants(tree, ctx):
    """BST order, no red-red edges, equal black heights."""
    root = tree._root(ctx)
    if not root:
        return
    assert tree._color(ctx, root) == BLACK

    def walk(node, lo, hi):
        if not node:
            return 1
        key = tree._key(ctx, node)
        assert lo < key < hi, "BST order violated"
        color = tree._color(ctx, node)
        left, right = tree._left(ctx, node), tree._right(ctx, node)
        if color == RED:
            assert tree._color(ctx, left) == BLACK
            assert tree._color(ctx, right) == BLACK
        lh = walk(left, lo, key)
        rh = walk(right, key, hi)
        assert lh == rh, "black heights differ"
        return lh + (1 if color == BLACK else 0)

    walk(root, -1, 1 << 65)


class TestRBTree:
    def test_insert_search(self):
        tree, ctx = fresh_rbtree()
        for key in (5, 3, 9):
            tree.insert(ctx, key, [0, 0, 0])
        assert tree.search(ctx, 3) is not None
        assert tree.search(ctx, 4) is None

    def test_invariants_after_sequential_inserts(self):
        tree, ctx = fresh_rbtree()
        for key in range(1, 200):
            tree.insert(ctx, key, [key, 0, 0])
        check_rb_invariants(tree, ctx)
        assert list(tree.items(ctx)) == list(range(1, 200))

    def test_invariants_after_random_ops(self):
        tree, ctx = fresh_rbtree()
        rng = random.Random(3)
        present = set()
        for _ in range(600):
            key = rng.randrange(1, 128)
            if rng.random() < 0.6:
                tree.insert(ctx, key, [key, 0, 0])
                present.add(key)
            else:
                deleted = tree.delete(ctx, key)
                assert deleted == (key in present)
                present.discard(key)
            check_rb_invariants(tree, ctx)
        assert list(tree.items(ctx)) == sorted(present)

    def test_update_existing_key_rewrites_values(self):
        tree, ctx = fresh_rbtree()
        node1 = tree.insert(ctx, 5, [1, 1, 1])
        node2 = tree.insert(ctx, 5, [2, 2, 2])
        assert node1 == node2
        assert ctx.load(node1 + 5 * 8) == 2

    def test_delete_root(self):
        tree, ctx = fresh_rbtree()
        tree.insert(ctx, 5, [0, 0, 0])
        assert tree.delete(ctx, 5)
        assert tree._root(ctx) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 32)), max_size=80))
    def test_matches_set_oracle(self, ops):
        tree, ctx = fresh_rbtree()
        oracle = set()
        for insert, key in ops:
            if insert:
                tree.insert(ctx, key, [0, 0, 0])
                oracle.add(key)
            else:
                assert tree.delete(ctx, key) == (key in oracle)
                oracle.discard(key)
        check_rb_invariants(tree, ctx)
        assert list(tree.items(ctx)) == sorted(oracle)
