"""Vectorized encoding kernels are bit-exact against the scalar codecs.

The replay fast path (:mod:`repro.encoding.vector` +
:mod:`repro.replay.prewarm`) batch-classifies a trace's words with numpy
and seeds the PR-4 codec memos with pre-built results.  That is only
sound if every kernel mirrors its scalar reference bit for bit and every
seeded memo entry equals — by :class:`EncodedWord` equality, hook tuples
included — what the scalar compute path would have produced and cached.
These Hypothesis differential tests pin both layers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bitops import (
    dirty_byte_mask,
    flipped_bits,
    mask_word,
    select_bytes,
)
from repro.encoding import CradeCodec, LogWriteContext, MemoConfig, SldeCodec
from repro.encoding.bdi import bdi_compress, bdi_decompress
from repro.encoding.dldc import DldcCodec, dldc_compress_pattern
from repro.encoding.flipnwrite import FlipNWriteCodec
from repro.encoding.fpc import FPC_PATTERNS, FpcCodec, fpc_decompress, fpc_match
from repro.encoding.vector import (
    BDI_TAG_PAYLOAD_BITS,
    FPC_PREFIX_PAYLOAD_BITS,
    HAVE_NUMPY,
    vec_bdi_tag,
    vec_bit_flips,
    vec_dirty_byte_mask,
    vec_dldc_pattern,
    vec_dldc_stream_bits,
    vec_fpc_prefix,
    vec_flipnwrite_flip,
)
from repro.replay.prewarm import _dldc_encoded, _fpc_family_encoded, _warm_slde

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="replay needs numpy")

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
masks = st.integers(min_value=0, max_value=0xFF)

#: Bias toward the structured words the patterns actually match —
#: uniform u64 is almost always incompressible.
structured = st.one_of(
    words,
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    # sign-extended negatives of various widths
    st.integers(min_value=1, max_value=(1 << 16) - 1).map(
        lambda v: mask_word(-v)
    ),
    # repeated bytes / zero low half / low-nibble-zero bytes
    st.integers(min_value=0, max_value=0xFF).map(
        lambda b: b * 0x0101_0101_0101_0101
    ),
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(lambda v: v << 32),
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(
        lambda v: (v & 0xF0F0_F0F0) * 0x1_0000_0001
    ),
)

pair_lists = st.lists(st.tuples(words, words), min_size=1, max_size=16)

#: A tiny memo to keep the prewarm-vs-scalar tests on the eviction path.
SMALL_MEMO = MemoConfig(enabled=True, entries=4096)


def u64(values):
    return np.array(values, dtype=np.uint64)


class TestBitKernels:
    @settings(max_examples=200, deadline=None)
    @given(pair_lists)
    def test_dirty_byte_mask(self, pairs):
        old, new = zip(*pairs)
        got = vec_dirty_byte_mask(u64(old), u64(new))
        assert got.tolist() == [dirty_byte_mask(o, n) for o, n in pairs]

    @settings(max_examples=200, deadline=None)
    @given(pair_lists)
    def test_bit_flips(self, pairs):
        old, new = zip(*pairs)
        got = vec_bit_flips(u64(old), u64(new))
        assert got.tolist() == [flipped_bits(o, n) for o, n in pairs]

    @settings(max_examples=200, deadline=None)
    @given(pair_lists)
    def test_flipnwrite_flip(self, pairs):
        old, new = zip(*pairs)
        got = vec_flipnwrite_flip(u64(old), u64(new))
        codec = FlipNWriteCodec()
        for flip, (o, n) in zip(got.tolist(), pairs):
            encoded = codec.encode(n, o)
            assert flip == bool(encoded.tag_payload)
            assert codec.decode(encoded, o) == mask_word(n)


class TestFpcKernel:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(words, structured), min_size=1, max_size=16))
    def test_prefix_matches_scalar(self, values):
        got = vec_fpc_prefix(u64(values))
        assert got.tolist() == [fpc_match(w) for w in values]

    def test_payload_bits_table_matches_patterns(self):
        for prefix, (_name, bits) in FPC_PATTERNS.items():
            assert FPC_PREFIX_PAYLOAD_BITS[prefix] == bits

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(words, structured), min_size=1, max_size=16))
    def test_small_word_table_boundary(self, values):
        # Words < 256 take the table path; make sure the vector kernel's
        # table overwrite agrees on the boundary and on mixed batches.
        mixed = values + [0, 1, 255, 256, (1 << 64) - 1]
        got = vec_fpc_prefix(u64(mixed))
        assert got.tolist() == [fpc_match(w) for w in mixed]


class TestBdiKernel:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(words, structured), min_size=1, max_size=16))
    def test_tag_matches_scalar(self, values):
        got = vec_bdi_tag(u64(values))
        assert got.tolist() == [bdi_compress(w)[0] for w in values]

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(words, structured), min_size=1, max_size=16))
    def test_scalar_roundtrip_and_bits_table(self, values):
        for w in values:
            tag, payload, bits = bdi_compress(w)
            assert bdi_decompress(tag, payload) == mask_word(w)
            assert BDI_TAG_PAYLOAD_BITS[tag] == bits


class TestDldcKernels:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.one_of(words, structured), masks),
                    min_size=1, max_size=16))
    def test_pattern_matches_scalar(self, rows):
        ws = u64([w for w, _ in rows])
        ms = np.array([m for _, m in rows], dtype=np.uint8)
        tags, bits = vec_dldc_pattern(ws, ms)
        for (w, m), tag, payload_bits in zip(rows, tags.tolist(), bits.tolist()):
            if m == 0:
                assert tag == -1 and payload_bits == 0
                continue
            match = dldc_compress_pattern(select_bytes(mask_word(w), m))
            if match is None:
                assert tag == -1 and payload_bits == 0
            else:
                assert (tag, payload_bits) == (match[0], match[2])

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.one_of(words, structured), masks),
                    min_size=1, max_size=16))
    def test_stream_bits_match_encode_dirty(self, rows):
        ws = u64([w for w, _ in rows])
        ms = np.array([m for _, m in rows], dtype=np.uint8)
        tags, stream_bits, compressed = vec_dldc_stream_bits(ws, ms)
        codec = DldcCodec()
        for (w, m), tag, bits, comp in zip(
            rows, tags.tolist(), stream_bits.tolist(), compressed.tolist()
        ):
            if m == 0:
                assert (tag, bits, comp) == (-1, 0, False)
                continue
            encoded = codec._encode_dirty(mask_word(w), m)
            assert bits == encoded.payload_bits
            assert comp == bool(encoded.payload & 1)
            if comp:
                assert tag == (encoded.payload >> 1) & 0b111
            else:
                assert tag == -1

    def test_tie_keeps_lowest_tag(self):
        # A single zero dirty byte matches all-zero (tag 0, 0 bits) and the
        # per-byte sign-extension patterns; the scalar min keeps tag 0.
        tags, bits = vec_dldc_pattern(u64([0]), np.array([0x01], dtype=np.uint8))
        assert tags.tolist() == [0] and bits.tolist() == [0]
        assert dldc_compress_pattern([0]) == (0, 0, 0)


class TestPrewarmBuilders:
    """The prewarm's hand-built EncodedWords equal scalar codec output."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(words, structured), min_size=1, max_size=16))
    def test_fpc_family_matches_codecs(self, values):
        crade = CradeCodec()
        fpc = FpcCodec()
        prefixes = vec_fpc_prefix(u64(values)).tolist()
        for w, prefix in zip(values, prefixes):
            w = mask_word(w)
            built = _fpc_family_encoded(w, prefix, "crade", 5, True)
            assert built == crade.encode(w)
            assert crade.decode(built) == w
            built = _fpc_family_encoded(w, prefix, "fpc", 3, False)
            assert built == FpcCodec(expansion_enabled=False).encode(w)
            assert fpc_decompress(built.tag_payload, built.payload) == w
            assert fpc.decode(fpc.encode(w)) == w

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.one_of(words, structured),
                              st.integers(min_value=1, max_value=0xFF)),
                    min_size=1, max_size=16))
    def test_dldc_encoded_matches_encode_dirty(self, rows):
        ws = u64([mask_word(w) for w, _ in rows])
        ms = np.array([m for _, m in rows], dtype=np.uint8)
        tags, stream_bits, _ = vec_dldc_stream_bits(ws, ms)
        codec = DldcCodec()
        for (w, m), tag, bits in zip(rows, tags.tolist(), stream_bits.tolist()):
            w = mask_word(w)
            built = _dldc_encoded(w, m, tag, bits)
            expected = codec._encode_dirty(w, m)
            assert built == expected
            # Round-trip through an arbitrary base word for clean bytes.
            base = mask_word(~w)
            assert codec.decode(built, base) == codec.decode(expected, base)


def warmed_slde(rows):
    """A memoized SLDE with its memos seeded exactly as replay would."""
    slde = SldeCodec(memo=SMALL_MEMO)
    ws = u64([mask_word(w) for w, _ in rows])
    ms = np.array([m for _, m in rows], dtype=np.uint8)
    counts = _warm_slde(slde, ws, ms)
    assert counts["slde_seeded"] == len(rows)
    return slde


class TestPrewarmedSlde:
    """Seeded decision memos replay the scalar path bit for bit."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(st.one_of(words, structured), masks),
                    min_size=1, max_size=12),
           words)
    def test_encode_log_equal_including_hooks(self, rows, old):
        plain = SldeCodec()
        warmed = warmed_slde(rows)
        streams = ([], [])
        plain.decision_hook = lambda *args: streams[0].append(args)
        warmed.decision_hook = lambda *args: streams[1].append(args)
        for w, m in rows:
            ctx = LogWriteContext(old_word=old, dirty_mask=m)
            expected = plain.encode_log(w, ctx)
            got = warmed.encode_log(w, ctx)
            assert got == expected
            assert got.total_bits == expected.total_bits
            if not got.silent:
                assert warmed.decode(got, old) == plain.decode(expected, old)
        assert streams[0] == streams[1]
        # Every encode above must have been a seeded-memo hit.
        assert warmed._log_memo.hits == len(rows)
        assert warmed._log_memo.misses == 0

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=10))
    def test_pair_encoding_equal_including_conflicts(self, pairs):
        rows = []
        for undo, redo in pairs:
            mask = dirty_byte_mask(undo, redo)
            rows.append((undo, mask))
            rows.append((redo, mask))
        plain = SldeCodec()
        warmed = warmed_slde(rows)
        streams = ([], [])
        plain.decision_hook = lambda *args: streams[0].append(args)
        warmed.decision_hook = lambda *args: streams[1].append(args)
        for undo, redo in pairs:
            mask = dirty_byte_mask(undo, redo)
            assert warmed.encode_undo_redo_pair(undo, redo, mask) == \
                plain.encode_undo_redo_pair(undo, redo, mask)
        assert streams[0] == streams[1]

    def test_pair_conflict_fallback_corner(self):
        # Both sides pick DLDC (the PR-4 corner): undo's dirty byte is
        # zero (all-zero pattern, 12 bits total), redo's fits 2-bit SE
        # (14 bits total); both beat CRADE's 69-bit uncompressed form.
        # Undo saves more, so the redo side must fall back to the CRADE
        # candidate — through the seeded memo exactly as computed.
        undo = 0xAAAA_BBBB_CCCC_DD00
        redo = 0xAAAA_BBBB_CCCC_DD01
        mask = dirty_byte_mask(undo, redo)
        assert mask == 0x01
        plain = SldeCodec()
        warmed = warmed_slde([(undo, mask), (redo, mask)])
        undo_enc, redo_enc = warmed.encode_undo_redo_pair(undo, redo, mask)
        assert (undo_enc, redo_enc) == plain.encode_undo_redo_pair(
            undo, redo, mask
        )
        assert undo_enc.method == "dldc"
        assert redo_enc.method == "crade"  # the conflict loser fell back
        # The per-side decisions came from the seeded memo.
        assert warmed._log_memo.hits == 2
        assert warmed._log_memo.misses == 0

    def test_silent_rows_seed_the_silent_singleton(self):
        warmed = warmed_slde([(0x1234, 0x00)])
        hooks = []
        warmed.decision_hook = lambda *args: hooks.append(args)
        got = warmed.encode_log(0x1234, LogWriteContext(old_word=0x1234,
                                                        dirty_mask=0))
        assert got.silent and got.total_bits == 0
        assert got == SldeCodec().encode_log(
            0x1234, LogWriteContext(old_word=0x1234, dirty_mask=0)
        )
        assert hooks == [(0x1234, "dldc", 0, "crade", 21, True)]
        assert warmed._log_memo.hits == 1

    def test_warm_slde_skips_unwarmable_configs(self):
        # No memo: nothing to seed.
        plain = SldeCodec()
        counts = _warm_slde(plain, u64([1]), np.array([1], dtype=np.uint8))
        assert counts == {"slde_seeded": 0, "dldc_seeded": 0}
        # Context-sensitive alternative: the memo key needs the old word,
        # which the prewarm cannot predict.
        fnw = SldeCodec(alternative=FlipNWriteCodec(), memo=SMALL_MEMO)
        counts = _warm_slde(fnw, u64([1]), np.array([1], dtype=np.uint8))
        assert counts == {"slde_seeded": 0, "dldc_seeded": 0}
