"""Expansion coding (incomplete data mapping) tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import (
    TLC_WRITE_ENERGY_PJ,
    TLC_WRITE_LATENCY_NS,
    tlc_levels_sorted_by_latency,
)
from repro.encoding.expansion import (
    CELLS_PER_WORD,
    ExpansionPolicy,
    cells_to_bits,
    cells_used,
    map_bits_to_cells,
    policy_for_size,
)


class TestPolicySelection:
    def test_tiny_payload_gets_1bit_mapping(self):
        assert policy_for_size(0) is ExpansionPolicy.EXPAND1
        assert policy_for_size(22) is ExpansionPolicy.EXPAND1

    def test_medium_payload_gets_2bit_mapping(self):
        assert policy_for_size(23) is ExpansionPolicy.EXPAND2
        assert policy_for_size(44) is ExpansionPolicy.EXPAND2

    def test_large_payload_raw(self):
        assert policy_for_size(45) is ExpansionPolicy.RAW
        assert policy_for_size(64) is ExpansionPolicy.RAW

    def test_disabled_expansion_always_raw(self):
        assert policy_for_size(4, expansion_enabled=False) is ExpansionPolicy.RAW


class TestLevelSubsets:
    def test_expand1_uses_two_cheapest_levels(self):
        cells = map_bits_to_cells(0b01, 2, ExpansionPolicy.EXPAND1)
        ordered = tlc_levels_sorted_by_latency()
        assert set(cells) <= set(ordered[:2])

    def test_expand2_uses_four_cheapest_levels(self):
        cells = map_bits_to_cells(0b1110, 4, ExpansionPolicy.EXPAND2)
        ordered = tlc_levels_sorted_by_latency()
        assert set(cells) <= set(ordered[:4])

    def test_cheapest_levels_are_cheap_in_both_metrics(self):
        # Table III: the fastest four levels are also the most energy
        # efficient, which is what makes IDM restriction worthwhile.
        by_latency = sorted(TLC_WRITE_LATENCY_NS, key=TLC_WRITE_LATENCY_NS.get)[:4]
        by_energy = sorted(TLC_WRITE_ENERGY_PJ, key=TLC_WRITE_ENERGY_PJ.get)[:4]
        assert set(by_latency) == set(by_energy)


class TestMappingRoundtrip:
    @given(
        st.integers(min_value=0, max_value=(1 << 22) - 1),
        st.sampled_from(list(ExpansionPolicy)),
    )
    def test_roundtrip(self, payload, policy):
        bits = 22
        cells = map_bits_to_cells(payload, bits, policy)
        assert cells_to_bits(cells, bits, policy) == payload

    def test_cells_used_counts(self):
        assert cells_used(22, ExpansionPolicy.EXPAND1) == 22
        assert cells_used(22, ExpansionPolicy.EXPAND2) == 11
        assert cells_used(22, ExpansionPolicy.RAW) == 8
        assert cells_used(0, ExpansionPolicy.RAW) == 0

    def test_word_fits_exactly(self):
        cells = map_bits_to_cells((1 << 64) - 1, 64, ExpansionPolicy.RAW)
        assert len(cells) == CELLS_PER_WORD

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            map_bits_to_cells(0, 23, ExpansionPolicy.EXPAND1)

    def test_wide_payload_rejected(self):
        with pytest.raises(ValueError):
            map_bits_to_cells(0b111, 2, ExpansionPolicy.RAW)

    def test_invalid_level_rejected_on_decode(self):
        with pytest.raises(ValueError):
            cells_to_bits([0b011], 1, ExpansionPolicy.EXPAND1)
