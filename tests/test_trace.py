"""Unit and integration tests for the ``repro.trace`` subsystem.

Covers the bus (bounding, filtering, accounting), the event schema
validator, timeline assembly, Chrome export round-trips, the metrics
snapshot, and the host-side phase profiler.  The inertness guarantee —
traced runs bit-identical to traceless ones — lives in
``tests/test_trace_inert.py``.
"""

import json

import pytest

from repro.core.designs import make_system
from repro.trace import (
    CATEGORIES,
    EVENT_SCHEMA,
    PhaseProfiler,
    TraceBus,
    TraceConfig,
    TraceEvent,
    assemble_timelines,
    chrome_document,
    metrics_snapshot,
    parse_chrome_trace,
    profile_design,
    timeline_summary,
    validate_chrome_trace,
    validate_event,
    write_chrome_trace,
)
from repro.trace.export import read_event_lines, write_event_lines
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config


def run_traced(design="MorLog-SLDE", workload="sps", n_tx=30, threads=2,
               trace=None, **overrides):
    system = make_system(
        design, tiny_config(**overrides),
        trace=trace or TraceConfig(enabled=True),
    )
    wl = make_workload(workload, WorkloadParams(initial_items=48, key_space=96))
    result = system.run(wl, n_tx, threads)
    return system, result


class TestBus:
    def test_disabled_config_makes_no_bus(self):
        assert TraceConfig().make_bus() is None
        assert TraceConfig(enabled=True).make_bus() is not None

    def test_untraced_system_has_no_tracer(self):
        system = make_system("MorLog-SLDE", tiny_config())
        assert system.tracer is None
        assert system.logger.tracer is None

    def test_emit_appends_events_in_order(self):
        bus = TraceBus()
        bus.emit("tx-begin", "tx", 1.0, core=0, txid=7)
        bus.emit("tx-commit", "tx", 1.0, core=0, txid=7, dur_ns=4.0, n_stores=3)
        assert [e.name for e in bus.events] == ["tx-begin", "tx-commit"]
        assert bus.events[1].args["n_stores"] == 3
        assert len(bus) == 2 and bus.emitted == 2

    def test_ring_bounds_and_counts_drops(self):
        bus = TraceBus(TraceConfig(enabled=True, capacity=4))
        for i in range(10):
            bus.emit("log-wrap", "log", float(i))
        assert len(bus.events) == 4
        assert bus.dropped == 6 and bus.emitted == 10
        # The newest events are the ones retained.
        assert [e.ts_ns for e in bus.events] == [6.0, 7.0, 8.0, 9.0]

    def test_zero_capacity_is_unbounded(self):
        bus = TraceBus(TraceConfig(enabled=True, capacity=0))
        for i in range(100_000):
            bus.emit("log-wrap", "log", float(i))
        assert len(bus.events) == 100_000 and bus.dropped == 0

    def test_category_filter(self):
        bus = TraceBus(TraceConfig(enabled=True, categories=frozenset({"tx"})))
        bus.emit("tx-begin", "tx", 0.0, txid=1)
        bus.emit("log-wrap", "log", 0.0)
        assert [e.name for e in bus.events] == ["tx-begin"]
        assert bus.emitted == 1

    def test_clear_resets_accounting(self):
        bus = TraceBus(TraceConfig(enabled=True, capacity=2))
        for i in range(5):
            bus.emit("log-wrap", "log", float(i))
        bus.clear()
        assert len(bus) == 0 and bus.emitted == 0 and bus.dropped == 0

    def test_summary_is_sorted_and_complete(self):
        bus = TraceBus()
        bus.emit("word-state", "word-state", 0.0, **{"from": "CLEAN", "to": "DIRTY"})
        bus.emit("tx-begin", "tx", 0.0, txid=1)
        summary = bus.summary()
        assert summary["emitted"] == 2 and summary["retained"] == 2
        assert list(summary["by_category"]) == sorted(summary["by_category"])
        assert list(summary["by_name"]) == sorted(summary["by_name"])


class TestSchema:
    def test_every_schema_category_is_known(self):
        for name, spec in EVENT_SCHEMA.items():
            assert spec.category in CATEGORIES, name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_event(TraceEvent("not-a-thing", "tx", 0.0))

    def test_wrong_category_rejected(self):
        with pytest.raises(ValueError, match="category"):
            validate_event(TraceEvent("tx-begin", "log", 0.0))

    def test_missing_required_arg_rejected(self):
        with pytest.raises(ValueError, match="required arg"):
            validate_event(TraceEvent("word-state", "word-state", 0.0))

    def test_reserved_arg_key_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            validate_event(
                TraceEvent("tx-begin", "tx", 0.0, args={"txid": 3})
            )

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            validate_event(TraceEvent("tx-begin", "tx", -1.0))
        with pytest.raises(ValueError, match="negative"):
            validate_event(TraceEvent("tx-begin", "tx", 0.0, dur_ns=-1.0))


class TestTimeline:
    def _events(self):
        return [
            TraceEvent("tx-begin", "tx", 10.0, core=0, txid=1),
            TraceEvent("log-create", "log", 11.0, core=0, txid=1,
                       addr=64, args={"entry": "undo-redo"}),
            TraceEvent("log-wrap", "log", 12.0),  # machine-level, no txid
            TraceEvent("tx-begin", "tx", 12.0, core=1, txid=2),
            TraceEvent("tx-commit", "tx", 10.0, core=0, txid=1,
                       dur_ns=5.0, args={"n_stores": 1}),
            TraceEvent("tx-crash", "tx", 20.0, core=1, txid=2),
        ]

    def test_assembles_by_txid_in_order(self):
        timelines = assemble_timelines(self._events())
        assert list(timelines) == [1, 2]
        one = timelines[1]
        assert one.core == 0
        assert one.begin_ns == 10.0 and one.commit_ns == 15.0
        assert one.duration_ns == 5.0
        assert one.count("log-create") == 1
        assert one.first("log-create").addr == 64
        assert timelines[2].crashed and timelines[2].duration_ns is None

    def test_machine_events_excluded(self):
        timelines = assemble_timelines(self._events())
        assert all(
            e.txid is not None for t in timelines.values() for e in t.events
        )

    def test_summary_stable_and_correct(self):
        summary = timeline_summary(assemble_timelines(self._events()))
        assert summary["transactions"] == 2.0
        assert summary["committed"] == 1.0
        assert summary["crashed"] == 1.0
        assert summary["mean_duration_ns"] == 5.0
        assert list(summary) == sorted(summary)


class TestChromeExport:
    def _bus(self):
        system, _result = run_traced(n_tx=20)
        return system.tracer

    def test_document_shape(self):
        doc = chrome_document(self._bus().events, "MorLog-SLDE", "sps")
        assert doc["displayTimeUnit"] == "ns"
        assert doc["otherData"]["design"] == "MorLog-SLDE"
        records = doc["traceEvents"]
        assert records[0]["ph"] == "M"  # process_name metadata
        phases = {r["ph"] for r in records[1:]}
        assert phases <= {"X", "i"}

    def test_round_trip_is_exact(self):
        events = list(self._bus().events)
        doc = chrome_document(events, "MorLog-SLDE", "sps")
        assert parse_chrome_trace(doc) == events

    def test_round_trip_through_json_file(self, tmp_path):
        events = list(self._bus().events)
        path = str(tmp_path / "t.json")
        count = write_chrome_trace(path, events, "MorLog-SLDE", "sps")
        assert count == len(events)
        doc = json.load(open(path))
        assert validate_chrome_trace(doc) == len(events)
        assert parse_chrome_trace(doc) == events

    def test_write_is_atomic_no_residue(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(path, self._bus().events, "MorLog-SLDE", "sps")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.json"]

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "cat": "tx", "ts": 0.0,
                                  "name": "made-up", "args": {}}]}
            )

    def test_event_lines_round_trip(self, tmp_path):
        events = list(self._bus().events)
        path = str(tmp_path / "events.jsonl")
        assert write_event_lines(path, events) == len(events)
        assert read_event_lines(path) == events


class TestSldeDecisionTruth:
    """slde-decision events must match the bits actually written.

    Regression for a bug where the undo+redo conflict path emitted "dldc
    chosen" for a side that was subsequently replaced by the alternative
    codec, so traces and metrics disagreed with the NVM traffic.
    """

    def test_conflict_path_reports_replaced_side(self):
        from repro.common.config import EncodingConfig, NVMConfig
        from repro.common.stats import StatGroup
        from repro.encoding.slde import LogWriteContext
        from repro.nvm.module import LogDataWord, NvmModule

        module = NvmModule(NVMConfig(), EncodingConfig(), StatGroup("t"))
        bus = TraceBus(TraceConfig(enabled=True))
        module.set_tracer(bus)
        # Both words are FPC-incompressible and differ in one byte, so
        # both sides prefer DLDC and the conflict path must demote one.
        undo, redo = 0x0123_4567_89AB_CDEF, 0x0123_4567_89AB_CDEE
        ctx = LogWriteContext(old_word=undo, dirty_mask=0x01)
        result = module.write_log_entry(
            0x100, [0x1], 0.0,
            undo=LogDataWord(undo, ctx), redo=LogDataWord(redo, ctx),
        )
        undo_enc, redo_enc = result.encoded_words[-2:]
        assert {undo_enc.method, redo_enc.method} == {"dldc", "crade"}
        decisions = [e for e in bus.events if e.name == "slde-decision"]
        assert len(decisions) == 2
        for event, enc in zip(decisions, (undo_enc, redo_enc)):
            assert event.args["chosen"] == enc.method
            assert event.args["chosen_bits"] == enc.total_bits
            assert event.args["silent"] == enc.silent
        overridden = decisions[0 if undo_enc.method != "dldc" else 1]
        assert overridden.args["rejected"] == "dldc"


class TestSystemIntegration:
    def test_morlog_emits_expected_event_families(self):
        system, _result = run_traced(n_tx=40)
        names = {e.name for e in system.tracer.events}
        assert {"tx-begin", "tx-commit", "log-create", "undo-persist",
                "commit-persist", "log-append", "word-state",
                "slde-decision", "nvm-write"} <= names

    def test_word_state_transitions_follow_figure8(self):
        system, _result = run_traced(n_tx=40)
        seen = {
            (e.args["from"], e.args["to"])
            for e in system.tracer.events
            if e.name == "word-state"
        }
        allowed = {("CLEAN", "DIRTY"), ("DIRTY", "URLOG"), ("URLOG", "ULOG")}
        assert seen and seen <= allowed

    def test_every_emitted_event_is_schema_valid(self):
        system, _result = run_traced(n_tx=30)
        for event in system.tracer.events:
            validate_event(event)

    def test_fwb_emits_log_events_but_no_word_states(self):
        system, _result = run_traced(design="FWB-CRADE", n_tx=30)
        names = {e.name for e in system.tracer.events}
        assert "log-create" in names and "word-state" not in names

    def test_timestamps_are_monotone_per_transaction(self):
        system, _result = run_traced(n_tx=30)
        timelines = assemble_timelines(system.tracer.events)
        for timeline in timelines.values():
            if timeline.duration_ns is not None:
                assert timeline.duration_ns >= 0.0

    def test_reset_machine_preserves_bus(self):
        system, _result = run_traced(n_tx=10)
        bus = system.tracer
        system.reset_machine()
        assert system.tracer is bus
        assert system.logger.tracer is bus
        assert system.controller.nvm.tracer is bus

    def test_recovery_emits_recovery_event(self):
        system, _result = run_traced(n_tx=10)
        system.recover(verify_decode=False)
        recovery = [e for e in system.tracer.events if e.name == "recovery"]
        assert len(recovery) == 1
        assert recovery[0].args["committed"] >= 0


class TestMetricsSnapshot:
    def test_snapshot_shape_and_order(self):
        system, result = run_traced(n_tx=25)
        snap = metrics_snapshot(result, system.tracer, "MorLog-SLDE", "sps")
        assert snap["design"] == "MorLog-SLDE"
        assert snap["transactions"] == result.transactions
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(snap["derived"]) == sorted(snap["derived"])
        assert snap["trace"]["timelines"]["committed"] == 25.0
        hist = snap["trace"]["histograms"]["tx_duration_us"]
        assert sum(hist.values()) == 25

    def test_snapshot_without_bus_has_no_trace_section(self):
        system, result = run_traced(n_tx=10)
        snap = metrics_snapshot(result, None, "MorLog-SLDE", "sps")
        assert "trace" not in snap

    def test_snapshot_marks_truncated_stream(self):
        # A full run's snapshot over an unbounded-enough ring: honest.
        system, result = run_traced(n_tx=10)
        snap = metrics_snapshot(result, system.tracer, "MorLog-SLDE", "sps")
        assert system.tracer.dropped == 0
        assert snap["trace"]["truncated"] is False
        # The same run through a tiny ring drops events, and the
        # snapshot must say its timelines/histograms are truncated.
        small, small_result = run_traced(
            n_tx=10, trace=TraceConfig(enabled=True, capacity=8))
        assert small.tracer.dropped > 0
        snap = metrics_snapshot(small_result, small.tracer, "MorLog-SLDE", "sps")
        assert snap["trace"]["truncated"] is True
        assert snap["trace"]["bus"]["dropped"] == small.tracer.dropped

    def test_chrome_export_carries_drop_metadata(self):
        system, _result = run_traced(
            n_tx=10, trace=TraceConfig(enabled=True, capacity=8))
        assert system.tracer.dropped > 0
        document = chrome_document(
            system.tracer.events, design="MorLog-SLDE", workload="sps",
            dropped=system.tracer.dropped,
        )
        assert document["otherData"]["truncated"] is True
        assert document["otherData"]["dropped_events"] == system.tracer.dropped
        # Default: a complete export says so.
        complete = chrome_document([], design="d", workload="w")
        assert complete["otherData"]["truncated"] is False
        assert complete["otherData"]["dropped_events"] == 0

    def test_snapshot_is_json_serializable(self):
        system, result = run_traced(n_tx=10)
        snap = metrics_snapshot(result, system.tracer, "MorLog-SLDE", "sps")
        assert json.loads(json.dumps(snap)) == snap


class TestProfiler:
    def test_profile_design_accounts_known_phases(self):
        result, report = profile_design(
            "MorLog-SLDE", "sps", config=tiny_config(),
            n_transactions=25, n_threads=2,
        )
        assert result.transactions == 25
        assert report.wall_seconds > 0.0
        assert {"logging", "nvm", "encoding", "cache"} <= set(report.phases)
        for stat in report.phases.values():
            assert stat.calls > 0 and stat.seconds >= 0.0
        # Exclusive attribution: phases never exceed the wall clock.
        assert report.accounted_seconds <= report.wall_seconds * 1.05

    def test_profiling_does_not_change_simulated_results(self):
        params = WorkloadParams(initial_items=48, key_space=96)
        profiled, _report = profile_design(
            "MorLog-SLDE", "sps", config=tiny_config(), params=params,
            n_transactions=25, n_threads=2,
        )
        plain_system, plain = run_traced(n_tx=25, trace=TraceConfig())
        assert plain_system.tracer is None
        assert profiled.stats == plain.stats
        assert profiled.elapsed_ns == plain.elapsed_ns

    def test_uninstall_restores_methods(self):
        system = make_system("MorLog-SLDE", tiny_config())
        original = system.logger.on_store
        profiler = PhaseProfiler().install(system)
        assert system.logger.on_store is not original
        profiler.uninstall()
        assert system.logger.on_store == original

    def test_report_dict_and_table_render(self):
        _result, report = profile_design(
            "FWB-CRADE", "queue", config=tiny_config(),
            n_transactions=10, n_threads=2,
        )
        flat = report.as_dict()
        assert list(flat) == sorted(flat)
        assert "wall_seconds" in flat and "workload_seconds" in flat
        text = report.format("unit test")
        assert "unit test" in text and "total (wall)" in text
