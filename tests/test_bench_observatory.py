"""The benchmark observatory: records, store, comparator, scorecard.

Covers the contracts the benchmark harness and CI rely on:

- ``BenchRecord`` validation and JSON round-trip;
- trajectory files: index allocation, append atomicity under concurrent
  writers, schema validation on load;
- the statistical comparator (classification bands, paired-best repeat
  reduction, digest-aware pairing for multi-scale baselines);
- the paper-fidelity expectations (pass/drift/fail/missing);
- ``bench_util.emit`` (quiet control, returned paths, txt+json together);
- ``metrics_snapshot``'s ``memo`` key and ``duration_histogram`` edges;
- the ``repro bench`` CLI verbs, including the gate's exit codes.
"""

import json
import os
import threading

import pytest

import benchmarks.bench_util as bench_util
from repro.bench import (
    DEFAULT_TOLERANCE,
    HIGHER,
    IMPROVED,
    INFO,
    LOWER,
    REGRESSED,
    SKIPPED,
    UNCHANGED,
    BenchRecord,
    Expectation,
    append_records,
    best_of,
    classify,
    compare_records,
    current_run_path,
    evaluate_expectations,
    latest_run,
    list_runs,
    load_run,
    open_run,
    record,
    render_report,
    reset_current_run,
    scorecard_counts,
    write_result_json,
)
from repro.bench.expectations import DRIFT, FAIL, MISSING, PASS
from repro.cli import main


@pytest.fixture
def bench_dir(tmp_path, monkeypatch):
    """Point every trajectory write at a fresh directory."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_BENCH_RUN_FILE", raising=False)
    reset_current_run()
    yield tmp_path
    reset_current_run()


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def test_record_round_trips_through_json():
    rec = record(
        "fig13_write_traffic",
        "gmean_morlog_dp_vs_fwb",
        0.77,
        unit="ratio",
        direction=LOWER,
        tolerance=0.05,
        attachments={"metrics_snapshot": {"counters": {"a": 1}}},
    )
    clone = BenchRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
    assert clone == rec
    assert clone.key == "fig13_write_traffic/gmean_morlog_dp_vs_fwb"
    assert clone.gates
    assert clone.attachments["metrics_snapshot"]["counters"] == {"a": 1}


def test_record_fills_environmental_fields(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    rec = record("b", "m", 1.0)
    assert rec.scale == 0.25
    assert rec.unix_time > 0
    assert rec.host["cpu_count"] >= 1
    assert rec.config_digest  # default digest is filled in
    assert rec.direction == INFO and not rec.gates


def test_record_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        BenchRecord(benchmark="", metric="m", value=1.0)
    with pytest.raises(ValueError):
        BenchRecord(benchmark="b", metric="m", value=1.0, direction="sideways")
    with pytest.raises(ValueError):
        BenchRecord(benchmark="b", metric="m", value=1.0, tolerance=-0.1)


def test_effective_tolerance_defaults():
    assert BenchRecord("b", "m", 1.0).effective_tolerance() == DEFAULT_TOLERANCE
    assert BenchRecord("b", "m", 1.0, tolerance=0.0).effective_tolerance() == 0.0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_open_run_allocates_sequential_indices(bench_dir):
    first = open_run()
    second = open_run()
    assert [os.path.basename(p) for p in (first, second)] == [
        "BENCH_1.json",
        "BENCH_2.json",
    ]
    assert list_runs() == [first, second]
    assert latest_run() == second


def test_current_run_is_memoized_per_process(bench_dir):
    path = current_run_path()
    assert current_run_path() == path
    assert os.path.basename(path) == "BENCH_1.json"


def test_run_file_pinning(bench_dir, monkeypatch):
    pinned = str(bench_dir / "BENCH_7.json")
    monkeypatch.setenv("REPRO_BENCH_RUN_FILE", pinned)
    assert current_run_path() == pinned
    append_records(current_run_path(), [record("b", "m", 1.0)])
    _header, records = load_run(pinned)
    assert [r.key for r in records] == ["b/m"]


def test_append_records_round_trip(bench_dir):
    path = open_run()
    recs = [
        record("b", "m1", 1.0, direction=HIGHER),
        record("b", "m2", 2.0, direction=LOWER),
    ]
    _path, total = append_records(path, recs)
    assert total == 2
    header, loaded = load_run(path)
    assert loaded == recs
    assert header["scale"] == pytest.approx(1.0)
    assert "host" in header and "started_unix_time" in header


def test_append_records_atomic_under_concurrent_writers(bench_dir):
    path = open_run()
    writers, per_writer = 8, 6
    errors = []

    def hammer(i):
        try:
            for j in range(per_writer):
                append_records(
                    path, [record("writer%d" % i, "m%d" % j, float(j))]
                )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(writers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    _header, records = load_run(path)  # valid JSON, nothing torn
    assert len(records) == writers * per_writer
    keys = {r.key for r in records}
    assert len(keys) == writers * per_writer  # no append lost
    assert not os.path.exists(path + ".lock")


def test_concurrent_open_run_never_shares_an_index(bench_dir):
    paths, errors = [], []
    lock = threading.Lock()

    def allocate():
        try:
            p = open_run()
            with lock:
                paths.append(p)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=allocate) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(set(paths)) == len(paths) == 8


def test_load_run_rejects_garbage(bench_dir):
    bad = bench_dir / "BENCH_9.json"
    bad.write_text(json.dumps({"schema_version": 999, "records": []}))
    with pytest.raises(ValueError, match="schema_version"):
        load_run(str(bad))
    worse = bench_dir / "notarun.json"
    worse.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="records"):
        load_run(str(worse))


def test_write_result_json_document_shape(tmp_path):
    path = str(tmp_path / "out.json")
    write_result_json(path, "bname", [record("bname", "m", 3.0)])
    doc = json.load(open(path))
    assert doc["benchmark"] == "bname"
    assert [r["metric"] for r in doc["records"]] == ["m"]


# ---------------------------------------------------------------------------
# Comparator
# ---------------------------------------------------------------------------


def test_classify_bands():
    assert classify(100.0, 104.0, HIGHER, 0.05) == UNCHANGED
    assert classify(100.0, 106.0, HIGHER, 0.05) == IMPROVED
    assert classify(100.0, 94.0, HIGHER, 0.05) == REGRESSED
    assert classify(100.0, 94.0, LOWER, 0.05) == IMPROVED
    assert classify(100.0, 106.0, LOWER, 0.05) == REGRESSED
    assert classify(8.0, 10.0, HIGHER, 0.25) == UNCHANGED  # band is inclusive
    assert classify(100.0, 150.0, INFO, 0.05) == SKIPPED
    assert classify(0.0, 1.0, HIGHER, 0.05) == SKIPPED  # zero baseline


def test_best_of_reduces_repeats_by_direction():
    highs = [BenchRecord("b", "m", v, direction=HIGHER) for v in (1.0, 3.0, 2.0)]
    lows = [BenchRecord("b", "m", v, direction=LOWER) for v in (2.0, 1.0, 3.0)]
    infos = [BenchRecord("b", "m", v, direction=INFO) for v in (5.0, 7.0)]
    assert best_of(highs).value == 3.0
    assert best_of(lows).value == 1.0
    assert best_of(infos).value == 7.0  # latest wins
    with pytest.raises(ValueError):
        best_of([])


def _rec(metric, value, direction=HIGHER, digest="d1", benchmark="b"):
    return BenchRecord(
        benchmark=benchmark,
        metric=metric,
        value=value,
        direction=direction,
        config_digest=digest,
    )


def test_compare_records_classifies_and_skips():
    baseline = [
        _rec("thr", 100.0),
        _rec("writes", 50.0, LOWER),
        _rec("wall", 3.0, INFO),
        _rec("other_scale", 10.0, digest="dX"),
    ]
    candidate = [
        _rec("thr", 120.0),
        _rec("writes", 70.0, LOWER),
        _rec("wall", 9.0, INFO),
        _rec("other_scale", 10.0, digest="dY"),
        _rec("brand_new", 1.0),
    ]
    report = compare_records(baseline, candidate)
    verdicts = {d.metric: d.verdict for d in report.deltas}
    assert verdicts == {
        "thr": IMPROVED,
        "writes": REGRESSED,
        "wall": SKIPPED,
        "other_scale": SKIPPED,  # digest mismatch
        # brand_new has no baseline: not compared at all
    }
    assert [d.metric for d in report.regressions] == ["writes"]
    assert "1 improved, 1 regressed" in report.summary()
    counts = report.counts()
    assert counts[SKIPPED] == 2 and counts[UNCHANGED] == 0


def test_compare_records_pairs_on_matching_digest():
    # A multi-scale baseline holds the same metric under two digests;
    # each candidate must be judged against its own scale's population.
    baseline = [
        _rec("thr", 100.0, digest="scale-small"),
        _rec("thr", 1000.0, digest="scale-large"),
    ]
    report = compare_records(
        baseline, [_rec("thr", 98.0, digest="scale-small")]
    )
    assert report.deltas[0].verdict == UNCHANGED
    assert report.deltas[0].baseline == 100.0
    report = compare_records(
        baseline, [_rec("thr", 940.0, digest="scale-large")]
    )
    assert report.deltas[0].verdict == REGRESSED
    assert report.deltas[0].baseline == 1000.0


def test_compare_records_repeats_reduce_before_classification():
    baseline = [_rec("thr", 100.0), _rec("thr", 90.0)]
    candidate = [_rec("thr", 60.0), _rec("thr", 101.0)]
    report = compare_records(baseline, candidate)
    # paired best: max(100, 90) vs max(60, 101) -> unchanged
    assert report.deltas[0].verdict == UNCHANGED


def test_tolerance_override_and_tight_bands():
    baseline = [_rec("thr", 100.0)]
    candidate = [_rec("thr", 101.0)]
    assert (
        compare_records(baseline, candidate).deltas[0].verdict == UNCHANGED
    )
    report = compare_records(baseline, candidate, tolerance_override=0.0)
    assert report.deltas[0].verdict == IMPROVED


# ---------------------------------------------------------------------------
# Expectations / scorecard
# ---------------------------------------------------------------------------


def test_expectation_statuses():
    exp = Expectation(
        id="x", paper="Fig. 0", description="d",
        benchmark="b", metric="m", low=1.0, slack=0.1,
    )
    assert exp.evaluate(1.5).status == PASS
    assert exp.evaluate(1.0).status == PASS  # bounds inclusive
    assert exp.evaluate(0.95).status == DRIFT  # within slack
    assert exp.evaluate(0.5).status == FAIL
    assert exp.evaluate(None).status == MISSING
    assert exp.bounds() == ">= 1"
    both = Expectation(
        id="y", paper="p", description="d", benchmark="b", metric="m",
        low=0.0, high=2.0, slack=0.5,
    )
    assert both.evaluate(2.4).status == DRIFT
    assert both.evaluate(3.0).status == FAIL
    assert both.bounds() == "[0, 2]"


def test_evaluate_expectations_uses_best_repeat():
    exps = (
        Expectation(
            id="a", paper="p", description="d",
            benchmark="b", metric="m", low=1.0,
        ),
        Expectation(
            id="b", paper="p", description="d",
            benchmark="b", metric="absent", low=1.0,
        ),
    )
    records = [
        BenchRecord("b", "m", 0.5, direction=HIGHER),
        BenchRecord("b", "m", 1.5, direction=HIGHER),
    ]
    results = evaluate_expectations(records, exps)
    assert [r.status for r in results] == [PASS, MISSING]
    counts = scorecard_counts(results)
    assert counts[PASS] == 1 and counts[MISSING] == 1


def test_render_report_contains_scorecard_and_records():
    records = [
        BenchRecord(
            "headline_claims", "throughput_improvement_pct", 72.5,
            unit="%", direction=HIGHER,
        )
    ]
    text = render_report(records, run_header={"scale": 0.1}, run_name="BENCH_1.json")
    assert "# Benchmark observatory report" in text
    assert "Paper-fidelity scorecard" in text
    assert "headline-throughput" in text
    assert "Recorded metrics" in text
    assert "BENCH_1.json" in text


# ---------------------------------------------------------------------------
# bench_util.emit
# ---------------------------------------------------------------------------


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(bench_util, "RESULTS_DIR", str(tmp_path / "results"))
    return tmp_path / "results"


def test_emit_txt_only(results_dir, capsys):
    out = bench_util.emit("tbl", "a table")
    assert out.txt_path.endswith("tbl.txt")
    assert open(out.txt_path).read() == "a table\n"
    assert out.json_path is None and out.run_path is None
    assert "a table" in capsys.readouterr().out


def test_emit_quiet_flag_and_env(results_dir, capsys, monkeypatch):
    bench_util.emit("tbl", "quiet table", quiet=True)
    assert capsys.readouterr().out == ""
    monkeypatch.setenv("REPRO_BENCH_QUIET", "1")
    bench_util.emit("tbl", "quiet table")
    assert capsys.readouterr().out == ""
    bench_util.emit("tbl", "loud table", quiet=False)  # explicit beats env
    assert "loud table" in capsys.readouterr().out


def test_emit_with_records_writes_json_and_trajectory(
    results_dir, bench_dir, capsys
):
    recs = [record("tbl", "m", 4.2, direction=HIGHER)]
    out = bench_util.emit("tbl", "table", records=recs, quiet=True)
    assert out.json_path.endswith(os.path.join("results", "tbl.json"))
    doc = json.load(open(out.json_path))
    assert doc["records"][0]["value"] == 4.2
    assert os.path.dirname(out.run_path) == str(bench_dir)
    _header, loaded = load_run(out.run_path)
    assert loaded == recs
    # a second emit appends to the same run file
    out2 = bench_util.emit("tbl2", "table", records=recs, quiet=True)
    assert out2.run_path == out.run_path
    _header, loaded = load_run(out.run_path)
    assert len(loaded) == 2


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


def _write_run(path, records):
    append_records(str(path), records)
    return str(path)


def test_cli_bench_compare_and_gate_pass(bench_dir, capsys):
    base = _write_run(bench_dir / "BENCH_1.json", [_rec("thr", 100.0)])
    _write_run(bench_dir / "BENCH_2.json", [_rec("thr", 102.0)])
    assert main(["bench", "compare", "--dir", str(bench_dir)]) == 0
    out = capsys.readouterr().out
    assert "unchanged" in out
    assert main(["bench", "gate", "--baseline", base,
                 "--dir", str(bench_dir)]) == 0
    assert "gate: PASS" in capsys.readouterr().out


def test_cli_bench_gate_fails_on_regression(bench_dir, capsys):
    base = _write_run(bench_dir / "BENCH_1.json", [_rec("thr", 100.0)])
    _write_run(bench_dir / "BENCH_2.json", [_rec("thr", 80.0)])
    assert main(["bench", "gate", "--baseline", base,
                 "--dir", str(bench_dir)]) == 1
    assert "gate: FAIL" in capsys.readouterr().out


def test_cli_bench_gate_fails_when_nothing_comparable(bench_dir, capsys):
    base = _write_run(
        bench_dir / "BENCH_1.json", [_rec("thr", 100.0, digest="dA")]
    )
    _write_run(bench_dir / "BENCH_2.json", [_rec("thr", 100.0, digest="dB")])
    assert main(["bench", "gate", "--baseline", base,
                 "--dir", str(bench_dir)]) == 1
    assert "no comparable metrics" in capsys.readouterr().out


def test_cli_bench_gate_missing_baseline(bench_dir, capsys):
    _write_run(bench_dir / "BENCH_1.json", [_rec("thr", 100.0)])
    assert main(["bench", "gate", "--baseline",
                 str(bench_dir / "nope.json"), "--dir", str(bench_dir)]) == 2


def test_cli_bench_report_renders_markdown(bench_dir, capsys):
    _write_run(
        bench_dir / "BENCH_1.json",
        [
            BenchRecord(
                "headline_claims", "throughput_improvement_pct", 70.0,
                unit="%", direction=HIGHER,
            )
        ],
    )
    out_path = str(bench_dir / "REPORT.md")
    assert main(["bench", "report", "--dir", str(bench_dir),
                 "--out", out_path]) == 0
    text = open(out_path).read()
    assert "Paper-fidelity scorecard" in text
    assert "scorecard:" in capsys.readouterr().out


def test_cli_bench_record_runs_a_cell(bench_dir, capsys):
    assert main(["bench", "record", "--design", "MorLog-SLDE",
                 "--workload", "queue", "--transactions", "10",
                 "--threads", "1", "--dir", str(bench_dir)]) == 0
    out = capsys.readouterr().out
    assert "record(s) appended" in out
    _header, records = load_run(latest_run(str(bench_dir)))
    keys = {r.key for r in records}
    assert "cell/MorLog-SLDE/queue/throughput_tx_per_s" in keys
    snap = records[0].attachments["metrics_snapshot"]
    assert "memo" in snap  # codec-memo counters ride along


# ---------------------------------------------------------------------------
# metrics_snapshot memo key + duration_histogram edges
# ---------------------------------------------------------------------------


def test_metrics_snapshot_memo_key_canonical():
    from repro.experiments.runner import run_design_system
    from repro.trace import metrics_snapshot
    from repro.workloads.base import DatasetSize

    result, system = run_design_system(
        "MorLog-SLDE", "queue", DatasetSize.SMALL,
        n_transactions=10, n_threads=1,
    )
    memo = system.controller.nvm.memo_stats()
    assert memo, "default config memoizes, stats must be non-empty"
    for counters in memo.values():
        assert list(counters) == sorted(counters)
        assert {"entries", "evictions", "hits", "maxsize", "misses"} <= set(
            counters
        )
    snap = metrics_snapshot(result, memo=memo)
    assert list(snap["memo"]) == sorted(snap["memo"])
    plain = metrics_snapshot(result)
    assert "memo" not in plain  # opt-in only


def test_duration_histogram_bucket_edges():
    from repro.trace.metrics import duration_histogram

    us = 1000  # ns per us
    hist = duration_histogram([
        0.0,            # <1us bucket
        999.0,          # still <1us (floors to 0)
        1 * us,         # lower edge of 1-1us
        2 * us - 1,     # upper edge of 1-1us (1us after floor)
        2 * us,         # lower edge of 2-3us
        4 * us - 1,     # upper edge of 2-3us
        512 * us,       # lower edge of 512-1023us
        1024 * us - 1,  # upper edge of 512-1023us
        1024 * us,      # first value in the overflow bucket
        10_000_000 * us,  # deep overflow
    ])
    counts = hist.counts()
    assert counts["<1us"] == 2
    assert counts["1-1us"] == 2
    assert counts["2-3us"] == 2
    assert counts["512-1023us"] == 2
    assert counts[">=1024us"] == 2
    assert hist.total == 10
    assert sum(counts.values()) == hist.total
    # every power-of-two boundary lands in the bucket it opens
    for i in range(1, 10):
        edge_hist = duration_histogram([(1 << i) * us])
        label = "%d-%dus" % (1 << i, (1 << (i + 1)) - 1)
        assert edge_hist.counts()[label] == 1


def test_duration_histogram_rejects_negative_and_nan():
    from repro.trace.metrics import duration_histogram

    with pytest.raises(ValueError, match="negative"):
        duration_histogram([100.0, -1.0])
    with pytest.raises(ValueError, match="negative"):
        duration_histogram([-0.5])  # would floor to bucket -1 silently
    with pytest.raises(ValueError, match="NaN"):
        duration_histogram([float("nan")])
