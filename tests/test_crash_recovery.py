"""Crash-injection tests: atomic persistence end to end.

The core guarantee of the paper — *a group of data is persisted to NVMM in
an all-or-nothing manner in the presence of system failures* — is tested
by running real workload transactions, cutting power at an arbitrary store
(volatile state: caches, log buffers, L1 log states all vanish; only the
NVMM array survives), running recovery, and checking:

- **Atomicity**: every transaction's write set is entirely applied or
  entirely absent.
- **Durability** (default protocol): every transaction that committed
  before the crash is applied after recovery.
- **Commit-order persistence** (delay-persistence protocol): the applied
  transactions form a prefix of the commit order.

The oracle replays the recorded per-transaction write sets over the
pre-run NVMM image and compares word by word.
"""

import random

import pytest

from repro.core.designs import DESIGN_NAMES, make_system
from repro.core.system import CrashInjected
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config


class WriteSetTap:
    """Records each transaction's oldest-old and newest-new value per word."""

    def __init__(self):
        self.tx_writes = {}

    def on_tx_store(self, tid, txid, addr, old, new):
        writes = self.tx_writes.setdefault(txid, {})
        if addr not in writes:
            writes[addr] = [old, new]
        else:
            writes[addr][1] = new


def run_until_crash(design, workload_name, seed, crash_at, n_threads=2, max_tx=150):
    """Run transactions, crash at the ``crash_at``-th transactional store."""
    config = tiny_config()
    system = make_system(design, config)
    workload = make_workload(
        workload_name,
        WorkloadParams(initial_items=48, key_space=96, seed=seed),
    )
    workload.setup(system, n_threads)
    system.reset_measurement()

    tap = WriteSetTap()
    system.trace = tap
    counter = [0]

    def hook():
        counter[0] += 1
        if counter[0] >= crash_at:
            raise CrashInjected()

    system.crash_hook = hook
    committed = []
    try:
        done = 0
        while done < max_tx:
            core = min(range(n_threads), key=system.core_time_ns.__getitem__)
            body = workload.transaction(core)
            tx = system.begin_tx(core)
            try:
                body(system.contexts[core])
            except CrashInjected:
                system.current_tx[core] = None
                raise
            system.end_tx(core)
            committed.append(tx.txid)
            done += 1
    except CrashInjected:
        pass
    return system, tap, committed


def check_crash_consistency(design, workload_name, seed, crash_at):
    system, tap, committed = run_until_crash(design, workload_name, seed, crash_at)
    state = system.recover(verify_decode=True)
    applied = state.persisted_txids

    # Durability: with the default protocol, commit means persisted.
    if not system.config.logging.delay_persistence:
        missing = set(committed) - applied
        assert not missing, "%s lost committed txs %s" % (design, missing)

    # Commit-order prefix (both protocols; trivial for the default one).
    applied_flags = [txid in applied for txid in committed]
    if False in applied_flags:
        first_missing = applied_flags.index(False)
        assert True not in applied_flags[first_missing:], (
            "%s persisted transactions out of commit order" % design
        )

    # Atomicity + exact values: replay applied transactions in commit
    # order over the write sets and compare every touched word.
    expected = {}
    for txid in sorted(tap.tx_writes):
        writes = tap.tx_writes[txid]
        if txid in applied:
            for addr, (_old, new) in writes.items():
                expected[addr] = new
        else:
            for addr, (old, _new) in writes.items():
                if addr not in expected:
                    expected[addr] = old
    mismatches = {
        hex(addr): (hex(system.persistent_word(addr)), hex(value))
        for addr, value in expected.items()
        if system.persistent_word(addr) != value
    }
    assert not mismatches, "%s: %d corrupted words: %s" % (
        design,
        len(mismatches),
        dict(list(mismatches.items())[:5]),
    )
    return state


CRASH_POINTS = (3, 41, 260, 900)


@pytest.mark.parametrize("design", DESIGN_NAMES)
@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_hash_crash_consistency(design, crash_at):
    check_crash_consistency(design, "hash", seed=7, crash_at=crash_at)


@pytest.mark.parametrize("design", ["FWB-CRADE", "MorLog-SLDE", "MorLog-DP"])
@pytest.mark.parametrize("workload", ["btree", "queue", "echo"])
def test_other_workloads_crash_consistency(design, workload):
    check_crash_consistency(design, workload, seed=11, crash_at=333)


@pytest.mark.parametrize("design", ["MorLog-SLDE", "MorLog-DP"])
def test_randomized_crash_points(design):
    rng = random.Random(99)
    for _ in range(4):
        crash_at = rng.randrange(1, 1200)
        check_crash_consistency(design, "hash", seed=rng.randrange(1000), crash_at=crash_at)


def test_crash_during_setup_free_run_recovers_to_noop():
    """Crash before any transaction: recovery finds an empty log."""
    config = tiny_config()
    system = make_system("MorLog-SLDE", config)
    state = system.recover(verify_decode=True)
    assert not state.records
    assert not state.committed_txids


def test_recovery_is_idempotent():
    system, _tap, committed = run_until_crash("MorLog-SLDE", "hash", 5, 200)
    first = system.recover(verify_decode=False)
    snapshot = {
        r.meta.addr: system.persistent_word(r.meta.addr) for r in first.records
        if r.meta.type.name != "COMMIT"
    }
    second = system.recover(verify_decode=False)
    assert second.persisted_txids == first.persisted_txids
    for addr, value in snapshot.items():
        assert system.persistent_word(addr) == value


def test_unsafe_llc_discard_flag_reduces_log_traffic():
    """The paper-literal discard writes fewer redo entries (ablation)."""

    def run(unsafe):
        config = tiny_config(unsafe_llc_redo_discard=unsafe)
        system = make_system("MorLog-SLDE", config)
        workload = make_workload(
            "sps", WorkloadParams(initial_items=128, key_space=256, seed=3)
        )
        result = system.run(workload, 120, n_threads=2)
        return result.stats

    safe = run(False)
    unsafe = run(True)
    assert unsafe.get("redo_llc_discards", 0) >= safe.get("redo_llc_discards", 0)
    assert unsafe.get("log_writes", 0) <= safe.get("log_writes", 0)


@pytest.mark.parametrize("design", ["FWB-CRADE", "MorLog-SLDE", "MorLog-DP"])
def test_crash_consistency_under_log_pressure(design):
    """A log region small enough to wrap and trigger emergency
    truncation mid-run must still recover all-or-nothing."""
    config = tiny_config(log_region_bytes=16 * 1024)
    system = make_system(design, config)
    workload = make_workload(
        "hash", WorkloadParams(initial_items=48, key_space=96, seed=21)
    )
    workload.setup(system, 2)
    system.reset_measurement()
    tap = WriteSetTap()
    system.trace = tap
    counter = [0]

    def hook():
        counter[0] += 1
        if counter[0] >= 2500:
            raise CrashInjected()

    system.crash_hook = hook
    committed = []
    try:
        while len(committed) < 400:
            core = min(range(2), key=system.core_time_ns.__getitem__)
            body = workload.transaction(core)
            tx = system.begin_tx(core)
            try:
                body(system.contexts[core])
            except CrashInjected:
                system.current_tx[core] = None
                raise
            system.end_tx(core)
            committed.append(tx.txid)
    except CrashInjected:
        pass
    assert system.stats.get("wraps") + system.stats.get("log_overflow_scans") > 0, (
        "test premise: the log must have wrapped or overflowed"
    )
    state = system.recover(verify_decode=True)
    applied = state.persisted_txids
    # Truncated transactions' entries are gone from the log, but their
    # data persisted before truncation; surviving write sets must be
    # all-or-nothing.  Check every word of every recovered transaction.
    for record in state.records:
        if record.meta.type.name == "COMMIT":
            continue
        txid = record.meta.txid
        if txid not in tap.tx_writes:
            continue
        writes = tap.tx_writes[txid]
        if txid in applied and record.meta.addr in writes:
            # Later persisted txs may have overwritten the word; only
            # check words not touched by any later applied tx.
            later = [
                t for t in applied
                if t > txid and record.meta.addr in tap.tx_writes.get(t, {})
            ]
            if not later:
                assert (
                    system.persistent_word(record.meta.addr)
                    == writes[record.meta.addr][1]
                )
