"""Tracing is inert: observation must never perturb the simulation.

The trace bus only records — it must not change a single counter, clock,
cache decision, recovery outcome or fault-sweep verdict.  These tests run
the same seeded scenarios with tracing off and on and require bit-exact
equality, which is what lets the grid engine reuse cached (traceless)
results for traced requests.
"""

import pytest

import repro.faultinject.sweep as sweep_mod
from repro.core.designs import make_system
from repro.experiments.parallel import resolve_cell, run_cells
from repro.experiments.runner import ExperimentScale
from repro.faultinject.sweep import SweepOptions, run_sweep
from repro.trace import TraceConfig
from repro.workloads.base import DatasetSize, WorkloadParams, make_workload
from tests.conftest import tiny_config
from tests.test_crash_recovery import run_until_crash

DESIGNS = ("MorLog-SLDE", "MorLog-DP", "FWB-CRADE", "Undo-CRADE", "Redo-CRADE")


def run_once(design, workload_name, trace=None, n_tx=40, threads=2):
    system = make_system(design, tiny_config(), trace=trace)
    workload = make_workload(
        workload_name, WorkloadParams(initial_items=48, key_space=96, seed=11)
    )
    result = system.run(workload, n_tx, threads)
    return system, result


class TestRunInertness:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_traced_run_bit_identical(self, design):
        _plain_sys, plain = run_once(design, "hash")
        traced_sys, traced = run_once(
            design, "hash", trace=TraceConfig(enabled=True)
        )
        assert traced_sys.tracer is not None and len(traced_sys.tracer) > 0
        assert traced.stats == plain.stats
        assert traced.elapsed_ns == plain.elapsed_ns
        assert traced.transactions == plain.transactions

    def test_inert_even_when_ring_overflows(self):
        _plain_sys, plain = run_once("MorLog-SLDE", "sps")
        traced_sys, traced = run_once(
            "MorLog-SLDE", "sps", trace=TraceConfig(enabled=True, capacity=16)
        )
        assert traced_sys.tracer.dropped > 0
        assert traced.stats == plain.stats
        assert traced.elapsed_ns == plain.elapsed_ns

    def test_inert_with_category_filter(self):
        _plain_sys, plain = run_once("MorLog-SLDE", "queue")
        _traced_sys, traced = run_once(
            "MorLog-SLDE", "queue",
            trace=TraceConfig(enabled=True, categories=frozenset({"tx"})),
        )
        assert traced.stats == plain.stats
        assert traced.elapsed_ns == plain.elapsed_ns

    def test_persistent_image_identical(self):
        plain_sys, _plain = run_once("MorLog-SLDE", "hash")
        traced_sys, _traced = run_once(
            "MorLog-SLDE", "hash", trace=TraceConfig(enabled=True)
        )
        plain_words = {
            addr: s.logical
            for addr, s in plain_sys.controller.nvm.array.snapshot().items()
        }
        traced_words = {
            addr: s.logical
            for addr, s in traced_sys.controller.nvm.array.snapshot().items()
        }
        assert plain_words == traced_words


class TestRecoveryInertness:
    @pytest.mark.parametrize("crash_at", (7, 90))
    def test_crash_recovery_outcome_unchanged(self, crash_at, monkeypatch):
        plain_sys, _tap, committed_plain = run_until_crash(
            "MorLog-SLDE", "hash", seed=5, crash_at=crash_at
        )
        plain_state = plain_sys.recover(verify_decode=True)

        # Same scenario with every layer publishing to a trace bus.
        original = make_system

        def traced_make_system(design, config=None, trace=None):
            return original(design, config, trace=TraceConfig(enabled=True))

        import tests.test_crash_recovery as crash_mod

        monkeypatch.setattr(crash_mod, "make_system", traced_make_system)
        traced_sys, _tap, committed_traced = run_until_crash(
            "MorLog-SLDE", "hash", seed=5, crash_at=crash_at
        )
        traced_state = traced_sys.recover(verify_decode=True)

        assert traced_sys.tracer is not None
        assert committed_traced == committed_plain
        assert traced_state.committed_txids == plain_state.committed_txids
        assert traced_state.persisted_txids == plain_state.persisted_txids
        assert traced_state.redone_words == plain_state.redone_words
        assert traced_state.undone_words == plain_state.undone_words


class TestSweepInertness:
    def test_fault_sweep_verdicts_unchanged(self, monkeypatch):
        options = SweepOptions(workload="hash", transactions=4, threads=2,
                               seed=3, budget=12)
        plain = run_sweep("morlog", options)

        original = sweep_mod.make_system

        def traced_make_system(design, config=None, trace=None):
            return original(design, config, trace=TraceConfig(enabled=True))

        monkeypatch.setattr(sweep_mod, "make_system", traced_make_system)
        traced = run_sweep("morlog", options)

        assert traced.ok == plain.ok
        assert traced.total_events == plain.total_events
        assert traced.checked_events == plain.checked_events
        assert traced.per_point == plain.per_point


class TestGridInertness:
    def test_trace_dir_cell_matches_traceless(self, tmp_path):
        scale = ExperimentScale(micro_transactions=12, micro_threads=2)
        spec = resolve_cell("MorLog-SLDE", "hash", DatasetSize.SMALL, scale)
        plain, _report = run_cells([spec], jobs=1)
        traced, report = run_cells(
            [spec], jobs=1, trace_dir=str(tmp_path / "traces")
        )
        assert plain[0].stats == traced[0].stats
        assert plain[0].elapsed_ns == traced[0].elapsed_ns
        path = report.cells[0].trace_path
        assert path is not None
        import json

        from repro.trace import validate_chrome_trace

        assert validate_chrome_trace(json.load(open(path))) > 0
