"""Trace capture / replay tests."""

import pytest

from repro.analysis.trace_io import (
    RecordingWorkload,
    TraceOp,
    TraceWorkload,
    load_trace,
    save_trace,
)
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import make_tiny_system


class TestTraceFormat:
    def test_roundtrip_json(self):
        op = TraceOp("store", 1, 0x100, 42)
        assert TraceOp.from_json(op.to_json()) == op

    def test_load_without_value(self):
        op = TraceOp.from_json('{"op": "load", "tid": 0, "addr": 8}')
        assert op.value is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            TraceOp.from_json('{"op": "prefetch", "tid": 0}')

    def test_file_roundtrip(self, tmp_path):
        ops = [
            TraceOp("begin", 0),
            TraceOp("store", 0, 0x100, 1),
            TraceOp("commit", 0),
        ]
        path = str(tmp_path / "trace.jsonl")
        assert save_trace(path, ops) == 3
        assert load_trace(path) == ops


class TestRecordReplay:
    def _record(self):
        system = make_tiny_system()
        inner = make_workload(
            "queue", WorkloadParams(initial_items=8, key_space=32, seed=3)
        )
        recorder = RecordingWorkload(inner)
        system.run(recorder, 20, n_threads=2)
        return recorder.ops

    def test_recording_captures_transactions(self):
        ops = self._record()
        begins = [op for op in ops if op.op == "begin"]
        commits = [op for op in ops if op.op == "commit"]
        stores = [op for op in ops if op.op == "store"]
        assert len(begins) == len(commits) == 20
        assert stores

    def test_replay_produces_same_store_stream(self):
        # Single-threaded capture gives a deterministic dispatch count per
        # stream, so the replayed store stream must match exactly.
        system = make_tiny_system()
        inner = make_workload(
            "queue", WorkloadParams(initial_items=8, key_space=32, seed=3)
        )
        recorder = RecordingWorkload(inner)
        system.run(recorder, 20, n_threads=1)
        ops = recorder.ops

        replay = TraceWorkload(ops)
        system2 = make_tiny_system()
        captured = []

        class Tap:
            def on_tx_store(self, tid, txid, addr, old, new):
                captured.append((addr, new))

        system2.trace = Tap()
        system2.run(replay, replay.total_transactions(), n_threads=1)
        original = [(op.addr, op.value) for op in ops if op.op == "store"]
        assert captured == original

    def test_replay_runs_on_any_design(self):
        ops = self._record()
        for design in ("FWB-CRADE", "MorLog-DP"):
            system = make_tiny_system(design)
            replay = TraceWorkload(ops)
            result = system.run(replay, 10, n_threads=2)
            assert result.transactions == 10
            system.recover(verify_decode=True)

    def test_replay_wraps_when_exhausted(self):
        ops = [
            TraceOp("begin", 0),
            TraceOp("store", 0, 0x1_0000_0000, 5),
            TraceOp("commit", 0),
        ]
        replay = TraceWorkload(ops)
        system = make_tiny_system()
        result = system.run(replay, 5, n_threads=1)
        assert result.transactions == 5

    def test_install_map_seeds_memory(self):
        replay = TraceWorkload([], install={0x1_0000_0000: 99})
        system = make_tiny_system()
        replay.setup(system, 1)
        assert system.persistent_word(0x1_0000_0000) == 99
