"""Correctness of the WHISPER-extra workloads: ctree, vacation, redis,
memcached."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.heap.allocator import PersistentHeap
from repro.workloads.ctree import PersistentCritBitTree
from repro.workloads.memcached import PersistentLruCache
from repro.workloads.redis import RedisStore
from repro.workloads.vacation import RESOURCE_TYPES, VacationSystem
from tests.test_workload_trees import DictContext


def fresh(cls, *args, **kwargs):
    heap = PersistentHeap(0x1000, 1 << 24)
    ctx = DictContext()
    obj = cls(heap, *args, **kwargs)
    if hasattr(obj, "create"):
        obj.create(ctx)
    return obj, ctx, heap


class TestCritBitTree:
    def test_insert_lookup(self):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        for key in (5, 3, 9, 1024, 0xFFFF):
            tree.insert(ctx, key, [key] * 6)
        for key in (5, 3, 9, 1024, 0xFFFF):
            assert tree.lookup(ctx, key) is not None
        assert tree.lookup(ctx, 4) is None

    def test_update_existing(self):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        a = tree.insert(ctx, 5, [1] * 6)
        b = tree.insert(ctx, 5, [2] * 6)
        assert a == b

    def test_delete(self):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        for key in (1, 2, 3):
            tree.insert(ctx, key, [0] * 6)
        assert tree.delete(ctx, 2)
        assert tree.lookup(ctx, 2) is None
        assert tree.lookup(ctx, 1) and tree.lookup(ctx, 3)
        assert not tree.delete(ctx, 2)

    def test_delete_root_leaf(self):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        tree.insert(ctx, 7, [0] * 6)
        assert tree.delete(ctx, 7)
        assert list(tree.items(ctx)) == []

    def test_items_cover_all_keys(self):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        rng = random.Random(1)
        keys = {rng.randrange(1, 1 << 48) for _ in range(300)}
        for key in keys:
            tree.insert(ctx, key, [0] * 6)
        assert set(tree.items(ctx)) == keys

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 64)), max_size=80))
    def test_matches_set_oracle(self, ops):
        tree, ctx, _h = fresh(PersistentCritBitTree, 8)
        oracle = set()
        for insert, key in ops:
            if insert:
                tree.insert(ctx, key, [0] * 6)
                oracle.add(key)
            else:
                assert tree.delete(ctx, key) == (key in oracle)
                oracle.discard(key)
        assert set(tree.items(ctx)) == oracle


class TestVacation:
    def _system(self):
        heap = PersistentHeap(0x1000, 1 << 24)
        ctx = DictContext()
        system = VacationSystem(heap, 8, n_resources=16, n_customers=8)
        system.populate(ctx, random.Random(0))
        return system, ctx

    def test_reservation_conservation(self):
        """Sum of resource `used` equals sum of customer reservations."""
        system, ctx = self._system()
        rng = random.Random(1)
        for _ in range(40):
            if rng.random() < 0.7:
                system.make_reservation(ctx, rng, [0] * 6)
            else:
                system.delete_customer(ctx, rng)
            assert system.total_used(ctx) == system.total_reservations(ctx)

    def test_used_never_exceeds_total(self):
        system, ctx = self._system()
        rng = random.Random(2)
        for _ in range(200):
            system.make_reservation(ctx, rng, [0] * 6)
        for table in range(RESOURCE_TYPES):
            for i in range(system.n_resources):
                rec = system.resource_rec(table, i)
                assert ctx.load(rec + 16) <= ctx.load(rec + 8)

    def test_delete_customer_releases_all(self):
        system, ctx = self._system()
        rng = random.Random(3)
        for _ in range(20):
            system.make_reservation(ctx, rng, [0] * 6)
        for c in range(system.n_customers):
            # Force-delete every customer via a rigged rng.
            class Fixed:
                def randrange(self, n):
                    return c % n

            system.delete_customer(ctx, Fixed())
        assert system.total_used(ctx) == 0
        assert system.total_reservations(ctx) == 0


class TestRedis:
    def test_set_get(self):
        store, ctx, _h = fresh(RedisStore, 8)
        store.set(ctx, 5, [1, 2, 3, 4, 5, 6])
        assert store.get(ctx, 5) == [1, 2, 3, 4, 5, 6]
        assert store.get(ctx, 9) is None

    def test_incr_semantics(self):
        store, ctx, _h = fresh(RedisStore, 8)
        assert store.incr(ctx, 7) == 1
        assert store.incr(ctx, 7) == 2
        assert store.incr(ctx, 7) == 3
        assert store.get(ctx, 7)[0] == 3

    def test_list_push_pop_fifo(self):
        store, ctx, _h = fresh(RedisStore, 8)
        for i in range(3):
            store.lpush(ctx, 0, [i] * 7)
        assert store.rpop(ctx, 0)[0] == 0
        assert store.rpop(ctx, 0)[0] == 1

    def test_rpop_empty(self):
        store, ctx, _h = fresh(RedisStore, 8)
        assert store.rpop(ctx, 3) is None


class TestMemcached:
    def test_set_get(self):
        cache, ctx, _h = fresh(PersistentLruCache, 8, 4)
        cache.set(ctx, 5, [1] * 4)
        assert cache.get(ctx, 5) == [1] * 4
        assert cache.get(ctx, 6) is None

    def test_capacity_evicts_lru(self):
        cache, ctx, _h = fresh(PersistentLruCache, 8, 3)
        for key in (1, 2, 3):
            cache.set(ctx, key, [key] * 4)
        cache.get(ctx, 1)           # promote 1; LRU is now 2
        cache.set(ctx, 4, [4] * 4)  # evicts 2
        assert cache.get(ctx, 2) is None
        assert cache.get(ctx, 1) is not None
        assert cache.count(ctx) == 3

    def test_get_promotes(self):
        cache, ctx, _h = fresh(PersistentLruCache, 8, 4)
        for key in (1, 2, 3):
            cache.set(ctx, key, [0] * 4)
        cache.get(ctx, 1)
        assert next(iter(cache.keys_lru_order(ctx))) == 1

    def test_update_existing_promotes_and_keeps_count(self):
        cache, ctx, _h = fresh(PersistentLruCache, 8, 4)
        cache.set(ctx, 1, [1] * 4)
        cache.set(ctx, 2, [2] * 4)
        cache.set(ctx, 1, [9] * 4)
        assert cache.count(ctx) == 2
        assert cache.get(ctx, 1) == [9] * 4

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 12)), max_size=60))
    def test_matches_lru_oracle(self, ops):
        from collections import OrderedDict

        capacity = 4
        cache, ctx, _h = fresh(PersistentLruCache, 8, capacity)
        oracle: "OrderedDict[int, list]" = OrderedDict()
        for is_get, key in ops:
            if is_get:
                got = cache.get(ctx, key)
                if key in oracle:
                    oracle.move_to_end(key, last=False)
                    assert got == oracle[key]
                else:
                    assert got is None
            else:
                values = [key] * 4
                cache.set(ctx, key, values)
                if key in oracle:
                    oracle[key] = values
                    oracle.move_to_end(key, last=False)
                else:
                    if len(oracle) >= capacity:
                        oracle.popitem(last=True)
                    oracle[key] = values
                    oracle.move_to_end(key, last=False)
        assert list(cache.keys_lru_order(ctx)) == list(oracle.keys())


class TestWorkloadsRunOnSystem:
    @pytest.mark.parametrize("name", ["ctree", "vacation", "redis", "memcached"])
    def test_runs_and_recovers(self, name):
        from repro.workloads.base import WorkloadParams, make_workload
        from tests.conftest import make_tiny_system

        system = make_tiny_system("MorLog-SLDE")
        workload = make_workload(
            name, WorkloadParams(initial_items=24, key_space=64, seed=8)
        )
        result = system.run(workload, 40, n_threads=2)
        assert result.transactions == 40
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 40
