"""Start-Gap wear-leveling tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.nvm.wear_leveling import LINE_BYTES, StartGapRemapper


class TestMapping:
    def test_initial_mapping_identity(self):
        remapper = StartGapRemapper(0, 8)
        for line in range(8):
            assert remapper.physical_line(line) == line

    def test_bijective_at_all_times(self):
        remapper = StartGapRemapper(0, 8, gap_interval=1)
        for _ in range(100):
            slots = [remapper.physical_line(line) for line in range(8)]
            assert len(set(slots)) == 8
            assert remapper.gap not in slots
            remapper.on_write()

    def test_out_of_range_rejected(self):
        remapper = StartGapRemapper(0, 8)
        with pytest.raises(ValueError):
            remapper.physical_line(8)

    def test_remap_preserves_offset_within_line(self):
        remapper = StartGapRemapper(0x1000, 8)
        addr = 0x1000 + 3 * LINE_BYTES + 24
        assert remapper.remap(addr) % LINE_BYTES == 24

    def test_too_small_region_rejected(self):
        with pytest.raises(ValueError):
            StartGapRemapper(0, 1)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            StartGapRemapper(1, 8)


class TestGapMovement:
    def test_move_due_every_interval(self):
        remapper = StartGapRemapper(0, 8, gap_interval=4)
        moves = [remapper.on_write() for _ in range(12)]
        assert [m is not None for m in moves] == [False, False, False, True] * 3

    def test_full_rotation_advances_start(self):
        remapper = StartGapRemapper(0, 4, gap_interval=1)
        for _ in range(5):  # gap walks 4 -> 0, then wraps
            remapper.on_write()
        assert remapper.start == 1
        assert remapper.gap == 4
        assert remapper.stats.get("rotations") == 1

    def test_data_consistency_through_moves(self):
        """Applying the reported copies keeps logical contents stable."""
        n = 8
        remapper = StartGapRemapper(0, n, gap_interval=1)
        physical = {}  # physical line index -> value
        logical_values = {}
        for line in range(n):
            value = 1000 + line
            physical[remapper.physical_line(line)] = value
            logical_values[line] = value
        rng = random.Random(0)
        for step in range(200):
            move = remapper.on_write()
            if move is not None:
                src, dst = move
                physical[dst // LINE_BYTES] = physical.get(src // LINE_BYTES)
            # Occasionally overwrite a logical line through the mapping.
            if step % 7 == 0:
                line = rng.randrange(n)
                value = rng.getrandbits(32)
                physical[remapper.physical_line(line)] = value
                logical_values[line] = value
            for line in range(n):
                assert physical[remapper.physical_line(line)] == logical_values[line]


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 20), st.integers(1, 5), st.integers(0, 300))
def test_bijectivity_property(n_lines, interval, writes):
    remapper = StartGapRemapper(0, n_lines, gap_interval=interval)
    for _ in range(writes):
        remapper.on_write()
    slots = [remapper.physical_line(line) for line in range(n_lines)]
    assert len(set(slots)) == n_lines
    assert all(0 <= s <= n_lines for s in slots)
    assert remapper.gap not in slots


def test_leveling_flattens_hot_spot_wear():
    """A pathological single-line hot spot wears evenly under Start-Gap."""
    n = 16
    remapper = StartGapRemapper(0, n, gap_interval=8)
    wear = [0] * (n + 1)
    for _ in range(20_000):
        # Always write logical line 0 (the hot spot).
        wear[remapper.physical_line(0)] += 1
        move = remapper.on_write()
        if move is not None:
            wear[move[1] // LINE_BYTES] += 1  # the copy wears the target
    unleveled_max = 20_000  # without leveling, one slot takes everything
    assert max(wear) < unleveled_max / 4
