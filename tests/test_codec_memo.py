"""Codec memoization is result-inert: memo on and off are bit-identical.

The memo layer (:mod:`repro.encoding.memo`) may only change simulation
wall-clock, never a single encoded bit, stat, trace event, cache key, or
recovery outcome.  These tests pin that guarantee at every level:
property tests over the codecs, hook-replay equality, whole-system runs,
grid cache keys, crash recovery, and the fault sweep.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

import repro.faultinject.sweep as sweep_mod
from repro.common.bitops import dirty_byte_mask
from repro.core.designs import make_system
from repro.encoding import CradeCodec, LogWriteContext, LruMemo, MemoConfig, SldeCodec
from repro.encoding.memo import DEFAULT_MEMO_ENTRIES
from repro.experiments.cache import cell_key_fields
from repro.experiments.parallel import resolve_cell
from repro.experiments.runner import ExperimentScale
from repro.faultinject.sweep import SweepOptions, run_sweep
from repro.workloads.base import DatasetSize, WorkloadParams, make_workload
from tests.conftest import tiny_config
from tests.test_crash_recovery import run_until_crash

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
masks = st.integers(min_value=0, max_value=0xFF)

#: A deliberately tiny memo so eviction paths are exercised too.
SMALL_MEMO = MemoConfig(enabled=True, entries=64)

#: The four logger families of the paper's evaluation.
DESIGNS = ("MorLog-SLDE", "FWB-CRADE", "Undo-CRADE", "Redo-CRADE")


def memo_off(config):
    return replace(config, encoding=replace(config.encoding, codec_memo=False))


class TestLruMemo:
    def test_bounded_eviction_is_lru(self):
        memo = LruMemo(maxsize=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes "a"
        memo.put("c", 3)  # evicts "b", the least recently used
        assert memo.get("b") is None
        assert memo.get("a") == 1 and memo.get("c") == 3
        assert len(memo) == 2

    def test_stats_count_hits_and_misses(self):
        memo = LruMemo(maxsize=4)
        assert memo.get("k") is None
        memo.put("k", "v")
        assert memo.get("k") == "v"
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["maxsize"] == 4

    def test_none_value_rejected(self):
        with pytest.raises(ValueError):
            LruMemo(4).put("k", None)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            LruMemo(0)

    def test_config_off_makes_no_memo(self):
        assert MemoConfig(enabled=False).make_memo() is None
        memo = MemoConfig().make_memo()
        assert memo is not None and memo.maxsize == DEFAULT_MEMO_ENTRIES


class TestCodecEquivalence:
    """Memoized and unmemoized codecs return equal EncodedWords."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=12))
    def test_slde_encode_log_equal_and_roundtrips(self, pairs):
        plain = SldeCodec()
        memoized = SldeCodec(memo=SMALL_MEMO)
        for old, new in pairs:
            ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
            expected = plain.encode_log(new, ctx)
            # Encode twice: the second call must be a cache hit with the
            # same result (EncodedWord equality covers method, payload,
            # bit counts, policy, dirty mask and silence).
            for _ in range(2):
                got = memoized.encode_log(new, ctx)
                assert got == expected
                assert got.total_bits == expected.total_bits
                if not got.silent:
                    assert memoized.decode(got, old) == new

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(words, words, st.booleans()), min_size=1, max_size=12))
    def test_slde_respects_allow_dldc_in_keys(self, triples):
        plain = SldeCodec()
        memoized = SldeCodec(memo=SMALL_MEMO)
        for old, new, allow in triples:
            ctx = LogWriteContext(
                old_word=old,
                dirty_mask=dirty_byte_mask(old, new),
                allow_dldc=allow,
            )
            assert memoized.encode_log(new, ctx) == plain.encode_log(new, ctx)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(words, min_size=1, max_size=12))
    def test_crade_equal_and_roundtrips(self, values):
        plain = CradeCodec()
        memoized = CradeCodec(memo=SMALL_MEMO)
        for w in values:
            expected = plain.encode(w)
            for _ in range(2):
                got = memoized.encode(w)
                assert got == expected
                assert memoized.decode(got) == w

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=10))
    def test_pair_encoding_equal(self, pairs):
        plain = SldeCodec()
        memoized = SldeCodec(memo=SMALL_MEMO)
        for undo, redo in pairs:
            mask = dirty_byte_mask(undo, redo)
            expected = plain.encode_undo_redo_pair(undo, redo, mask)
            for _ in range(2):
                assert memoized.encode_undo_redo_pair(undo, redo, mask) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.lists(words, min_size=8, max_size=8), st.lists(words, min_size=8, max_size=8))
    def test_encode_line_matches_wordwise(self, new_words, old_words):
        memoized = CradeCodec(memo=SMALL_MEMO)
        line = memoized.encode_line(new_words, old_words)
        assert line == [memoized.encode(w) for w in new_words]

    def test_memo_hits_actually_happen(self):
        memoized = SldeCodec(memo=SMALL_MEMO)
        ctx = LogWriteContext(old_word=0x11, dirty_mask=0x01)
        memoized.encode_log(0x19, ctx)
        memoized.encode_log(0x19, ctx)
        assert memoized._log_memo.hits >= 1


class TestHookReplay:
    """The decision hook fires identically on cache hits."""

    def test_single_word_hook_replayed(self):
        codec = SldeCodec(memo=SMALL_MEMO)
        calls = []
        codec.decision_hook = lambda *args: calls.append(args)
        ctx = LogWriteContext(old_word=0x11, dirty_mask=0x01)
        codec.encode_log(0x19, ctx)
        codec.encode_log(0x19, ctx)  # cache hit
        assert len(calls) == 2
        assert calls[0] == calls[1]

    def test_pair_hooks_replayed_in_order(self):
        codec = SldeCodec(memo=SMALL_MEMO)
        calls = []
        codec.decision_hook = lambda *args: calls.append(args)
        undo, redo = 0x0123_4567_89AB_CDEF, 0x0123_4567_89AB_CDEE
        codec.encode_undo_redo_pair(undo, redo, 0x01)
        codec.encode_undo_redo_pair(undo, redo, 0x01)  # cache hit
        assert len(calls) == 4
        assert calls[:2] == calls[2:]

    def test_hook_stream_identical_memo_on_off(self):
        plain = SldeCodec()
        memoized = SldeCodec(memo=SMALL_MEMO)
        streams = ([], [])
        plain.decision_hook = lambda *args: streams[0].append(args)
        memoized.decision_hook = lambda *args: streams[1].append(args)
        inputs = [(0x11, 0x19), (0x11, 0x19), (0, 0), (2**63, 1)]
        for old, new in inputs:
            ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
            plain.encode_log(new, ctx)
            memoized.encode_log(new, ctx)
        assert streams[0] == streams[1]


def run_once(design, workload_name, config, n_tx=40, threads=2):
    system = make_system(design, config)
    workload = make_workload(
        workload_name, WorkloadParams(initial_items=48, key_space=96, seed=11)
    )
    result = system.run(workload, n_tx, threads)
    return system, result


class TestSystemEquivalence:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_run_bit_identical_memo_on_off(self, design):
        on_sys, on = run_once(design, "hash", tiny_config())
        off_sys, off = run_once(design, "hash", memo_off(tiny_config()))
        assert on.stats == off.stats
        assert on.elapsed_ns == off.elapsed_ns
        assert on.transactions == off.transactions
        on_words = {
            addr: s.logical
            for addr, s in on_sys.controller.nvm.array.snapshot().items()
        }
        off_words = {
            addr: s.logical
            for addr, s in off_sys.controller.nvm.array.snapshot().items()
        }
        assert on_words == off_words

    def test_crash_recovery_outcome_unchanged(self, monkeypatch):
        import tests.test_crash_recovery as crash_mod

        on_sys, _tap, committed_on = run_until_crash(
            "MorLog-SLDE", "hash", seed=5, crash_at=40
        )
        on_state = on_sys.recover(verify_decode=True)

        original = make_system

        def memo_off_make_system(design, config=None, trace=None):
            return original(design, memo_off(config), trace=trace)

        monkeypatch.setattr(crash_mod, "make_system", memo_off_make_system)
        off_sys, _tap, committed_off = run_until_crash(
            "MorLog-SLDE", "hash", seed=5, crash_at=40
        )
        off_state = off_sys.recover(verify_decode=True)

        assert committed_on == committed_off
        assert on_state.committed_txids == off_state.committed_txids
        assert on_state.persisted_txids == off_state.persisted_txids
        assert on_state.redone_words == off_state.redone_words
        assert on_state.undone_words == off_state.undone_words

    def test_fault_sweep_verdicts_unchanged(self, monkeypatch):
        options = SweepOptions(workload="hash", transactions=4, threads=2,
                               seed=3, budget=12)
        on = run_sweep("morlog", options)

        original = sweep_mod.make_system

        def memo_off_make_system(design, config=None, trace=None):
            return original(design, memo_off(config), trace=trace)

        monkeypatch.setattr(sweep_mod, "make_system", memo_off_make_system)
        off = run_sweep("morlog", options)

        assert on.ok == off.ok
        assert on.total_events == off.total_events
        assert on.checked_events == off.checked_events
        assert on.per_point == off.per_point


class TestGridKeyStability:
    """Memo knobs are result-inert, so grid cache keys ignore them."""

    def test_cell_key_identical_memo_on_off(self):
        scale = ExperimentScale(micro_transactions=12, micro_threads=2)
        cfg = tiny_config()
        spec_on = resolve_cell(
            "MorLog-SLDE", "hash", DatasetSize.SMALL, scale, config=cfg
        )
        spec_off = resolve_cell(
            "MorLog-SLDE", "hash", DatasetSize.SMALL, scale, config=memo_off(cfg)
        )
        spec_big = resolve_cell(
            "MorLog-SLDE", "hash", DatasetSize.SMALL, scale,
            config=replace(
                cfg, encoding=replace(cfg.encoding, codec_memo_entries=123)
            ),
        )
        assert spec_on.key() == spec_off.key() == spec_big.key()

    def test_key_fields_strip_only_memo_knobs(self):
        spec = resolve_cell("MorLog-SLDE", "hash", DatasetSize.SMALL,
                            ExperimentScale(), config=tiny_config())
        fields = spec.key_fields()
        encoding = fields["config"]["encoding"]
        assert "codec_memo" not in encoding
        assert "codec_memo_entries" not in encoding
        # Result-bearing fields survive.
        assert encoding["log_codec"] == "slde"
        # The spec's own config_dict keeps full fidelity for workers.
        assert "codec_memo" in spec.config_dict["encoding"]

    def test_key_fields_tolerate_pre_knob_configs(self):
        # Config dicts from the era before the memo knobs pass through
        # the stripping untouched (the key still differs across
        # CACHE_VERSION bumps, by design).
        legacy = {"encoding": {"log_codec": "slde"}}
        fields = cell_key_fields(
            "d", "w", "SMALL", legacy, {}, 1, 1, 1.0
        )
        assert fields["config"] == legacy
