"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_designs_listed(capsys):
    assert main(["designs"]) == 0
    out = capsys.readouterr().out
    assert "FWB-CRADE" in out and "MorLog-DP" in out


def test_run_command(capsys):
    assert main(["run", "--workload", "queue", "--transactions", "20",
                 "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "log_registers_bytes" in out


def test_record_and_replay_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "trace.mltr")
    assert main(["record", path, "--workload", "queue",
                 "--transactions", "10", "--threads", "1"]) == 0
    out = capsys.readouterr().out
    assert "trace digest:" in out
    assert main(["replay", path, "--design", "FWB-CRADE"]) == 0
    out = capsys.readouterr().out
    assert "replayed transactions" in out
    # Replay without the codec prewarm is result-identical by contract;
    # the flag must at least parse and run.
    assert main(["replay", path, "--design", "MorLog-SLDE",
                 "--no-prewarm"]) == 0
    assert "replayed transactions" in capsys.readouterr().out


def test_grid_command_cold_then_warm(tmp_path, capsys):
    argv = ["grid", "--designs", "FWB-CRADE,MorLog-SLDE",
            "--workloads", "queue", "--transactions", "12", "--threads", "1",
            "--jobs", "2", "--cache-dir", str(tmp_path), "--timing"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "grid throughput" in cold
    assert "per-cell timing" in cold
    assert "2 simulated" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 simulated, 2 cache hits" in warm
    assert "hits=2 misses=0" in warm


def test_grid_interrupt_then_resume_cli(tmp_path, capsys):
    """Kill-and-resume through the CLI: exactly-once across invocations."""
    manifest = str(tmp_path / "sweep.json")
    base = ["--transactions", "12", "--threads", "1",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
    assert main(
        ["grid", "--designs", "FWB-CRADE,MorLog-SLDE",
         "--workloads", "hash,queue", "--manifest", manifest,
         "--interrupt-after", "2"] + base
    ) == 130
    out = capsys.readouterr().out
    assert "resume with: repro grid --resume" in out
    assert main(["grid", "--resume", manifest] + base) == 0
    resumed = capsys.readouterr().out
    assert "2 simulated, 2 cache hits" in resumed
    assert "[resumed]" in resumed
    # A second resume is a full warm run: nothing left to simulate.
    assert main(["grid", "--resume", manifest] + base) == 0
    assert "0 simulated, 4 cache hits" in capsys.readouterr().out


def test_grid_figures_dir_emits_valid_spec(tmp_path, capsys):
    import json

    from repro.experiments.vega import validate_vega_lite

    figures_dir = str(tmp_path / "figs")
    assert main(
        ["grid", "--designs", "FWB-CRADE", "--workloads", "queue",
         "--transactions", "10", "--threads", "1", "--jobs", "1",
         "--no-cache", "--figures-dir", figures_dir]
    ) == 0
    with open(figures_dir + "/grid_throughput.vl.json") as handle:
        assert validate_vega_lite(json.load(handle)) == 1


def test_grid_command_no_cache(capsys):
    assert main(["grid", "--designs", "FWB-CRADE", "--workloads", "queue",
                 "--transactions", "10", "--threads", "1", "--jobs", "1",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "1 simulated, 0 cache hits" in out
    assert "hits=" not in out


def test_grid_command_rejects_unknown_names(capsys):
    assert main(["grid", "--designs", "NoSuchDesign", "--no-cache"]) == 2
    assert main(["grid", "--workloads", "nosuchworkload", "--no-cache"]) == 2


def test_traffic_command_cold_then_warm(tmp_path, capsys):
    argv = ["traffic", "--designs", "MorLog-SLDE",
            "--loads", "100000,8000000", "--arrivals", "40",
            "--mix", "hash:1.0", "--threads", "2", "--queue-capacity", "4",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--bench", "--bench-dir", str(tmp_path / "bench"),
            "--out", str(tmp_path / "slo.txt")]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "offered/s" in cold and "overload knee" in cold
    assert "record(s) appended" in cold
    slo = (tmp_path / "slo.txt").read_text()
    assert "MorLog-SLDE" in slo and "p999(us)" in slo
    bench_files = list((tmp_path / "bench").glob("*.json"))
    assert bench_files and "traffic/MorLog-SLDE" in bench_files[0].read_text()
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "hits=2 misses=0" in warm


def test_traffic_crash_composition(capsys):
    assert main(["traffic", "--designs", "MorLog-SLDE",
                 "--loads", "2000000", "--arrivals", "40",
                 "--mix", "hash:1.0", "--threads", "2",
                 "--jobs", "1", "--no-cache",
                 "--crash-fraction", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "recovery vs log occupancy" in out
    assert "est recovery (us)" in out


def test_traffic_rejects_bad_arguments(capsys):
    assert main(["traffic", "--designs", "NoSuchDesign", "--no-cache"]) == 2
    assert main(["traffic", "--mix", "hash:-1", "--no-cache"]) == 2
    assert main(["traffic", "--loads", "", "--no-cache"]) == 2


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
