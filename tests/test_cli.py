"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_designs_listed(capsys):
    assert main(["designs"]) == 0
    out = capsys.readouterr().out
    assert "FWB-CRADE" in out and "MorLog-DP" in out


def test_run_command(capsys):
    assert main(["run", "--workload", "queue", "--transactions", "20",
                 "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "log_registers_bytes" in out


def test_record_and_replay_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    assert main(["record", path, "--workload", "queue",
                 "--transactions", "10", "--threads", "1"]) == 0
    assert main(["replay", path, "--design", "FWB-CRADE",
                 "--threads", "1"]) == 0
    out = capsys.readouterr().out
    assert "replayed transactions" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
