"""End-to-end integration: every workload on every logger family.

These check that architectural values (reads through the cache hierarchy)
stay correct while the logging machinery runs underneath, and that the
memory controller routing behaves.
"""

import pytest

from repro.common.stats import StatGroup
from repro.memory.controller import MemoryController
from repro.workloads.base import MICRO_WORKLOADS, MACRO_WORKLOADS, WorkloadParams, make_workload
from tests.conftest import make_tiny_system, tiny_config

SMALL_PARAMS = WorkloadParams(initial_items=24, key_space=64, seed=9)


class TestMemoryController:
    def test_routing_boundary(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        assert controller.is_persistent(config.nvmm_base)
        assert not controller.is_persistent(config.nvmm_base - 64)

    def test_dram_line_roundtrip(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        controller.write_line(0x1000, list(range(8)), 0.0)
        words, _t = controller.read_line(0x1000, 0.0)
        assert list(words) == list(range(8))

    def test_nvmm_write_returns_accept_time(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        t = controller.write_line(config.nvmm_base, [1] * 8, 5.0)
        assert t >= 5.0

    def test_dram_word_interface(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        controller.dram.write_word(0x2000, 7)
        assert controller.dram.read_word(0x2000) == 7


@pytest.mark.parametrize("workload_name", MICRO_WORKLOADS + MACRO_WORKLOADS)
@pytest.mark.parametrize("design", ["FWB-CRADE", "MorLog-SLDE"])
def test_workload_runs_on_design(workload_name, design):
    system = make_tiny_system(design)
    workload = make_workload(workload_name, SMALL_PARAMS)
    result = system.run(workload, 40, n_threads=2)
    assert result.transactions == 40
    assert result.elapsed_ns > 0


class TestArchitecturalCorrectness:
    """Values read back through the system match an oracle."""

    def test_hash_contents_match_oracle(self):
        system = make_tiny_system("MorLog-SLDE")
        workload = make_workload("hash", SMALL_PARAMS)
        system.run(workload, 80, n_threads=2)
        # Re-read the structure through the untimed setup interface (which
        # sees the persistence domain) after a full drain.
        from repro.workloads.base import SetupContext

        ctx = SetupContext(system)
        for tid in range(2):
            table = workload.maps[tid]
            seen = dict(table.items(ctx))
            for key in seen:
                assert table.lookup(ctx, key) is not None

    def test_btree_stays_sorted_under_logging(self):
        system = make_tiny_system("MorLog-DP")
        workload = make_workload("btree", SMALL_PARAMS)
        system.run(workload, 80, n_threads=2)
        from repro.workloads.base import SetupContext

        ctx = SetupContext(system)
        for tid in range(2):
            items = list(workload.trees[tid].items(ctx))
            assert items == sorted(items)

    def test_queue_length_matches_node_count(self):
        system = make_tiny_system("FWB-SLDE")
        workload = make_workload("queue", SMALL_PARAMS)
        system.run(workload, 60, n_threads=2)
        from repro.workloads.base import SetupContext

        ctx = SetupContext(system)
        for tid in range(2):
            queue = workload.queues[tid]
            assert queue.length(ctx) == len(list(queue.items(ctx)))

    def test_persistent_state_matches_coherent_after_drain(self):
        system = make_tiny_system("MorLog-SLDE")
        workload = make_workload("sps", SMALL_PARAMS)
        system.run(workload, 40, n_threads=2)
        array = workload.arrays[0]
        for i in range(0, array.n_entries, 7):
            addr = array.entry_addr(i)
            assert system.persistent_word(addr) == system.coherent_word(addr)


class TestLargeDataset:
    def test_large_items_run(self):
        from repro.workloads.base import DatasetSize

        system = make_tiny_system("MorLog-SLDE")
        workload = make_workload(
            "queue",
            WorkloadParams(
                dataset=DatasetSize.LARGE, initial_items=16, key_space=64
            ),
        )
        result = system.run(workload, 10, n_threads=2)
        assert result.transactions == 10
        # 4 KB items mean every transaction moves many lines.
        assert result.nvmm_writes > 20
