"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.common.config import (
    CacheConfig,
    CacheLevelConfig,
    CoreConfig,
    LoggingConfig,
    NVMConfig,
    SystemConfig,
)


def tiny_config(**logging_overrides) -> SystemConfig:
    """A small, fast system configuration for unit/integration tests."""
    defaults = dict(log_region_bytes=256 * 1024, fwb_interval_cycles=200_000)
    defaults.update(logging_overrides)
    logging = LoggingConfig(**defaults)
    return SystemConfig(
        cores=CoreConfig(n_cores=4),
        caches=CacheConfig(
            l1=CacheLevelConfig(4 * 1024, 4, 64, 4),
            l2=CacheLevelConfig(16 * 1024, 4, 64, 12),
            l3=CacheLevelConfig(64 * 1024, 8, 64, 28, shared=True),
        ),
        nvm=NVMConfig(size_bytes=64 * 1024 * 1024),
        logging=logging,
    )


@pytest.fixture
def config() -> SystemConfig:
    return tiny_config()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def make_tiny_system(design: str = "MorLog-SLDE", **logging_overrides):
    from repro.core.designs import make_system

    return make_system(design, tiny_config(**logging_overrides))
