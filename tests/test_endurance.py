"""Endurance model tests."""

import pytest

from repro.common.config import NVMConfig
from repro.common.stats import StatGroup
from repro.encoding.base import RawCodec
from repro.nvm.array import NvmArray
from repro.nvm.endurance import (
    EnduranceReport,
    endurance_report,
    lifetime_improvement,
)


def _array_with_writes():
    array = NvmArray(NVMConfig(), StatGroup("t"))
    codec = RawCodec()
    array.write_word(0x00, codec.encode(0xFFFF), 0xFFFF)
    array.write_word(0x00, codec.encode(0x0000), 0x0000)
    array.write_word(0x08, codec.encode(0x1), 0x1)
    return array


class TestWearTracking:
    def test_wear_accumulates_per_word(self):
        array = _array_with_writes()
        assert array.wear[0x00] > array.wear[0x08]

    def test_silent_write_adds_no_wear(self):
        array = NvmArray(NVMConfig(), StatGroup("t"))
        codec = RawCodec()
        array.write_word(0x00, codec.encode(5), 5)
        before = array.wear[0x00]
        array.write_word(0x00, codec.encode(5), 5)
        assert array.wear[0x00] == before

    def test_report_totals(self):
        array = _array_with_writes()
        report = endurance_report(array)
        assert report.total_cell_programs == sum(array.wear.values())
        assert report.words_touched == 2
        assert report.max_word_wear == array.wear[0x00]


class TestLifetimeMath:
    def test_empty_array_infinite_lifetime(self):
        array = NvmArray(NVMConfig(), StatGroup("t"))
        report = endurance_report(array)
        assert report.lifetime_runs_unleveled() == float("inf")

    def test_unleveled_bounded_by_hottest_word(self):
        report = EnduranceReport(
            total_cell_programs=100,
            words_touched=10,
            max_word_wear=50,
            mean_word_wear=10.0,
            cell_endurance=1e6,
        )
        assert report.lifetime_runs_unleveled() < report.lifetime_runs_leveled()
        assert report.wear_imbalance == pytest.approx(5.0)

    def test_improvement_ratio(self):
        base = EnduranceReport(1000, 10, 100, 100.0, 1e6)
        better = EnduranceReport(500, 10, 50, 50.0, 1e6)
        assert lifetime_improvement(base, better) == pytest.approx(2.0)

    def test_improvement_is_inverse_of_cell_programs(self):
        # Equal-capacity devices: halving the programs doubles the life,
        # regardless of how many distinct words each run touched.
        base = EnduranceReport(1000, 50, 100, 20.0, 1e6)
        better = EnduranceReport(250, 10, 50, 25.0, 1e6)
        assert lifetime_improvement(base, better) == pytest.approx(4.0)

    def test_improvement_zero_programs(self):
        base = EnduranceReport(0, 0, 0, 0.0, 1e6)
        assert lifetime_improvement(base, base) == 1.0

    def test_fewer_bits_means_longer_life_end_to_end(self):
        """The §VI-C claim on a real workload pair."""
        from repro.core.designs import make_system
        from repro.workloads.base import WorkloadParams, make_workload
        from tests.conftest import tiny_config

        def wear_of(design):
            system = make_system(design, tiny_config())
            workload = make_workload(
                "echo", WorkloadParams(initial_items=64, key_space=128, seed=5)
            )
            system.run(workload, 80, n_threads=2)
            return endurance_report(system.controller.nvm.array)

        fwb = wear_of("FWB-CRADE")
        morlog = wear_of("MorLog-SLDE")
        assert lifetime_improvement(fwb, morlog) > 1.0
