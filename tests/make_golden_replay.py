"""Regenerate tests/golden/replay_trace.json.

Run after an *intended* change to the recorder's capture points, the
trace container format, the canonical cell's workload stream, or the
simulated timing/stats it produces:

    PYTHONPATH=src python tests/make_golden_replay.py

Review the diff before committing — the golden file is the contract
that record -> replay keeps producing the same bits across sessions.
"""

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_HERE, os.pardir))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from test_replay_differential import GOLDEN_PATH, make_golden_document


def main() -> None:
    document = json.loads(json.dumps(make_golden_document(), sort_keys=True))
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(document, fh, sort_keys=True, indent=1)
        fh.write("\n")
    print("wrote %s (digest %s, %d transactions)" % (
        GOLDEN_PATH, document["digest"], document["n_transactions"]
    ))


if __name__ == "__main__":
    main()
