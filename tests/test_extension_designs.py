"""Tests for the comparative persistence-design testbed (ROADMAP item 3).

The three extension designs — InCLL-CRADE (embedded per-line undo slots),
CoW-Page (copy-on-write shadow paging) and Ckpt-Undo (undo logging with
periodic checkpoint + compaction) — are held to the same standard as the
paper's loggers: exhaustive fault sweeps with zero violations, recovery
idempotence after a real mid-run crash, reachability of their dedicated
crash points, and bit-exact record/replay.  Plus the design registry
(``available_designs``) the CLI and sweeps now validate against, and the
``wear_imbalance`` degenerate-case regression.
"""

import pytest

from repro.common.config import LoggingConfig
from repro.common.errors import ConfigError
from repro.core.designs import (
    ABLATION_DESIGN_NAMES,
    DESIGN_NAMES,
    EXTENSION_DESIGN_NAMES,
    available_designs,
    make_system,
)
from repro.core.system import CrashInjected
from repro.faultinject.plan import CRASH_POINTS, CountingPlan, CrashAt
from repro.faultinject.sweep import (
    EXTENSION_SWEEP_DESIGNS,
    SweepOptions,
    _build,
    _drive,
    resolve_design,
    run_sweep,
    sweep_system_config,
)
from repro.nvm.endurance import EnduranceReport
from repro.replay import record_trace, replay_trace
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config

EXTENSIONS = list(EXTENSION_SWEEP_DESIGNS)


# ----------------------------------------------------------------------
# The design registry (single source of truth for design-name surfaces)
# ----------------------------------------------------------------------

def test_available_designs_registry():
    assert available_designs() == DESIGN_NAMES
    assert available_designs(include_ablation=True) == (
        DESIGN_NAMES + ABLATION_DESIGN_NAMES
    )
    assert available_designs(include_extensions=True) == (
        DESIGN_NAMES + EXTENSION_DESIGN_NAMES
    )
    everything = available_designs(include_ablation=True, include_extensions=True)
    assert everything == DESIGN_NAMES + ABLATION_DESIGN_NAMES + EXTENSION_DESIGN_NAMES
    assert len(everything) == len(set(everything))


def test_sweep_aliases_cover_extensions():
    assert resolve_design("incll") == "InCLL-CRADE"
    assert resolve_design("paging") == "CoW-Page"
    assert resolve_design("ckpt-undo") == "Ckpt-Undo"
    assert resolve_design("InCLL-CRADE") == "InCLL-CRADE"
    with pytest.raises(ValueError):
        resolve_design("no-such-design")


def test_cli_lists_extension_designs(capsys):
    from repro.cli import main

    assert main(["designs"]) == 0
    out = capsys.readouterr().out
    for name in DESIGN_NAMES + ABLATION_DESIGN_NAMES + EXTENSION_DESIGN_NAMES:
        assert name in out


def test_extension_crash_points_catalogued():
    for point in ("embedded-write", "page-table-write", "page-flip",
                  "log-compaction"):
        assert point in CRASH_POINTS


@pytest.mark.parametrize("name", EXTENSION_DESIGN_NAMES)
def test_extension_designs_build_and_run(name):
    system = make_system(name, tiny_config(checkpoint_interval_tx=4))
    workload = make_workload(
        "hash", WorkloadParams(initial_items=32, key_space=64, seed=5)
    )
    result = system.run(workload, 8, 2)
    assert result.transactions == 8


@pytest.mark.parametrize("design", ["InCLL-CRADE", "CoW-Page"])
def test_tx_table_truncation_rejected(design):
    with pytest.raises(ConfigError):
        make_system(design, tiny_config(truncation="tx-table"))


def test_new_logging_knobs_validated():
    with pytest.raises(ConfigError):
        tiny_config(incll_slots_per_line=0).validate()
    with pytest.raises(ConfigError):
        tiny_config(page_bytes=100).validate()
    with pytest.raises(ConfigError):
        tiny_config(page_bytes=32).validate()
    with pytest.raises(ConfigError):
        tiny_config(checkpoint_interval_tx=-1).validate()
    tiny_config(
        incll_slots_per_line=4, page_bytes=256, checkpoint_interval_tx=0
    ).validate()


# ----------------------------------------------------------------------
# The acceptance bar: exhaustive sweeps are clean on all three designs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("design", EXTENSIONS)
def test_exhaustive_sweep_is_clean(design):
    result = run_sweep(design, SweepOptions(transactions=10))
    assert result.ok, result.counterexample.format()
    assert result.checked_events == result.total_events > 0
    assert result.per_point["commit-record"] == 10
    assert result.per_point["commit-persisted"] == 10


def test_incll_points_fire():
    result = run_sweep("incll", SweepOptions(transactions=10))
    assert result.ok, result.counterexample.format()
    # Embedded entries (undo word + validating meta word, two firings
    # each) plus overflow entries through the central log.
    assert result.per_point.get("embedded-write", 0) > 0
    assert result.per_point.get("log-append", 0) > 0


def test_paging_points_fire():
    result = run_sweep("paging", SweepOptions(transactions=10))
    assert result.ok, result.counterexample.format()
    # One page-table header per shadowed page; one flip per commit.
    assert result.per_point.get("page-table-write", 0) > 0
    assert result.per_point["page-flip"] == 10


def test_checkpoint_compaction_point_fires():
    # The default interval is 8, so a 10-transaction run checkpoints once.
    result = run_sweep("ckpt-undo", SweepOptions(transactions=10))
    assert result.ok, result.counterexample.format()
    assert result.per_point.get("log-compaction", 0) == 1
    assert result.per_point.get("fwb-scan", 0) >= 2


@pytest.mark.parametrize("design", ["incll", "paging"])
def test_scan_driven_points_fire_under_fast_fwb(design):
    # Fast scans reach the epoch/watermark maintenance paths; the budget
    # keeps the probe count bounded while per-point counts stay complete.
    result = run_sweep(
        design,
        SweepOptions(transactions=40, fwb_interval_cycles=300, budget=40),
    )
    assert result.ok, result.counterexample.format()
    for point in ("fwb-scan", "log-truncate"):
        assert result.per_point.get(point, 0) > 0, point
    if design == "incll":
        # Epoch advances + open-transaction re-stamps outnumber the
        # store-driven embedded writes.
        assert result.per_point["embedded-write"] > result.per_point["tx-store"]
    else:
        # Watermark advances land on top of the per-page header writes.
        assert (
            result.per_point["page-table-write"]
            > result.per_point["data-writeback"] // 8
        )


# ----------------------------------------------------------------------
# Recovery idempotence after a real crash (volatile state lost)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("design", EXTENSIONS)
def test_recovery_is_idempotent_after_midrun_crash(design):
    options = SweepOptions(transactions=8)
    system, workload, tracker = _build(design, options)
    counter = CountingPlan()
    _drive(system, workload, tracker, counter, options)

    system, workload, tracker = _build(design, options)
    plan = CrashAt(max(1, counter.fired * 2 // 3))
    with pytest.raises(CrashInjected):
        _drive(system, workload, tracker, plan, options)

    first = system.recover(verify_decode=True)
    touched = {r.meta.addr for r in first.records}
    image = {addr: system.persistent_word(addr) for addr in touched}
    second = system.recover(verify_decode=True)
    assert second.persisted_txids == first.persisted_txids
    assert {addr: system.persistent_word(addr) for addr in touched} == image


# ----------------------------------------------------------------------
# Record/replay differential: bit-determinism of the new designs
# ----------------------------------------------------------------------

def _cell_config(design):
    # Match the sweep's CoW-Page page-size override so recorded traces
    # drive the identical machine.
    if resolve_design(design) == "CoW-Page":
        return sweep_system_config(page_bytes=256)
    return sweep_system_config()


@pytest.mark.parametrize("design", EXTENSIONS)
def test_replay_is_bit_exact(design):
    full = resolve_design(design)
    config = _cell_config(design)
    params = WorkloadParams(initial_items=48, key_space=96, seed=11)
    trace, recorded, recorded_sys = record_trace(
        full, "hash", config=config, params=params,
        n_transactions=12, n_threads=2,
    )
    replay_sys = make_system(full, config)
    replayed = replay_trace(replay_sys, trace)
    assert replayed.transactions == recorded.transactions
    assert replayed.elapsed_ns == recorded.elapsed_ns
    assert replayed.stats == recorded.stats
    image = lambda s: {
        addr: slot.logical
        for addr, slot in s.controller.nvm.array.snapshot().items()
    }
    assert image(replay_sys) == image(recorded_sys)


@pytest.mark.parametrize("design", EXTENSIONS)
def test_sweep_from_trace_equals_direct_sweep(design):
    options = SweepOptions(workload="hash", transactions=4, threads=2,
                           seed=3, budget=12)
    trace, _result, _sys = record_trace(
        resolve_design(design),
        options.workload,
        config=_cell_config(design),
        params=WorkloadParams(
            initial_items=options.initial_items,
            key_space=options.key_space,
            seed=options.seed,
        ),
        n_transactions=options.transactions,
        n_threads=options.threads,
    )
    direct = run_sweep(design, options)
    replayed = run_sweep(design, options, trace=trace)
    assert replayed.ok == direct.ok
    assert replayed.total_events == direct.total_events
    assert replayed.checked_events == direct.checked_events
    assert replayed.per_point == direct.per_point
    assert replayed.counterexample == direct.counterexample


# ----------------------------------------------------------------------
# Checkpointing shortens the recovery log
# ----------------------------------------------------------------------

def test_checkpoint_compaction_shrinks_recovery_log():
    workload_args = dict(initial_items=32, key_space=64, seed=5)
    n_tx = 16

    def recovered_records(design, **logging_overrides):
        system = make_system(design, tiny_config(**logging_overrides))
        workload = make_workload("hash", WorkloadParams(**workload_args))
        system.run(workload, n_tx, 2)
        if design == "Ckpt-Undo":
            assert system.logger.stats.get("checkpoints") > 0
            assert system.logger.stats.get("checkpoint_compacted_entries") > 0
        return len(system.recover().records)

    baseline = recovered_records("Undo-CRADE")
    compacted = recovered_records("Ckpt-Undo", checkpoint_interval_tx=4)
    assert compacted < baseline

    # A tighter interval can only leave the log shorter (more frequent
    # compaction), never longer.
    tighter = recovered_records("Ckpt-Undo", checkpoint_interval_tx=2)
    assert tighter <= compacted


def test_checkpoint_interval_zero_disables_checkpoints():
    system = make_system("Ckpt-Undo", tiny_config(checkpoint_interval_tx=0))
    workload = make_workload(
        "hash", WorkloadParams(initial_items=32, key_space=64, seed=5)
    )
    system.run(workload, 12, 2)
    assert system.logger.stats.get("checkpoints") == 0


# ----------------------------------------------------------------------
# Mechanism-specific traffic shapes
# ----------------------------------------------------------------------

def test_incll_embeds_then_overflows():
    # One slot per line forces the second distinct word in a line into
    # the overflow log.
    system = make_system("InCLL-CRADE", tiny_config(incll_slots_per_line=1))
    base = system.config.nvmm_base

    def body(ctx):
        for w in range(3):
            ctx.store(base + w * 8, w + 1)

    tx = system.begin_tx(0)
    body(system.contexts[0])
    system.end_tx(0)
    assert tx.committed
    assert system.logger.stats.get("embedded_entries") == 1
    assert system.logger.stats.get("incll_overflows") == 2


def test_paging_write_amplification_grows_with_page_size():
    def shadow_lines(page_bytes):
        system = make_system("CoW-Page", tiny_config(page_bytes=page_bytes))
        workload = make_workload(
            "hash", WorkloadParams(initial_items=32, key_space=64, seed=5)
        )
        system.run(workload, 8, 2)
        copies = system.logger.stats.get("shadow_page_copies")
        lines = system.logger.stats.get("shadow_lines_written")
        assert copies > 0
        assert lines == copies * (page_bytes // 64)
        return lines

    assert shadow_lines(1024) > shadow_lines(256)


# ----------------------------------------------------------------------
# Endurance wear-imbalance degenerate case (regression)
# ----------------------------------------------------------------------

def _report(max_wear, mean_wear):
    return EnduranceReport(
        total_cell_programs=max_wear,
        words_touched=1 if max_wear else 0,
        max_word_wear=max_wear,
        mean_word_wear=mean_wear,
        cell_endurance=1e8,
    )


def test_wear_imbalance_zero_mean_nonzero_max_is_unbounded():
    assert _report(5, 0.0).wear_imbalance == float("inf")


def test_wear_imbalance_untouched_array_is_level():
    assert _report(0, 0.0).wear_imbalance == 1.0


def test_wear_imbalance_normal_ratio():
    assert _report(6, 2.0).wear_imbalance == 3.0
