"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.common import bitops

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
masks8 = st.integers(min_value=0, max_value=0xFF)


class TestPopcountAndFlips:
    def test_popcount_zero(self):
        assert bitops.popcount(0) == 0

    def test_popcount_all_ones(self):
        assert bitops.popcount((1 << 64) - 1) == 64

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            bitops.popcount(-1)

    def test_flipped_bits_identity(self):
        assert bitops.flipped_bits(0x1234, 0x1234) == 0

    def test_flipped_bits_counts_xor(self):
        assert bitops.flipped_bits(0b1010, 0b0101) == 4

    @given(words, words)
    def test_flipped_bits_symmetric(self, a, b):
        assert bitops.flipped_bits(a, b) == bitops.flipped_bits(b, a)


class TestByteConversions:
    @given(words)
    def test_word_bytes_roundtrip(self, w):
        assert bitops.bytes_to_word(bitops.word_bytes(w)) == w

    def test_word_bytes_little_endian(self):
        assert bitops.word_bytes(0x0102030405060708)[0] == 0x08

    def test_bytes_to_word_rejects_wide(self):
        with pytest.raises(ValueError):
            bitops.bytes_to_word([0] * 9)

    def test_bytes_to_word_rejects_bad_byte(self):
        with pytest.raises(ValueError):
            bitops.bytes_to_word([256])


class TestDirtyMasks:
    def test_identical_words_clean(self):
        assert bitops.dirty_byte_mask(5, 5) == 0

    def test_single_byte_change(self):
        assert bitops.dirty_byte_mask(0x00, 0xFF) == 0b1

    def test_high_byte_change(self):
        old = 0
        new = 0xAB << 56
        assert bitops.dirty_byte_mask(old, new) == 0b1000_0000

    @given(words, words)
    def test_mask_popcount_equals_dirty_count(self, a, b):
        mask = bitops.dirty_byte_mask(a, b)
        assert bitops.popcount(mask) == bitops.dirty_byte_count(a, b)

    @given(words, words)
    def test_select_scatter_roundtrip(self, old, new):
        mask = bitops.dirty_byte_mask(old, new)
        dirty = bitops.select_bytes(new, mask)
        assert bitops.scatter_bytes(old, mask, dirty) == new

    def test_scatter_rejects_extra_bytes(self):
        with pytest.raises(ValueError):
            bitops.scatter_bytes(0, 0b1, [1, 2])


class TestLines:
    @given(st.lists(words, min_size=8, max_size=8))
    def test_line_roundtrip(self, ws):
        assert list(bitops.line_to_words(bitops.words_to_line(ws))) == ws

    def test_line_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            bitops.line_to_words(b"\x00" * 63)


class TestCells:
    @given(words)
    def test_split_join_roundtrip_tlc(self, w):
        cells = bitops.split_cells(w, 64, 3)
        assert len(cells) == 22
        assert bitops.join_cells(cells, 3) == w

    @given(st.integers(min_value=1, max_value=4), words)
    def test_split_join_various_widths(self, bpc, w):
        cells = bitops.split_cells(w, 64, bpc)
        assert bitops.join_cells(cells, bpc) == w

    def test_split_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bitops.split_cells(1, 64, 0)

    def test_join_rejects_out_of_range_level(self):
        with pytest.raises(ValueError):
            bitops.join_cells([8], 3)


class TestSignExtension:
    def test_sign_extend_negative(self):
        assert bitops.sign_extend(0xF, 4, 8) == 0xFF

    def test_sign_extend_positive(self):
        assert bitops.sign_extend(0x7, 4, 8) == 0x07

    @given(st.integers(min_value=1, max_value=63), words)
    def test_fits_signed_consistent_with_sign_extend(self, bits, w):
        if bitops.fits_signed(w, bits):
            assert bitops.sign_extend(w & ((1 << bits) - 1), bits) == w

    def test_fits_signed_small_negative(self):
        minus_one = (1 << 64) - 1
        assert bitops.fits_signed(minus_one, 2)

    def test_fits_signed_large_value(self):
        assert not bitops.fits_signed(1 << 40, 32)


class TestAlignment:
    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_align_down_up(self, addr):
        down = bitops.align_down(addr, 64)
        up = bitops.align_up(addr, 64)
        assert down <= addr <= up
        assert down % 64 == 0 and up % 64 == 0
        assert up - down in (0, 64)
