"""SLDE selection logic, CRADE and Flip-N-Write tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import WORD_MASK, dirty_byte_mask, flipped_bits
from repro.encoding.base import RawCodec
from repro.encoding.crade import CradeCodec
from repro.encoding.flipnwrite import FlipNWriteCodec
from repro.encoding.slde import ENCODING_TYPE_FLAG_BITS, LogWriteContext, SldeCodec
from repro.encoding import make_codec

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCrade:
    @given(words)
    def test_roundtrip(self, w):
        codec = CradeCodec()
        assert codec.decode(codec.encode(w)) == w

    def test_compressible_word_expands(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec().encode(0x7F)  # 8-bit payload
        assert encoded.policy is ExpansionPolicy.EXPAND1

    def test_incompressible_word_raw(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec().encode(0x0123_4567_89AB_CDEF)
        assert encoded.policy is ExpansionPolicy.RAW

    def test_expansion_disabled(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec(expansion_enabled=False).encode(0x7F)
        assert encoded.policy is ExpansionPolicy.RAW


class TestFlipNWrite:
    @given(words, words)
    def test_roundtrip(self, w, old):
        codec = FlipNWriteCodec()
        assert codec.decode(codec.encode(w, old), old) == w

    @given(words, words)
    def test_never_flips_more_than_half(self, w, old):
        codec = FlipNWriteCodec()
        encoded = codec.encode(w, old)
        stored = encoded.payload
        assert flipped_bits(old, stored) <= max(
            flipped_bits(old, w), flipped_bits(old, w ^ WORD_MASK)
        )

    def test_flips_when_beneficial(self):
        old = 0
        new = WORD_MASK  # flipping all 64 bits; inverse flips none
        encoded = FlipNWriteCodec().encode(new, old)
        assert encoded.tag_payload == 1
        assert encoded.payload == 0


class TestSldeSelection:
    def test_silent_log_write_dropped(self):
        slde = SldeCodec()
        ctx = LogWriteContext(old_word=5, dirty_mask=0)
        assert slde.encode_log(5, ctx).silent

    def test_dldc_wins_on_sparse_diff(self):
        slde = SldeCodec()
        old = 0x1111_1111_1111_1111
        new = 0x1111_1111_1111_1119  # one dirty byte, incompressible by FPC
        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        assert slde.encode_log(new, ctx).method == "dldc"

    def test_alternative_wins_on_compressible_word(self):
        slde = SldeCodec()
        old = 0xFFFF_FFFF_FFFF_FFFF
        new = 0  # all bytes dirty, but FPC compresses zero to nothing
        ctx = LogWriteContext(old_word=old, dirty_mask=0xFF)
        assert slde.encode_log(new, ctx).method == "crade"

    def test_dldc_disallowed_falls_back(self):
        slde = SldeCodec()
        old = 0x1111_1111_1111_1111
        new = 0x1111_1111_1111_1119
        ctx = LogWriteContext(
            old_word=old, dirty_mask=dirty_byte_mask(old, new), allow_dldc=False
        )
        assert slde.encode_log(new, ctx).method == "crade"

    @given(words, words)
    def test_selected_encoding_decodes(self, old, new):
        slde = SldeCodec()
        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        encoded = slde.encode_log(new, ctx)
        if encoded.silent:
            assert old == new
        else:
            assert slde.decode(encoded, old) == new

    @given(words, words)
    def test_selection_is_cost_minimal(self, old, new):
        slde = SldeCodec()
        mask = dirty_byte_mask(old, new)
        if mask == 0:
            return
        encoded = slde.encode_log(new, LogWriteContext(old_word=old, dirty_mask=mask))
        alt = slde.alternative.encode(new)
        dldc = slde.dldc.encode_log(new, mask)
        best = min(alt.total_bits, dldc.total_bits)
        assert encoded.total_bits <= best + ENCODING_TYPE_FLAG_BITS


class TestUndoRedoPairRule:
    """The paper never DLDC-compresses both sides of one entry (IV-B)."""

    @given(words, words)
    def test_never_both_dldc(self, undo, redo):
        slde = SldeCodec()
        mask = dirty_byte_mask(undo, redo)
        undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, mask)
        if not (undo_enc.silent or redo_enc.silent):
            assert not (undo_enc.method == "dldc" and redo_enc.method == "dldc")

    @given(words, words)
    def test_pair_decodes_against_each_other(self, undo, redo):
        slde = SldeCodec()
        mask = dirty_byte_mask(undo, redo)
        undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, mask)
        if not undo_enc.silent:
            assert slde.decode(undo_enc, redo) == undo
        if not redo_enc.silent:
            assert slde.decode(redo_enc, undo) == redo


class TestCodecFactory:
    @pytest.mark.parametrize(
        "name,cls_name",
        [
            ("raw", "RawCodec"),
            ("fpc", "FpcCodec"),
            ("crade", "CradeCodec"),
            ("flip-n-write", "FlipNWriteCodec"),
            ("slde", "SldeCodec"),
        ],
    )
    def test_known_names(self, name, cls_name):
        assert type(make_codec(name)).__name__ == cls_name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_codec("zstd")
