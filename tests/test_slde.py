"""SLDE selection logic, CRADE and Flip-N-Write tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import WORD_MASK, dirty_byte_mask, flipped_bits
from repro.encoding.base import EncodedWord, RawCodec, WordCodec
from repro.encoding.crade import CradeCodec
from repro.encoding.expansion import ExpansionPolicy
from repro.encoding.flipnwrite import FlipNWriteCodec
from repro.encoding.slde import ENCODING_TYPE_FLAG_BITS, LogWriteContext, SldeCodec
from repro.encoding import make_codec

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCrade:
    @given(words)
    def test_roundtrip(self, w):
        codec = CradeCodec()
        assert codec.decode(codec.encode(w)) == w

    def test_compressible_word_expands(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec().encode(0x7F)  # 8-bit payload
        assert encoded.policy is ExpansionPolicy.EXPAND1

    def test_incompressible_word_raw(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec().encode(0x0123_4567_89AB_CDEF)
        assert encoded.policy is ExpansionPolicy.RAW

    def test_expansion_disabled(self):
        from repro.encoding.expansion import ExpansionPolicy

        encoded = CradeCodec(expansion_enabled=False).encode(0x7F)
        assert encoded.policy is ExpansionPolicy.RAW


class TestFlipNWrite:
    @given(words, words)
    def test_roundtrip(self, w, old):
        codec = FlipNWriteCodec()
        assert codec.decode(codec.encode(w, old), old) == w

    @given(words, words)
    def test_never_flips_more_than_half(self, w, old):
        codec = FlipNWriteCodec()
        encoded = codec.encode(w, old)
        stored = encoded.payload
        assert flipped_bits(old, stored) <= max(
            flipped_bits(old, w), flipped_bits(old, w ^ WORD_MASK)
        )

    def test_flips_when_beneficial(self):
        old = 0
        new = WORD_MASK  # flipping all 64 bits; inverse flips none
        encoded = FlipNWriteCodec().encode(new, old)
        assert encoded.tag_payload == 1
        assert encoded.payload == 0


class TestSldeSelection:
    def test_silent_log_write_dropped(self):
        slde = SldeCodec()
        ctx = LogWriteContext(old_word=5, dirty_mask=0)
        assert slde.encode_log(5, ctx).silent

    def test_dldc_wins_on_sparse_diff(self):
        slde = SldeCodec()
        old = 0x1111_1111_1111_1111
        new = 0x1111_1111_1111_1119  # one dirty byte, incompressible by FPC
        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        assert slde.encode_log(new, ctx).method == "dldc"

    def test_alternative_wins_on_compressible_word(self):
        slde = SldeCodec()
        old = 0xFFFF_FFFF_FFFF_FFFF
        new = 0  # all bytes dirty, but FPC compresses zero to nothing
        ctx = LogWriteContext(old_word=old, dirty_mask=0xFF)
        assert slde.encode_log(new, ctx).method == "crade"

    def test_dldc_disallowed_falls_back(self):
        slde = SldeCodec()
        old = 0x1111_1111_1111_1111
        new = 0x1111_1111_1111_1119
        ctx = LogWriteContext(
            old_word=old, dirty_mask=dirty_byte_mask(old, new), allow_dldc=False
        )
        assert slde.encode_log(new, ctx).method == "crade"

    @given(words, words)
    def test_selected_encoding_decodes(self, old, new):
        slde = SldeCodec()
        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        encoded = slde.encode_log(new, ctx)
        if encoded.silent:
            assert old == new
        else:
            assert slde.decode(encoded, old) == new

    @given(words, words)
    def test_selection_is_cost_minimal(self, old, new):
        slde = SldeCodec()
        mask = dirty_byte_mask(old, new)
        if mask == 0:
            return
        encoded = slde.encode_log(new, LogWriteContext(old_word=old, dirty_mask=mask))
        alt = slde.alternative.encode(new)
        dldc = slde.dldc.encode_log(new, mask)
        best = min(alt.total_bits, dldc.total_bits)
        assert encoded.total_bits <= best + ENCODING_TYPE_FLAG_BITS


class TestUndoRedoPairRule:
    """The paper never DLDC-compresses both sides of one entry (IV-B)."""

    @given(words, words)
    def test_never_both_dldc(self, undo, redo):
        slde = SldeCodec()
        mask = dirty_byte_mask(undo, redo)
        undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, mask)
        if not (undo_enc.silent or redo_enc.silent):
            assert not (undo_enc.method == "dldc" and redo_enc.method == "dldc")

    @given(words, words)
    def test_pair_decodes_against_each_other(self, undo, redo):
        slde = SldeCodec()
        mask = dirty_byte_mask(undo, redo)
        undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, mask)
        if not undo_enc.silent:
            assert slde.decode(undo_enc, redo) == undo
        if not redo_enc.silent:
            assert slde.decode(redo_enc, undo) == redo


class StubDeltaCodec(WordCodec):
    """Old-word-sensitive alternative for conflict-path regression tests.

    Encoding with an old word costs 18 bits; without one the codec has no
    delta base and must store all 64 bits.  The gap makes it observable
    whether the pair conflict path re-encodes with or without context.
    """

    name = "stub-delta"
    context_free = False

    def encode(self, word, old_word=None):
        bits = 18 if old_word is not None else 64
        return EncodedWord(
            method=self.name,
            payload=0,
            payload_bits=bits,
            tag_bits=0,
            policy=ExpansionPolicy.RAW,
        )


class TestPairConflictContext:
    """The conflict fallback must reuse the context-aware alternative.

    Regression for a bug where ``encode_undo_redo_pair`` resolved a
    DLDC/DLDC conflict by re-encoding with ``alternative.encode(word)``
    *without* the old word, so the fallback side could get a different
    (worse) encoding than the candidate whose cost the comparator saw.
    """

    # One dirty byte, incompressible by the Table II patterns: DLDC costs
    # 1 (header) + 8 (raw byte) payload + 8 (dirty flag) = 17 total bits.
    UNDO = 0x1111_1111_1111_1111
    REDO = 0x1111_1111_1111_1119

    def test_both_sides_prefer_dldc_standalone(self):
        slde = SldeCodec(alternative=StubDeltaCodec())
        mask = dirty_byte_mask(self.UNDO, self.REDO)
        undo_ctx = LogWriteContext(old_word=self.REDO, dirty_mask=mask)
        redo_ctx = LogWriteContext(old_word=self.UNDO, dirty_mask=mask)
        assert slde.encode_log(self.UNDO, undo_ctx).method == "dldc"
        assert slde.encode_log(self.REDO, redo_ctx).method == "dldc"

    def test_conflict_fallback_keeps_context_bit_cost(self):
        slde = SldeCodec(alternative=StubDeltaCodec())
        mask = dirty_byte_mask(self.UNDO, self.REDO)
        undo_enc, redo_enc = slde.encode_undo_redo_pair(self.UNDO, self.REDO, mask)
        # Equal savings on both sides: the undo side falls back.
        assert redo_enc.method == "dldc"
        assert undo_enc.method == "stub-delta"
        # The fallback is the 18-bit context-aware candidate the comparator
        # costed, not a fresh 64-bit context-free re-encode.
        assert undo_enc.total_bits == 18

    def test_conflict_fallback_flip_decision_uses_old_word(self):
        # Same regression observed through a real codec: Flip-N-Write's
        # payload depends on the old word, so a context-free re-encode
        # produces different bits than the costed candidate.
        slde = SldeCodec(alternative=FlipNWriteCodec())
        undo, redo = 0x0000_0000_0000_00FF, 0xFFFF_FFFF_FFFF_FF00
        undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, 0xFF)
        assert redo_enc.method == "dldc"
        assert undo_enc.method == "flip-n-write"
        # Against old word ``redo`` all 64 bits differ, so the costed
        # candidate flips; without the old word nothing would flip.
        assert undo_enc.tag_payload == 1
        assert undo_enc.payload == undo ^ WORD_MASK


class TestEncodingTypeFlagCharging:
    """ENCODING_TYPE_FLAG_BITS is comparison-only, never double-charged.

    The paper charges the encoding type flag to *both* candidates inside
    the size comparator (so the choice is fair) but the flag's cells live
    inside the per-word tag-cell group; Table VI write-traffic sums must
    therefore see each word's ``total_bits`` exactly once, with no extra
    flag bits layered on top.
    """

    def test_chosen_encoding_carries_no_flag_surcharge(self):
        slde = SldeCodec()
        old, new = 0x1111_1111_1111_1111, 0x1111_1111_1111_1119
        mask = dirty_byte_mask(old, new)
        chosen = slde.encode_log(new, LogWriteContext(old_word=old, dirty_mask=mask))
        standalone = slde.dldc.encode_log(new, mask)
        assert chosen == standalone
        assert chosen.total_bits == chosen.payload_bits + chosen.tag_bits

    def test_comparison_is_fair_because_flag_hits_both_sides(self):
        # The flag cancels out of the comparison: the winner is exactly
        # the candidate with the smaller unflagged total.
        slde = SldeCodec()
        old, new = 0x1111_1111_1111_1111, 0x1111_1111_1111_1119
        mask = dirty_byte_mask(old, new)
        chosen = slde.encode_log(new, LogWriteContext(old_word=old, dirty_mask=mask))
        alt = slde.alternative.encode(new, old)
        dldc = slde.dldc.encode_log(new, mask)
        expected = dldc if dldc.total_bits < alt.total_bits else alt
        assert chosen == expected

    def test_nvm_traffic_charges_total_bits_exactly_once(self):
        from repro.common.config import EncodingConfig, NVMConfig
        from repro.common.stats import StatGroup
        from repro.nvm.module import LogDataWord, NvmModule

        module = NvmModule(NVMConfig(), EncodingConfig(), StatGroup("t"))
        old, new = 0x1111_1111_1111_1111, 0x1111_1111_1111_1119
        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        result = module.write_log_entry(
            0x100, [0xAA, 0xBB], 0.0,
            undo=LogDataWord(old, ctx), redo=LogDataWord(new, ctx),
        )
        booked = module.stats.get("log_bits")
        assert booked == sum(e.total_bits for e in result.encoded_words)
        # And the flag surcharge stayed out of the booked traffic.
        non_silent = [e for e in result.encoded_words if not e.silent]
        assert booked < sum(
            e.total_bits + ENCODING_TYPE_FLAG_BITS for e in non_silent
        ) or not non_silent


class TestCodecFactory:
    @pytest.mark.parametrize(
        "name,cls_name",
        [
            ("raw", "RawCodec"),
            ("fpc", "FpcCodec"),
            ("crade", "CradeCodec"),
            ("flip-n-write", "FlipNWriteCodec"),
            ("slde", "SldeCodec"),
        ],
    )
    def test_known_names(self, name, cls_name):
        assert type(make_codec(name)).__name__ == cls_name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_codec("zstd")
