"""Tests for secure-NVMM modes (section IV-D) and truncation policies
(section III-F)."""

from dataclasses import replace

import pytest

from repro.core.designs import make_system
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config

PARAMS = WorkloadParams(initial_items=32, key_space=64, seed=4)
# Secure-mode comparisons need in-place data writes in the measured
# window (DEUCE vs naive differ on those), so overflow the tiny caches.
SECURE_PARAMS = WorkloadParams(initial_items=1024, key_space=4096, seed=4)


def run_secure(mode, design="MorLog-SLDE", n=600):
    config = tiny_config()
    config = config.with_changes(
        encoding=replace(config.encoding, secure_mode=mode)
    )
    system = make_system(design, config)
    workload = make_workload("hash", SECURE_PARAMS)
    result = system.run(workload, n, n_threads=2)
    return system, result


class TestSecureModes:
    def test_all_modes_run_and_recover(self):
        for mode in ("none", "deuce", "full"):
            system, result = run_secure(mode)
            state = system.recover(verify_decode=True)
            assert len(state.persisted_txids) == result.transactions, mode

    def test_plaintext_values_preserved(self):
        system, _result = run_secure("full")
        workload_addr = system.config.nvmm_base
        # Logical ground truth stays plaintext regardless of cipher cells.
        assert isinstance(system.persistent_word(workload_addr), int)

    def test_encryption_increases_write_energy(self):
        """Section IV-D: encryption dirties more bits."""
        _s, plain = run_secure("none")
        _s, deuce = run_secure("deuce")
        assert plain.nvmm_write_energy_pj < deuce.nvmm_write_energy_pj

    def test_deuce_keeps_unchanged_words_silent_in_line_writes(self):
        """Rewriting a line with one changed word: DEUCE programs only
        that word's cells; naive encryption re-programs the whole line."""
        from repro.common.config import EncodingConfig, NVMConfig
        from repro.nvm.module import NvmModule

        def cells_for(mode):
            module = NvmModule(NVMConfig(), EncodingConfig(secure_mode=mode))
            words = [0x1111 * (i + 1) for i in range(8)]
            module.write_data_line(0x40, words, 0.0)
            words[3] += 1
            result = module.write_data_line(0x40, words, 100.0)
            return result.cost.cells_programmed

        assert cells_for("deuce") < cells_for("full")

    def test_deuce_preserves_silent_log_drops(self):
        """DEUCE keeps clean words clean, so SLDE still drops them."""
        config = tiny_config()
        config = config.with_changes(
            encoding=replace(config.encoding, secure_mode="deuce")
        )
        system = make_system("MorLog-SLDE", config)
        base = system.config.nvmm_base
        system.setup_store(base, 0x1234)
        system.reset_measurement()
        system.begin_tx(0)
        system.store_word(0, base, 0x1234)   # silent store
        system.end_tx(0)
        assert system.stats.get("silent_stores") == 1

    def test_full_encryption_disables_dldc_selection(self):
        """Ciphertext leaves DLDC nothing to discard or compress, so the
        SLDE comparator falls back to the alternative codec."""
        from repro.common.config import EncodingConfig, NVMConfig
        from repro.encoding.slde import LogWriteContext
        from repro.nvm.module import LogDataWord, NvmModule

        def winning_method(mode):
            module = NvmModule(NVMConfig(), EncodingConfig(secure_mode=mode))
            old, new = 0x1111_1111_1111_1111, 0x1111_1111_1111_1119
            ctx = LogWriteContext(old_word=old, dirty_mask=0b1)
            encoded, _logicals = module.encode_log_words(
                [0], redo=LogDataWord(new, ctx)
            )
            return encoded[-1].method

        assert winning_method("none") == "dldc"
        assert winning_method("full") != "dldc"

    def test_invalid_mode_rejected(self):
        from repro.common.errors import ConfigError

        config = tiny_config()
        bad = config.with_changes(
            encoding=replace(config.encoding, secure_mode="rot13")
        )
        with pytest.raises(ConfigError):
            bad.validate()


class TestTruncationPolicies:
    # A working set big enough to overflow the tiny caches, so in-place
    # data actually persist through evictions (what the table tracks).
    BIG = WorkloadParams(initial_items=1024, key_space=4096, seed=4)

    def _run(self, policy, n=150):
        config = tiny_config(
            truncation=policy,
            log_region_bytes=64 * 1024,
            fwb_interval_cycles=3_000,
        )
        system = make_system("MorLog-SLDE", config)
        workload = make_workload("hash", self.BIG)
        result = system.run(workload, n, n_threads=2)
        return system, result

    def test_tx_table_truncates(self):
        system, _result = self._run("tx-table")
        assert system.stats.get("entries_truncated") > 0
        # Once everything drained, the table frees every committed tx.
        assert system.log_region.used_slots() == 0

    def test_tx_table_keeps_log_smaller(self):
        scan_sys, _r1 = self._run("fwb-scan")
        table_sys, _r2 = self._run("tx-table")
        assert table_sys.log_region.used_slots() <= scan_sys.log_region.used_slots()

    def test_tx_table_never_frees_unpersisted_tx(self):
        """Entries freed by the table must belong to transactions whose
        data are persistent — crash and check."""
        config = tiny_config(truncation="tx-table", log_region_bytes=64 * 1024)
        system = make_system("MorLog-SLDE", config)
        workload = make_workload("hash", self.BIG)
        system.run(workload, 150, n_threads=2)
        # After the run, every surviving or truncated transaction's data
        # must be recoverable: recover and confirm structures intact.
        state = system.recover(verify_decode=True)
        from repro.workloads.base import SetupContext

        ctx = SetupContext(system)
        for tid in range(2):
            table = workload.maps[tid]
            for key, _values in table.items(ctx):
                assert table.lookup(ctx, key) is not None

    def test_invalid_policy_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            config = tiny_config(truncation="never")
            config.validate()
