"""System assembly, run loop, design factory and config tests."""

import pytest

from repro.common.config import LoggingConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.core.designs import DESIGN_NAMES, make_system
from repro.logging_hw.fwb import FwbLogger
from repro.logging_hw.morlog import MorLogLogger
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import make_tiny_system, tiny_config


class TestConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_bad_watermark_rejected(self):
        from dataclasses import replace

        config = SystemConfig()
        bad = config.with_changes(nvm=replace(config.nvm, drain_watermark=1.5))
        with pytest.raises(ConfigError):
            bad.validate()

    def test_bad_codec_rejected(self):
        from dataclasses import replace

        config = SystemConfig()
        bad = config.with_changes(
            encoding=replace(config.encoding, data_codec="lz4")
        )
        with pytest.raises(ConfigError):
            bad.validate()

    def test_table_iii_cache_sizes(self):
        config = SystemConfig()
        assert config.caches.l1.size_bytes == 32 * 1024
        assert config.caches.l2.size_bytes == 256 * 1024
        assert config.caches.l3.size_bytes == 8 * 1024 * 1024
        assert (config.caches.l1.latency_cycles,
                config.caches.l2.latency_cycles,
                config.caches.l3.latency_cycles) == (4, 12, 28)

    def test_table_iii_memory_geometry(self):
        config = SystemConfig()
        assert config.nvm.channels == 4
        assert config.nvm.banks == 8
        assert config.nvm.write_queue_entries == 64
        assert config.nvm.drain_watermark == 0.8
        assert config.nvm.read_latency_ns == 25.0

    def test_default_buffer_sizes(self):
        config = SystemConfig()
        assert config.logging.undo_redo_buffer_entries == 16
        assert config.logging.redo_buffer_entries == 32


class TestDesignFactory:
    def test_all_designs_buildable(self):
        for name in DESIGN_NAMES:
            system = make_system(name, tiny_config())
            assert system.design_name == name

    def test_fwb_designs_use_fwb_logger(self):
        assert isinstance(make_system("FWB-CRADE", tiny_config()).logger, FwbLogger)
        assert isinstance(make_system("FWB-SLDE", tiny_config()).logger, FwbLogger)

    def test_morlog_designs_use_morlog_logger(self):
        assert isinstance(
            make_system("MorLog-SLDE", tiny_config()).logger, MorLogLogger
        )

    def test_unsafe_buffer_size(self):
        system = make_system("FWB-Unsafe", tiny_config())
        assert system.logger.buffer.capacity == 16 + 32
        assert not system.logger.eager

    def test_codec_assignment(self):
        assert make_system("FWB-CRADE", tiny_config()).config.encoding.log_codec == "crade"
        assert make_system("MorLog-SLDE", tiny_config()).config.encoding.log_codec == "slde"

    def test_dp_flag(self):
        assert make_system("MorLog-DP", tiny_config()).config.logging.delay_persistence
        assert not make_system("MorLog-SLDE", tiny_config()).config.logging.delay_persistence

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigError):
            make_system("MorLog-Turbo", tiny_config())


class TestSystemBasics:
    def test_load_reads_setup_value(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.setup_store(addr, 99)
        assert system.load_word(0, addr) == 99

    def test_store_visible_to_load(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.store_word(0, addr, 5)
        assert system.load_word(0, addr) == 5

    def test_clock_advances(self):
        system = make_tiny_system()
        system.load_word(0, system.config.nvmm_base)
        assert system.core_time_ns[0] > 0

    def test_dram_routing(self):
        system = make_tiny_system()
        dram_addr = 0x1000
        assert not system.controller.is_persistent(dram_addr)
        system.store_word(0, dram_addr, 3)
        system.hierarchy.drain_all(system.core_time_ns[0])
        assert system.controller.dram.read_word(dram_addr) == 3

    def test_nested_tx_flattened(self):
        system = make_tiny_system()
        tx1 = system.begin_tx(0)
        tx2 = system.begin_tx(0)
        assert tx1 is tx2
        assert system.stats.get("nested_tx_flattened") == 1
        system.end_tx(0)

    def test_end_without_begin_rejected(self):
        system = make_tiny_system()
        with pytest.raises(RuntimeError):
            system.end_tx(0)

    def test_reset_measurement_clears(self):
        system = make_tiny_system()
        system.store_word(0, system.config.nvmm_base, 1)
        system.reset_measurement()
        assert system.stats.get("stores") == 0
        assert system.core_time_ns[0] == 0.0

    def test_reset_measurement_clears_run_loop_state(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        tx = system.begin_tx(0)
        system.store_word(0, addr, 1)
        system.end_tx(0)
        system._run_fwb_scan(system.core_time_ns[0])
        assert system._scans_done > 0 and system._commit_epoch
        system._nt_staging[(0, tx.txid)] = {addr: 5}
        system._pending_lines[tx.txid] = {addr}
        system._line_txs[addr] = {tx.txid}
        system.reset_measurement()
        assert system._scans_done == 0
        assert system._next_fwb_ns == system._fwb_interval_ns
        assert not system._commit_epoch
        assert not system._nt_staging
        assert not system._pending_lines
        assert not system._line_txs

    def test_back_to_back_runs_match_fresh_systems(self):
        """A reused System's second run must equal a fresh System's run.

        Before the reset fix, the second run() inherited the first run's
        FWB schedule, truncation epochs, warm caches and log region, so
        its stats diverged from a fresh machine's.
        """
        def run_once(system):
            workload = make_workload(
                "queue", WorkloadParams(initial_items=16, key_space=64)
            )
            return system.run(workload, 30, n_threads=2)

        fresh = [run_once(make_tiny_system()) for _ in range(2)]
        reused_system = make_tiny_system()
        reused = [run_once(reused_system) for _ in range(2)]
        for fresh_result, reused_result in zip(fresh, reused):
            assert reused_result.stats == fresh_result.stats
            assert reused_result.elapsed_ns == fresh_result.elapsed_ns

    def test_reset_machine_preserves_taps(self):
        system = make_tiny_system()
        sentinel = object()
        hook_calls = []
        system.trace = sentinel
        system.crash_hook = lambda: hook_calls.append(1)
        system._ran = True
        system.reset_machine()
        assert system.trace is sentinel
        assert system.crash_hook is not None
        assert system.stats.get("stores") == 0


class TestRunLoop:
    def test_run_returns_metrics(self):
        system = make_tiny_system()
        workload = make_workload(
            "queue", WorkloadParams(initial_items=16, key_space=64)
        )
        result = system.run(workload, 30, n_threads=2)
        assert result.transactions == 30
        assert result.elapsed_ns > 0
        assert result.throughput_tx_per_s > 0
        assert result.nvmm_writes > 0

    def test_threads_balanced(self):
        system = make_tiny_system()
        workload = make_workload(
            "sps", WorkloadParams(initial_items=32, key_space=64)
        )
        system.run(workload, 40, n_threads=4)
        times = system.core_time_ns[:4]
        assert max(times) > 0
        assert min(times) > 0.3 * max(times)  # min-time dispatch balances

    def test_too_many_threads_rejected(self):
        system = make_tiny_system()
        workload = make_workload("queue")
        with pytest.raises(ValueError):
            system.run(workload, 5, n_threads=64)

    def test_zero_threads_rejected_not_coerced(self):
        # Regression: ``n_threads=0`` used to fall through an ``or`` and
        # silently run on all cores, skewing per-thread scaling curves.
        system = make_tiny_system()
        workload = make_workload(
            "queue", WorkloadParams(initial_items=16, key_space=64)
        )
        with pytest.raises(ValueError, match="n_threads"):
            system.run(workload, 5, n_threads=0)
        with pytest.raises(ValueError, match="n_threads"):
            system.run(workload, 5, n_threads=-2)
        # ``None`` still means "all cores" explicitly.
        result = system.run(workload, 8, n_threads=None)
        assert result.transactions == 8
        assert all(t > 0 for t in system.core_time_ns)

    def test_fwb_scan_triggers_and_truncates(self):
        system = make_tiny_system(fwb_interval_cycles=1_500)
        workload = make_workload(
            "hash", WorkloadParams(initial_items=32, key_space=64)
        )
        system.run(workload, 150, n_threads=2)
        assert system.stats.get("fwb_scans") >= 2
        assert system.stats.get("entries_truncated") > 0

    def test_log_overflow_recovers_via_emergency_scan(self):
        system = make_tiny_system(log_region_bytes=8192)
        workload = make_workload(
            "hash", WorkloadParams(initial_items=16, key_space=32)
        )
        result = system.run(workload, 120, n_threads=2)
        assert result.transactions == 120
        assert system.stats.get("log_overflow_scans") > 0

    def test_deterministic_across_runs(self):
        def run_once():
            system = make_tiny_system()
            workload = make_workload(
                "btree", WorkloadParams(initial_items=32, key_space=128, seed=5)
            )
            return system.run(workload, 50, n_threads=2)

        a, b = run_once(), run_once()
        assert a.elapsed_ns == b.elapsed_ns
        assert a.nvmm_writes == b.nvmm_writes
        assert a.stats == b.stats


class TestCleanShutdownRecovery:
    """After drain, recovery must be a no-op on the data."""

    @pytest.mark.parametrize("design", ["FWB-CRADE", "MorLog-SLDE", "MorLog-DP"])
    def test_recovery_after_clean_run_preserves_values(self, design):
        system = make_tiny_system(design)
        workload = make_workload(
            "hash", WorkloadParams(initial_items=24, key_space=48, seed=2)
        )
        result = system.run(workload, 60, n_threads=2)
        # Snapshot the architectural state of all logged words.
        records = system.recover(verify_decode=False).records
        touched = {
            r.meta.addr for r in records if r.meta.type.name != "COMMIT"
        }
        before = {a: system.persistent_word(a) for a in touched}
        state = system.recover(verify_decode=True)
        for addr, value in before.items():
            assert system.persistent_word(addr) == value
