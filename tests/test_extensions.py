"""Tests for the section III-F extensions: distributed logs and
non-temporal stores."""

import pytest

from repro.core.designs import make_system
from repro.core.system import CrashInjected
from repro.logging_hw.region import LogRegionSet
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import make_tiny_system, tiny_config


class TestDistributedLogs:
    def _system(self, design="MorLog-SLDE"):
        return make_system(design, tiny_config(distributed_logs=True))

    def test_region_set_built(self):
        system = self._system()
        assert isinstance(system.log_region, LogRegionSet)
        assert len(system.log_region.regions) == system.config.cores.n_cores

    def test_appends_route_by_tid(self):
        system = self._system()
        base = system.config.nvmm_base
        for core in (0, 1):
            system.begin_tx(core)
            system.store_word(core, base + core * 4096, 1)
            system.end_tx(core)
        regions = system.log_region.regions
        assert regions[0].used_slots() > 0
        assert regions[1].used_slots() > 0

    def test_workload_runs_and_recovers(self):
        system = self._system()
        workload = make_workload(
            "hash", WorkloadParams(initial_items=24, key_space=64, seed=1)
        )
        system.run(workload, 60, n_threads=4)
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 60

    @pytest.mark.parametrize("design", ["MorLog-SLDE", "MorLog-DP", "FWB-CRADE"])
    def test_crash_consistency_across_thread_logs(self, design):
        from tests.test_crash_recovery import WriteSetTap

        config = tiny_config(distributed_logs=True)
        system = make_system(design, config)
        workload = make_workload(
            "hash", WorkloadParams(initial_items=32, key_space=64, seed=3)
        )
        workload.setup(system, 4)
        system.reset_measurement()
        tap = WriteSetTap()
        system.trace = tap
        counter = [0]

        def hook():
            counter[0] += 1
            if counter[0] >= 300:
                raise CrashInjected()

        system.crash_hook = hook
        committed = []
        try:
            while True:
                core = min(range(4), key=system.core_time_ns.__getitem__)
                body = workload.transaction(core)
                tx = system.begin_tx(core)
                try:
                    body(system.contexts[core])
                except CrashInjected:
                    system.current_tx[core] = None
                    raise
                system.end_tx(core)
                committed.append(tx.txid)
        except CrashInjected:
            pass

        state = system.recover(verify_decode=True)
        if not config.logging.delay_persistence and "DP" not in design:
            assert set(committed) <= state.persisted_txids
        # All-or-nothing per transaction.
        expected = {}
        for txid in sorted(tap.tx_writes):
            for addr, (old, new) in tap.tx_writes[txid].items():
                if txid in state.persisted_txids:
                    expected[addr] = new
                elif addr not in expected:
                    expected[addr] = old
        for addr, value in expected.items():
            assert system.persistent_word(addr) == value


class TestNonTemporalStores:
    def test_nt_store_outside_tx_writes_through(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.store_word_nt(0, addr, 0x77)
        assert system.persistent_word(addr) == 0x77

    def test_nt_store_in_tx_staged_until_commit(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word_nt(0, addr, 0x99)
        # Pre-commit: NVMM still holds the old value...
        assert system.persistent_word(addr) == 0
        # ...but the transaction reads its own write.
        assert system.load_word(0, addr) == 0x99
        system.end_tx(0)
        assert system.persistent_word(addr) == 0x99

    def test_nt_store_logged_redo_only(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word_nt(0, addr, 0x42)
        system.end_tx(0)
        records = system.recover(verify_decode=False).records
        redo = [r for r in records if r.meta.type.name == "REDO"]
        assert len(redo) == 1 and redo[0].redo == 0x42
        assert not [r for r in records if r.meta.type.name == "UNDO_REDO"]

    def test_uncommitted_nt_store_vanishes_on_crash(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.setup_store(addr, 0xAA)
        system.reset_measurement()
        system.begin_tx(0)
        system.store_word_nt(0, addr, 0xBB)
        # Crash before commit: staging is volatile.
        system.current_tx[0] = None
        state = system.recover(verify_decode=True)
        assert not state.persisted_txids
        assert system.persistent_word(addr) == 0xAA

    def test_committed_nt_store_survives_crash_before_staging_flush(self):
        """Crash between commit record and the staged NVMM writes."""
        system = make_tiny_system()
        addr = system.config.nvmm_base
        tx = system.begin_tx(0)
        system.store_word_nt(0, addr, 0x55)
        # Commit the log side but "lose power" before _flush_nt_staging.
        system.logger.commit_tx(tx, system.core_time_ns[0])
        system.current_tx[0] = None
        system._nt_staging.clear()
        state = system.recover(verify_decode=True)
        assert state.persisted_txids == {tx.txid}
        assert system.persistent_word(addr) == 0x55

    def test_nt_store_flushes_cached_copy(self):
        system = make_tiny_system()
        addr = system.config.nvmm_base
        system.store_word(0, addr + 8, 7)  # cache the line, dirty it
        system.begin_tx(0)
        system.store_word_nt(0, addr, 9)
        system.end_tx(0)
        # Both the cached word and the NT word must be persistent.
        assert system.persistent_word(addr + 8) == 7
        assert system.persistent_word(addr) == 9

    def test_nt_store_under_dp_commit(self):
        system = make_tiny_system("MorLog-DP")
        addr = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word_nt(0, addr, 0x66)
        system.end_tx(0)
        state = system.recover(verify_decode=True)
        # NT redo entries flush ahead of the commit record even under DP,
        # so the transaction counts as persisted.
        assert state.persisted_txids
        assert system.persistent_word(addr) == 0x66

    def test_fwb_nt_store(self):
        system = make_tiny_system("FWB-CRADE")
        addr = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word_nt(0, addr, 0x33)
        system.end_tx(0)
        assert system.persistent_word(addr) == 0x33
        state = system.recover(verify_decode=True)
        assert system.persistent_word(addr) == 0x33
