"""Experiment harness tests: runner, figure functions, result shapes.

These run heavily-scaled-down grids; the full-size versions live under
``benchmarks/``.  The *shape* assertions here encode the paper's headline
directional claims at tiny scale, so regressions in the designs' relative
behaviour fail fast.
"""

import pytest

from repro.common.stats import geometric_mean
from repro.experiments import figures
from repro.experiments.runner import ExperimentScale, run_design, run_grid
from repro.workloads.base import DatasetSize

TINY = ExperimentScale(
    micro_transactions=60, macro_transactions=40, micro_threads=2, macro_threads=2
)


@pytest.fixture(scope="module")
def micro_grid():
    return run_grid(
        ("FWB-CRADE", "MorLog-SLDE", "MorLog-DP"),
        ("hash", "queue", "sps"),
        DatasetSize.SMALL,
        TINY,
    )


class TestRunner:
    def test_run_design_returns_result(self):
        result = run_design("FWB-CRADE", "queue", DatasetSize.SMALL, TINY)
        assert result.transactions == 60
        assert result.nvmm_writes > 0

    def test_large_dataset_scales_down(self):
        assert TINY.transactions(False, DatasetSize.LARGE) < TINY.transactions(
            False, DatasetSize.SMALL
        )

    def test_grid_shape(self, micro_grid):
        assert set(micro_grid) == {"hash", "queue", "sps"}
        for row in micro_grid.values():
            assert set(row) == {"FWB-CRADE", "MorLog-SLDE", "MorLog-DP"}


class TestHeadlineShapes:
    """Directional claims from the paper's abstract, at tiny scale."""

    def test_morlog_reduces_write_traffic(self, micro_grid):
        ratios = [
            row["MorLog-SLDE"].nvmm_writes / row["FWB-CRADE"].nvmm_writes
            for row in micro_grid.values()
        ]
        assert geometric_mean(ratios) < 1.0

    def test_morlog_reduces_write_energy(self, micro_grid):
        ratios = [
            row["MorLog-SLDE"].nvmm_write_energy_pj
            / row["FWB-CRADE"].nvmm_write_energy_pj
            for row in micro_grid.values()
        ]
        assert geometric_mean(ratios) < 0.95

    def test_morlog_improves_throughput(self, micro_grid):
        ratios = [
            row["MorLog-DP"].throughput_tx_per_s
            / row["FWB-CRADE"].throughput_tx_per_s
            for row in micro_grid.values()
        ]
        assert geometric_mean(ratios) > 1.0

    def test_slde_reduces_log_bits(self):
        out = figures.table6_log_bits(
            TINY, designs=("FWB-CRADE", "MorLog-SLDE")
        )
        assert out["Small"]["MorLog-SLDE"] > 0.0
        assert out["Small"]["FWB-CRADE"] == pytest.approx(0.0)


class TestMotivationFigures:
    def test_fig3_distributions_sum_to_one(self):
        data = figures.fig3_write_distance(TINY, workloads=("queue", "echo"))
        for dist in data.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_fig5_percentages_in_range(self):
        data = figures.fig5_clean_bytes(TINY, workloads=("queue", "echo", "hash"))
        for pct in data.values():
            assert 0.0 <= pct <= 100.0
        # The paper's central observation: a large fraction of updated
        # bytes are clean (70.5 % on average there).
        assert sum(data.values()) / len(data) > 40.0

    def test_table2_census_fractions(self):
        data = figures.table2_patterns(TINY, workloads=("echo", "hash"))
        assert sum(data.values()) == pytest.approx(1.0)
        # A meaningful fraction of dirty log data is pattern-compressible.
        assert data["uncompressed"] < 1.0

    def test_table1_overheads_present(self):
        out = figures.table1_overheads()
        assert out["log_registers_bytes"] == 16
        assert out["logic_gates"] == 4200

    def test_tables_render(self):
        text = figures.fig5_table(figures.fig5_clean_bytes(TINY, workloads=("queue",)))
        assert "clean bytes" in text


class TestSweeps:
    def test_fig15_buffer_sweep_grid(self):
        out = figures.fig15_buffer_sweep(
            ur_sizes=(1, 16), redo_sizes=(2, 32), scale=TINY
        )
        assert set(out) == {(1, 2), (16, 2), (1, 32), (16, 32)}
        # Larger undo+redo buffers never increase NVMM writes.
        assert out[(16, 32)][1] <= out[(1, 32)][1]

    def test_fig16_thread_scaling_normalized(self):
        out = figures.fig16_thread_scaling(
            thread_counts=(1, 2),
            scale=TINY,
            designs=("FWB-CRADE", "MorLog-SLDE"),
            workloads=("queue",),
        )
        for row in out.values():
            assert row["FWB-CRADE"] == pytest.approx(1.0)

    def test_latency_sensitivity_runs(self):
        out = figures.sens_nvm_latency(
            scales_x=(1.0, 8.0),
            scale=TINY,
            designs=("FWB-CRADE", "MorLog-SLDE"),
            workloads=("queue",),
        )
        assert set(out) == {1.0, 8.0}


class TestConvergence:
    """Normalized ratios stabilise at small transaction counts."""

    def test_traffic_ratio_stable_across_scales(self):
        ratios = []
        for n in (60, 180):
            fwb = run_design(
                "FWB-CRADE", "hash", DatasetSize.SMALL, TINY, n_transactions=n
            )
            morlog = run_design(
                "MorLog-SLDE", "hash", DatasetSize.SMALL, TINY, n_transactions=n
            )
            ratios.append(morlog.nvmm_writes / fwb.nvmm_writes)
        assert abs(ratios[0] - ratios[1]) < 0.15


class TestHeadline:
    def test_headline_comparison_tiny(self):
        from repro.experiments.headline import PAPER_HEADLINE, headline_comparison
        from repro.workloads.base import DatasetSize

        result = headline_comparison(
            TINY, cells=(("hash", DatasetSize.SMALL), ("queue", DatasetSize.SMALL))
        )
        assert result.cells == 2
        assert set(result.as_dict()) == set(PAPER_HEADLINE)
        assert result.shape_holds()
