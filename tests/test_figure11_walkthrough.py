"""The paper's Figure 11 worked example, step by step.

Initial values A = B = C = 0; the transaction writes
A1 = 0x000300F9000500FE, B1 = 0xFFFFFFFFFFFFB6B6, A2 = 0xCDEF... , C1 = 0,
with a 1-entry undo+redo buffer.  The figure's checkpoints:

(a) write A1: undo+redo entry (dirty flag 0x55) buffered, word Dirty;
(b) write B1: the full buffer evicts A's entry — undo 0 compressed by
    FPC, redo A1 compressed by DLDC to tag 010 / payload 0x395E — and A
    turns URLog;
(c) write A2: A turns ULog, its L1 dirty flag becomes 0xFF;
(d) write C1: the value is unchanged, so the state stays Clean and
    nothing is logged; evicting A's line creates a redo entry, and the
    LLC write-back of the in-place data drops it from the redo buffer
    (under the paper-literal discard mode);
(e) commit persists the remaining log data.
"""

import pytest

from repro.cache.cacheline import LogState
from repro.common.bitops import dirty_byte_mask
from repro.core.designs import make_system
from repro.encoding.dldc import DldcCodec
from tests.conftest import tiny_config

A1 = 0x000300F9000500FE
A2 = 0xCDEFCDEFCDEFCDEF
B1 = 0xFFFFFFFFFFFFB6B6
C1 = 0x0


def build(unsafe_discard=False):
    config = tiny_config(
        undo_redo_buffer_entries=1,
        redo_buffer_entries=4,
        unsafe_llc_redo_discard=unsafe_discard,
    )
    system = make_system("MorLog-SLDE", config)
    base = system.config.nvmm_base
    # A, B, C on distinct cache lines, all initially zero.
    a, b, c = base, base + 64, base + 128
    return system, a, b, c


class TestFigure11:
    def test_step_a_first_write_buffers_undo_redo(self):
        system, a, _b, _c = build()
        system.begin_tx(0)
        system.store_word(0, a, A1)
        line = system.hierarchy.l1s[0].lookup(a, touch=False)
        assert line.state(0) is LogState.DIRTY
        entry = system.logger.ur_buffer.find((0, system.current_tx[0].txid, a))
        assert entry is not None
        assert entry.entry.undo == 0 and entry.entry.redo == A1
        assert entry.entry.dirty_mask == 0x55  # the figure's "A: 0x55, 0, A1"

    def test_step_b_eviction_encodes_like_the_figure(self):
        # The figure: undo (0) compressed by FPC, redo (A1) by DLDC with
        # tag 010 and payload 0x2395E (= tag 2, body 0x395E).
        assert dirty_byte_mask(0, A1) == 0x55
        encoded = DldcCodec().encode_log(A1, 0x55)
        parsed = DldcCodec().parse(encoded)
        assert parsed.compressed and parsed.tag == 0b010
        assert encoded.payload >> 4 == 0x395E  # header + tag occupy 4 bits

        system, a, b, _c = build()
        system.begin_tx(0)
        system.store_word(0, a, A1)
        system.store_word(0, b, B1)  # 1-entry buffer: evicts A's entry
        line = system.hierarchy.l1s[0].lookup(a, touch=False)
        assert line.state(0) is LogState.URLOG
        assert line.word_dirty_flags[0] == 0
        records = system.recover(verify_decode=True).records
        # Exactly one undo+redo entry (A's) persisted so far.
        assert len(records) == 1
        assert records[0].undo == 0 and records[0].redo == A1

    def test_step_c_rewrite_buffers_redo_in_l1(self):
        system, a, b, _c = build()
        system.begin_tx(0)
        system.store_word(0, a, A1)
        system.store_word(0, b, B1)
        system.store_word(0, a, A2)
        line = system.hierarchy.l1s[0].lookup(a, touch=False)
        assert line.state(0) is LogState.ULOG
        assert line.word_dirty_flags[0] == dirty_byte_mask(A1, A2) == 0xFF

    def test_step_d_silent_store_stays_clean(self):
        system, a, b, c = build()
        system.begin_tx(0)
        system.store_word(0, c, C1)  # value unchanged
        line = system.hierarchy.l1s[0].lookup(c, touch=False)
        assert line.state(0) is LogState.CLEAN
        assert system.stats.get("silent_stores") == 1

    def test_step_d_llc_eviction_discards_redo_entry(self):
        system, a, b, _c = build(unsafe_discard=True)
        tx = system.begin_tx(0)
        system.store_word(0, a, A1)
        system.store_word(0, b, B1)
        system.store_word(0, a, A2)
        # Evict A's line all the way to NVMM: the buffered redo entry is
        # created on the L1 eviction and dropped at the LLC write-back.
        system.hierarchy.flush_line(a, system.core_time_ns[0])
        assert system.stats.get("redo_llc_discards") == 1
        assert len(system.logger.redo_buffer) == 0
        assert system.persistent_word(a) == A2  # in-place data persisted

    def test_step_e_commit_persists_everything(self):
        system, a, b, c = build()
        system.begin_tx(0)
        system.store_word(0, a, A1)
        system.store_word(0, b, B1)
        system.store_word(0, a, A2)
        system.store_word(0, c, C1)
        system.end_tx(0)
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 1
        assert system.persistent_word(a) == A2
        assert system.persistent_word(b) == B1
        assert system.persistent_word(c) == 0
