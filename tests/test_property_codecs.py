"""Property-based round-trip tests for the codec stack (Hypothesis).

Every codec must satisfy decode(encode(w)) == w over the full 64-bit word
space, not just the hand-picked examples of the unit tests — compression
bugs live in the pattern boundaries (a value one past a sign-extension
range, a dirty mask with holes) that random-but-shrinking generation is
good at finding.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.common.bitops import (
    dirty_byte_mask,
    mask_word,
    scatter_bytes,
    select_bytes,
    sign_extend,
)
from repro.encoding.base import EncodedWord
from repro.encoding.bdi import BdiCodec, bdi_compress, bdi_decompress
from repro.encoding.crade import CradeCodec
from repro.encoding.dldc import (
    DldcCodec,
    PATTERN_NAMES,
    dldc_compress_pattern,
    dldc_decompress_pattern,
)
from repro.encoding.expansion import (
    CELLS_PER_WORD,
    ExpansionPolicy,
    cells_to_bits,
    cells_used,
    map_bits_to_cells,
    policy_for_size,
)
from repro.encoding.fpc import FpcCodec, fpc_compress, fpc_decompress
from repro.encoding.slde import ENCODING_TYPE_FLAG_BITS, LogWriteContext, SldeCodec
from repro.common.config import tlc_levels_sorted_by_latency

# Uniform 64-bit words almost never exercise the compressible patterns, so
# mix them with the value shapes the patterns target: zero, narrow signed,
# repeated bytes, zeroed halves, base+small-delta lanes.
_narrow = st.integers(-(1 << 31), (1 << 31) - 1).map(mask_word)
_repeated = st.integers(0, 0xFF).map(
    lambda b: int.from_bytes(bytes([b]) * 8, "little")
)
_high_half = st.integers(0, (1 << 32) - 1).map(lambda v: v << 32)
_lanes = st.integers(0, 0xFFFF).flatmap(
    lambda base: st.lists(
        st.integers(-127, 127), min_size=4, max_size=4
    ).map(
        lambda ds: sum(
            (((base + d) & 0xFFFF) << (16 * i)) for i, d in enumerate(ds)
        )
    )
)
words = st.one_of(
    st.integers(0, (1 << 64) - 1),
    _narrow,
    _repeated,
    _high_half,
    _lanes,
)
masks = st.integers(0, 0xFF)
# Dirty-byte strings as DLDC sees them (clean bytes already removed).
dirty_strings = st.lists(st.integers(0, 0xFF), min_size=1, max_size=8)


# ----------------------------------------------------------------------
# FPC
# ----------------------------------------------------------------------

@given(words)
def test_fpc_compress_round_trip(word):
    prefix, payload, bits = fpc_compress(word)
    assert payload >> bits == 0 if bits else payload == 0
    assert fpc_decompress(prefix, payload) == mask_word(word)


@given(words)
def test_fpc_codec_round_trip(word):
    codec = FpcCodec(expansion_enabled=True)
    enc = codec.encode(word)
    assert codec.decode(enc) == mask_word(word)
    assert enc.total_bits == enc.payload_bits + enc.tag_bits


# ----------------------------------------------------------------------
# CRADE = FPC + expansion coding
# ----------------------------------------------------------------------

@given(words)
def test_crade_round_trip_and_policy(word):
    codec = CradeCodec(expansion_enabled=True)
    enc = codec.encode(word)
    assert codec.decode(enc) == mask_word(word)
    # The policy must be exactly what the compressed size dictates, and
    # the payload must physically fit the chosen cell mapping.
    assert enc.policy is policy_for_size(enc.payload_bits)
    assert cells_used(enc.payload_bits, enc.policy) <= CELLS_PER_WORD


# ----------------------------------------------------------------------
# BDI
# ----------------------------------------------------------------------

@given(words)
def test_bdi_compress_round_trip(word):
    tag, payload, bits = bdi_compress(word)
    assert bdi_decompress(tag, payload) == mask_word(word)


@given(words)
def test_bdi_codec_round_trip(word):
    codec = BdiCodec(expansion_enabled=True)
    assert codec.decode(codec.encode(word)) == mask_word(word)


# ----------------------------------------------------------------------
# Expansion coding: bit <-> cell mapping
# ----------------------------------------------------------------------

@given(
    st.sampled_from(list(ExpansionPolicy)),
    st.integers(0, CELLS_PER_WORD * 3),
    st.data(),
)
def test_expansion_mapping_inverse(policy, payload_bits, data):
    if payload_bits > CELLS_PER_WORD * policy.bits_per_cell:
        return  # does not fit this policy; policy_for_size never picks it
    payload = data.draw(
        st.integers(0, (1 << payload_bits) - 1) if payload_bits else st.just(0)
    )
    levels = map_bits_to_cells(payload, payload_bits, policy)
    assert len(levels) == cells_used(payload_bits, policy)
    # Only the policy's cheapest-level subset may be programmed.
    allowed = set(tlc_levels_sorted_by_latency()[: 1 << policy.bits_per_cell])
    assert set(levels) <= allowed
    assert cells_to_bits(levels, payload_bits, policy) == payload


@given(st.integers(0, 80))
def test_policy_for_size_is_densest_fit(bits):
    policy = policy_for_size(bits)
    assert bits <= CELLS_PER_WORD * policy.bits_per_cell or policy is ExpansionPolicy.RAW
    # No denser policy could have held the payload.
    for denser in ExpansionPolicy:
        if denser.bits_per_cell < policy.bits_per_cell:
            assert bits > CELLS_PER_WORD * denser.bits_per_cell


# ----------------------------------------------------------------------
# DLDC
# ----------------------------------------------------------------------

@given(dirty_strings)
def test_dldc_pattern_round_trip(data):
    match = dldc_compress_pattern(data)
    if match is None:
        return
    tag, payload, bits = match
    assert tag in PATTERN_NAMES
    assert bits <= 8 * len(data)
    assert dldc_decompress_pattern(tag, payload, len(data)) == data


@given(words, masks, words)
def test_dldc_encode_log_round_trip(word, mask, junk):
    codec = DldcCodec()
    enc = codec.encode_log(word, mask)
    if mask == 0:
        assert enc.silent and enc.total_bits == 0
        # A silent entry decodes to the in-place word itself.
        assert codec.decode(enc, old_word=word) == mask_word(word)
        return
    # The base word agrees with the encoded word on the clean bytes and
    # may hold anything (stale data) in the dirty positions.
    base = scatter_bytes(mask_word(word), mask, select_bytes(junk, mask))
    assert codec.decode(enc, old_word=base) == mask_word(word)


@given(words, masks.filter(lambda m: m != 0))
def test_dldc_never_beats_raw_dirty_bytes(word, mask):
    """The compressed stream is never larger than the raw dirty bytes."""
    enc = DldcCodec().encode_log(word, mask)
    k = bin(mask).count("1")
    assert enc.payload_bits <= 1 + 8 * k  # header + raw dirty bytes


# ----------------------------------------------------------------------
# SLDE: least-cost winner selection and the never-both-DLDC rule
# ----------------------------------------------------------------------

@given(words, words, masks)
def test_slde_picks_cheaper_encoding(word, old, mask):
    slde = SldeCodec(expansion_enabled=True)
    ctx = LogWriteContext(old_word=old, dirty_mask=mask)
    enc = slde.encode_log(word, ctx)
    alt = slde.alternative.encode(word, old)
    if mask == 0:
        assert enc.silent
        return
    dldc = slde.dldc.encode_log(word, mask)
    best = min(
        alt.total_bits + ENCODING_TYPE_FLAG_BITS,
        dldc.total_bits + ENCODING_TYPE_FLAG_BITS,
    )
    assert enc.total_bits + ENCODING_TYPE_FLAG_BITS == best
    # Whatever won must still round-trip through the SLDE decoder.
    base = old if enc.method == "dldc" else None
    decoded = slde.decode(enc, base if base is not None else old)
    if enc.method == "dldc":
        # Base word: clean bytes shared with the encoded word.
        base = scatter_bytes(mask_word(word), mask, select_bytes(old, mask))
        decoded = slde.decode(enc, base)
    assert decoded == mask_word(word)


@given(words, masks, st.data())
def test_slde_pair_never_both_dldc(undo, mask, data):
    slde = SldeCodec(expansion_enabled=True)
    # Redo differs from undo exactly inside the dirty mask.
    dirty = data.draw(
        st.lists(
            st.integers(0, 0xFF),
            min_size=bin(mask).count("1"),
            max_size=bin(mask).count("1"),
        )
    )
    redo = scatter_bytes(mask_word(undo), mask, dirty)
    assert dirty_byte_mask(undo, redo) & ~mask == 0
    undo_enc, redo_enc = slde.encode_undo_redo_pair(undo, redo, mask)
    both_dldc = undo_enc.method == "dldc" and redo_enc.method == "dldc"
    if both_dldc:
        # Only allowed when one side wrote nothing at all.
        assert undo_enc.silent or redo_enc.silent
    # Each side must decode: a DLDC side borrows the other side's word as
    # its base (they share every clean byte by construction).
    if undo_enc.method == "dldc":
        assert slde.decode(undo_enc, redo) == mask_word(undo)
    else:
        assert slde.decode(undo_enc) == mask_word(undo)
    if redo_enc.method == "dldc":
        assert slde.decode(redo_enc, undo) == mask_word(redo)
    else:
        assert slde.decode(redo_enc) == mask_word(redo)


@given(words, masks)
def test_slde_silent_iff_clean(word, mask):
    slde = SldeCodec(expansion_enabled=True)
    enc = slde.encode_log(word, LogWriteContext(old_word=None, dirty_mask=mask))
    assert enc.silent == (mask == 0)
