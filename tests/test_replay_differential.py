"""Record -> replay is bit-exact against direct re-execution.

The replay subsystem (:mod:`repro.replay`) claims a recorded trace can
stand in for the workload: same RunResult, same NVM image, same trace
events, same crash-recovery and fault-sweep outcomes, with or without
the vectorized codec prewarm.  These tests pin that claim across the
four logger families of the paper's evaluation, plus the golden trace
digest (regenerate with ``tests/make_golden_replay.py``) and the
machine-reuse regression for back-to-back replays.
"""

import json
import os

import pytest

from repro.core.designs import make_system
from repro.core.system import CrashInjected
from repro.faultinject.sweep import (
    SweepOptions,
    run_sweep,
    sweep_system_config,
)
from repro.replay import record_trace, replay_trace
from repro.replay.prewarm import prewarm_codecs
from repro.replay.replayer import apply_trace_setup, trace_transaction_bodies
from repro.trace.bus import TraceConfig
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import tiny_config

#: The four logger families of the paper's evaluation.
DESIGNS = ("MorLog-SLDE", "FWB-CRADE", "Undo-CRADE", "Redo-CRADE")

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "replay_trace.json")

N_TX = 40
N_THREADS = 2


def cell_params(seed=11):
    return WorkloadParams(initial_items=48, key_space=96, seed=seed)


def record_cell(design, workload="hash", seed=11, n_tx=N_TX, config=None):
    """Record one tiny grid cell; returns (trace, result, system)."""
    return record_trace(
        design,
        workload,
        config=config if config is not None else tiny_config(),
        params=cell_params(seed),
        n_transactions=n_tx,
        n_threads=N_THREADS,
    )


def direct_run(design, workload="hash", seed=11, n_tx=N_TX, trace_config=None):
    system = make_system(design, tiny_config(), trace=trace_config)
    result = system.run(
        make_workload(workload, cell_params(seed)), n_tx, N_THREADS
    )
    return system, result


def nvm_image(system):
    return {
        addr: s.logical
        for addr, s in system.controller.nvm.array.snapshot().items()
    }


def assert_results_equal(a, b):
    assert a.transactions == b.transactions
    assert a.elapsed_ns == b.elapsed_ns
    assert a.stats == b.stats


class TestSameDesignBitExact:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_replay_equals_direct_run(self, design):
        trace, recorded_result, recorded_sys = record_cell(design)
        direct_sys, direct_result = direct_run(design)

        # Recording is inert: the recorded run IS a direct run.
        assert_results_equal(recorded_result, direct_result)
        assert nvm_image(recorded_sys) == nvm_image(direct_sys)

        replay_sys = make_system(design, tiny_config())
        replayed = replay_trace(replay_sys, trace)
        assert_results_equal(replayed, direct_result)
        assert nvm_image(replay_sys) == nvm_image(direct_sys)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_prewarm_is_result_inert(self, design):
        trace, _result, _sys = record_cell(design)
        warm_sys = make_system(design, tiny_config())
        cold_sys = make_system(design, tiny_config())
        warm = replay_trace(warm_sys, trace, prewarm=True)
        cold = replay_trace(cold_sys, trace, prewarm=False)
        assert_results_equal(warm, cold)
        assert nvm_image(warm_sys) == nvm_image(cold_sys)

    def test_prewarm_actually_seeds_and_hits(self):
        trace, _result, _sys = record_cell("MorLog-SLDE")
        system = make_system("MorLog-SLDE", tiny_config())
        stats = prewarm_codecs(system, trace)
        assert stats["pairs"] > 0
        assert stats["slde_seeded"] > 0
        assert stats["data_seeded"] > 0
        system2 = make_system("MorLog-SLDE", tiny_config())
        replay_trace(system2, trace, prewarm=True)
        memo_stats = system2.controller.nvm.log_codec.memo_stats()
        assert memo_stats["log"]["hits"] > 0

    def test_trace_event_streams_identical(self):
        trace, _result, _sys = record_cell("MorLog-SLDE")
        direct_sys, _ = direct_run(
            "MorLog-SLDE", trace_config=TraceConfig(enabled=True, capacity=0)
        )
        replay_sys = make_system(
            "MorLog-SLDE", tiny_config(),
            trace=TraceConfig(enabled=True, capacity=0),
        )
        replay_trace(replay_sys, trace)
        assert list(replay_sys.tracer.events) == list(direct_sys.tracer.events)


class TestCrossDesignReplay:
    def test_one_trace_scores_every_design_deterministically(self):
        # The paper's Fig 12/13 semantics: one recorded traffic pattern,
        # scored by every design.  Cross-design replay has no direct-run
        # twin (dispatch interleaving is timing-dependent), so the pinned
        # property is determinism: two fresh replays agree exactly.
        trace, _result, _sys = record_cell("MorLog-SLDE")
        elapsed = {}
        for design in DESIGNS:
            sys_a = make_system(design, tiny_config())
            sys_b = make_system(design, tiny_config())
            a = replay_trace(sys_a, trace)
            b = replay_trace(sys_b, trace, prewarm=False)
            assert_results_equal(a, b)
            assert nvm_image(sys_a) == nvm_image(sys_b)
            elapsed[design] = a.elapsed_ns
        # The designs are genuinely different machines.
        assert len(set(elapsed.values())) > 1


def run_crashing(system, schedule, crash_at):
    """Dispatch (core, body) pairs until the ``crash_at``-th commit point."""
    counter = [0]

    def hook():
        counter[0] += 1
        if counter[0] >= crash_at:
            raise CrashInjected()

    system.crash_hook = hook
    try:
        for core, body in schedule:
            system.run_transaction(core, body)
    except CrashInjected:
        pass
    finally:
        system.crash_hook = None


class TestCrashRecoveryEquality:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_crashed_replay_recovers_identically(self, design):
        crash_at = 25
        trace, _result, _sys = record_cell(design, seed=5)

        # Direct side: mirror System.run's dispatch loop so the recorded
        # schedule and this one are the same stream.
        direct_sys = make_system(design, tiny_config())
        workload = make_workload("hash", cell_params(seed=5))
        workload.setup(direct_sys, N_THREADS)
        direct_sys.reset_measurement()
        direct_sys._active_threads = N_THREADS

        def direct_schedule():
            for _ in range(N_TX):
                core = min(range(N_THREADS),
                           key=direct_sys.core_time_ns.__getitem__)
                yield core, workload.transaction(core)

        run_crashing(direct_sys, direct_schedule(), crash_at)
        direct_state = direct_sys.recover(verify_decode=True)

        # Replay side: same machine state rebuilt from the trace.
        replay_sys = make_system(design, tiny_config())
        apply_trace_setup(replay_sys, trace)
        replay_sys.reset_measurement()
        replay_sys._active_threads = N_THREADS
        schedule = zip(trace.tx_core.tolist(), trace_transaction_bodies(trace))
        run_crashing(replay_sys, schedule, crash_at)
        replay_state = replay_sys.recover(verify_decode=True)

        assert replay_state.committed_txids == direct_state.committed_txids
        assert replay_state.persisted_txids == direct_state.persisted_txids
        assert replay_state.redone_words == direct_state.redone_words
        assert replay_state.undone_words == direct_state.undone_words
        assert nvm_image(replay_sys) == nvm_image(direct_sys)


class TestFaultSweepEquality:
    @pytest.mark.parametrize("alias,design",
                             [("morlog", "MorLog-SLDE"), ("fwb", "FWB-CRADE")])
    def test_sweep_from_trace_equals_direct_sweep(self, alias, design):
        options = SweepOptions(workload="hash", transactions=4, threads=2,
                               seed=3, budget=12)
        trace, _result, _sys = record_trace(
            design,
            options.workload,
            config=sweep_system_config(),
            params=WorkloadParams(
                initial_items=options.initial_items,
                key_space=options.key_space,
                seed=options.seed,
            ),
            n_transactions=options.transactions,
            n_threads=options.threads,
        )
        direct = run_sweep(alias, options)
        replayed = run_sweep(alias, options, trace=trace)
        assert replayed.ok == direct.ok
        assert replayed.total_events == direct.total_events
        assert replayed.checked_events == direct.checked_events
        assert replayed.per_point == direct.per_point
        assert replayed.counterexample == direct.counterexample


class TestMachineReuse:
    """Regression: replay must cold-reset a reused machine (satellite 4)."""

    def test_back_to_back_replays_match_fresh_systems(self):
        trace_a, _r, _s = record_cell("MorLog-SLDE", workload="hash", seed=11)
        trace_b, _r, _s = record_cell("MorLog-SLDE", workload="queue", seed=7)

        fresh_a = replay_trace(make_system("MorLog-SLDE", tiny_config()), trace_a)
        fresh_b = replay_trace(make_system("MorLog-SLDE", tiny_config()), trace_b)

        reused = make_system("MorLog-SLDE", tiny_config())
        assert_results_equal(replay_trace(reused, trace_a), fresh_a)
        # No tx-table, FWB-schedule or log-region residue may leak into
        # the second replay.
        assert_results_equal(replay_trace(reused, trace_b), fresh_b)
        fresh_b_sys = make_system("MorLog-SLDE", tiny_config())
        replay_trace(fresh_b_sys, trace_b)
        assert len(reused._pending_lines) == len(fresh_b_sys._pending_lines)

    def test_direct_run_then_replay_and_back(self):
        trace, _result, _sys = record_cell("FWB-CRADE")
        fresh_replay = replay_trace(make_system("FWB-CRADE", tiny_config()),
                                    trace)
        _, fresh_run = direct_run("FWB-CRADE")

        mixed = make_system("FWB-CRADE", tiny_config())
        first = mixed.run(make_workload("hash", cell_params()), N_TX, N_THREADS)
        assert_results_equal(first, fresh_run)
        assert_results_equal(replay_trace(mixed, trace), fresh_replay)
        again = mixed.run(make_workload("hash", cell_params()), N_TX, N_THREADS)
        assert_results_equal(again, fresh_run)


# ---------------------------------------------------------------------------
# Golden trace: the canonical recorded cell's digest and result summary.
# ---------------------------------------------------------------------------

def make_golden_document():
    """The golden replay contract (used by tests/make_golden_replay.py)."""
    trace, result, _system = record_cell("MorLog-SLDE")
    return {
        "design": "MorLog-SLDE",
        "workload": "hash",
        "digest": trace.digest(),
        "n_transactions": trace.n_transactions,
        "n_ops": trace.n_ops,
        "n_setup_stores": int(trace.setup_addr.size),
        "n_store_pairs": int(trace.pair_old.size),
        "result": {
            "transactions": result.transactions,
            "elapsed_ns": result.elapsed_ns,
            "stats": result.stats,
        },
    }


class TestGoldenTrace:
    def test_recorded_trace_matches_golden(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        document = json.loads(json.dumps(make_golden_document(),
                                         sort_keys=True))
        assert document == golden, (
            "recorded trace diverged from tests/golden/replay_trace.json; "
            "if the change is intended, regenerate with "
            "`PYTHONPATH=src python tests/make_golden_replay.py`"
        )

    def test_golden_trace_replays_to_golden_result(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        trace, _result, _system = record_cell("MorLog-SLDE")
        system = make_system("MorLog-SLDE", tiny_config())
        replayed = replay_trace(system, trace)
        assert replayed.transactions == golden["result"]["transactions"]
        assert replayed.elapsed_ns == golden["result"]["elapsed_ns"]
        assert replayed.stats == golden["result"]["stats"]
