"""Parallel grid engine and result cache tests.

The contract under test: a parallel run produces bit-identical
``RunResult.stats`` to a sequential run of the same grid, and the
content-addressed cache returns equal results on hits while missing
whenever any keyed input (config, params, scale, counts) changes.
"""

import dataclasses
import json
import os

import pytest

from repro.common.config import SystemConfig
from repro.core.system import RunResult
from repro.experiments.cache import CACHE_VERSION, CacheStats, ResultCache, cell_key
from repro.experiments.parallel import (
    default_jobs,
    resolve_cell,
    run_cells,
    run_grid_parallel,
)
from repro.experiments.runner import ExperimentScale, default_config, run_grid
from repro.experiments.serialize import (
    canonical_json,
    config_from_dict,
    config_to_dict,
    params_from_dict,
    params_to_dict,
    run_result_from_dict,
    run_result_to_dict,
    stable_hash,
)
from repro.workloads.base import DatasetSize, WorkloadParams

TINY = ExperimentScale(
    micro_transactions=12, macro_transactions=10, micro_threads=2, macro_threads=2
)
DESIGNS = ("FWB-CRADE", "MorLog-SLDE")
WORKLOADS = ("hash", "queue")


def _assert_grids_identical(a, b):
    assert set(a) == set(b)
    for workload in a:
        assert set(a[workload]) == set(b[workload])
        for design in a[workload]:
            ra, rb = a[workload][design], b[workload][design]
            assert ra.stats == rb.stats, (workload, design)
            assert ra.elapsed_ns == rb.elapsed_ns
            assert ra.transactions == rb.transactions


class TestSerialization:
    def test_config_round_trip(self):
        config = default_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_config_round_trip_through_json(self):
        config = default_config()
        data = json.loads(canonical_json(config_to_dict(config)))
        assert config_from_dict(data) == config

    def test_params_round_trip(self):
        params = WorkloadParams(
            dataset=DatasetSize.LARGE, initial_items=7, key_space=77, seed=5,
            zero_fraction=0.1, small_fraction=0.2,
        )
        assert params_from_dict(params_to_dict(params)) == params

    def test_run_result_round_trip(self):
        result = RunResult(
            transactions=5, elapsed_ns=123.5, stats={"loads": 10.0, "stores": 3.0}
        )
        back = run_result_from_dict(run_result_to_dict(result))
        assert back == result

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})


class TestCellKey:
    def _key(self, **overrides):
        base = dict(
            design="FWB-CRADE",
            workload="hash",
            dataset=DatasetSize.SMALL,
            config=default_config(),
            params=WorkloadParams(),
            n_transactions=10,
            n_threads=2,
            repro_scale=1.0,
        )
        base.update(overrides)
        return cell_key(**base)

    def test_key_is_stable(self):
        assert self._key() == self._key()

    def test_config_change_changes_key(self):
        changed = dataclasses.replace(
            default_config(),
            logging=dataclasses.replace(
                default_config().logging, delay_persistence=True
            ),
        )
        assert self._key() != self._key(config=changed)

    def test_params_change_changes_key(self):
        assert self._key() != self._key(params=WorkloadParams(seed=999))

    def test_scale_change_changes_key(self):
        assert self._key() != self._key(repro_scale=2.0)

    def test_counts_change_changes_key(self):
        assert self._key() != self._key(n_transactions=11)
        assert self._key() != self._key(n_threads=4)

    def test_dataset_and_names_change_key(self):
        assert self._key() != self._key(dataset=DatasetSize.LARGE)
        assert self._key() != self._key(design="MorLog-SLDE")
        assert self._key() != self._key(workload="queue")


class TestResultCache:
    def test_round_trip_hit_returns_equal_result(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        result = RunResult(transactions=3, elapsed_ns=9.0, stats={"stores": 4.0})
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) == result
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        key = "cd" + "0" * 62
        cache.put(key, RunResult(1, 1.0, {}))
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_version_is_in_key_fields(self):
        spec = resolve_cell("FWB-CRADE", "hash", DatasetSize.SMALL, TINY)
        assert spec.key_fields()["version"] == CACHE_VERSION

    def test_cache_stats_dict(self):
        stats = CacheStats(hits=2, misses=1, stores=1)
        assert stats.as_dict() == {"hits": 2, "misses": 1, "stores": 1}

    def test_put_is_atomic_no_partial_files(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        key = "ef" + "0" * 62
        cache.put(key, RunResult(1, 1.0, {"x": 1.0}))
        files = []
        for root, _dirs, names in os.walk(str(tmp_path)):
            files.extend(names)
        assert files == [key + ".json"]


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_grid(DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY)

    def test_jobs1_matches_sequential(self, sequential):
        out = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=1
        )
        _assert_grids_identical(sequential, out.results)

    def test_jobs4_matches_jobs1(self, sequential):
        out = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=4
        )
        _assert_grids_identical(sequential, out.results)
        assert out.report.jobs == 4
        assert out.report.simulated_cells == len(DESIGNS) * len(WORKLOADS)

    def test_fig12_micro_grid_parallel_identical(self):
        """Acceptance: the Fig-12 grid is bit-identical at jobs=1 and 4."""
        from repro.core.designs import DESIGN_NAMES
        from repro.experiments.figures import MICRO

        grid1 = run_grid_parallel(
            DESIGN_NAMES, MICRO, DatasetSize.SMALL, TINY, jobs=1
        )
        grid4 = run_grid_parallel(
            DESIGN_NAMES, MICRO, DatasetSize.SMALL, TINY, jobs=4
        )
        _assert_grids_identical(grid1.results, grid4.results)

    def test_run_grid_delegates_to_parallel(self, sequential):
        via_runner = run_grid(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=2
        )
        _assert_grids_identical(sequential, via_runner)


class TestCachedGrid:
    def test_warm_rerun_executes_zero_cells(self, tmp_path, ):
        cache = ResultCache(cache_dir=str(tmp_path))
        cold = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=2, cache=cache
        )
        assert cold.report.simulated_cells == len(DESIGNS) * len(WORKLOADS)
        assert cold.report.hits == 0
        warm = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=2, cache=cache
        )
        assert warm.report.simulated_cells == 0
        assert warm.report.hits == len(DESIGNS) * len(WORKLOADS)
        _assert_grids_identical(cold.results, warm.results)

    def test_changed_config_misses(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = resolve_cell("FWB-CRADE", "queue", DatasetSize.SMALL, TINY)
        run_cells([spec], jobs=1, cache=cache)
        changed = dataclasses.replace(
            default_config(),
            logging=dataclasses.replace(
                default_config().logging, fwb_interval_cycles=1_000_000
            ),
        )
        spec2 = resolve_cell(
            "FWB-CRADE", "queue", DatasetSize.SMALL, TINY, config=changed
        )
        _results, report = run_cells([spec2], jobs=1, cache=cache)
        assert report.hits == 0 and report.misses == 1

    def test_changed_params_misses(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = resolve_cell("FWB-CRADE", "queue", DatasetSize.SMALL, TINY)
        run_cells([spec], jobs=1, cache=cache)
        spec2 = resolve_cell(
            "FWB-CRADE", "queue", DatasetSize.SMALL, TINY,
            params=WorkloadParams(seed=777),
        )
        _results, report = run_cells([spec2], jobs=1, cache=cache)
        assert report.hits == 0 and report.misses == 1

    def test_changed_repro_scale_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = resolve_cell(
            "FWB-CRADE", "queue", DatasetSize.SMALL, TINY,
            n_transactions=10, n_threads=1,
        )
        run_cells([spec], jobs=1, cache=cache)
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        # Explicit counts pin the simulation itself, but the scale is a
        # keyed input: a different REPRO_SCALE must not hit.
        spec2 = resolve_cell(
            "FWB-CRADE", "queue", DatasetSize.SMALL, TINY,
            n_transactions=10, n_threads=1,
        )
        assert spec.key() != spec2.key()

    def test_cached_result_equals_simulated(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = resolve_cell("MorLog-SLDE", "hash", DatasetSize.SMALL, TINY)
        first, _ = run_cells([spec], jobs=1, cache=cache)
        again, report = run_cells([spec], jobs=1, cache=cache)
        assert report.hits == 1
        assert first[0] == again[0]


class TestResolveCellValidation:
    """Explicit non-positive counts are caller errors, never coerced.

    Regression for the ``n_transactions or scale.transactions(...)``
    family: an explicit 0 silently became the scale default, so the
    cache key recorded a cell the simulation never ran.
    """

    def test_explicit_zero_transactions_raises(self):
        with pytest.raises(ValueError, match="n_transactions"):
            resolve_cell(
                "FWB-CRADE", "hash", DatasetSize.SMALL, TINY, n_transactions=0
            )

    def test_explicit_zero_threads_raises(self):
        with pytest.raises(ValueError, match="n_threads"):
            resolve_cell(
                "FWB-CRADE", "hash", DatasetSize.SMALL, TINY, n_threads=0
            )

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            resolve_cell(
                "FWB-CRADE", "hash", DatasetSize.SMALL, TINY,
                n_transactions=-5,
            )
        with pytest.raises(ValueError):
            resolve_cell(
                "FWB-CRADE", "hash", DatasetSize.SMALL, TINY, n_threads=-1
            )

    def test_none_still_takes_the_scale_default(self):
        spec = resolve_cell("FWB-CRADE", "hash", DatasetSize.SMALL, TINY)
        assert spec.n_transactions == TINY.transactions(False, DatasetSize.SMALL)
        assert spec.n_threads == TINY.threads(False)


class TestRunCellsStrict:
    """run_cells raises on a failing cell instead of silently dropping.

    Regression for the old ``[r for r in results if r is not None]``
    tail, which shifted every later result one position left and let
    ``run_grid_parallel`` unflatten the wrong cells into the grid.
    """

    def test_worker_failure_raises_typed_error(self):
        from repro.experiments.megagrid import CellExecutionError

        good = resolve_cell("FWB-CRADE", "hash", DatasetSize.SMALL, TINY)
        bad = dataclasses.replace(good, workload="no-such-workload")
        with pytest.raises(CellExecutionError):
            run_cells([good, bad], jobs=1)


class TestEngineShape:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_report_summary_renders(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        out = run_grid_parallel(
            ("FWB-CRADE",), ("queue",), DatasetSize.SMALL, TINY, jobs=1,
            cache=cache,
        )
        text = out.report.summary()
        assert "1 simulated" in text and "0 cache hits" in text

    def test_resolve_cell_applies_scale_and_dataset(self):
        spec = resolve_cell("FWB-CRADE", "hash", DatasetSize.LARGE, TINY)
        assert spec.n_transactions == TINY.transactions(False, DatasetSize.LARGE)
        assert spec.n_threads == TINY.threads(False)
        assert spec.params_dict["dataset"] == "LARGE"

    def test_figures_thread_jobs_and_cache(self, tmp_path):
        from repro.experiments import figures

        cache = ResultCache(cache_dir=str(tmp_path))
        _grid, values = figures.fig12_micro_throughput(
            DatasetSize.SMALL, TINY, designs=DESIGNS, jobs=2, cache=cache
        )
        assert cache.stats.stores == len(DESIGNS) * len(figures.MICRO)
        _grid, values2 = figures.fig12_micro_throughput(
            DatasetSize.SMALL, TINY, designs=DESIGNS, jobs=2, cache=cache
        )
        assert values == values2

    def test_headline_parallel_matches_serial(self, tmp_path):
        from repro.experiments.headline import headline_comparison

        cells = (("hash", DatasetSize.SMALL), ("queue", DatasetSize.SMALL))
        serial = headline_comparison(TINY, cells=cells)
        cache = ResultCache(cache_dir=str(tmp_path))
        parallel = headline_comparison(TINY, cells=cells, jobs=2, cache=cache)
        assert parallel == serial


class TestStatsKeyOrder:
    """Reports must not depend on which worker's stats arrive first.

    ``StatGroup.merge`` over disjoint key sets leaves insertion order at
    the mercy of arrival order; ``as_dict`` canonicalizes to sorted keys
    so parallel and sequential runs serialize identically.
    """

    def test_merge_order_does_not_leak_into_as_dict(self):
        from repro.common.stats import StatGroup

        ab = StatGroup("m")
        ab.add("alpha", 1.0)
        ab.add("beta", 2.0)
        ba = StatGroup("m")
        ba.add("beta", 2.0)
        ba.add("alpha", 1.0)

        first = StatGroup("total")
        first.merge(ab)
        first.merge(ba)
        second = StatGroup("total")
        second.merge(ba)
        second.merge(ab)

        assert list(first.as_dict()) == list(second.as_dict())
        assert first.as_dict() == second.as_dict()

    def test_disjoint_merge_is_canonical(self):
        from repro.common.stats import StatGroup

        left = StatGroup("w0")
        left.add("zeta", 3.0)
        right = StatGroup("w1")
        right.add("alpha", 1.0)

        one = StatGroup("total")
        one.merge(left)
        one.merge(right)
        other = StatGroup("total")
        other.merge(right)
        other.merge(left)

        assert list(one.as_dict()) == ["alpha", "zeta"]
        assert list(one.as_dict()) == list(other.as_dict())

    def test_jobs1_and_jobs4_serialize_identically(self):
        """Regression: key order in reports is identical across jobs."""
        grid1 = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=1
        )
        grid4 = run_grid_parallel(
            DESIGNS, WORKLOADS, DatasetSize.SMALL, TINY, jobs=4
        )
        for workload in grid1.results:
            for design in grid1.results[workload]:
                s1 = grid1.results[workload][design].stats
                s4 = grid4.results[workload][design].stats
                assert list(s1) == list(s4), (workload, design)
                assert canonical_json(s1) == canonical_json(s4)


class TestBenchEmitAtomic:
    def test_emit_writes_whole_file_atomically(self, tmp_path, monkeypatch, capsys):
        import benchmarks.bench_util as bench_util

        monkeypatch.setattr(bench_util, "RESULTS_DIR", str(tmp_path))
        bench_util.emit("sample", "line one\nline two")
        path = tmp_path / "sample.txt"
        assert path.read_text() == "line one\nline two\n"
        # No temp-file residue next to the result.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["sample.txt"]
        assert "line one" in capsys.readouterr().out
