"""Mega-grid engine tests: manifests, resume, fail-soft, figures.

The contracts under test, in paper-reproduction terms:

- a sweep interrupted mid-flight and resumed from its manifest simulates
  every cell exactly once across the two invocations and produces a grid
  bit-identical to an uninterrupted sequential run;
- one crashing (or hanging) worker fails only its own cell — a typed
  :class:`CellFailure` — while every other cell completes, and results
  never shift positions to paper over the hole;
- duplicate specs in one call are simulated once and fanned out
  bit-identically;
- every emitted figure artifact is a structurally valid, self-contained
  Vega-Lite spec with a CSV twin.
"""

import json
import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.manifest import (
    ManifestError,
    ManifestVersionError,
    build_manifest,
    load_manifest,
    manifest_status,
    shard_of,
    write_manifest,
)
from repro.experiments.megagrid import (
    CellExecutionError,
    ExecutionPolicy,
    GridAssemblyError,
    InjectedCellFault,
    MegaGridReport,
    apply_injected_fault,
    execute_payloads,
    progress_path_for,
    resume_megagrid,
    run_megagrid,
)
from repro.experiments.parallel import (
    resolve_cell,
    run_cells,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.runner import ExperimentScale
from repro.experiments.vega import (
    FigureError,
    discover_figures,
    grid_rows,
    grid_vega_spec,
    validate_vega_lite,
    write_figure,
)
from repro.workloads.base import DatasetSize

TINY = ExperimentScale(
    micro_transactions=12, macro_transactions=10, micro_threads=2,
    macro_threads=2,
)
DESIGNS = ("FWB-CRADE", "MorLog-SLDE")
WORKLOADS = ("hash", "queue")


def _specs():
    return [
        resolve_cell(design, workload, DatasetSize.SMALL, TINY)
        for workload in WORKLOADS
        for design in DESIGNS
    ]


def _assert_results_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra is not None and rb is not None
        assert ra.stats == rb.stats
        assert ra.elapsed_ns == rb.elapsed_ns
        assert ra.transactions == rb.transactions


class TestSpecSerialization:
    def test_round_trip_preserves_key(self):
        for spec in _specs():
            back = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
            assert back == spec
            assert back.key() == spec.key()


class TestManifest:
    def test_round_trip(self, tmp_path):
        specs = _specs()
        manifest = build_manifest(specs, shards=3, meta={"note": "t"})
        path = str(tmp_path / "sweep.json")
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded.keys() == [s.key() for s in specs]
        assert loaded.specs() == specs
        assert loaded.shards == 3
        assert loaded.meta == {"note": "t"}

    def test_shard_assignment_is_deterministic_and_in_range(self):
        manifest = build_manifest(_specs(), shards=3)
        for cell in manifest.cells:
            assert cell["shard"] == shard_of(cell["key"], 3)
            assert 0 <= cell["shard"] < 3

    def test_duplicates_keep_positions(self):
        spec = _specs()[0]
        manifest = build_manifest([spec, spec])
        assert len(manifest.cells) == 2
        assert manifest.keys() == [spec.key(), spec.key()]

    def test_version_mismatch_raises_typed_error(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        write_manifest(path, build_manifest(_specs()))
        with open(path) as handle:
            data = json.load(handle)
        data["version"] = 999
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ManifestVersionError):
            load_manifest(path)

    def test_edited_spec_fails_key_integrity(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        write_manifest(path, build_manifest(_specs()))
        with open(path) as handle:
            data = json.load(handle)
        data["cells"][0]["spec"]["n_transactions"] = 99999
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ManifestError, match="does not match"):
            load_manifest(path)

    def test_garbage_and_missing_files_raise(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(str(tmp_path / "absent.json"))
        path = str(tmp_path / "garbage.json")
        with open(path, "w") as handle:
            handle.write("{nope")
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_status_splits_done_and_missing(self, tmp_path):
        specs = _specs()
        cache = ResultCache(cache_dir=str(tmp_path / "cache"))
        run_megagrid([specs[0]], jobs=1, cache=cache)
        manifest = build_manifest(specs)
        status = manifest_status(manifest, cache)
        assert status["done"] == [specs[0].key()]
        assert set(status["missing"]) == {s.key() for s in specs[1:]}


class TestInjectedFaults:
    def test_raise_mode(self):
        with pytest.raises(InjectedCellFault):
            apply_injected_fault({"_inject": {"mode": "raise"}})

    def test_raise_once_uses_flag_file(self, tmp_path):
        flag = str(tmp_path / "tripped")
        payload = {"_inject": {"mode": "raise-once", "flag_path": flag}}
        with pytest.raises(InjectedCellFault):
            apply_injected_fault(payload)
        assert os.path.exists(flag)
        apply_injected_fault(payload)  # second attempt passes

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            apply_injected_fault({"_inject": {"mode": "nope"}})

    def test_no_inject_is_a_no_op(self):
        apply_injected_fault({})


class TestKillAndResume:
    def test_interrupt_then_resume_is_exactly_once_and_bit_identical(
        self, tmp_path
    ):
        specs = _specs()
        baseline = run_megagrid(specs, jobs=1)

        cache = ResultCache(cache_dir=str(tmp_path / "cache"))
        manifest_path = str(tmp_path / "sweep.json")
        with pytest.raises(KeyboardInterrupt):
            run_megagrid(
                specs, manifest_path=manifest_path, jobs=2, cache=cache,
                interrupt_after=2,
            )
        # The interrupted run streamed exactly its completed cells.
        assert cache.stats.stores == 2

        resumed = resume_megagrid(manifest_path, jobs=2, cache=cache)
        assert resumed.report.resumed
        assert not resumed.failures
        # Exactly-once across both invocations: 2 streamed before the
        # kill, the remaining 2 on resume, none twice.
        assert resumed.report.simulated_cells == len(specs) - 2
        assert resumed.report.hits == 2
        assert cache.stats.stores == len(specs)
        _assert_results_identical(baseline.results, resumed.results)
        # And the resumed grid assembles by identity.
        grid = resumed.grid()
        for spec in specs:
            assert grid[spec.workload][spec.design] is not None

    def test_progress_stream_records_lifecycle(self, tmp_path):
        specs = _specs()
        cache = ResultCache(cache_dir=str(tmp_path / "cache"))
        manifest_path = str(tmp_path / "sweep.json")
        run_megagrid(specs, manifest_path=manifest_path, jobs=2, cache=cache)
        progress = progress_path_for(manifest_path)
        with open(progress) as handle:
            events = [json.loads(line) for line in handle]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "finish"
        assert kinds.count("completed") == len(specs)
        completed_keys = {e["key"] for e in events if e["event"] == "completed"}
        assert completed_keys == {s.key() for s in specs}

    def test_warm_rerun_simulates_nothing(self, tmp_path):
        specs = _specs()
        cache = ResultCache(cache_dir=str(tmp_path / "cache"))
        cold = run_megagrid(specs, jobs=2, cache=cache)
        warm = run_megagrid(specs, jobs=2, cache=cache)
        assert warm.report.simulated_cells == 0
        assert warm.report.hits == len(specs)
        _assert_results_identical(cold.results, warm.results)


class TestFailSoft:
    def test_injected_fault_fails_only_its_cell(self, tmp_path):
        specs = _specs()
        bad_key = specs[1].key()
        outcome = run_megagrid(
            specs, jobs=2, retries=0, fail_soft=True,
            inject={bad_key: {"mode": "raise", "message": "boom"}},
        )
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.key == bad_key
        assert failure.kind == "exception"
        assert "boom" in failure.message
        assert failure.design == specs[1].design
        # Every other cell completed, at its own position.
        for i, result in enumerate(outcome.results):
            if specs[i].key() == bad_key:
                assert result is None
            else:
                assert result is not None
        assert "1 FAILED" in outcome.report.summary()
        with pytest.raises(GridAssemblyError):
            outcome.grid()

    def test_positions_never_shift_around_a_failure(self):
        # [good, bad, good]: the regression for the old silent-drop
        # compaction, which would have left results[1] holding cell 2.
        specs = [
            resolve_cell("FWB-CRADE", "hash", DatasetSize.SMALL, TINY),
            resolve_cell("MorLog-SLDE", "hash", DatasetSize.SMALL, TINY),
            resolve_cell("FWB-CRADE", "queue", DatasetSize.SMALL, TINY),
        ]
        outcome = run_megagrid(
            specs, jobs=1, retries=0, fail_soft=True,
            inject={specs[1].key(): {"mode": "raise"}},
        )
        solo = run_megagrid([specs[0], specs[2]], jobs=1)
        assert outcome.results[1] is None
        assert outcome.results[0].stats == solo.results[0].stats
        assert outcome.results[2].stats == solo.results[1].stats

    def test_fail_fast_raises_typed_error(self):
        specs = _specs()
        with pytest.raises(CellExecutionError):
            run_megagrid(
                specs, jobs=1, retries=0, fail_soft=False,
                inject={specs[0].key(): {"mode": "raise"}},
            )

    def test_transient_fault_is_retried_to_success(self, tmp_path):
        specs = _specs()[:2]
        flag = str(tmp_path / "tripped")
        outcome = run_megagrid(
            specs, jobs=2, retries=1, fail_soft=True,
            inject={
                specs[0].key(): {"mode": "raise-once", "flag_path": flag}
            },
        )
        assert not outcome.failures
        assert all(r is not None for r in outcome.results)
        baseline = run_megagrid(specs, jobs=1)
        _assert_results_identical(baseline.results, outcome.results)

    def test_timeout_fails_only_the_hung_cell(self):
        specs = _specs()
        slow_key = specs[0].key()
        outcome = run_megagrid(
            specs, jobs=2, retries=0, timeout_s=0.5, fail_soft=True,
            inject={slow_key: {"mode": "sleep", "seconds": 30.0}},
        )
        assert [f.key for f in outcome.failures] == [slow_key]
        assert outcome.failures[0].kind == "timeout"
        completed = [
            r for s, r in zip(specs, outcome.results) if s.key() != slow_key
        ]
        assert all(r is not None for r in completed)

    def test_failed_events_reach_the_progress_stream(self, tmp_path):
        specs = _specs()[:2]
        manifest_path = str(tmp_path / "sweep.json")
        outcome = run_megagrid(
            specs, manifest_path=manifest_path, jobs=1, retries=0,
            fail_soft=True, inject={specs[0].key(): {"mode": "raise"}},
        )
        assert len(outcome.failures) == 1
        with open(progress_path_for(manifest_path)) as handle:
            events = [json.loads(line) for line in handle]
        failed = [e for e in events if e["event"] == "failed"]
        assert len(failed) == 1 and failed[0]["key"] == specs[0].key()


class TestDeduplication:
    def test_duplicate_specs_simulate_once_and_fan_out(self):
        spec = resolve_cell("FWB-CRADE", "hash", DatasetSize.SMALL, TINY)
        results, report = run_cells([spec, spec, spec], jobs=2)
        assert report.simulated_cells == 1
        assert report.hits == 2
        assert sum(1 for c in report.cells if c.deduped) == 2
        assert results[0].stats == results[1].stats == results[2].stats
        assert results[0].elapsed_ns == results[1].elapsed_ns

    def test_dedup_matches_solo_run_bit_identically(self):
        spec = resolve_cell("MorLog-SLDE", "queue", DatasetSize.SMALL, TINY)
        solo, _report = run_cells([spec], jobs=1)
        duped, _report2 = run_cells([spec, spec], jobs=2)
        assert duped[0].stats == solo[0].stats
        assert duped[1].stats == solo[0].stats


class TestExecutePayloads:
    def test_empty_entries_is_a_no_op(self):
        outputs, failures = execute_payloads(
            [], worker=None, policy=ExecutionPolicy(jobs=4),
            describe=lambda key: ("d", "w", "s"),
        )
        assert outputs == {} and failures == {}


class TestMegaGridRecords:
    def test_records_cover_sweep_shape(self):
        from repro.experiments.megagrid import megagrid_records

        outcome = run_megagrid(_specs(), jobs=1)
        records = megagrid_records(outcome, sweep_name="unit")
        metrics = {r.metric: r.value for r in records}
        assert metrics["cells_total"] == len(_specs())
        assert metrics["cells_failed"] == 0
        digests = {r.config_digest for r in records}
        assert len(digests) == 1
        assert all(r.benchmark == "megagrid/unit" for r in records)


class TestVega:
    VALUES = {
        "hash": {"FWB-CRADE": 1.0, "MorLog-SLDE": 1.5},
        "queue": {"FWB-CRADE": 2.0, "MorLog-SLDE": 1.8},
    }

    def test_grid_rows_skip_missing_cells(self):
        values = {"hash": {"A": 1.0, "B": None}}
        rows = grid_rows(values)
        assert rows == [{"workload": "hash", "design": "A", "value": 1.0}]

    def test_spec_validates_and_counts_rows(self):
        spec = grid_vega_spec(self.VALUES, "t", "tx/s")
        assert validate_vega_lite(spec) == 4

    def test_validation_rejects_broken_specs(self):
        spec = grid_vega_spec(self.VALUES, "t", "tx/s")
        for mutate in (
            lambda s: s.pop("$schema"),
            lambda s: s.pop("mark"),
            lambda s: s.pop("encoding"),
            lambda s: s["data"]["values"].clear(),
            lambda s: s["encoding"]["y"].update(field="nope"),
        ):
            broken = json.loads(json.dumps(spec))
            mutate(broken)
            with pytest.raises(FigureError):
                validate_vega_lite(broken)

    def test_write_figure_emits_vl_and_csv(self, tmp_path):
        paths = write_figure(
            str(tmp_path), "fig_unit", self.VALUES, "unit figure", "tx/s")
        with open(paths.vl_path) as handle:
            spec = json.load(handle)
        assert validate_vega_lite(spec) == 4
        assert spec["title"] == "unit figure"
        with open(paths.csv_path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "workload,design,value"
        assert len(lines) == 5

    def test_discover_figures_lists_valid_and_invalid(self, tmp_path):
        write_figure(str(tmp_path), "good", self.VALUES, "ok", "tx/s")
        with open(str(tmp_path / "bad.vl.json"), "w") as handle:
            handle.write("{}")
        figures = discover_figures(str(tmp_path))
        by_name = {f["name"]: f for f in figures}
        assert by_name["good"]["rows"] == 4
        assert by_name["good"]["csv_path"] is not None
        assert by_name["bad"]["rows"] is None

    def test_report_section_links_figures(self, tmp_path):
        from repro.bench.report import figures_section

        write_figure(str(tmp_path), "fig_x", self.VALUES, "X", "tx/s")
        lines = figures_section(discover_figures(str(tmp_path)))
        text = "\n".join(lines)
        assert "fig_x.vl.json" in text and "fig_x.csv" in text
        assert "4 rows" in text


class TestMegaGridReportSummary:
    def test_summary_keeps_grid_prefix(self):
        report = MegaGridReport(jobs=2)
        assert report.summary().startswith("grid: 0 cells, 0 simulated")

    def test_summary_flags_failures_and_resume(self):
        from repro.experiments.megagrid import CellFailure

        report = MegaGridReport(jobs=2, resumed=True)
        report.failures.append(CellFailure(
            key="k", design="d", workload="w", dataset="SMALL",
            kind="exception", message="m", attempts=1, seconds=0.1,
        ))
        text = report.summary()
        assert "[resumed]" in text and "1 FAILED" in text
