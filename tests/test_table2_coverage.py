"""Table II coverage: every DLDC pattern is reachable, silent writes vanish.

Two layers of evidence that the DLDC implementation covers the paper's
Table II:

1. a constructed dirty-byte layout per pattern, each asserting that the
   codec actually picks that tag (not merely that *some* tag matches);
2. an end-to-end check on a MorLog-SLDE system that a completely-clean
   store (CONSEQUENCE 2's limit case) produces no log entry at all and
   that clean bytes shrink the log traffic of partially-dirty stores.
"""

import pytest

from repro.common.bitops import WORD_BYTES, bytes_to_word
from repro.encoding.dldc import DldcCodec, PATTERN_NAMES
from repro.logging_hw.recovery import recover
from tests.conftest import make_tiny_system

# One (dirty-byte string) construction per Table II tag.  Each string is
# chosen so its intended pattern is the unique cheapest match.
PATTERN_LAYOUTS = {
    0b000: [0, 0, 0, 0],                    # all-zero
    0b001: [1, 0xFF, 1, 0xFE],              # every byte in [-2, 1]
    0b010: [7, 0xF8, 5, 0xFA],              # every byte in [-8, 7]
    0b011: [0x45, 0, 0, 0],                 # whole string fits 8-bit se
    0b100: [0x34, 0x12, 0, 0],              # whole string fits 16-bit se
    0b101: [0x78, 0x56, 0x34, 0x12, 0],     # fits 32-bit se (needs k > 4)
    0b110: [0x10, 0x20, 0x30, 0x40],        # low nibble of every byte zero
    0b111: [0, 0x87],                       # leading zero byte, rest raw
}


def _encode_layout(codec: DldcCodec, data):
    """Build (word, mask) whose dirty bytes are exactly ``data``."""
    k = len(data)
    mask = (1 << k) - 1
    word = bytes_to_word(data + [0] * (WORD_BYTES - k))
    return codec.encode_log(word, mask)


@pytest.mark.parametrize("tag", sorted(PATTERN_LAYOUTS))
def test_each_table2_pattern_is_chosen(tag):
    codec = DldcCodec()
    enc = _encode_layout(codec, PATTERN_LAYOUTS[tag])
    parsed = codec.parse(enc)
    assert parsed.compressed, PATTERN_NAMES[tag]
    assert parsed.tag == tag, (
        "layout for %s matched %s instead"
        % (PATTERN_NAMES[tag], PATTERN_NAMES.get(parsed.tag))
    )


def test_layouts_cover_the_whole_table():
    assert set(PATTERN_LAYOUTS) == set(PATTERN_NAMES)


def test_incompressible_layout_stores_raw_dirty_bytes():
    codec = DldcCodec()
    enc = _encode_layout(codec, [0x9E, 0x37, 0x79, 0xB9])
    parsed = codec.parse(enc)
    assert not parsed.compressed and parsed.tag is None
    assert parsed.dirty_bytes == [0x9E, 0x37, 0x79, 0xB9]


# ----------------------------------------------------------------------
# End to end: silent log writes drop out of the whole pipeline
# ----------------------------------------------------------------------

def test_silent_store_appends_no_log_entry():
    system = make_tiny_system("MorLog-SLDE")
    base = system.config.nvmm_base
    for i in range(8):
        system.setup_store(base + i * WORD_BYTES, 0x1111)
    system.reset_measurement()

    ctx = system.contexts[0]
    tx = system.begin_tx(0)
    ctx.store(base, 0x1111)  # value unchanged: every byte clean
    stats = system.stats.as_dict()
    assert stats.get("silent_stores", 0) == 1
    assert stats.get("entries_appended", 0) == 0
    assert stats.get("log_writes", 0) == 0
    system.end_tx(0)

    # Only the commit record reached the log; recovery sees a committed
    # transaction with no data entries and leaves the word alone.
    stats = system.stats.as_dict()
    assert stats.get("entries_appended", 0) == 1
    state = recover(
        system.controller,
        system.log_region.base_addr,
        system.config.logging.log_region_bytes,
    )
    assert tx.txid in state.persisted_txids
    assert system.persistent_word(base) == 0x1111


def test_clean_bytes_shrink_log_traffic():
    def log_bits_for(new_value):
        system = make_tiny_system("MorLog-SLDE")
        base = system.config.nvmm_base
        system.setup_store(base, 0x1111_2222_3333_4444)
        system.reset_measurement()
        system.begin_tx(0)
        system.contexts[0].store(base, new_value)
        system.end_tx(0)
        system.logger.drain(system.core_time_ns[0])
        return system.stats.get("log_bits")

    one_dirty_byte = log_bits_for(0x1111_2222_3333_44FF)
    all_dirty = log_bits_for(0xDEAD_BEEF_CAFE_F00D)
    assert 0 < one_dirty_byte < all_dirty
