"""NVM substrate tests: cell costs, the array, bank timing, the module."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import (
    EncodingConfig,
    NVMConfig,
    TLC_WRITE_ENERGY_PJ,
    TLC_WRITE_LATENCY_NS,
)
from repro.common.stats import StatGroup
from repro.encoding.base import RawCodec
from repro.encoding.slde import LogWriteContext
from repro.nvm.array import NvmArray, TAG_CELLS
from repro.nvm.cell import program_cost
from repro.nvm.module import LogDataWord, NvmModule, WriteKind
from repro.nvm.timing import BankTiming, WriteQueue

levels = st.lists(
    st.integers(min_value=0, max_value=7), min_size=22, max_size=22
)


class TestProgramCost:
    def test_identical_levels_free(self):
        cost = program_cost((1, 2, 3), (1, 2, 3), NVMConfig())
        assert cost.cells_programmed == 0
        assert cost.latency_ns == 0.0
        assert cost.energy_pj == 0.0

    def test_single_cell_cost_matches_table(self):
        cost = program_cost((0,), (0b100,), NVMConfig())
        assert cost.cells_programmed == 1
        assert cost.latency_ns == TLC_WRITE_LATENCY_NS[0b100]
        assert cost.energy_pj == TLC_WRITE_ENERGY_PJ[0b100]

    def test_latency_is_max_energy_is_sum(self):
        cost = program_cost((0, 0), (0b100, 0b111), NVMConfig())
        assert cost.latency_ns == TLC_WRITE_LATENCY_NS[0b100]
        assert cost.energy_pj == pytest.approx(
            TLC_WRITE_ENERGY_PJ[0b100] + TLC_WRITE_ENERGY_PJ[0b111]
        )

    def test_latency_scale_applies(self):
        config = NVMConfig(write_latency_scale=4.0)
        cost = program_cost((0,), (0b111,), config)
        assert cost.latency_ns == pytest.approx(4.0 * TLC_WRITE_LATENCY_NS[0b111])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            program_cost((0,), (0, 1), NVMConfig())

    @given(levels, levels)
    def test_programmed_count_equals_differing_cells(self, old, new):
        cost = program_cost(tuple(old), tuple(new), NVMConfig())
        assert cost.cells_programmed == sum(
            1 for a, b in zip(old, new) if a != b
        )


class TestNvmArray:
    def _array(self):
        return NvmArray(NVMConfig(), StatGroup("t"))

    def test_pristine_reads_zero(self):
        assert self._array().read_logical(0x1000) == 0

    def test_write_read_roundtrip(self):
        array = self._array()
        codec = RawCodec()
        array.write_word(0x1000, codec.encode(0xDEAD), 0xDEAD)
        assert array.read_logical(0x1000) == 0xDEAD

    def test_silent_rewrite_programs_nothing(self):
        array = self._array()
        codec = RawCodec()
        array.write_word(0x1000, codec.encode(0xDEAD), 0xDEAD)
        cost = array.write_word(0x1000, codec.encode(0xDEAD), 0xDEAD)
        assert cost.cells_programmed == 0 and cost.silent

    def test_silent_encoding_skips_slot(self):
        from repro.encoding.dldc import DldcCodec

        array = self._array()
        encoded = DldcCodec().encode_log(0x42, 0)
        cost = array.write_word(0x1000, encoded, 0x42)
        assert cost.silent and cost.bits_written == 0
        assert array.read_logical(0x1000) == 0  # untouched

    def test_unaligned_addr_normalized(self):
        array = self._array()
        array.write_word(0x1003, RawCodec().encode(7), 7)
        assert array.read_logical(0x1000) == 7

    def test_snapshot_restore(self):
        array = self._array()
        codec = RawCodec()
        array.write_word(0x0, codec.encode(1), 1)
        snap = array.snapshot()
        array.write_word(0x0, codec.encode(2), 2)
        array.restore(snap)
        assert array.read_logical(0x0) == 1

    def test_snapshot_is_deep(self):
        array = self._array()
        codec = RawCodec()
        array.write_word(0x0, codec.encode(1), 1)
        snap = array.snapshot()
        array.write_logical(0x0, 99)
        assert snap[0].logical == 1

    def test_expansion_writes_fewer_cells_than_raw(self):
        from repro.encoding.crade import CradeCodec

        raw_array = self._array()
        crade_array = self._array()
        raw_cost = raw_array.write_word(0, RawCodec().encode(0x7F), 0x7F)
        crade_cost = crade_array.write_word(0, CradeCodec().encode(0x7F), 0x7F)
        assert crade_cost.cells_programmed < raw_cost.cells_programmed


class TestWriteQueue:
    def test_accept_immediate_when_space(self):
        queue = WriteQueue(4, 0.75)
        assert queue.accept_time(100.0) == 100.0

    def test_accept_blocks_when_full(self):
        queue = WriteQueue(2, 0.5)
        queue.push(200.0)
        queue.push(300.0)
        assert queue.accept_time(100.0) == 200.0

    def test_entries_drain_over_time(self):
        queue = WriteQueue(2, 0.5)
        queue.push(200.0)
        queue.push(300.0)
        assert queue.occupancy(250.0) == 1
        assert queue.accept_time(250.0) == 250.0

    def test_drain_time_to_watermark(self):
        queue = WriteQueue(4, 0.5)  # watermark at 2 entries
        for end in (100.0, 200.0, 300.0, 400.0):
            queue.push(end)
        # 4 entries at t=0; drains to 2 when the 2nd oldest finishes.
        assert queue.drain_time_to_watermark(0.0) == 200.0

    def test_out_of_order_pushes_kept_sorted(self):
        queue = WriteQueue(4, 0.5)
        queue.push(300.0)
        queue.push(100.0)
        assert queue.accept_time(0.0) == 0.0
        assert queue.occupancy(150.0) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            WriteQueue(0, 0.5)


class TestBankTiming:
    def _timing(self):
        return BankTiming(NVMConfig(), StatGroup("t"))

    def test_line_interleaving_across_channels(self):
        timing = self._timing()
        channels = {timing.location(line * 64)[0] for line in range(8)}
        assert channels == set(range(4))

    def test_same_bank_serializes(self):
        timing = self._timing()
        first = timing.write(0, 0.0, 100.0)
        second = timing.write(0, 0.0, 100.0)
        assert second.finish_ns >= first.finish_ns + 100.0

    def test_different_banks_parallel(self):
        timing = self._timing()
        a = timing.write(0, 0.0, 100.0)
        b = timing.write(64, 0.0, 100.0)  # different channel
        assert abs(a.finish_ns - b.finish_ns) < 1e-9

    def test_read_waits_for_busy_bank(self):
        timing = self._timing()
        write = timing.write(0, 0.0, 100.0)
        read_done = timing.read(0, 0.0)
        assert read_done > write.finish_ns

    def test_reset_clears_state(self):
        timing = self._timing()
        timing.write(0, 0.0, 100.0)
        timing.reset()
        fresh = timing.write(0, 0.0, 100.0)
        assert fresh.accept_ns == 0.0


class TestNvmModule:
    def _module(self, **enc):
        return NvmModule(NVMConfig(), EncodingConfig(**enc), StatGroup("t"))

    def test_data_line_roundtrip(self):
        module = self._module()
        words = [1, 2, 3, 4, 5, 6, 7, 8]
        module.write_data_line(0x40, words, 0.0)
        got, _t = module.read_line(0x40, 0.0)
        assert list(got) == words

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError):
            self._module().write_data_line(0, [1, 2, 3], 0.0)

    def test_log_entry_with_slde(self):
        module = self._module()
        old, new = 0x10, 0x13
        from repro.common.bitops import dirty_byte_mask

        ctx = LogWriteContext(old_word=old, dirty_mask=dirty_byte_mask(old, new))
        result = module.write_log_entry(
            0x100, [0xAA, 0xBB], 0.0,
            undo=LogDataWord(old, ctx), redo=LogDataWord(new, ctx),
        )
        assert len(result.encoded_words) == 4
        assert module.stats.get("log_writes") == 1

    def test_decode_word_verifies_consistency(self):
        module = self._module()
        module.write_data_line(0x40, [9] * 8, 0.0)
        assert module.decode_word(0x40) == 9
        # Corrupt the logical value; decode must notice.
        module.array._slot(0x40).logical = 10
        with pytest.raises(ValueError):
            module.decode_word(0x40)

    def test_commit_kind_counted_separately(self):
        module = self._module()
        module.write_log_entry(0x200, [1, 2], 0.0, kind=WriteKind.COMMIT)
        assert module.stats.get("commit_writes") == 1
        assert module.stats.get("log_writes") == 0

    def test_silent_request_elided(self):
        module = self._module()
        module.write_data_line(0x40, [5] * 8, 0.0)
        result = module.write_data_line(0x40, [5] * 8, 10.0)
        assert result.cost.silent
        assert result.schedule.finish_ns == 10.0
