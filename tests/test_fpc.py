"""FPC compression tests (repro.encoding.fpc)."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.fpc import (
    FPC_PATTERNS,
    FpcCodec,
    fpc_compress,
    fpc_decompress,
    fpc_match,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestPatternMatching:
    def test_zero_word(self):
        assert fpc_match(0) == 0b000

    def test_4bit_sign_extended(self):
        assert fpc_match(7) == 0b001
        assert fpc_match((1 << 64) - 1) == 0b001  # -1

    def test_8bit_sign_extended(self):
        assert fpc_match(0x7F) == 0b010

    def test_16bit_sign_extended(self):
        assert fpc_match(0x7FFF) == 0b011

    def test_32bit_sign_extended(self):
        assert fpc_match(0x7FFF_FFFF) == 0b100

    def test_zero_low_half(self):
        assert fpc_match(0x1234_5678_0000_0000) == 0b101

    def test_repeated_bytes(self):
        assert fpc_match(0xABAB_ABAB_ABAB_ABAB) == 0b110

    def test_uncompressed(self):
        assert fpc_match(0x0123_4567_89AB_CDEF) == 0b111

    def test_repeated_byte_beats_wider_sign_extension(self):
        # 0xFFFF...FF matches both se4 (as -1) and repeated; se4 is smaller.
        assert fpc_match((1 << 64) - 1) == 0b001


class TestRoundtrip:
    @given(words)
    def test_compress_decompress(self, w):
        prefix, payload, bits = fpc_compress(w)
        assert payload < (1 << bits) or bits == 0
        assert fpc_decompress(prefix, payload) == w

    @given(words)
    def test_payload_never_exceeds_word(self, w):
        _prefix, _payload, bits = fpc_compress(w)
        assert 0 <= bits <= 64

    def test_decompress_rejects_wide_payload(self):
        with pytest.raises(ValueError):
            fpc_decompress(0b001, 0x1F)


class TestCodec:
    @given(words)
    def test_codec_roundtrip(self, w):
        codec = FpcCodec()
        encoded = codec.encode(w)
        assert codec.decode(encoded) == w

    def test_zero_word_encodes_to_nothing(self):
        encoded = FpcCodec().encode(0)
        assert encoded.payload_bits == 0
        assert encoded.tag_bits == 3

    def test_sizes_match_pattern_table(self):
        codec = FpcCodec()
        for prefix, (_name, bits) in FPC_PATTERNS.items():
            if prefix == 0b111:
                continue
        encoded = codec.encode(0x7F)  # se8
        assert encoded.payload_bits == 8

    def test_decode_rejects_foreign_encoding(self):
        from repro.encoding.base import RawCodec

        raw = RawCodec().encode(5)
        with pytest.raises(ValueError):
            FpcCodec().decode(raw)
