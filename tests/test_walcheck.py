"""Online WAL-ordering checker tests.

Every design must keep undo data ahead of in-place writes; the checker
watches a live run.  A synthetic violation confirms the monitor actually
detects what it claims to.
"""

import pytest

from repro.analysis.walcheck import WalChecker, attach_wal_checker
from repro.core.designs import DESIGN_NAMES, make_system
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.workloads.base import WorkloadParams, make_workload
from tests.conftest import make_tiny_system, tiny_config

PARAMS = WorkloadParams(initial_items=512, key_space=1024, seed=6)


@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_no_wal_violations_during_runs(design):
    # Frequent force-write-back scans push in-place data to NVMM while
    # transactions are in flight — the risky window the checker guards.
    system = make_system(design, tiny_config(fwb_interval_cycles=2_000))
    checker = attach_wal_checker(system)
    workload = make_workload("hash", PARAMS)
    system.run(workload, 200, n_threads=2)
    assert checker.checked_writes > 0, "no in-place writes were checked"
    checker.assert_clean()


def test_checker_detects_synthetic_violation():
    checker = WalChecker()
    checker.on_tx_store(0, 1, 0x100, old=5, new=9)
    # In-place write changes the word before any undo append.
    checker.on_data_write(0x100 - 0x100 % 64, [9] + [0] * 7)
    assert len(checker.violations) == 1
    with pytest.raises(AssertionError):
        checker.assert_clean()


def test_checker_accepts_pre_tx_value_writes():
    checker = WalChecker()
    checker.on_tx_store(0, 1, 0x100, old=5, new=9)
    # Writing back the *old* value is harmless (nothing lost on crash).
    checker.on_data_write(0x100 - 0x100 % 64, [5] + [0] * 7)
    checker.assert_clean()


def test_checker_clears_on_undo_append():
    checker = WalChecker()
    checker.on_tx_store(0, 1, 0x100, old=5, new=9)
    entry = LogEntry(EntryType.UNDO_REDO, 0, 1, 0x100, 9, 5)
    checker.on_log_append(entry)
    checker.on_data_write(0x100 - 0x100 % 64, [9] + [0] * 7)
    checker.assert_clean()


def test_checker_clears_on_commit():
    checker = WalChecker()
    checker.on_tx_store(0, 1, 0x100, old=5, new=9)
    checker.on_log_append(CommitRecord(tid=0, txid=1))
    checker.on_data_write(0x100 - 0x100 % 64, [9] + [0] * 7)
    checker.assert_clean()


def test_checker_forwards_to_composed_trace():
    class Sink:
        def __init__(self):
            self.calls = []

        def on_tx_store(self, *args):
            self.calls.append(args)

    sink = Sink()
    checker = WalChecker(forward_to=sink)
    checker.on_tx_store(0, 1, 0x100, 5, 9)
    assert sink.calls == [(0, 1, 0x100, 5, 9)]


def test_attach_to_distributed_logs():
    system = make_system("MorLog-SLDE", tiny_config(distributed_logs=True))
    checker = attach_wal_checker(system)
    workload = make_workload("queue", PARAMS)
    system.run(workload, 80, n_threads=4)
    checker.assert_clean()
