"""BDI compression tests (repro.encoding.bdi)."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.bdi import BdiCodec, bdi_compress, bdi_decompress
from repro.encoding.slde import LogWriteContext, SldeCodec
from repro.encoding import make_codec

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSchemes:
    def test_zero_word(self):
        assert bdi_compress(0) == (0, 0, 0)

    def test_repeated_lane(self):
        tag, payload, bits = bdi_compress(0xABCD_ABCD_ABCD_ABCD)
        assert tag == 1 and payload == 0xABCD and bits == 16

    def test_base_plus_small_deltas(self):
        # Four 16-bit lanes within +-127 of each other.
        word = 0x1005_1003_0FFF_1000
        tag, _payload, bits = bdi_compress(word)
        assert tag == 3 and bits == 48

    def test_two_lane_scheme(self):
        # Two 32-bit lanes, 16-bit delta apart.
        word = (0x1000_2345 << 32) | 0x1000_1234
        tag, _payload, bits = bdi_compress(word)
        assert tag == 4 and bits == 64

    def test_incompressible(self):
        tag, payload, bits = bdi_compress(0x0123_4567_89AB_CDEF)
        assert tag == 5 and bits == 64

    def test_decompress_bad_tag(self):
        with pytest.raises(ValueError):
            bdi_decompress(9, 0)


class TestRoundtrip:
    @given(words)
    def test_compress_decompress(self, w):
        tag, payload, _bits = bdi_compress(w)
        assert bdi_decompress(tag, payload) == w

    @given(words)
    def test_codec_roundtrip(self, w):
        codec = BdiCodec()
        assert codec.decode(codec.encode(w)) == w

    @given(st.integers(0, 0xFFFF), st.lists(st.integers(-127, 127), min_size=3, max_size=3))
    def test_delta_words_compress(self, base, deltas):
        lanes = [base] + [(base + d) & 0xFFFF for d in deltas]
        word = 0
        for i, lane in enumerate(lanes):
            word |= lane << (16 * i)
        tag, payload, _bits = bdi_compress(word)
        assert tag in (0, 1, 3)
        assert bdi_decompress(tag, payload) == word


class TestAsSldeAlternative:
    def test_factory_names(self):
        assert type(make_codec("bdi")).__name__ == "BdiCodec"
        slde = make_codec("slde-bdi")
        assert type(slde.alternative).__name__ == "BdiCodec"

    @given(words, words)
    def test_slde_with_bdi_roundtrips(self, old, new):
        from repro.common.bitops import dirty_byte_mask

        slde = make_codec("slde-bdi")
        mask = dirty_byte_mask(old, new)
        encoded = slde.encode_log(new, LogWriteContext(old_word=old, dirty_mask=mask))
        if encoded.silent:
            assert old == new
        else:
            assert slde.decode(encoded, old) == new

    def test_system_runs_with_bdi_alternative(self):
        from dataclasses import replace

        from repro.core.system import System
        from repro.logging_hw.morlog import MorLogLogger
        from repro.workloads.base import WorkloadParams, make_workload
        from tests.conftest import tiny_config

        config = tiny_config()
        config = config.with_changes(
            encoding=replace(config.encoding, log_codec="slde-bdi", data_codec="bdi")
        )
        system = System(config, MorLogLogger, design_name="MorLog-SLDE-BDI")
        workload = make_workload(
            "hash", WorkloadParams(initial_items=24, key_space=48)
        )
        result = system.run(workload, 40, n_threads=2)
        assert result.transactions == 40
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 40
