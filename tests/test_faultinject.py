"""Tests for the crash-point fault-injection subsystem.

Covers the acceptance bar (exhaustive 10-transaction sweeps on all four
logging schemes with zero violations; broken mutants caught with
replayable counterexamples), recovery idempotence as its own regression,
budget sampling determinism, the reachability of every instrumented
crash point, and the ``repro fault-sweep`` CLI verb.
"""

import json

import pytest

from repro.common.bitops import WORD_BYTES
from repro.common.config import (
    CacheConfig,
    CacheLevelConfig,
    CoreConfig,
    LoggingConfig,
    NVMConfig,
    SystemConfig,
)
from repro.core.designs import make_system
from repro.core.system import CrashInjected
from repro.faultinject import (
    CRASH_POINTS,
    CountingPlan,
    CrashAt,
    CrashSchedule,
    SweepOptions,
    replay_schedule,
    run_sweep,
)
from repro.faultinject.mutants import MUTANTS, apply_mutant
from repro.faultinject.oracle import WriteSetTracker, check_crash_state
from repro.faultinject.sweep import (
    DEFAULT_SWEEP_DESIGNS,
    _build,
    _drive,
    resolve_design,
)
from tests.conftest import make_tiny_system

SWEEP_DESIGNS = list(DEFAULT_SWEEP_DESIGNS)


# ----------------------------------------------------------------------
# The acceptance bar: exhaustive sweeps are clean, mutants are caught
# ----------------------------------------------------------------------

@pytest.mark.parametrize("design", SWEEP_DESIGNS + ["morlog-dp"])
def test_exhaustive_sweep_is_clean(design):
    result = run_sweep(design, SweepOptions(transactions=10))
    assert result.ok, result.counterexample.format()
    assert result.checked_events == result.total_events > 0
    # Every commit leaves both a pre and a post crash point.
    assert result.per_point["commit-record"] == 10
    assert result.per_point["commit-persisted"] == 10


@pytest.mark.parametrize(
    "design,mutant",
    [
        ("morlog", "drop-undo"),
        ("undo-only", "drop-undo"),
        ("fwb", "drop-undo"),
        ("redo-only", "drop-redo"),
    ],
)
def test_mutant_caught_with_replayable_schedule(design, mutant):
    result = run_sweep(design, SweepOptions(transactions=10, mutant=mutant))
    assert not result.ok, "%s survived the %s mutant" % (design, mutant)
    cx = result.counterexample
    assert cx.violations

    # The schedule replays: a real crash (volatile state lost) at the
    # recorded index reproduces the violation on a fresh system.
    schedule = CrashSchedule.from_json(cx.schedule.to_json())
    report = replay_schedule(schedule)
    assert report.crashed
    assert report.event.point == cx.event.point
    assert report.reproduced, "counterexample did not reproduce on replay"

    # Dropping the mutant from the schedule replays clean — the bug is
    # in the mutant, not in the sweep.
    clean = CrashSchedule.from_json(
        json.dumps({**json.loads(schedule.to_json()), "mutant": None})
    )
    assert not replay_schedule(clean).violations


def test_counterexample_is_minimal():
    """Exhaustive mode checks events in order, so the first failure has
    the smallest crash index: every earlier index must replay clean."""
    result = run_sweep("morlog", SweepOptions(transactions=10, mutant="drop-undo"))
    cx = result.counterexample
    for index in range(1, cx.schedule.crash_index):
        earlier = CrashSchedule.from_json(
            json.dumps(
                {**json.loads(cx.schedule.to_json()), "crash_index": index}
            )
        )
        assert not replay_schedule(earlier).violations, (
            "crash index %d already fails; counterexample not minimal" % index
        )


def test_unknown_design_and_mutant_are_rejected():
    with pytest.raises(ValueError):
        run_sweep("no-such-design", SweepOptions(transactions=1))
    with pytest.raises(ValueError):
        run_sweep("morlog", SweepOptions(transactions=1, mutant="no-such-mutant"))
    assert resolve_design("MorLog-SLDE") == "MorLog-SLDE"
    assert set(MUTANTS) == {"drop-undo", "drop-redo", "skip-wal"}


# ----------------------------------------------------------------------
# Budget sampling
# ----------------------------------------------------------------------

def test_budget_sampling_is_deterministic():
    options = SweepOptions(transactions=10, budget=15)
    first = run_sweep("morlog", options)
    second = run_sweep("morlog", options)
    assert first.ok and second.ok
    assert first.checked_events == second.checked_events == 15
    assert first.total_events == second.total_events


def test_budget_larger_than_total_checks_everything():
    result = run_sweep("morlog", SweepOptions(transactions=4, budget=10_000))
    assert result.ok
    assert result.checked_events == result.total_events


# ----------------------------------------------------------------------
# Recovery idempotence regression (all four designs)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("design", SWEEP_DESIGNS)
def test_recovery_is_idempotent_after_midrun_crash(design):
    options = SweepOptions(transactions=8)
    system, workload, tracker = _build(design, options)
    counter = CountingPlan()
    _drive(system, workload, tracker, counter, options)

    # Crash two thirds of the way through the run, with transactions in
    # flight, and recover twice.
    system, workload, tracker = _build(design, options)
    plan = CrashAt(max(1, counter.fired * 2 // 3))
    with pytest.raises(CrashInjected):
        _drive(system, workload, tracker, plan, options)

    first = system.recover(verify_decode=True)
    touched = {r.meta.addr for r in first.records}
    image = {addr: system.persistent_word(addr) for addr in touched}
    second = system.recover(verify_decode=True)
    assert second.persisted_txids == first.persisted_txids
    assert {addr: system.persistent_word(addr) for addr in touched} == image


# ----------------------------------------------------------------------
# Crash-point reachability
# ----------------------------------------------------------------------

def test_scan_and_truncation_points_fire_under_fast_fwb():
    result = run_sweep(
        "morlog",
        SweepOptions(transactions=40, fwb_interval_cycles=300),
    )
    assert result.ok, result.counterexample.format()
    for point in ("fwb-scan", "log-truncate", "data-writeback"):
        assert result.per_point.get(point, 0) > 0, point


def test_forced_writeback_point_fires_on_undo_only():
    result = run_sweep("undo-only", SweepOptions(transactions=10))
    assert result.ok
    assert result.per_point.get("forced-writeback", 0) > 0


def _manual_tx(system, plan, body):
    """Run one transaction on core 0 with ``plan`` installed."""
    tracker = WriteSetTracker()
    system.reset_measurement()
    system.trace = tracker
    system.install_crash_plan(plan)
    try:
        tx = system.begin_tx(0)
        body(system.contexts[0])
        system.end_tx(0)
        tracker.on_commit(tx.txid)
    finally:
        system.install_crash_plan(None)
        system.trace = None
    return tracker


def test_redo_drain_point_fires_and_crash_there_recovers():
    """Re-storing a word after its undo+redo entry persisted puts the
    word in ULOG state; commit then drains it as a redo entry."""
    def body(ctx):
        base = system.config.nvmm_base
        ctx.store(base, 0xAAAA)
        # Churn the 16-entry undo+redo buffer until the first entry is
        # evicted (and persisted), flipping its word to URLOG.
        for i in range(1, 24):
            ctx.store(base + i * WORD_BYTES, i)
        ctx.store(base, 0xBBBB)  # URLOG -> ULOG (redo buffered in L1)

    system = make_tiny_system("MorLog-SLDE")
    counting = CountingPlan(keep_trace=True)
    _manual_tx(system, counting, body)
    drains = [e for e in counting.trace if e.point == "redo-drain"]
    assert drains, "commit never drained a ULOG word"

    # Crash exactly at the drain boundary and verify recovery.
    system = make_tiny_system("MorLog-SLDE")
    with pytest.raises(CrashInjected):
        _manual_tx(system, CrashAt(drains[0].index), body)
    tracker = WriteSetTracker()  # no commit observed
    _state, violations = check_crash_state(system, tracker)
    assert not violations


def test_nt_store_points_fire():
    def body(ctx):
        ctx.store_nt(system.config.nvmm_base, 0x1234)

    system = make_tiny_system("MorLog-SLDE")
    counting = CountingPlan(keep_trace=True)
    _manual_tx(system, counting, body)
    points = [e.point for e in counting.trace]
    assert "tx-nt-store" in points
    assert "nt-flush" in points


def _pressure_config(**logging_overrides) -> SystemConfig:
    """Caches small enough that one transaction overflows the LLC."""
    return SystemConfig(
        cores=CoreConfig(n_cores=2),
        caches=CacheConfig(
            l1=CacheLevelConfig(512, 2, 64, 4),
            l2=CacheLevelConfig(1024, 2, 64, 12),
            l3=CacheLevelConfig(2048, 4, 64, 28, shared=True),
        ),
        nvm=NVMConfig(size_bytes=16 * 1024 * 1024),
        logging=LoggingConfig(
            log_region_bytes=256 * 1024,
            fwb_interval_cycles=200_000,
            **logging_overrides,
        ),
    )


def test_stage_release_point_fires_on_redo_only():
    system = make_system("Redo-CRADE", _pressure_config())

    def body(ctx):
        base = system.config.nvmm_base
        for i in range(64):  # 64 lines: four times the LLC
            ctx.store(base + i * 64, i + 1)

    counting = CountingPlan(keep_trace=True)
    _manual_tx(system, counting, body)
    points = [e.point for e in counting.trace]
    assert "stage-release" in points


def test_wal_flush_point_fires_on_fwb():
    """An LLC write-back overtaking still-buffered entries forces a WAL
    flush.  Needs FWB-Unsafe (no eager eviction bound keeps entries
    buffered) plus same-set lines so write-backs come early: with 512-byte
    stride every line lands in set 0 of all three levels, and 12 lines
    overflow the set's aggregate capacity (2 + 2 + 4 ways)."""
    system = make_system("FWB-Unsafe", _pressure_config())

    def body(ctx):
        base = system.config.nvmm_base
        for r in range(3):
            for k in range(12):
                ctx.store(base + k * 512, r * 12 + k + 1)

    counting = CountingPlan(keep_trace=True)
    _manual_tx(system, counting, body)
    points = [e.point for e in counting.trace]
    assert "wal-flush" in points


def test_all_fired_points_are_catalogued():
    """Every point any sweep fires must be a declared CRASH_POINTS name
    (CrashPlan.fire enforces this; here we pin the catalogue itself)."""
    assert len(CRASH_POINTS) == len(set(CRASH_POINTS)) == 20


# ----------------------------------------------------------------------
# The live-probe machinery: journaled recovery leaves no trace
# ----------------------------------------------------------------------

def test_journaled_probe_does_not_perturb_event_stream():
    """The in-run probe recovers against the live array; counting and
    sweeping passes must still see the identical event sequence."""
    options = SweepOptions(transactions=6)
    system, workload, tracker = _build("morlog", options)
    counting = CountingPlan(keep_trace=True)
    _drive(system, workload, tracker, counting, options)

    result = run_sweep("morlog", options)
    assert result.ok
    assert result.total_events == counting.fired
    assert result.per_point == counting.per_point


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_fault_sweep_clean(capsys):
    from repro.cli import main

    code = main(
        ["fault-sweep", "--design", "morlog", "--transactions", "4"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out and "MorLog-SLDE" in out


def test_cli_fault_sweep_mutant_and_replay(tmp_path, capsys):
    from repro.cli import main

    schedule_file = tmp_path / "cx.json"
    code = main(
        [
            "fault-sweep",
            "--design",
            "morlog",
            "--mutant",
            "drop-undo",
            "--save",
            str(schedule_file),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out and "counterexample" in out
    assert schedule_file.exists()

    code = main(["fault-sweep", "--replay", str(schedule_file)])
    out = capsys.readouterr().out
    assert code == 1
    assert "violation" in out


def test_cli_fault_sweep_budget(capsys):
    from repro.cli import main

    code = main(
        [
            "fault-sweep",
            "--design",
            "redo-only",
            "--transactions",
            "6",
            "--budget",
            "10",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "budget=10" in out
