"""Log entry packing, circular region and buffer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import LogOverflowError
from repro.common.stats import StatGroup
from repro.logging_hw.buffers import LogBuffer
from repro.logging_hw.entries import (
    CommitRecord,
    EntryType,
    LogEntry,
    pack_meta_words,
    seq_follows,
    unpack_meta_words,
)
from repro.logging_hw.region import CONTROL_SLOTS, LogRegion
from repro.memory.controller import MemoryController
from tests.conftest import tiny_config


def ur_entry(addr=0x100, tid=0, txid=1, undo=1, redo=2, mask=0xFF):
    return LogEntry(EntryType.UNDO_REDO, tid, txid, addr, redo, undo, mask)


def redo_entry(addr=0x100, tid=0, txid=1, redo=2, mask=0xFF):
    return LogEntry(EntryType.REDO, tid, txid, addr, redo, dirty_mask=mask)


class TestEntries:
    def test_slot_counts(self):
        assert EntryType.UNDO_REDO.n_slots == 4
        assert EntryType.REDO.n_slots == 3
        assert EntryType.COMMIT.n_slots == 2

    def test_redo_with_undo_rejected(self):
        with pytest.raises(ValueError):
            LogEntry(EntryType.REDO, 0, 1, 0x100, 2, undo=1)

    def test_undo_redo_without_undo_rejected(self):
        with pytest.raises(ValueError):
            LogEntry(EntryType.UNDO_REDO, 0, 1, 0x100, 2)

    def test_unaligned_addr_rejected(self):
        with pytest.raises(ValueError):
            ur_entry(addr=0x101)

    @given(
        st.sampled_from([EntryType.UNDO_REDO, EntryType.REDO]),
        st.integers(0, 255),
        st.integers(0, 65535),
        st.integers(0, 1),
        st.integers(0, (1 << 20) - 1),
        st.integers(0, (1 << 45) - 1).map(lambda a: a * 8),
        st.integers(0, 255),
    )
    def test_meta_pack_unpack_roundtrip(self, etype, tid, txid, torn, seq, addr, mask):
        if etype is EntryType.UNDO_REDO:
            entry = LogEntry(etype, tid, txid, addr, 2, 1, mask)
        else:
            entry = LogEntry(etype, tid, txid, addr, 2, dirty_mask=mask)
        meta = unpack_meta_words(*pack_meta_words(entry, torn, seq))
        assert (meta.type, meta.tid, meta.txid) == (etype, tid, txid)
        assert (meta.torn, meta.seq) == (torn, seq)
        assert (meta.addr, meta.dirty_mask) == (addr, mask)

    def test_commit_record_roundtrip(self):
        record = CommitRecord(tid=3, txid=9, ulog_counter=5, timestamp=42)
        meta = unpack_meta_words(*pack_meta_words(record, 1, 7))
        assert meta.type is EntryType.COMMIT
        assert meta.ulog_counter == 5
        assert meta.timestamp == 42

    def test_undo_only_entry_roundtrip(self):
        entry = LogEntry(EntryType.UNDO, 2, 7, 0x200, 0, undo=0xAB)
        meta = unpack_meta_words(*pack_meta_words(entry, 1, 3))
        assert meta.type is EntryType.UNDO
        assert EntryType.UNDO.n_slots == 3

    def test_all_two_bit_types_are_defined(self):
        # The 2-bit type field is fully allocated (undo+redo, redo,
        # commit, undo); garbage slots are detected by the torn bit and
        # sequence chain instead.
        for value in range(4):
            assert EntryType(value) is not None

    def test_seq_follows_wraps(self):
        assert seq_follows(5, 6)
        assert seq_follows((1 << 20) - 1, 0)
        assert not seq_follows(5, 7)


class TestLogRegion:
    def _region(self, size=4096):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        region = LogRegion(controller, 0x1000_0000, size, StatGroup("t"))
        return controller, region

    def test_append_advances_tail(self):
        _c, region = self._region()
        region.append(ur_entry(), 0.0)
        assert region.tail == CONTROL_SLOTS + 4
        assert region.used_slots() == 4

    def test_append_writes_nvmm(self):
        controller, region = self._region()
        region.append(ur_entry(undo=0xAA, redo=0xBB), 0.0)
        array = controller.nvm.array
        base = region.slot_addr(CONTROL_SLOTS)
        assert array.read_logical(base + 16) == 0xAA
        assert array.read_logical(base + 24) == 0xBB

    def test_overflow_raises_without_handler(self):
        _c, region = self._region(size=64 * 8)
        with pytest.raises(LogOverflowError):
            for i in range(100):
                region.append(ur_entry(addr=0x100 + 8 * i, txid=i), 0.0)

    def test_overflow_handler_frees_space(self):
        _c, region = self._region(size=64 * 8)

        def free_everything(now_ns):
            region.truncate(lambda e: True, now_ns)
            return now_ns

        region.on_overflow = free_everything
        for i in range(100):
            region.append(ur_entry(addr=0x100 + 8 * i, txid=i), 0.0)
        assert region.stats.get("entries_truncated") > 0

    def test_wrap_flips_parity(self):
        _c, region = self._region(size=(CONTROL_SLOTS + 10) * 8)
        region.on_overflow = lambda now: region.truncate(lambda e: True, now)
        parity0 = region.parity
        for i in range(6):
            region.append(ur_entry(txid=i), 0.0)
        assert region.stats.get("wraps") >= 1
        assert region.parity != parity0 or region.stats.get("wraps") % 2 == 0

    def test_truncate_prefix_only(self):
        _c, region = self._region()
        region.append(ur_entry(txid=1), 0.0)
        region.append(ur_entry(txid=2, addr=0x200), 0.0)
        region.append(ur_entry(txid=1, addr=0x300), 0.0)
        freed = region.truncate(lambda e: e.txid == 1, 0.0)
        # Only the leading txid=1 entry frees; txid=2 blocks the prefix.
        assert freed == 1
        assert region.used_slots() == 8

    def test_control_block_persisted(self):
        controller, region = self._region()
        region.append(ur_entry(txid=1), 0.0)
        region.truncate(lambda e: True, 0.0)
        head, seq, parity = LogRegion.read_control(controller, region.base_addr)
        assert head == region.head
        assert seq == region.head_seq
        assert parity == region.head_parity

    def test_too_small_region_rejected(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        with pytest.raises(ValueError):
            LogRegion(controller, 0x1000_0000, 64)


class TestLogBuffer:
    def test_insert_and_find(self):
        buffer = LogBuffer("t", 4, None, drop_silent=False)
        entry = ur_entry()
        buffer.insert(entry, 0.0)
        assert buffer.find(entry.key).entry is entry

    def test_capacity_eviction_fifo(self):
        buffer = LogBuffer("t", 2, None, drop_silent=False)
        a = ur_entry(addr=0x100)
        b = ur_entry(addr=0x108)
        c = ur_entry(addr=0x110)
        buffer.insert(a, 0.0)
        buffer.insert(b, 1.0)
        evicted = buffer.insert(c, 2.0)
        assert evicted == [a]

    def test_coalesce_keeps_oldest_undo_newest_redo(self):
        buffer = LogBuffer("t", 4, None, drop_silent=False)
        buffer.insert(ur_entry(undo=10, redo=20, mask=0x0F), 0.0)
        buffer.insert(ur_entry(undo=20, redo=30, mask=0xF0), 5.0)
        merged = buffer.find((0, 1, 0x100)).entry
        assert merged.undo == 10
        assert merged.redo == 30
        assert merged.dirty_mask == 0xFF

    def test_coalesce_keeps_insertion_time(self):
        buffer = LogBuffer("t", 4, 10.0, drop_silent=False)
        buffer.insert(ur_entry(redo=1), 0.0)
        buffer.insert(ur_entry(redo=2), 9.0)
        expired = buffer.pop_expired(10.5)
        assert len(expired) == 1 and expired[0].redo == 2

    def test_mixed_type_coalesce_rejected(self):
        buffer = LogBuffer("t", 4, None, drop_silent=False)
        buffer.insert(ur_entry(), 0.0)
        with pytest.raises(ValueError):
            buffer.insert(redo_entry(), 1.0)

    def test_silent_drop(self):
        buffer = LogBuffer("t", 4, None, drop_silent=True)
        assert buffer.insert(ur_entry(mask=0), 0.0) == []
        assert len(buffer) == 0
        assert buffer.stats.get("silent_drops") == 1

    def test_silent_kept_without_dirty_flags(self):
        buffer = LogBuffer("t", 4, None, drop_silent=False)
        buffer.insert(ur_entry(mask=0), 0.0)
        assert len(buffer) == 1

    def test_pop_expired_respects_age(self):
        buffer = LogBuffer("t", 4, 10.0, drop_silent=False)
        buffer.insert(ur_entry(addr=0x100), 0.0)
        buffer.insert(ur_entry(addr=0x108), 5.0)
        assert len(buffer.pop_expired(12.0)) == 1
        assert len(buffer.pop_expired(20.0)) == 1

    def test_pop_tx(self):
        buffer = LogBuffer("t", 8, None, drop_silent=False)
        buffer.insert(ur_entry(txid=1, addr=0x100), 0.0)
        buffer.insert(ur_entry(txid=2, addr=0x108), 0.0)
        buffer.insert(ur_entry(txid=1, addr=0x110), 0.0)
        popped = buffer.pop_tx(0, 1)
        assert [e.addr for e in popped] == [0x100, 0x110]
        assert len(buffer) == 1

    def test_pop_addr_range(self):
        buffer = LogBuffer("t", 8, None, drop_silent=False)
        buffer.insert(ur_entry(addr=0x100), 0.0)
        buffer.insert(ur_entry(addr=0x138), 0.0)
        buffer.insert(ur_entry(addr=0x140), 0.0)
        popped = buffer.pop_addr_range(0x100, 64)
        assert sorted(e.addr for e in popped) == [0x100, 0x138]
