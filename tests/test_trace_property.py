"""Property-based and golden-file tests for trace export.

The Hypothesis property: any schema-conforming event stream survives
emit -> Chrome export -> JSON serialization -> parse bit-exactly (the
exporter keeps exact ``ts_ns``/``dur_ns`` inside ``args`` precisely so
the lossy microsecond conversion never leaks back in).  The golden file
pins the full exported document of a tiny seeded SPS run, so any
unintended change to the event taxonomy, emission sites or export format
shows up as a readable diff.

Regenerate the golden file after an *intended* change with:

    PYTHONPATH=src python tests/make_golden_trace.py
"""

import json
import os

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.trace import (
    EVENT_SCHEMA,
    TraceBus,
    TraceConfig,
    TraceEvent,
    chrome_document,
    parse_chrome_trace,
    validate_chrome_trace,
    validate_event,
)
from repro.trace.events import RESERVED_ARG_KEYS
from repro.trace.export import MACHINE_LANE

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "sps_trace.json")

# JSON-exact scalars for event args: ints round-trip, finite floats
# round-trip via repr, short ascii strings keep the documents readable.
_arg_values = st.one_of(
    st.integers(min_value=0, max_value=2**48),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
              allow_infinity=False),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12),
    st.booleans(),
)

_extra_keys = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8,
).filter(lambda k: k not in RESERVED_ARG_KEYS)


@st.composite
def trace_events(draw):
    name = draw(st.sampled_from(sorted(EVENT_SCHEMA)))
    spec = EVENT_SCHEMA[name]
    args = {key: draw(_arg_values) for key in spec.required_args}
    extra = draw(st.dictionaries(_extra_keys, _arg_values, max_size=3))
    for key, value in extra.items():
        args.setdefault(key, value)
    return TraceEvent(
        name=name,
        category=spec.category,
        ts_ns=draw(st.floats(min_value=0.0, max_value=1e15, allow_nan=False,
                             allow_infinity=False)),
        core=draw(st.one_of(st.none(),
                            st.integers(min_value=0,
                                        max_value=MACHINE_LANE - 1))),
        txid=draw(st.one_of(st.none(), st.integers(min_value=0,
                                                   max_value=2**32))),
        addr=draw(st.one_of(st.none(), st.integers(min_value=0,
                                                   max_value=2**48))),
        dur_ns=draw(st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
                              allow_infinity=False)),
        args=args,
    )


class TestExportProperties:
    @given(events=st.lists(trace_events(), max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_emit_export_parse_round_trip(self, events):
        doc = chrome_document(events, design="prop", workload="prop")
        serialized = json.loads(json.dumps(doc, sort_keys=True))
        assert parse_chrome_trace(serialized) == events

    @given(events=st.lists(trace_events(), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_exported_documents_always_validate(self, events):
        doc = chrome_document(events, design="prop", workload="prop")
        assert validate_chrome_trace(doc) == len(events)

    @given(event=trace_events())
    @settings(max_examples=150, deadline=None)
    def test_generated_events_are_schema_valid(self, event):
        validate_event(event)

    @given(events=st.lists(trace_events(), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_bus_replay_preserves_stream(self, events):
        """Re-emitting a parsed stream through a bus is the identity."""
        bus = TraceBus(TraceConfig(enabled=True, capacity=0))
        for event in events:
            bus.emit(
                event.name, event.category, event.ts_ns,
                core=event.core, txid=event.txid, addr=event.addr,
                dur_ns=event.dur_ns, **dict(event.args)
            )
        assert list(bus.events) == events


def make_golden_document():
    """The tiny, fully-seeded SPS run the golden file pins."""
    from repro.core.designs import make_system
    from repro.workloads.base import WorkloadParams, make_workload
    from tests.conftest import tiny_config

    system = make_system(
        "MorLog-SLDE", tiny_config(), trace=TraceConfig(enabled=True)
    )
    workload = make_workload(
        "sps", WorkloadParams(initial_items=16, key_space=32, seed=42)
    )
    system.run(workload, 8, 2)
    return chrome_document(
        system.tracer.events, design="MorLog-SLDE", workload="sps"
    )


class TestGoldenTrace:
    def test_tiny_sps_trace_matches_golden(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        current = json.loads(json.dumps(make_golden_document(), sort_keys=True))
        assert current == golden, (
            "trace output changed; if intended, regenerate with "
            "PYTHONPATH=src python tests/make_golden_trace.py"
        )

    def test_golden_file_validates_against_schema(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert validate_chrome_trace(golden) > 0
