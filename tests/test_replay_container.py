"""Trace container robustness: versioning, digests, corruption, caching.

The ``.mltr`` container is the interface between a recording session and
every later replay, so it must fail loudly — typed errors, never garbage
results — on anything that is not exactly the bytes ``save_trace``
wrote, and its digest must feed the grid cache key so an edited trace
can never replay a stale cached result.
"""

import json
import struct

import numpy as np
import pytest

from repro.core.designs import make_system
from repro.experiments.cache import ResultCache, cell_key_fields
from repro.experiments.parallel import (
    resolve_cell,
    resolve_replay_cell,
    run_cells,
)
from repro.experiments.runner import ExperimentScale
from repro.replay import (
    StoreTrace,
    TraceDigestError,
    TraceError,
    TraceFormatError,
    TraceRecorder,
    TraceVersionError,
    load_trace,
    record_trace,
    replay_trace,
    save_trace,
)
from repro.replay.container import MAGIC, OP_STORE
from repro.workloads.base import DatasetSize, WorkloadParams
from tests.conftest import tiny_config

COLUMN_NAMES = (
    "setup_addr", "setup_val", "op_kind", "op_addr", "op_val",
    "tx_start", "tx_core", "pair_old", "pair_new",
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One small recorded cell, saved to disk: (trace, path)."""
    trace, _result, _system = record_trace(
        "MorLog-SLDE",
        "hash",
        config=tiny_config(),
        params=WorkloadParams(initial_items=48, key_space=96, seed=11),
        n_transactions=10,
        n_threads=2,
    )
    path = tmp_path_factory.mktemp("traces") / "cell.mltr"
    save_trace(str(path), trace)
    return trace, str(path)


def rewrite(path, out, mutate_header=None, mutate_payload=None):
    """Re-pack a saved trace with the header and/or payload mutated."""
    with open(path, "rb") as fh:
        raw = fh.read()
    (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
    body_start = len(MAGIC) + 4
    header = json.loads(raw[body_start:body_start + header_len])
    payload = bytearray(raw[body_start + header_len:])
    if mutate_header is not None:
        header = mutate_header(header) or header
    if mutate_payload is not None:
        mutate_payload(payload)
    encoded = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode()
    with open(out, "wb") as fh:
        fh.write(MAGIC + struct.pack("<I", len(encoded)) + encoded +
                 bytes(payload))
    return str(out)


class TestRoundTrip:
    def test_save_load_round_trips(self, recorded):
        trace, path = recorded
        assert save_trace(path, trace) == trace.digest()
        loaded = load_trace(path)
        assert loaded.meta == trace.meta
        for name in COLUMN_NAMES:
            assert np.array_equal(getattr(loaded, name), getattr(trace, name))
        assert loaded.digest() == trace.digest()
        assert loaded.payload_sha256() == trace.payload_sha256()

    def test_digest_covers_meta_and_payload(self, recorded):
        trace, _path = recorded
        meta_edit = StoreTrace(
            meta=dict(trace.meta, note="edited"),
            **{name: getattr(trace, name) for name in COLUMN_NAMES},
        )
        # A metadata-only edit leaves the payload hash alone but must
        # still change the trace digest (and hence the cache key).
        assert meta_edit.payload_sha256() == trace.payload_sha256()
        assert meta_edit.digest() != trace.digest()

        columns = {name: getattr(trace, name) for name in COLUMN_NAMES}
        columns["op_val"] = columns["op_val"].copy()
        columns["op_val"][0] += 1
        content_edit = StoreTrace(meta=dict(trace.meta), **columns)
        assert content_edit.payload_sha256() != trace.payload_sha256()
        assert content_edit.digest() != trace.digest()


class TestLoadRejections:
    def test_bad_magic(self, recorded, tmp_path):
        _trace, path = recorded
        with open(path, "rb") as fh:
            raw = fh.read()
        bad = tmp_path / "bad.mltr"
        bad.write_bytes(b"NOPE" + raw[4:])
        with pytest.raises(TraceFormatError, match="bad magic"):
            load_trace(str(bad))

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.mltr"
        empty.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            load_trace(str(empty))

    def test_truncated_header(self, recorded, tmp_path):
        _trace, path = recorded
        with open(path, "rb") as fh:
            raw = fh.read()
        cut = tmp_path / "cut.mltr"
        cut.write_bytes(raw[:12])
        with pytest.raises(TraceFormatError, match="truncated header"):
            load_trace(str(cut))

    def test_corrupt_header_json(self, recorded, tmp_path):
        _trace, path = recorded
        with open(path, "rb") as fh:
            raw = fh.read()
        (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
        body = bytearray(raw)
        body[len(MAGIC) + 4] = ord("!")  # breaks the opening '{'
        bad = tmp_path / "json.mltr"
        bad.write_bytes(bytes(body))
        with pytest.raises(TraceFormatError, match="corrupt header"):
            load_trace(str(bad))
        assert header_len > 0

    def test_unknown_version(self, recorded, tmp_path):
        _trace, path = recorded
        bad = rewrite(path, tmp_path / "v99.mltr",
                      mutate_header=lambda h: dict(h, version=99))
        with pytest.raises(TraceVersionError, match="version 99"):
            load_trace(bad)
        # A version error is also a format error for coarse handlers.
        with pytest.raises(TraceFormatError):
            load_trace(bad)

    def test_column_set_mismatch(self, recorded, tmp_path):
        _trace, path = recorded

        def drop_column(header):
            header["columns"] = header["columns"][:-1]
            return header

        bad = rewrite(path, tmp_path / "cols.mltr", mutate_header=drop_column)
        with pytest.raises(TraceFormatError, match="column set"):
            load_trace(bad)

    def test_column_dtype_mismatch(self, recorded, tmp_path):
        _trace, path = recorded

        def retype(header):
            header["columns"][0]["dtype"] = "<u4"
            return header

        bad = rewrite(path, tmp_path / "dtype.mltr", mutate_header=retype)
        with pytest.raises(TraceFormatError, match="dtype"):
            load_trace(bad)

    def test_truncated_payload(self, recorded, tmp_path):
        _trace, path = recorded
        bad = rewrite(path, tmp_path / "short.mltr",
                      mutate_payload=lambda p: p.__delitem__(slice(-9, None)))
        with pytest.raises(TraceFormatError, match="truncated payload"):
            load_trace(bad)

    def test_trailing_bytes(self, recorded, tmp_path):
        _trace, path = recorded
        bad = rewrite(path, tmp_path / "long.mltr",
                      mutate_payload=lambda p: p.extend(b"\x00\x01\x02"))
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            load_trace(bad)

    def test_corrupted_payload_fails_digest(self, recorded, tmp_path):
        _trace, path = recorded

        def flip(payload):
            payload[0] ^= 0xFF

        bad = rewrite(path, tmp_path / "flip.mltr", mutate_payload=flip)
        with pytest.raises(TraceDigestError, match="digest mismatch"):
            load_trace(bad)


class TestConstructionValidation:
    def empty_columns(self):
        return {name: [] for name in COLUMN_NAMES}

    def test_decreasing_tx_offsets_rejected(self):
        columns = self.empty_columns()
        columns.update(op_kind=[0, 0], op_addr=[0, 0], op_val=[0, 0],
                       tx_start=[2, 0], tx_core=[0, 0])
        with pytest.raises(TraceError, match="non-decreasing"):
            StoreTrace(meta={}, **columns)

    def test_out_of_range_tx_offset_rejected(self):
        columns = self.empty_columns()
        columns.update(tx_start=[5], tx_core=[0])
        with pytest.raises(TraceError, match="out of range"):
            StoreTrace(meta={}, **columns)

    def test_ragged_columns_rejected(self):
        columns = self.empty_columns()
        columns.update(op_kind=[0], op_addr=[0, 1], op_val=[0])
        with pytest.raises(TraceError, match="parallel"):
            StoreTrace(meta={}, **columns)
        columns = self.empty_columns()
        columns.update(pair_old=[1])
        with pytest.raises(TraceError, match="parallel"):
            StoreTrace(meta={}, **columns)

    def test_recorder_rejects_bad_compute_cycles(self):
        recorder = TraceRecorder()
        with pytest.raises(TraceError):
            recorder.on_compute(-1)
        with pytest.raises(TraceError):
            recorder.on_compute(1.5)
        recorder.on_compute(3)
        recorder.on_compute(4.0)  # integral floats are fine

    def test_replay_rejects_too_many_threads(self, recorded):
        trace, _path = recorded
        starved = StoreTrace(
            meta=dict(trace.meta, n_threads=99),
            **{name: getattr(trace, name) for name in COLUMN_NAMES},
        )
        system = make_system("MorLog-SLDE", tiny_config())
        with pytest.raises(TraceError, match="99 threads"):
            replay_trace(system, starved)


class TestEdgeShapes:
    def test_empty_trace_replays_to_nothing(self, tmp_path):
        empty = StoreTrace(meta={"n_threads": 1},
                           **{name: [] for name in COLUMN_NAMES})
        path = tmp_path / "empty.mltr"
        save_trace(str(path), empty)
        loaded = load_trace(str(path))
        assert loaded.n_transactions == 0 and loaded.n_ops == 0
        result = replay_trace(make_system("MorLog-SLDE", tiny_config()), loaded)
        assert result.transactions == 0
        assert result.elapsed_ns == 0.0

    def test_empty_transactions_replay(self, recorded):
        # Append two empty transactions (tx with zero ops) to a real
        # trace; they must replay as real begin/commit pairs.
        trace, _path = recorded
        n_ops = trace.n_ops
        columns = {name: getattr(trace, name) for name in COLUMN_NAMES}
        columns["tx_start"] = np.concatenate(
            [trace.tx_start, [n_ops, n_ops]]
        )
        columns["tx_core"] = np.concatenate([trace.tx_core, [0, 1]])
        padded = StoreTrace(meta=dict(trace.meta), **columns)
        lo, hi = padded.transaction_bounds(padded.n_transactions - 1)
        assert lo == hi == n_ops
        result = replay_trace(make_system("MorLog-SLDE", tiny_config()),
                              padded)
        assert result.transactions == trace.n_transactions + 2

    def test_single_word_transaction(self, recorded):
        trace, _path = recorded
        stores = trace.op_addr[trace.op_kind == OP_STORE]
        addr = int(stores[0])
        single = StoreTrace(
            meta={"n_threads": 1},
            setup_addr=trace.setup_addr,
            setup_val=trace.setup_val,
            op_kind=[OP_STORE],
            op_addr=[addr],
            op_val=[0xDEAD_BEEF],
            tx_start=[0],
            tx_core=[0],
            pair_old=[],
            pair_new=[],
        )
        system = make_system("MorLog-SLDE", tiny_config())
        result = replay_trace(system, single)
        assert result.transactions == 1
        assert system.persistent_word(addr) == 0xDEAD_BEEF


class TestCacheKeying:
    def test_key_fields_take_trace_digest_only_when_set(self):
        base = cell_key_fields("d", "w", "SMALL", {}, {}, 1, 1, 1.0)
        assert "trace_digest" not in base
        keyed = cell_key_fields("d", "w", "SMALL", {}, {}, 1, 1, 1.0,
                                trace_digest="abc")
        assert keyed["trace_digest"] == "abc"
        assert {k: v for k, v in keyed.items() if k != "trace_digest"} == base

    def test_replay_cell_keys_on_digest(self, recorded, tmp_path):
        trace, path = recorded
        cfg = tiny_config()
        spec = resolve_replay_cell("MorLog-SLDE", path, config=cfg)
        assert spec.trace_digest == trace.digest()
        assert spec.key_fields()["trace_digest"] == trace.digest()
        assert spec.workload == "hash"
        assert spec.n_transactions == trace.n_transactions
        assert spec.n_threads == trace.n_threads

        # Same bytes -> same key, even from another path.
        copy = tmp_path / "copy.mltr"
        save_trace(str(copy), trace)
        assert resolve_replay_cell(
            "MorLog-SLDE", str(copy), config=cfg
        ).key() == spec.key()

        # Any edit (here: metadata) -> different digest -> cache miss.
        edited = StoreTrace(
            meta=dict(trace.meta, note="edited"),
            **{name: getattr(trace, name) for name in COLUMN_NAMES},
        )
        edited_path = tmp_path / "edited.mltr"
        save_trace(str(edited_path), edited)
        assert resolve_replay_cell(
            "MorLog-SLDE", str(edited_path), config=cfg
        ).key() != spec.key()

        # Replay cells never collide with direct-run cells.
        direct = resolve_cell(
            "MorLog-SLDE", "hash", DatasetSize.SMALL,
            ExperimentScale(micro_transactions=trace.n_transactions,
                            micro_threads=trace.n_threads),
            config=cfg,
        )
        assert direct.key() != spec.key()

    def test_replay_cells_run_and_cache_through_the_engine(
        self, recorded, tmp_path
    ):
        trace, path = recorded
        spec = resolve_replay_cell("MorLog-SLDE", path, config=tiny_config())
        cache = ResultCache(cache_dir=str(tmp_path / "grid"))

        results, report = run_cells([spec], jobs=1, cache=cache)
        assert report.simulated_cells == 1 and report.hits == 0
        expected = replay_trace(make_system("MorLog-SLDE", tiny_config()),
                                trace)
        assert results[0].transactions == expected.transactions
        assert results[0].elapsed_ns == expected.elapsed_ns
        assert results[0].stats == expected.stats

        # Warm pass: served from cache, no simulation.
        again, report = run_cells([spec], jobs=1, cache=cache)
        assert report.hits == 1 and report.simulated_cells == 0
        assert again[0].stats == expected.stats

        # Rewriting the trace at the same path changes the digest, so
        # the stale entry cannot be replayed.
        edited = StoreTrace(
            meta=dict(trace.meta, note="edited"),
            **{name: getattr(trace, name) for name in COLUMN_NAMES},
        )
        save_trace(path, edited)
        respec = resolve_replay_cell("MorLog-SLDE", path,
                                     config=tiny_config())
        assert respec.key() != spec.key()
        _results, report = run_cells([respec], jobs=1, cache=cache)
        assert report.hits == 0 and report.simulated_cells == 1
        # Restore the shared fixture file for other tests.
        save_trace(path, trace)
