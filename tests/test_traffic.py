"""Tests for the open-loop traffic layer (``repro.traffic``).

Covers the arrival processes, the workload mixture, the dispatch seam
in :class:`~repro.core.system.System`, the admission-queue engine
(determinism, conservation, drop policies), tail-latency behaviour
under overload, knee detection, the cached/parallel sweep, and the
crash-under-load composition with the fault injector.

Engine tests use a single-component ``hash`` blend (the cheapest
transaction body, ~0.5 us simulated) so open-loop scenarios stay fast;
the real 70/20/10 blend is exercised once end-to-end.
"""

import json
import random

import pytest

from repro.bench.records import BenchRecord
from repro.core.designs import make_system
from repro.experiments.cache import PayloadCache
from repro.traffic import (
    TrafficConfig,
    TrafficResult,
    bursty_arrivals,
    find_knee,
    make_arrivals,
    percentile,
    poisson_arrivals,
    resolve_traffic_cell,
    run_crash_under_load,
    run_load_sweep,
    run_traffic,
    run_traffic_system,
    sweep_records,
    traffic_config_from_dict,
    traffic_config_to_dict,
    traffic_result_from_dict,
)
from repro.workloads.base import WorkloadParams, make_workload
from repro.workloads.mixture import (
    MixtureWorkload,
    blend_slug,
    normalize_blend,
    parse_blend,
)
from tests.conftest import tiny_config

#: Cheap single-component blend for engine tests.
HASH_MIX = (("hash", 1.0),)


def fast_traffic(**overrides):
    """A small, fast scenario; override fields per test."""
    base = dict(
        offered_tx_per_s=400_000.0,
        arrivals=120,
        n_tenants=8,
        n_threads=2,
        queue_capacity=4,
        mix=HASH_MIX,
        initial_items=32,
        key_space=64,
        seed=7,
    )
    base.update(overrides)
    return TrafficConfig(**base)


class TestArrivals:
    def test_poisson_deterministic_and_monotone(self):
        a = poisson_arrivals(1e-3, 200, random.Random(11))
        b = poisson_arrivals(1e-3, 200, random.Random(11))
        assert a == b
        assert all(later > earlier for earlier, later in zip(a, a[1:]))
        assert a[0] > 0

    def test_poisson_mean_rate(self):
        rate = 2e-3  # tx/ns
        a = poisson_arrivals(rate, 4000, random.Random(3))
        empirical = len(a) / a[-1]
        assert empirical == pytest.approx(rate, rel=0.1)

    def test_bursty_long_run_rate_matches_offered(self):
        rate = 1e-3
        a = bursty_arrivals(rate, 4000, random.Random(5),
                            on_fraction=0.25, cycle_ns=50_000.0)
        empirical = len(a) / a[-1]
        assert empirical == pytest.approx(rate, rel=0.25)
        assert all(later > earlier for earlier, later in zip(a, a[1:]))

    def test_bursty_is_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrivals: 1 for
        # Poisson, > 1 for the on/off MMPP.
        def cv2(times):
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        p = poisson_arrivals(1e-3, 4000, random.Random(9))
        b = bursty_arrivals(1e-3, 4000, random.Random(9),
                            on_fraction=0.2, cycle_ns=100_000.0)
        assert cv2(b) > 1.5 * cv2(p)

    def test_make_arrivals_rejects_unknown_process(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrivals("uniform", 1e5, 10, random.Random(1))

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10, random.Random(1))
        with pytest.raises(ValueError):
            bursty_arrivals(-1.0, 10, random.Random(1))


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.999) == 100
        assert percentile(values, 1.0) == 100
        assert percentile([], 0.5) == 0.0
        assert percentile([42.0], 0.999) == 42.0


class TestBlend:
    def test_normalize_scales_to_one(self):
        blend = normalize_blend((("ycsb", 7), ("tpcc", 2), ("echo", 1)))
        assert sum(w for _, w in blend) == pytest.approx(1.0)
        assert blend[0] == ("ycsb", pytest.approx(0.7))

    def test_normalize_rejects_bad_blends(self):
        with pytest.raises(ValueError, match="at least one"):
            normalize_blend(())
        with pytest.raises(ValueError, match="nest"):
            normalize_blend((("mix", 1.0),))
        with pytest.raises(ValueError, match="positive"):
            normalize_blend((("ycsb", 0.0),))

    def test_parse_blend(self):
        blend = parse_blend("ycsb:0.7, tpcc:0.2, echo:0.1")
        assert [name for name, _ in blend] == ["ycsb", "tpcc", "echo"]
        with pytest.raises(ValueError, match="name:weight"):
            parse_blend("ycsb=1")
        with pytest.raises(ValueError, match="not a number"):
            parse_blend("ycsb:heavy")

    def test_blend_slug(self):
        assert blend_slug(normalize_blend(
            (("ycsb", 0.7), ("tpcc", 0.2), ("echo", 0.1)))
        ) == "ycsb70+tpcc20+echo10"

    def test_mixture_runs_closed_loop(self):
        # "mix" drops into System.run unchanged (registered workload).
        system = make_system("MorLog-SLDE", tiny_config())
        workload = make_workload(
            "mix", WorkloadParams(initial_items=16, key_space=64))
        assert isinstance(workload, MixtureWorkload)
        result = system.run(workload, 30, n_threads=2)
        assert result.transactions == 30

    def test_mixture_slices_heap_disjointly(self):
        system = make_system("MorLog-SLDE", tiny_config())
        workload = MixtureWorkload(
            WorkloadParams(initial_items=16, key_space=64))
        workload.setup(system, 2)
        # Each component draws one distinct seed.
        seeds = [c.params.seed for c in workload.components]
        assert len(set(seeds)) == len(seeds)

    def test_component_draw_follows_weights(self):
        workload = MixtureWorkload(
            WorkloadParams(initial_items=16, key_space=64),
            blend=(("hash", 0.9), ("queue", 0.1)))
        rng = random.Random(17)
        draws = [workload.component_index(rng) for _ in range(2000)]
        share = draws.count(0) / len(draws)
        assert share == pytest.approx(0.9, abs=0.05)


class TestDispatchSeam:
    def _system(self):
        system = make_system("MorLog-SLDE", tiny_config())
        workload = make_workload(
            "hash", WorkloadParams(initial_items=16, key_space=64))
        system._ran = True
        workload.setup(system, 2)
        system.reset_measurement()
        system._active_threads = 2
        return system, workload

    def test_idle_core_starts_at_arrival(self):
        system, workload = self._system()
        arrival = system.core_time_ns[0] + 5_000.0
        start, finish = system.dispatch_transaction(
            0, workload.transaction(0), arrival_ns=arrival)
        assert start == arrival
        assert finish > start

    def test_busy_core_queues_the_arrival(self):
        system, workload = self._system()
        system.dispatch_transaction(
            0, workload.transaction(0), arrival_ns=0.0)
        busy_until = system.core_time_ns[0]
        # Arrival in the past: starts when the core frees up, and the
        # difference is exactly the queueing delay the engine charges.
        start, _finish = system.dispatch_transaction(
            0, workload.transaction(0), arrival_ns=busy_until / 2)
        assert start == busy_until
        assert start - busy_until / 2 > 0


class TestEngineDeterminism:
    def test_same_seed_bit_identical(self):
        traffic = fast_traffic()
        a = run_traffic("MorLog-SLDE", traffic, config=tiny_config())
        b = run_traffic("MorLog-SLDE", traffic, config=tiny_config())
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_the_run(self):
        a = run_traffic("MorLog-SLDE", fast_traffic(), config=tiny_config())
        b = run_traffic("MorLog-SLDE", fast_traffic(seed=8),
                        config=tiny_config())
        assert a.to_dict() != b.to_dict()

    def test_result_round_trips(self):
        result = run_traffic("MorLog-SLDE", fast_traffic(),
                             config=tiny_config())
        data = json.loads(json.dumps(result.to_dict()))
        assert traffic_result_from_dict(data) == result

    def test_config_round_trips(self):
        traffic = fast_traffic(process="bursty", drop_policy="drop-oldest")
        data = json.loads(json.dumps(traffic_config_to_dict(traffic)))
        restored = traffic_config_from_dict(data)
        assert traffic_config_to_dict(restored) == traffic_config_to_dict(traffic)


class TestEngineAccounting:
    def test_conservation_across_loads(self):
        for load in (50_000.0, 400_000.0, 3_200_000.0):
            traffic = fast_traffic(offered_tx_per_s=load)
            result = run_traffic("MorLog-SLDE", traffic, config=tiny_config())
            assert result.arrivals == traffic.arrivals
            assert result.completed + result.dropped == result.arrivals
            assert result.admitted == result.completed
            assert sum(result.drops_by_core) == result.dropped
            assert sum(result.drops_by_tenant) == result.dropped
            assert sum(result.completions_by_tenant) == result.completed
            assert result.max_queue_depth <= traffic.queue_capacity

    def test_light_load_sees_no_queueing(self):
        result = run_traffic(
            "MorLog-SLDE", fast_traffic(offered_tx_per_s=10_000.0),
            config=tiny_config())
        assert result.dropped == 0
        assert result.p99_queue_ns == 0.0
        assert result.p50_latency_ns > 0

    def test_overload_fills_queues_and_drops(self):
        result = run_traffic(
            "MorLog-SLDE", fast_traffic(offered_tx_per_s=20_000_000.0),
            config=tiny_config())
        assert result.dropped > 0
        assert result.max_queue_depth == 4  # hit the configured bound
        assert result.p99_queue_ns > 0

    def test_drop_policies_differ_in_who_they_drop(self):
        shed = run_traffic(
            "MorLog-SLDE",
            fast_traffic(offered_tx_per_s=20_000_000.0, drop_policy="shed"),
            config=tiny_config())
        oldest = run_traffic(
            "MorLog-SLDE",
            fast_traffic(offered_tx_per_s=20_000_000.0,
                         drop_policy="drop-oldest"),
            config=tiny_config())
        assert shed.dropped > 0 and oldest.dropped > 0
        # Same arrivals, same capacity — same drop *count*, different
        # victims, so the completed-transaction mix differs.
        assert shed.dropped == oldest.dropped
        assert shed.completions_by_tenant != oldest.completions_by_tenant

    def test_bursty_queues_deeper_than_poisson_at_same_rate(self):
        poisson = run_traffic(
            "MorLog-SLDE",
            fast_traffic(offered_tx_per_s=800_000.0, queue_capacity=64),
            config=tiny_config())
        bursty = run_traffic(
            "MorLog-SLDE",
            fast_traffic(offered_tx_per_s=800_000.0, queue_capacity=64,
                         process="bursty", burst_on_fraction=0.2,
                         burst_cycle_ns=100_000.0),
            config=tiny_config())
        assert bursty.max_queue_depth > poisson.max_queue_depth

    def test_validate_rejects_bad_scenarios(self):
        for bad in (
            dict(offered_tx_per_s=0.0),
            dict(arrivals=0),
            dict(process="uniform"),
            dict(burst_on_fraction=1.0),
            dict(n_tenants=0),
            dict(n_threads=0),
            dict(queue_capacity=0),
            dict(drop_policy="random"),
            dict(mix=()),
        ):
            with pytest.raises(ValueError):
                fast_traffic(**bad).validate()

    def test_more_threads_than_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            run_traffic("MorLog-SLDE", fast_traffic(n_threads=16),
                        config=tiny_config())


class TestTailLatency:
    def test_p99_diverges_before_goodput_collapses(self):
        """The SLO story: tail latency blows up while goodput still holds.

        At ~2x saturation the queues are persistently deep, so p99 commit
        latency (arrival → persist) has grown several-fold over the
        lightly loaded point, yet the machine is still completing work at
        (near) its service capacity — goodput has not fallen with it.
        """
        light = run_traffic(
            "MorLog-SLDE", fast_traffic(offered_tx_per_s=100_000.0,
                                        queue_capacity=32),
            config=tiny_config())
        heavy = run_traffic(
            "MorLog-SLDE", fast_traffic(offered_tx_per_s=20_000_000.0,
                                        queue_capacity=32),
            config=tiny_config())
        assert heavy.p99_latency_ns >= 3.0 * light.p99_latency_ns
        assert heavy.goodput_tx_per_s >= light.goodput_tx_per_s


def synthetic_point(offered, p99_ns, goodput):
    """A TrafficResult with just the fields knee detection reads."""
    makespan_ns = 1e9
    completed = int(goodput)  # completed / 1 s
    return TrafficResult(
        design="synthetic", offered_tx_per_s=offered, arrivals=completed,
        admitted=completed, completed=completed, dropped=0, crashed=False,
        makespan_ns=makespan_ns, last_arrival_ns=makespan_ns,
        mean_latency_ns=p99_ns / 2, p50_latency_ns=p99_ns / 2,
        p99_latency_ns=p99_ns, p999_latency_ns=p99_ns * 2,
        max_latency_ns=p99_ns * 3, mean_queue_ns=0.0, p50_queue_ns=0.0,
        p99_queue_ns=0.0, p999_queue_ns=0.0, max_queue_depth=0,
        drops_by_core=(), completions_by_tenant=(), drops_by_tenant=())


class TestFindKnee:
    def test_detects_the_decoupling_point(self):
        points = [
            synthetic_point(1e5, 1_000.0, 1e5),   # light: follows load
            synthetic_point(4e5, 1_500.0, 4e5),   # still linear
            synthetic_point(1.6e6, 9_000.0, 4.5e5),  # p99 9x, goodput flat
        ]
        assert find_knee(points) == pytest.approx(1.6e6)

    def test_no_knee_when_goodput_keeps_scaling(self):
        points = [
            synthetic_point(1e5, 1_000.0, 1e5),
            synthetic_point(4e5, 4_000.0, 4e5),  # p99 up, but goodput 4x too
        ]
        assert find_knee(points) is None

    def test_no_knee_when_latency_stays_flat(self):
        points = [
            synthetic_point(1e5, 1_000.0, 1e5),
            synthetic_point(4e5, 1_100.0, 1e5),  # goodput flat, p99 fine
        ]
        assert find_knee(points) is None

    def test_needs_two_points(self):
        assert find_knee([synthetic_point(1e5, 1_000.0, 1e5)]) is None
        assert find_knee([]) is None


class TestSweep:
    LOADS = (100_000.0, 4_000_000.0)

    def test_serial_and_parallel_sweeps_are_bit_identical(self):
        traffic = fast_traffic(arrivals=60)
        serial = run_load_sweep(
            ["MorLog-SLDE", "FWB-CRADE"], self.LOADS, traffic,
            config=tiny_config(), jobs=1)
        parallel = run_load_sweep(
            ["MorLog-SLDE", "FWB-CRADE"], self.LOADS, traffic,
            config=tiny_config(), jobs=4)
        for design in serial.designs:
            assert [r.to_dict() for r in serial.results[design]] == \
                [r.to_dict() for r in parallel.results[design]]

    def test_cache_round_trip(self, tmp_path):
        traffic = fast_traffic(arrivals=60)
        cache = PayloadCache(tmp_path / "cache")
        cold = run_load_sweep(["MorLog-SLDE"], self.LOADS, traffic,
                              config=tiny_config(), jobs=1, cache=cache)
        assert cold.report.misses == 2 and cold.report.hits == 0
        warm = run_load_sweep(["MorLog-SLDE"], self.LOADS, traffic,
                              config=tiny_config(), jobs=1, cache=cache)
        assert warm.report.hits == 2 and warm.report.misses == 0
        for a, b in zip(cold.results["MorLog-SLDE"],
                        warm.results["MorLog-SLDE"]):
            assert a.to_dict() == b.to_dict()

    def test_cell_key_separates_scenarios(self):
        spec_a = resolve_traffic_cell(
            "MorLog-SLDE", fast_traffic(), config=tiny_config())
        spec_b = resolve_traffic_cell(
            "MorLog-SLDE", fast_traffic(seed=8), config=tiny_config())
        spec_c = resolve_traffic_cell(
            "FWB-CRADE", fast_traffic(), config=tiny_config())
        assert len({spec_a.key(), spec_b.key(), spec_c.key()}) == 3
        assert spec_a.key_fields()["kind"] == "traffic"

    def test_duplicate_traffic_cells_simulate_once(self, tmp_path):
        from repro.traffic.sweep import run_traffic_cells

        spec = resolve_traffic_cell(
            "MorLog-SLDE", fast_traffic(arrivals=60), config=tiny_config())
        cache = PayloadCache(str(tmp_path / "cache"))
        results, report = run_traffic_cells(
            [spec, spec], jobs=2, cache=cache)
        assert report.simulated_cells == 1
        assert cache.stats.stores == 1
        assert results[0].to_dict() == results[1].to_dict()

    def test_failing_traffic_cell_raises_not_drops(self, tmp_path):
        import dataclasses

        from repro.experiments.megagrid import GridAssemblyError
        from repro.traffic.sweep import run_traffic_cells

        spec = resolve_traffic_cell(
            "MorLog-SLDE", fast_traffic(arrivals=60), config=tiny_config())
        bad = dataclasses.replace(spec, design="no-such-design")
        with pytest.raises(Exception) as excinfo:
            run_traffic_cells([spec, bad], jobs=1)
        # fail-fast surfaces the worker error as a typed engine error.
        from repro.experiments.megagrid import CellExecutionError

        assert isinstance(excinfo.value, CellExecutionError)

    def test_fail_soft_traffic_keeps_positions(self, tmp_path):
        import dataclasses

        from repro.traffic.sweep import run_traffic_cells

        good = resolve_traffic_cell(
            "MorLog-SLDE", fast_traffic(arrivals=60), config=tiny_config())
        bad = dataclasses.replace(good, design="no-such-design")
        results, report = run_traffic_cells(
            [bad, good], jobs=1, fail_soft=True)
        assert results[0] is None
        assert results[1] is not None
        assert len(report.failures) == 1
        assert report.failures[0].design == "no-such-design"

    def test_sweep_records_are_schema_valid(self):
        traffic = fast_traffic(arrivals=60)
        outcome = run_load_sweep(["MorLog-SLDE"], self.LOADS, traffic,
                                 config=tiny_config(), jobs=1)
        records = sweep_records(outcome, config=tiny_config())
        # one goodput + three latency + one drop record per point, plus
        # one knee marker per design.
        assert len(records) == len(self.LOADS) * 5 + 1
        for rec in records:
            data = json.loads(json.dumps(rec.to_dict()))
            assert BenchRecord.from_dict(data) == rec
            assert rec.benchmark.startswith("traffic/MorLog-SLDE")
        digests = {rec.config_digest for rec in records}
        assert len(digests) == 1  # one scenario, one digest


class TestCrashUnderLoad:
    def test_crash_composition_profiles_recovery(self):
        point = run_crash_under_load(
            "MorLog-SLDE", fast_traffic(offered_tx_per_s=2_000_000.0),
            config=tiny_config(), crash_fraction=0.8)
        assert point.crashed is True
        assert 0 < point.completed < point.crash_at_arrival + 1
        profile = point.profile
        assert profile.used_slots > 0
        assert 0.0 < profile.occupancy_fraction <= 1.0
        assert profile.log_records > 0
        assert profile.estimated_recovery_ns > 0
        data = json.loads(json.dumps(point.to_dict()))
        assert data["profile"]["used_slots"] == profile.used_slots

    def test_crashed_run_reports_partial_completion(self):
        traffic = fast_traffic(offered_tx_per_s=2_000_000.0)
        result, system = run_traffic_system(
            "MorLog-SLDE", traffic, config=tiny_config(),
            crash_at_arrival=int(0.5 * traffic.arrivals))
        assert result.crashed is True
        assert 0 < result.completed < traffic.arrivals
        # Un-drained on purpose: recovery must see the cut state.
        state = system.recover()
        assert state.redone_words + state.undone_words >= 0

    def test_crash_fraction_validated(self):
        with pytest.raises(ValueError, match="crash_fraction"):
            run_crash_under_load(
                "MorLog-SLDE", fast_traffic(), config=tiny_config(),
                crash_fraction=0.0)

    def test_crash_point_deterministic(self):
        traffic = fast_traffic(offered_tx_per_s=2_000_000.0)
        a = run_crash_under_load("MorLog-SLDE", traffic,
                                 config=tiny_config(), crash_fraction=0.7)
        b = run_crash_under_load("MorLog-SLDE", traffic,
                                 config=tiny_config(), crash_fraction=0.7)
        assert a.to_dict() == b.to_dict()
