"""Rendering/plumbing tests for the figure harness (no heavy runs)."""

from collections import OrderedDict

import pytest

from repro.experiments import figures


class TestNormalizedRows:
    def _values(self):
        return OrderedDict(
            [
                ("w1", OrderedDict([("FWB-CRADE", 2.0), ("MorLog-DP", 4.0)])),
                ("w2", OrderedDict([("FWB-CRADE", 1.0), ("MorLog-DP", 1.0)])),
            ]
        )

    def test_baseline_column_is_one(self):
        headers, rows = figures._normalized_rows(self._values())
        assert headers == ["workload", "FWB-CRADE", "MorLog-DP"]
        assert rows[0][1] == pytest.approx(1.0)
        assert rows[0][2] == pytest.approx(2.0)

    def test_gmean_row_appended(self):
        _headers, rows = figures._normalized_rows(self._values())
        assert rows[-1][0] == "Gmean"
        assert rows[-1][2] == pytest.approx(2.0 ** 0.5)

    def test_normalized_table_renders(self):
        text = figures.normalized_table(self._values(), "t")
        assert "Gmean" in text and "t" in text


class TestGridMetric:
    def test_extracts_metric(self):
        class R:
            def __init__(self, v):
                self.v = v

        grid = {"w": {"a": R(1), "b": R(2)}}
        out = figures._grid_metric(grid, lambda r: r.v * 10)
        assert out["w"]["b"] == 20


class TestConstants:
    def test_macro_cells_match_paper_figure_14(self):
        labels = [label for _w, _d, label in figures.MACRO_CELLS]
        assert labels == [
            "Echo-Small", "Echo-Large", "YCSB-Small", "YCSB-Large", "TPCC",
        ]

    def test_motivation_workloads_match_paper_figure_3(self):
        # Figure 3's x axis: echo ycsb tpcc vacation ctree hashmap redis
        # memcached.
        assert set(figures.MOTIVATION_WORKLOADS) == {
            "echo", "ycsb", "tpcc", "vacation", "ctree", "hash",
            "redis", "memcached",
        }

    def test_micro_list_matches_table_iv(self):
        assert figures.MICRO == ("btree", "hash", "queue", "rbtree", "sdg", "sps")

    def test_design_names_order(self):
        from repro.core.designs import DESIGN_NAMES

        assert DESIGN_NAMES[0] == "FWB-CRADE"
        assert DESIGN_NAMES[-1] == "MorLog-DP"


class TestDatasetSize:
    def test_item_words(self):
        from repro.workloads.base import DatasetSize

        assert DatasetSize.SMALL.item_words == 8
        assert DatasetSize.LARGE.item_words == 512
