"""Persistent heap allocator tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import AllocationError
from repro.heap.allocator import PersistentHeap


class TestPmalloc:
    def test_alignment(self):
        heap = PersistentHeap(0x1000, 1 << 16)
        for size in (1, 8, 63, 64, 65, 4000):
            addr = heap.pmalloc(size)
            assert addr % 64 == 0

    def test_distinct_allocations(self):
        heap = PersistentHeap(0x1000, 4096)
        a = heap.pmalloc(64)
        b = heap.pmalloc(64)
        assert a != b

    def test_no_overlap(self):
        heap = PersistentHeap(0x1000, 1 << 20)
        spans = []
        for size in (8, 100, 64, 4096, 32):
            addr = heap.pmalloc(size)
            spans.append((addr, addr + size))
        spans.sort()
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_exhaustion(self):
        heap = PersistentHeap(0x1000, 128)
        heap.pmalloc(64)
        heap.pmalloc(64)
        with pytest.raises(AllocationError):
            heap.pmalloc(1)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            PersistentHeap(0x1001, 4096)


class TestPfree:
    def test_reuse_same_size_class(self):
        heap = PersistentHeap(0x1000, 4096)
        a = heap.pmalloc(64)
        heap.pfree(a)
        b = heap.pmalloc(64)
        assert b == a

    def test_no_reuse_across_size_classes(self):
        heap = PersistentHeap(0x1000, 1 << 16)
        a = heap.pmalloc(64)
        heap.pfree(a)
        b = heap.pmalloc(128)
        assert b != a

    def test_double_free_rejected(self):
        heap = PersistentHeap(0x1000, 4096)
        a = heap.pmalloc(64)
        heap.pfree(a)
        with pytest.raises(AllocationError):
            heap.pfree(a)

    def test_free_unknown_rejected(self):
        heap = PersistentHeap(0x1000, 4096)
        with pytest.raises(AllocationError):
            heap.pfree(0x2000)

    def test_allocated_bytes_tracks(self):
        heap = PersistentHeap(0x1000, 4096)
        a = heap.pmalloc(64)
        assert heap.allocated_bytes == 64
        heap.pfree(a)
        assert heap.allocated_bytes == 0


@given(st.lists(st.integers(min_value=1, max_value=512), max_size=40))
def test_alloc_free_cycles_never_overlap_live(sizes):
    heap = PersistentHeap(0x1000, 1 << 20)
    live = {}
    for i, size in enumerate(sizes):
        addr = heap.pmalloc(size)
        for other, other_size in live.items():
            assert addr + size <= other or other + other_size <= addr
        live[addr] = size
        if i % 3 == 2:
            victim = next(iter(live))
            heap.pfree(victim)
            del live[victim]
