"""DLDC tests: the Table II patterns and the log-data codec."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import dirty_byte_mask
from repro.encoding.dldc import (
    DldcCodec,
    dldc_compress_pattern,
    dldc_decompress_pattern,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
byte_strings = st.lists(
    st.integers(min_value=0, max_value=0xFF), min_size=1, max_size=8
)


class TestTableIIExamples:
    """The worked examples straight from the paper's Table II."""

    def test_all_zero(self):
        tag, payload, bits = dldc_compress_pattern([0, 0, 0, 0])
        assert (tag, payload, bits) == (0b000, 0, 0)

    def test_2bit_sign_extended_per_byte(self):
        # 0x01F20101 bytes (LE): 01 01 F2 01 -- each fits 2 signed bits?
        # 0xF2 does not; use a clean example: 01 FE 01 01.
        data = [0x01, 0xFE, 0x01, 0x01]
        tag, _payload, bits = dldc_compress_pattern(data)
        assert tag == 0b001
        assert bits == 8

    def test_4bit_sign_extended_per_byte(self):
        # Paper example 0x03F905FE -> 0x2395E (tag 010).
        data = [0xFE, 0x05, 0xF9, 0x03]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b010
        assert bits == 16
        assert payload == 0x395E

    def test_1byte_sign_extended(self):
        # Paper example 0xFFFFFF80 -> 0x380 (tag 011).
        data = [0x80, 0xFF, 0xFF, 0xFF]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b011
        assert payload == 0x80
        assert bits == 8

    def test_2byte_sign_extended(self):
        # Paper example 0x00007FFF -> tag 100.
        data = [0xFF, 0x7F, 0x00, 0x00]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b100
        assert payload == 0x7FFF
        assert bits == 16

    def test_4byte_sign_extended(self):
        # Paper example 0xFF80000000 -> tag 101.
        data = [0x00, 0x00, 0x00, 0x80, 0xFF]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b101
        assert payload == 0x80000000
        assert bits == 32

    def test_4bit_zero_padded(self):
        # Paper example 0x10203040 -> 0x61234 (tag 110).
        data = [0x40, 0x30, 0x20, 0x10]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b110
        assert bits == 16
        assert payload == 0x1234

    def test_zero_low_byte(self):
        # Paper example 0x1234567800 -> tag 111, 5-bit size reduction.
        data = [0x00, 0x78, 0x56, 0x34, 0x12]
        tag, payload, bits = dldc_compress_pattern(data)
        assert tag == 0b111
        assert payload == 0x12345678
        assert bits == 32

    def test_unmatchable_returns_none(self):
        assert dldc_compress_pattern([0x5A, 0xC3, 0x97, 0x1D]) is None


class TestPatternRoundtrip:
    @given(byte_strings)
    def test_roundtrip_when_compressible(self, data):
        match = dldc_compress_pattern(data)
        if match is None:
            return
        tag, payload, _bits = match
        assert dldc_decompress_pattern(tag, payload, len(data)) == data

    def test_decompress_rejects_bad_tag(self):
        with pytest.raises(ValueError):
            dldc_decompress_pattern(8, 0, 4)

    @given(byte_strings)
    def test_compressed_size_smaller(self, data):
        match = dldc_compress_pattern(data)
        if match is not None:
            _tag, _payload, bits = match
            assert bits <= 8 * len(data)


class TestDldcCodec:
    @given(words, words)
    def test_encode_decode_against_base(self, old, new):
        codec = DldcCodec()
        mask = dirty_byte_mask(old, new)
        encoded = codec.encode_log(new, mask)
        if encoded.silent:
            assert old == new
            assert codec.decode(encoded, old) == old
        else:
            assert codec.decode(encoded, old) == new

    def test_silent_entry_writes_nothing(self):
        encoded = DldcCodec().encode_log(0x42, 0)
        assert encoded.silent
        assert encoded.total_bits == 0

    def test_dirty_flag_charged_as_tag_bits(self):
        encoded = DldcCodec().encode_log(0xFF, 0b1)
        assert encoded.tag_bits == 8

    def test_plain_encode_rejected(self):
        with pytest.raises(TypeError):
            DldcCodec().encode(0x1)

    def test_bad_mask_rejected(self):
        with pytest.raises(ValueError):
            DldcCodec().encode_log(0, 0x100)

    def test_decode_needs_base_word(self):
        codec = DldcCodec()
        encoded = codec.encode_log(0xFF, 0b1)
        with pytest.raises(ValueError):
            codec.decode(encoded, None)

    @given(words, words)
    def test_encoded_size_at_most_dirty_bytes_plus_header(self, old, new):
        mask = dirty_byte_mask(old, new)
        encoded = DldcCodec().encode_log(new, mask)
        if not encoded.silent:
            dirty = bin(mask).count("1")
            assert encoded.payload_bits <= 1 + 8 * dirty

    def test_single_dirty_byte_beats_full_word(self):
        old, new = 0, 0x42
        encoded = DldcCodec().encode_log(new, dirty_byte_mask(old, new))
        assert encoded.total_bits < 64
