"""Experiment runner plumbing tests (scale env var, param threading)."""

import os

import pytest

from repro.experiments.runner import (
    DEFAULT_PARAMS,
    ExperimentScale,
    _scale,
    default_config,
    run_design,
)
from repro.workloads.base import DatasetSize


class TestScaleEnv:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert _scale() == 1.0

    def test_env_scale_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        scale = ExperimentScale(micro_transactions=100)
        assert scale.transactions(False, DatasetSize.SMALL) == 50

    def test_bad_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert _scale() == 1.0

    def test_floor_of_ten(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        scale = ExperimentScale()
        assert scale.transactions(False, DatasetSize.SMALL) == 10


class TestRunDesignPlumbing:
    def test_explicit_counts_override_scale(self):
        result = run_design(
            "FWB-CRADE",
            "queue",
            DatasetSize.SMALL,
            n_transactions=15,
            n_threads=1,
        )
        assert result.transactions == 15

    def test_dataset_threads_into_params(self):
        result = run_design(
            "MorLog-SLDE",
            "queue",
            DatasetSize.LARGE,
            n_transactions=5,
            n_threads=1,
        )
        # Large items (512 words) produce far more stores per tx.
        assert result.stats["stores"] > 5 * 100

    def test_default_config_log_region(self):
        config = default_config()
        assert config.logging.log_region_bytes == 8 * 1024 * 1024
        config.validate()

    def test_default_params_reasonable(self):
        assert DEFAULT_PARAMS.initial_items > 0
        assert DEFAULT_PARAMS.key_space > DEFAULT_PARAMS.initial_items
