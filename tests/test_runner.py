"""Experiment runner plumbing tests (scale env var, param threading)."""

import dataclasses
import os

import pytest

from repro.common.errors import ConfigError
from repro.experiments.runner import (
    DEFAULT_PARAMS,
    ExperimentScale,
    _scale,
    default_config,
    resolve_params,
    run_design,
)
from repro.workloads.base import DatasetSize, WorkloadParams


class TestScaleEnv:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert _scale() == 1.0

    def test_env_scale_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        scale = ExperimentScale(micro_transactions=100)
        assert scale.transactions(False, DatasetSize.SMALL) == 50

    def test_bad_env_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_SCALE"):
            assert _scale() == 1.0

    def test_zero_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ConfigError, match="positive"):
            _scale()

    def test_negative_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-0.5")
        with pytest.raises(ConfigError, match="positive"):
            _scale()

    def test_floor_of_ten(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        scale = ExperimentScale()
        assert scale.transactions(False, DatasetSize.SMALL) == 10


class TestResolveParams:
    def test_no_field_is_lost(self):
        """resolve_params must carry every WorkloadParams field through.

        The old code rebuilt WorkloadParams field-by-field from a
        hand-written list, silently dropping any field added later; this
        constructs params with a non-default value in every field and
        checks each one survives.
        """
        overrides = {}
        for field in dataclasses.fields(WorkloadParams):
            if field.name == "dataset":
                continue
            default = field.default
            if isinstance(default, bool):
                overrides[field.name] = not default
            elif isinstance(default, int):
                overrides[field.name] = default + 13
            elif isinstance(default, float):
                overrides[field.name] = default / 2 + 0.01
            else:
                pytest.fail(
                    "unhandled field type for %r — extend this test" % field.name
                )
        params = WorkloadParams(**overrides)
        resolved = resolve_params(params, DatasetSize.LARGE)
        assert resolved.dataset is DatasetSize.LARGE
        for name, value in overrides.items():
            assert getattr(resolved, name) == value, name

    def test_none_uses_defaults(self):
        resolved = resolve_params(None, DatasetSize.SMALL)
        assert resolved == dataclasses.replace(
            DEFAULT_PARAMS, dataset=DatasetSize.SMALL
        )


class TestRunDesignPlumbing:
    def test_explicit_counts_override_scale(self):
        result = run_design(
            "FWB-CRADE",
            "queue",
            DatasetSize.SMALL,
            n_transactions=15,
            n_threads=1,
        )
        assert result.transactions == 15

    def test_dataset_threads_into_params(self):
        result = run_design(
            "MorLog-SLDE",
            "queue",
            DatasetSize.LARGE,
            n_transactions=5,
            n_threads=1,
        )
        # Large items (512 words) produce far more stores per tx.
        assert result.stats["stores"] > 5 * 100

    def test_default_config_log_region(self):
        config = default_config()
        assert config.logging.log_region_bytes == 8 * 1024 * 1024
        config.validate()

    def test_default_params_reasonable(self):
        assert DEFAULT_PARAMS.initial_items > 0
        assert DEFAULT_PARAMS.key_space > DEFAULT_PARAMS.initial_items
