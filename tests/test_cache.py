"""Cache line, set-associative cache and hierarchy tests."""

import pytest

from repro.cache.cache import SetAssocCache
from repro.cache.cacheline import CacheLine, LogState
from repro.cache.hierarchy import CacheHierarchy, CacheListener
from repro.common.config import CacheLevelConfig
from repro.common.stats import StatGroup
from repro.memory.controller import MemoryController
from tests.conftest import tiny_config


class TestCacheLine:
    def test_words_default_zero(self):
        line = CacheLine(0)
        assert line.words == [0] * 8
        assert not line.dirty

    def test_set_word_marks_dirty(self):
        line = CacheLine(0)
        line.set_word(3, 42)
        assert line.dirty and line.word(3) == 42

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError):
            CacheLine(0, [1, 2, 3])

    def test_log_state_lifecycle(self):
        line = CacheLine(0)
        line.tid, line.txid = 1, 7
        line.set_state(2, LogState.ULOG)
        line.word_dirty_flags[2] = 0xF0
        assert line.has_log_state()
        assert line.words_in_state(LogState.ULOG) == [2]
        line.clear_log_state()
        assert not line.has_log_state()
        assert line.tid is None and line.txid is None
        assert line.word_dirty_flags[2] == 0


class TestSetAssocCache:
    def _cache(self, assoc=2, sets=4):
        config = CacheLevelConfig(assoc * sets * 64, assoc, 64, 4)
        return SetAssocCache("t", config, StatGroup("t"))

    def test_miss_returns_none(self):
        assert self._cache().lookup(0x0) is None

    def test_insert_lookup(self):
        cache = self._cache()
        cache.insert(CacheLine(0x40))
        assert cache.lookup(0x47).base_addr == 0x40

    def test_lru_eviction_order(self):
        cache = self._cache(assoc=2, sets=1)
        a, b, c = CacheLine(0x000), CacheLine(0x040), CacheLine(0x080)
        cache.insert(a)
        cache.insert(b)
        cache.lookup(0x000)           # refresh a; b becomes LRU
        victim = cache.insert(c)
        assert victim is b

    def test_reinsert_same_line_no_eviction(self):
        cache = self._cache(assoc=1, sets=1)
        line = CacheLine(0x0)
        cache.insert(line)
        assert cache.insert(line) is None

    def test_remove(self):
        cache = self._cache()
        cache.insert(CacheLine(0x40))
        assert cache.remove(0x40).base_addr == 0x40
        assert cache.lookup(0x40) is None

    def test_unaligned_insert_rejected(self):
        with pytest.raises(ValueError):
            self._cache().insert(CacheLine(0x41))

    def test_len_and_iter(self):
        cache = self._cache()
        for i in range(3):
            cache.insert(CacheLine(i * 64))
        assert len(cache) == 3
        assert len(list(cache.iter_lines())) == 3


class RecordingListener(CacheListener):
    def __init__(self):
        self.l1_evictions = []
        self.write_backs = []
        self.persisted = []

    def on_l1_evict(self, core, line, now_ns):
        self.l1_evictions.append((core, line.base_addr))
        return now_ns

    def before_llc_write_back(self, line_addr, now_ns):
        self.write_backs.append(line_addr)
        return now_ns

    def on_data_persisted(self, line_addr, now_ns):
        self.persisted.append(line_addr)


class TestHierarchy:
    def _hierarchy(self):
        config = tiny_config()
        controller = MemoryController(config, StatGroup("t"))
        listener = RecordingListener()
        hierarchy = CacheHierarchy(config, controller, StatGroup("t"), listener)
        return config, controller, listener, hierarchy

    def test_miss_then_hit_latency(self):
        config, _c, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        _line, t_miss = hierarchy.access(0, addr, 0.0, is_store=False)
        _line, t_hit = hierarchy.access(0, addr, t_miss, is_store=False)
        assert t_miss > config.nvm.read_latency_ns  # went to memory
        assert t_hit - t_miss == pytest.approx(
            config.caches.l1.latency_cycles * config.cores.ns_per_cycle
        )

    def test_store_hit_uses_store_buffer_latency(self):
        config, _c, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        _line, t0 = hierarchy.access(0, addr, 0.0, is_store=True)
        _line, t1 = hierarchy.access(0, addr, t0, is_store=True)
        assert t1 - t0 == pytest.approx(
            config.cores.store_hit_cycles * config.cores.ns_per_cycle
        )

    def test_memory_fill_reads_value(self):
        config, controller, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base + 0x1000
        controller.nvm.array.write_logical(addr, 77)
        line, _t = hierarchy.access(0, addr, 0.0, is_store=False)
        assert line.word(0) == 77

    def test_eviction_chain_to_memory(self):
        config, controller, listener, hierarchy = self._hierarchy()
        base = config.nvmm_base
        # Touch enough lines to overflow L1+L2+L3 of one set path.
        n_lines = 4096
        t = 0.0
        for i in range(n_lines):
            line, t = hierarchy.access(0, base + i * 64, t, is_store=True)
            line.set_word(0, i + 1)
        assert listener.l1_evictions, "L1 should have evicted"
        assert listener.write_backs, "LLC should have written back"
        assert listener.write_backs == listener.persisted

    def test_coherence_transfer_moves_dirty_line(self):
        config, _c, listener, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        line, t = hierarchy.access(0, addr, 0.0, is_store=True)
        line.set_word(0, 123)
        line2, _t = hierarchy.access(1, addr, t, is_store=False)
        assert line2.word(0) == 123
        assert (0, line.base_addr) in listener.l1_evictions

    def test_coherent_word_sees_cached_value(self):
        config, _c, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        line, _t = hierarchy.access(0, addr, 0.0, is_store=True)
        line.set_word(0, 9)
        assert hierarchy.coherent_word(addr) == 9

    def test_fwb_scan_two_pass_write_back(self):
        config, controller, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        line, t = hierarchy.access(0, addr, 0.0, is_store=True)
        line.set_word(0, 5)
        hierarchy.force_write_back_scan(t)      # first scan sets the flag
        assert controller.nvm.array.read_logical(addr) == 0
        hierarchy.force_write_back_scan(t)      # second scan writes back
        assert controller.nvm.array.read_logical(addr) == 5
        assert not line.dirty
        assert hierarchy.l1s[0].lookup(addr) is line  # not invalidated

    def test_drain_all_flushes_everything(self):
        config, controller, _l, hierarchy = self._hierarchy()
        addr = config.nvmm_base
        line, t = hierarchy.access(0, addr, 0.0, is_store=True)
        line.set_word(2, 11)
        hierarchy.drain_all(t)
        assert controller.nvm.array.read_logical(addr + 16) == 11
