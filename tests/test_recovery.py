"""Recovery-routine tests: log scanning, redo/undo application, DP prefix."""

import pytest

from repro.common.stats import StatGroup
from repro.logging_hw.entries import CommitRecord, EntryType, LogEntry
from repro.logging_hw.recovery import recover, scan_log
from repro.logging_hw.region import LogRegion
from repro.memory.controller import MemoryController
from tests.conftest import tiny_config

REGION_SIZE = 8192


@pytest.fixture
def setup():
    config = tiny_config()
    controller = MemoryController(config, StatGroup("t"))
    region = LogRegion(controller, 0x9000_0000, REGION_SIZE, StatGroup("t"))
    return controller, region


def ur(region, txid, addr, undo, redo, tid=0):
    region.append(
        LogEntry(EntryType.UNDO_REDO, tid, txid, addr, redo, undo), 0.0
    )


def rd(region, txid, addr, redo, tid=0):
    region.append(LogEntry(EntryType.REDO, tid, txid, addr, redo), 0.0)


def commit(region, txid, ulog=0, tid=0):
    region.append(CommitRecord(tid=tid, txid=txid, ulog_counter=ulog), 0.0)


class TestScan:
    def test_empty_log(self, setup):
        controller, region = setup
        assert scan_log(controller, region.base_addr, REGION_SIZE) == []

    def test_scan_finds_entries_in_order(self, setup):
        controller, region = setup
        ur(region, 1, 0x100, 10, 11)
        rd(region, 1, 0x108, 12)
        commit(region, 1)
        records = scan_log(controller, region.base_addr, REGION_SIZE)
        assert [r.meta.type for r in records] == [
            EntryType.UNDO_REDO,
            EntryType.REDO,
            EntryType.COMMIT,
        ]
        assert records[0].undo == 10 and records[0].redo == 11
        assert records[1].redo == 12

    def test_scan_stops_at_tail(self, setup):
        controller, region = setup
        ur(region, 1, 0x100, 1, 2)
        records = scan_log(controller, region.base_addr, REGION_SIZE)
        assert len(records) == 1

    def test_scan_survives_wrap(self, setup):
        controller, region = setup
        # Keep only the most recent 32 entries whenever space runs out.
        region.on_overflow = lambda now: region.truncate(
            lambda e: e.seq < region.seq - 32, now
        )
        for i in range(400):
            ur(region, 1000 + i, 0x100 + 8 * (i % 16), i, i + 1)
        assert region.stats.get("wraps") >= 1
        records = scan_log(controller, region.base_addr, REGION_SIZE)
        assert len(records) == len(region.live)
        seqs = [r.meta.seq for r in records]
        assert seqs == sorted(seqs) or region.stats.get("wraps")  # chain intact

    def test_scan_after_truncation_starts_at_head(self, setup):
        controller, region = setup
        ur(region, 1, 0x100, 1, 2)
        commit(region, 1)
        ur(region, 2, 0x108, 3, 4)
        region.truncate(lambda e: e.txid == 1, 0.0)
        records = scan_log(controller, region.base_addr, REGION_SIZE)
        assert len(records) == 1
        assert records[0].meta.txid == 2


class TestDefaultProtocolRecovery:
    def test_committed_tx_redone(self, setup):
        controller, region = setup
        array = controller.nvm.array
        array.write_logical(0x100, 10)
        ur(region, 1, 0x100, 10, 20)
        commit(region, 1)
        state = recover(controller, region.base_addr, REGION_SIZE)
        assert state.persisted_txids == {1}
        assert array.read_logical(0x100) == 20

    def test_uncommitted_tx_undone(self, setup):
        controller, region = setup
        array = controller.nvm.array
        array.write_logical(0x100, 20)  # in-place already updated
        ur(region, 1, 0x100, 10, 20)
        state = recover(controller, region.base_addr, REGION_SIZE)
        assert not state.committed_txids
        assert array.read_logical(0x100) == 10

    def test_redo_applies_in_log_order(self, setup):
        controller, region = setup
        array = controller.nvm.array
        ur(region, 1, 0x100, 0, 1)
        rd(region, 1, 0x100, 2)
        commit(region, 1)
        recover(controller, region.base_addr, REGION_SIZE)
        assert array.read_logical(0x100) == 2

    def test_cross_tx_redo_in_commit_order(self, setup):
        controller, region = setup
        array = controller.nvm.array
        ur(region, 1, 0x100, 0, 1)
        commit(region, 1)
        ur(region, 2, 0x100, 1, 2)
        commit(region, 2)
        recover(controller, region.base_addr, REGION_SIZE)
        assert array.read_logical(0x100) == 2

    def test_undo_in_reverse_order(self, setup):
        controller, region = setup
        array = controller.nvm.array
        array.write_logical(0x100, 30)
        ur(region, 1, 0x100, 10, 20)
        ur(region, 2, 0x100, 20, 30)
        recover(controller, region.base_addr, REGION_SIZE)
        assert array.read_logical(0x100) == 10

    def test_mixed_committed_and_inflight(self, setup):
        controller, region = setup
        array = controller.nvm.array
        ur(region, 1, 0x100, 0, 5)
        commit(region, 1)
        ur(region, 2, 0x108, 7, 9)  # never commits
        array.write_logical(0x108, 9)
        recover(controller, region.base_addr, REGION_SIZE)
        assert array.read_logical(0x100) == 5
        assert array.read_logical(0x108) == 7


class TestDelayPersistenceRecovery:
    def test_persisted_when_redo_count_matches(self, setup):
        controller, region = setup
        array = controller.nvm.array
        ur(region, 1, 0x100, 0, 1)
        commit(region, 1, ulog=1)
        rd(region, 1, 0x100, 2)  # created after commit
        state = recover(
            controller, region.base_addr, REGION_SIZE, delay_persistence=True
        )
        assert state.persisted_txids == {1}
        assert array.read_logical(0x100) == 2

    def test_non_persisted_rolled_back(self, setup):
        controller, region = setup
        array = controller.nvm.array
        array.write_logical(0x100, 1)
        ur(region, 1, 0x100, 0, 1)
        commit(region, 1, ulog=2)  # two redo entries promised, none arrived
        state = recover(
            controller, region.base_addr, REGION_SIZE, delay_persistence=True
        )
        assert not state.persisted_txids
        assert array.read_logical(0x100) == 0

    def test_commit_order_prefix_rule(self, setup):
        controller, region = setup
        array = controller.nvm.array
        # tx1 persisted, tx2 not, tx3 would be but must roll back too.
        ur(region, 1, 0x100, 0, 1)
        commit(region, 1, ulog=0)
        ur(region, 2, 0x108, 0, 2)
        commit(region, 2, ulog=1)  # missing redo entry
        ur(region, 3, 0x110, 0, 3)
        commit(region, 3, ulog=0)
        array.write_logical(0x110, 3)
        state = recover(
            controller, region.base_addr, REGION_SIZE, delay_persistence=True
        )
        assert state.persisted_txids == {1}
        assert array.read_logical(0x100) == 1
        assert array.read_logical(0x108) == 0
        assert array.read_logical(0x110) == 0

    def test_pre_commit_redo_entries_not_counted(self, setup):
        controller, region = setup
        ur(region, 1, 0x100, 0, 1)
        rd(region, 1, 0x100, 2)   # before the commit record
        commit(region, 1, ulog=0)
        state = recover(
            controller, region.base_addr, REGION_SIZE, delay_persistence=True
        )
        assert state.persisted_txids == {1}
