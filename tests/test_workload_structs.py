"""Correctness of hash map, queue, graph, array and macro structures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.heap.allocator import PersistentHeap
from repro.workloads.echo import EchoStore
from repro.workloads.hashmap import PersistentHashMap
from repro.workloads.queue import PersistentQueue
from repro.workloads.sdg import PersistentGraph
from repro.workloads.sps import PersistentArray
from repro.workloads.tpcc import N_DISTRICTS, TpccWarehouse
from tests.test_workload_trees import DictContext


def fresh(cls, *args, **kwargs):
    heap = PersistentHeap(0x1000, 1 << 24)
    ctx = DictContext()
    obj = cls(heap, *args, **kwargs)
    if hasattr(obj, "create"):
        obj.create(ctx)
    return obj, ctx, heap


class TestHashMap:
    def test_insert_lookup(self):
        table, ctx, _h = fresh(PersistentHashMap, 8)
        node = table.insert(ctx, 5, [1, 2, 3, 4, 5, 6])
        assert table.lookup(ctx, 5) == node
        assert table.lookup(ctx, 6) is None

    def test_update_in_place(self):
        table, ctx, _h = fresh(PersistentHashMap, 8)
        a = table.insert(ctx, 5, [1] * 6)
        b = table.insert(ctx, 5, [2] * 6)
        assert a == b
        assert ctx.load(table.value_addr(a, 0)) == 2

    def test_delete_unlinks(self):
        table, ctx, _h = fresh(PersistentHashMap, 8)
        table.insert(ctx, 5, [0] * 6)
        assert table.delete(ctx, 5)
        assert table.lookup(ctx, 5) is None
        assert not table.delete(ctx, 5)

    def test_chain_collisions(self):
        table, ctx, _h = fresh(PersistentHashMap, 8, 1)  # one bucket
        for key in (1, 2, 3):
            table.insert(ctx, key, [key] * 6)
        for key in (1, 2, 3):
            assert table.lookup(ctx, key) is not None
        table.delete(ctx, 2)
        assert table.lookup(ctx, 1) and table.lookup(ctx, 3)
        assert table.lookup(ctx, 2) is None

    def test_wrong_value_count_rejected(self):
        table, ctx, _h = fresh(PersistentHashMap, 8)
        with pytest.raises(ValueError):
            table.insert(ctx, 1, [0])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 24)), max_size=80))
    def test_matches_dict_oracle(self, ops):
        table, ctx, _h = fresh(PersistentHashMap, 8, 4)
        oracle = {}
        for insert, key in ops:
            if insert:
                values = [key] * 6
                table.insert(ctx, key, values)
                oracle[key] = values
            else:
                assert table.delete(ctx, key) == (key in oracle)
                oracle.pop(key, None)
        assert dict(table.items(ctx)) == oracle


class TestQueue:
    def test_fifo_order(self):
        queue, ctx, _h = fresh(PersistentQueue, 8)
        for i in range(5):
            queue.enqueue(ctx, [i] * 7)
        for i in range(5):
            assert queue.dequeue(ctx)[0] == i
        assert queue.dequeue(ctx) is None

    def test_length_tracks(self):
        queue, ctx, _h = fresh(PersistentQueue, 8)
        queue.enqueue(ctx, [1] * 7)
        queue.enqueue(ctx, [2] * 7)
        assert queue.length(ctx) == 2
        queue.dequeue(ctx)
        assert queue.length(ctx) == 1

    def test_drain_and_refill(self):
        queue, ctx, _h = fresh(PersistentQueue, 8)
        queue.enqueue(ctx, [1] * 7)
        queue.dequeue(ctx)
        queue.enqueue(ctx, [2] * 7)
        assert queue.dequeue(ctx)[0] == 2

    def test_nodes_recycled(self):
        queue, ctx, heap = fresh(PersistentQueue, 8)
        queue.enqueue(ctx, [1] * 7)
        first = queue._head(ctx)
        queue.dequeue(ctx)
        queue.enqueue(ctx, [2] * 7)
        assert queue._head(ctx) == first  # freed node reused

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), max_size=60))
    def test_matches_deque_oracle(self, ops):
        from collections import deque

        queue, ctx, _h = fresh(PersistentQueue, 8)
        oracle = deque()
        counter = 0
        for enqueue in ops:
            if enqueue:
                counter += 1
                queue.enqueue(ctx, [counter] * 7)
                oracle.append(counter)
            else:
                got = queue.dequeue(ctx)
                if oracle:
                    assert got[0] == oracle.popleft()
                else:
                    assert got is None
        assert [v[0] for v in queue.items(ctx)] == list(oracle)


class TestGraph:
    def test_insert_has_edge(self):
        graph, ctx, _h = fresh(PersistentGraph, 8, 16)
        graph.insert_edge(ctx, 1, 2, [0] * 6)
        assert graph.has_edge(ctx, 1, 2)
        assert not graph.has_edge(ctx, 2, 1)

    def test_duplicate_edge_updates(self):
        graph, ctx, _h = fresh(PersistentGraph, 8, 16)
        a = graph.insert_edge(ctx, 1, 2, [1] * 6)
        b = graph.insert_edge(ctx, 1, 2, [2] * 6)
        assert a == b
        assert len(list(graph.edges(ctx))) == 1

    def test_delete_edge(self):
        graph, ctx, _h = fresh(PersistentGraph, 8, 16)
        graph.insert_edge(ctx, 1, 2, [0] * 6)
        graph.insert_edge(ctx, 1, 3, [0] * 6)
        assert graph.delete_edge(ctx, 1, 2)
        assert not graph.has_edge(ctx, 1, 2)
        assert graph.has_edge(ctx, 1, 3)
        assert not graph.delete_edge(ctx, 1, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 5)), max_size=60))
    def test_matches_set_oracle(self, ops):
        graph, ctx, _h = fresh(PersistentGraph, 8, 8)
        oracle = set()
        for insert, src, dst in ops:
            if insert:
                graph.insert_edge(ctx, src, dst, [0] * 6)
                oracle.add((src, dst))
            else:
                assert graph.delete_edge(ctx, src, dst) == ((src, dst) in oracle)
                oracle.discard((src, dst))
        assert set(graph.edges(ctx)) == oracle


class TestSpsArray:
    def test_swap(self):
        heap = PersistentHeap(0x1000, 1 << 20)
        ctx = DictContext()
        array = PersistentArray(heap, 8, 4)
        array.write_entry(ctx, 0, list(range(8)))
        array.write_entry(ctx, 1, list(range(10, 18)))
        array.swap(ctx, 0, 1)
        assert array.read_entry(ctx, 0) == list(range(10, 18))
        assert array.read_entry(ctx, 1) == list(range(8))

    def test_self_swap_is_identity(self):
        heap = PersistentHeap(0x1000, 1 << 20)
        ctx = DictContext()
        array = PersistentArray(heap, 8, 2)
        array.write_entry(ctx, 0, [7] * 8)
        array.swap(ctx, 0, 0)
        assert array.read_entry(ctx, 0) == [7] * 8


class TestEcho:
    def test_put_get(self):
        store, ctx, _h = fresh(EchoStore, 8)
        store.put(ctx, 5, [1, 2, 3, 4])
        assert store.get(ctx, 5) == [1, 2, 3, 4]
        assert store.get(ctx, 6) is None

    def test_versions_monotonic(self):
        store, ctx, _h = fresh(EchoStore, 8)
        v1 = store.put(ctx, 5, [0] * 4)
        v2 = store.put(ctx, 6, [0] * 4)
        v3 = store.put(ctx, 5, [1] * 4)
        assert v1 < v2 < v3
        assert store.version(ctx, 5) == v3
        assert store.version(ctx, 6) == v2


class TestTpcc:
    def _warehouse(self):
        heap = PersistentHeap(0x1000, 1 << 27)
        ctx = DictContext()
        warehouse = TpccWarehouse(heap, n_items=32, n_customers=16)
        warehouse.populate(ctx, random.Random(0))
        return warehouse, ctx

    def test_order_ids_advance_per_district(self):
        warehouse, ctx = self._warehouse()
        rng = random.Random(1)
        seen = {}
        for _ in range(40):
            # Peek the district the next order will use by replaying rng.
            state = rng.getstate()
            d = rng.randrange(N_DISTRICTS)
            rng.setstate(state)
            o_id = warehouse.new_order(ctx, rng)
            assert o_id == seen.get(d, 1)
            seen[d] = o_id + 1

    def test_order_records_written(self):
        warehouse, ctx = self._warehouse()
        rng = random.Random(2)
        state = rng.getstate()
        d = rng.randrange(N_DISTRICTS)
        rng.setstate(state)
        o_id = warehouse.new_order(ctx, rng)
        rec = warehouse.order_rec(d, o_id)
        assert ctx.load(rec) == o_id
        ol_cnt = ctx.load(rec + 4 * 8)
        assert 5 <= ol_cnt <= 15
        line0 = warehouse.order_line_rec(d, o_id, 0)
        assert ctx.load(line0) == o_id

    def test_stock_conservation(self):
        """Stock ytd totals must equal the quantities ordered."""
        warehouse, ctx = self._warehouse()
        rng = random.Random(3)
        for _ in range(25):
            warehouse.new_order(ctx, rng)
        total_ytd = sum(
            ctx.load(warehouse.stock_rec(i) + 8) for i in range(warehouse.n_items)
        )
        # Sum the order-line quantities actually recorded.
        total_ordered = 0
        for d in range(N_DISTRICTS):
            next_o = ctx.load(warehouse.district_rec(d))
            for o_id in range(1, next_o):
                rec = warehouse.order_rec(d, o_id)
                ol_cnt = ctx.load(rec + 4 * 8)
                for line in range(ol_cnt):
                    total_ordered += ctx.load(
                        warehouse.order_line_rec(d, o_id, line) + 3 * 8
                    )
        assert total_ytd == total_ordered
