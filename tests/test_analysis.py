"""Analysis-layer tests: trace collector, overheads, report rendering."""

import pytest

from repro.analysis.overhead import morphable_logging_overhead, slde_overhead
from repro.analysis.report import format_normalized, format_table
from repro.analysis.trace import TraceCollector
from repro.common.config import SystemConfig
from repro.common.stats import Histogram, StatGroup, geometric_mean, normalize


class TestStatGroup:
    def test_add_and_get(self):
        stats = StatGroup("t")
        stats.add("x")
        stats.add("x", 2)
        assert stats.get("x") == 3

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 5

    def test_missing_key_default(self):
        assert StatGroup("t").get("nope", 7.0) == 7.0


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram()
        for value, label in ((0, "0-1"), (3, "2-3"), (500, ">=128")):
            hist.observe(value)
        counts = hist.counts()
        assert counts["0-1"] == 1 and counts["2-3"] == 1 and counts[">=128"] == 1

    def test_proportions_sum_to_one(self):
        hist = Histogram()
        for v in range(200):
            hist.observe(v)
        assert sum(hist.proportions().values()) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1)


class TestDerivedStats:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}


class TestTraceCollector:
    def test_first_write_counted(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0, 1)
        assert trace.first_writes == 1
        assert trace.distance.total == 0

    def test_distance_measured_between_rewrites(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0, 1)
        trace.on_tx_store(0, 1, 0x108, 0, 1)
        trace.on_tx_store(0, 1, 0x110, 0, 1)
        trace.on_tx_store(0, 1, 0x100, 1, 2)  # distance 2
        assert trace.distance.counts()["2-3"] == 1

    def test_distance_is_per_thread(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0, 1)
        trace.on_tx_store(1, 2, 0x100, 0, 1)  # other thread: first write
        assert trace.first_writes == 2

    def test_clean_byte_fraction(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0x00, 0xFF)  # 1 dirty, 7 clean
        assert trace.clean_byte_fraction == pytest.approx(7 / 8)

    def test_silent_store_tracked(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 5, 5)
        assert trace.silent_stores == 1

    def test_rewrite_fraction_resets_per_tx(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0, 1)
        trace.on_tx_store(0, 1, 0x100, 1, 2)   # rewrite in tx 1
        trace.on_tx_store(0, 2, 0x100, 2, 3)   # new tx: not a tx-rewrite
        assert trace.rewrites_in_tx == 1

    def test_pattern_census_counts_zero_pattern(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0xFF, 0x00)  # dirty byte is zero
        fractions = trace.pattern_fractions()
        assert fractions["all-zero"] == 1.0

    def test_distribution_includes_first_write(self):
        trace = TraceCollector()
        trace.on_tx_store(0, 1, 0x100, 0, 1)
        dist = trace.distance_distribution()
        assert dist["First Write"] == 1.0
        assert sum(dist.values()) == pytest.approx(1.0)


class TestOverheads:
    def test_table1_values_match_paper(self):
        """The published Table I numbers for the default configuration."""
        config = SystemConfig()
        from dataclasses import replace

        dp = config.with_changes(
            logging=replace(config.logging, delay_persistence=True)
        )
        hw = morphable_logging_overhead(dp)
        assert hw.log_registers_bytes == 16
        # 40 bits per L1 line = TID(8) + TxID(16) + state(16); dirty flags
        # add 64 more with SLDE byte-granularity flags.
        assert hw.l1_extension_bits_per_line == 40 + 64
        # Paper: 404 bytes for the 16-entry undo+redo buffer (with dirty
        # flags: 16 * (74 + 128 + 16) bits / 8 = 436; without: 404).
        assert hw.ulog_counters_bytes == pytest.approx(20.0)

    def test_buffer_bytes_without_dirty_flags_match_paper(self):
        from dataclasses import replace

        config = SystemConfig()
        no_slde = config.with_changes(
            encoding=replace(config.encoding, log_codec="crade")
        )
        hw = morphable_logging_overhead(no_slde)
        assert hw.undo_redo_buffer_bytes == pytest.approx(404.0)
        assert hw.redo_buffer_bytes == pytest.approx(552.0)
        assert hw.l1_extension_bits_per_line == 40
        assert hw.ulog_counters_bytes == 0.0

    def test_slde_flag_overhead_formula(self):
        out = slde_overhead(SystemConfig())
        # Paper section IV-C: <= 1/512 + max(3/202, 2/138) = 1.7 %.
        assert out["flag_bit_overhead"] == pytest.approx(1 / 512 + 3 / 202)
        assert out["logic_gates"] == 4200


class TestReport:
    def test_format_bars(self):
        from repro.analysis.report import format_bars

        text = format_bars({"a": 1.0, "bb": 0.5}, title="t", width=10)
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_format_bars_empty_rejected(self):
        from repro.analysis.report import format_bars

        with pytest.raises(ValueError):
            format_bars({})

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_normalized(self):
        text = format_normalized(
            {"w": {"base": 2.0, "other": 4.0}}, baseline="base"
        )
        assert "2.000" in text

    def test_format_normalized_missing_baseline(self):
        with pytest.raises(ValueError):
            format_normalized({"w": {"x": 1.0}}, baseline="base")
