"""Cross-core interactions: coherence transfers under live log state."""

import pytest

from repro.cache.cacheline import LogState
from tests.conftest import make_tiny_system


class TestLineMigrationWithLogState:
    def test_other_core_write_closes_out_previous_tx(self):
        """Core 1 touching a line that still carries core 0's committed
        ULog state must emit the pending redo entry first."""
        system = make_tiny_system("MorLog-DP")  # DP leaves ULog after commit
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 1)
        system.advance(0, 1000)
        system.store_word(0, base, 2)   # ULog on core 0's L1
        system.end_tx(0)
        # Core 1 writes a different word of the same line: the line
        # migrates, core 0's buffered redo becomes a redo entry.
        system.begin_tx(1)
        system.store_word(1, base + 8, 7)
        system.end_tx(1)
        system.logger.drain(max(system.core_time_ns))
        state = system.recover(verify_decode=True)
        redo = [r for r in state.records if r.meta.type.name == "REDO"]
        assert any(r.meta.addr == base and r.redo == 2 for r in redo)
        assert system.persistent_word(base) == 2
        assert system.persistent_word(base + 8) == 7

    def test_reader_on_other_core_sees_dirty_value(self):
        system = make_tiny_system()
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 0x42)
        system.end_tx(0)
        assert system.load_word(1, base) == 0x42

    def test_migrated_line_loses_l1_extensions(self):
        system = make_tiny_system()
        base = system.config.nvmm_base
        system.begin_tx(0)
        system.store_word(0, base, 5)
        system.end_tx(0)
        system.load_word(1, base)  # migrate to core 1
        line = system.hierarchy.l1s[1].lookup(base, touch=False)
        assert line is not None
        assert not line.has_log_state()
        assert line.txid is None

    def test_interleaved_transactions_on_shared_line_recover(self):
        """Alternating writers on one line, crash, all-or-nothing."""
        system = make_tiny_system()
        base = system.config.nvmm_base
        expected = {}
        for round_number in range(6):
            core = round_number % 2
            addr = base + 8 * core
            value = 100 * round_number + core
            system.begin_tx(core)
            system.store_word(core, addr, value)
            system.end_tx(core)
            expected[addr] = value
        state = system.recover(verify_decode=True)
        assert len(state.persisted_txids) == 6
        for addr, value in expected.items():
            assert system.persistent_word(addr) == value
