"""Table II: fraction of dirty log data each DLDC pattern compresses.

Paper shape: cumulatively ~42.5 % of dirty log data match one of the
eight patterns.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import HIGHER, record
from repro.experiments import figures


def test_table2_dldc_patterns(benchmark, scale):
    data = run_once(benchmark, lambda: figures.table2_patterns(scale))
    compressible = sum(v for k, v in data.items() if k != "uncompressed")
    emit(
        "table2_dldc_patterns",
        figures.table2_table(data),
        records=[
            record(
                "table2_dldc_patterns",
                "compressible_fraction",
                compressible,
                unit="fraction",
                direction=HIGHER,
                tolerance=0.10,
            ),
        ],
    )
    assert 0.1 < compressible <= 1.0
