"""Acceptance: disabled tracing costs <= 2 % wall time.

A ``TraceConfig(enabled=False)`` produces no bus, so every emission site
reduces to a single ``if self.tracer is not None`` guard — the same guard
a traceless system evaluates.  This benchmark pins that contract with an
interleaved min-of-N measurement (min is the standard noise filter for
wall-clock micro-benchmarks: every source of interference only ever adds
time).  For context it also reports the cost of *enabled* tracing, which
is allowed to be expensive.
"""

import os
import time

from benchmarks.bench_util import emit
from repro.analysis.report import format_table
from repro.bench import INFO, record
from repro.core.designs import make_system
from repro.trace import TraceConfig
from repro.workloads.base import WorkloadParams, make_workload

ROUNDS = 7
TRANSACTIONS = 200
THREADS = 2
#: The acceptance bar.  ``TRACE_OVERHEAD_MAX`` relaxes it for CI, where
#: shared-runner scheduling makes even paired-min wall-clock ratios
#: noisy; the 2 % bar applies to local runs (the default).
MAX_DISABLED_OVERHEAD = float(os.environ.get("TRACE_OVERHEAD_MAX", "0.02"))


def _run(trace):
    system = make_system("MorLog-SLDE", trace=trace)
    workload = make_workload(
        "hash", WorkloadParams(initial_items=64, key_space=128, seed=7)
    )
    start = time.perf_counter()
    result = system.run(workload, TRANSACTIONS, THREADS)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_disabled_tracing_overhead(benchmark):
    variants = {
        "traceless": None,
        "disabled": TraceConfig(enabled=False),
        "enabled": TraceConfig(enabled=True),
    }
    times = {name: [] for name in variants}
    stats = {}

    def measure():
        # One unrecorded warmup round charges module import and
        # allocator growth to nobody.
        for trace in variants.values():
            _run(trace)
        # Interleave variants so drift (thermal, scheduler) hits all
        # of them equally instead of biasing whichever ran last.
        for _ in range(ROUNDS):
            for name, trace in variants.items():
                elapsed, result = _run(trace)
                times[name].append(elapsed)
                stats[name] = result.stats
        return {name: min(samples) for name, samples in times.items()}

    best = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Judge each variant by its best *paired* round: rounds interleave
    # the variants back to back, so taking the minimum per-round ratio
    # cancels interference that a ratio of global minima cannot (one
    # lucky scheduler slot for the baseline would fail the build).
    def paired_overhead(name):
        return min(
            t / base - 1.0
            for t, base in zip(times[name], times["traceless"])
        )

    overhead = paired_overhead("disabled")
    enabled_overhead = paired_overhead("enabled")

    emit(
        "trace_overhead",
        format_table(
            ["variant", "best of %d (s)" % ROUNDS, "overhead (%)"],
            [
                ["traceless", best["traceless"], 0.0],
                ["disabled", best["disabled"], 100.0 * overhead],
                ["enabled", best["enabled"], 100.0 * enabled_overhead],
            ],
            "Tracing overhead (best paired round of %d), "
            "MorLog-SLDE hash x%d tx" % (ROUNDS, TRANSACTIONS),
            float_format="%.4f",
        ),
        records=[
            record(
                "trace_overhead",
                "disabled_overhead_percent",
                100.0 * overhead,
                unit="percent",
                direction=INFO,  # wall clock: host-dependent, never gates
            ),
            record(
                "trace_overhead",
                "enabled_overhead_percent",
                100.0 * enabled_overhead,
                unit="percent",
                direction=INFO,
            ),
        ],
    )

    # Observation must also be inert here, not just cheap.
    assert stats["disabled"] == stats["traceless"]
    assert stats["enabled"] == stats["traceless"]
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        "disabled tracing costs %.2f%% (budget %.0f%%)"
        % (100.0 * overhead, 100.0 * MAX_DISABLED_OVERHEAD)
    )
