"""Acceptance: codec memoization gives >= 1.5x on the Fig-13 encoding path.

Figure 13 of the paper is NVMM write traffic; in the simulator every bit
of that traffic funnels through the SLDE size comparator (alternative
codec + DLDC pattern search per log word).  Workload word values repeat
heavily, so the memo layer should turn most encodes into LRU hits.  This
benchmark pins the speedup with the same interleaved paired-min
methodology as ``test_trace_overhead.py`` — per-round ratios cancel
interference that a ratio of global minima cannot — and, while it is at
it, re-checks that both variants produce bit-identical encodings.

``CODEC_MEMO_BENCH_SCALE`` (a float) shrinks the stream for smoke runs
in CI, and ``CODEC_MEMO_MIN_SPEEDUP`` lowers the pass threshold there —
shared runners are noisy and the reduced stream amortizes warmup misses
less, so a wall-clock assertion at the full 1.5x bar would flake.  The
acceptance bar itself is unchanged: run unscaled (the default) to check
it.
"""

import os
import random
import time

from benchmarks.bench_util import emit
from repro.analysis.report import format_table
from repro.bench import INFO, record
from repro.common.bitops import dirty_byte_mask
from repro.encoding import LogWriteContext, MemoConfig, SldeCodec

ROUNDS = 5
BASE_PAIRS = 6000
#: Distinct (old, new) value pairs in the stream; real workloads (SPS
#: swaps, B-tree keys) cluster similarly.
POOL_SIZE = 96
#: The acceptance bar; CI overrides it downward because shared-runner
#: timing at reduced scale is noisy (see module docstring).
MIN_SPEEDUP = float(os.environ.get("CODEC_MEMO_MIN_SPEEDUP", "1.5"))


def _scale() -> float:
    return float(os.environ.get("CODEC_MEMO_BENCH_SCALE", "1.0"))


def make_stream(seed=1234, n_pairs=None):
    """A log-word stream shaped like Fig-13 traffic: repetitious, sparse
    diffs, with an occasional fresh value (a cold miss)."""
    rng = random.Random(seed)
    if n_pairs is None:
        n_pairs = max(int(BASE_PAIRS * _scale()), 200)
    pool = []
    for _ in range(POOL_SIZE):
        base = rng.getrandbits(64)
        flip = rng.getrandbits(8) << (8 * rng.randrange(8))
        pool.append((base, base ^ flip))
    stream = []
    for i in range(n_pairs):
        if rng.random() < 0.95:
            old, new = pool[rng.randrange(POOL_SIZE)]
        else:
            old = rng.getrandbits(64)
            new = old ^ (rng.getrandbits(16) << (8 * rng.randrange(7)))
        stream.append((old, new, dirty_byte_mask(old, new), i % 3 == 0))
    return stream


def encode_stream(codec, stream):
    """Run the stream through the codec: pairs plus single log words."""
    out = []
    for old, new, mask, as_pair in stream:
        if as_pair:
            out.append(codec.encode_undo_redo_pair(old, new, mask))
        else:
            ctx = LogWriteContext(old_word=old, dirty_mask=mask)
            out.append(codec.encode_log(new, ctx))
    return out


def _variants():
    # Fresh codecs per round so the memoized variant pays its cold
    # misses inside the measurement.
    return {
        "memo-off": lambda: SldeCodec(),
        "memo-on": lambda: SldeCodec(memo=MemoConfig()),
    }


def test_memoized_encoding_speedup(benchmark):
    stream = make_stream()
    variants = _variants()
    times = {name: [] for name in variants}
    outputs = {}

    def measure():
        for factory in variants.values():  # unrecorded warmup round
            encode_stream(factory(), stream)
        for _ in range(ROUNDS):
            for name, factory in variants.items():
                codec = factory()
                start = time.perf_counter()
                out = encode_stream(codec, stream)
                times[name].append(time.perf_counter() - start)
                outputs[name] = out
        return {name: min(samples) for name, samples in times.items()}

    best = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Memoization must be invisible in the results...
    assert outputs["memo-on"] == outputs["memo-off"]

    # ...and visible in the wall clock.  Judge by the *worst* paired
    # round: even with maximal interference against the memoized variant
    # the speedup must clear the bar.
    paired = [
        off / on for off, on in zip(times["memo-off"], times["memo-on"])
    ]
    speedup = min(paired)

    # One more memoized pass over the stream to capture the steady-state
    # hit/miss picture the timing rounds ran under (wall-clock speedups
    # are host-dependent, so the record is informational; the assertion
    # below still enforces the bar in-run).
    stats_codec = variants["memo-on"]()
    encode_stream(stats_codec, stream)
    emit(
        "codec_memo_speedup",
        format_table(
            ["variant", "best of %d (s)" % ROUNDS, "speedup (x)"],
            [
                ["memo-off", best["memo-off"], 1.0],
                ["memo-on", best["memo-on"], speedup],
            ],
            "SLDE encoding speedup (worst paired round of %d), "
            "%d log words" % (ROUNDS, len(stream)),
            float_format="%.4f",
        ),
        records=[
            record(
                "codec_memo_speedup",
                "paired_min_speedup",
                speedup,
                unit="x",
                direction=INFO,  # wall clock: host-dependent, never gates
                attachments={"memo": stats_codec.memo_stats()},
            ),
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        "memoized encoding is only %.2fx faster (need %.1fx)"
        % (speedup, MIN_SPEEDUP)
    )
