"""Section VI-E: sensitivity to NVMM write latency (1x - 32x).

Paper shape: the normalized gaps move by <2 % as the write latency scales
up, i.e. MorLog's advantage is not an artifact of one latency point.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.experiments import figures

SCALES = (1.0, 4.0, 16.0, 32.0)


def test_sens_nvm_latency(benchmark, scale):
    data = run_once(
        benchmark, lambda: figures.sens_nvm_latency(SCALES, scale=scale)
    )
    designs = list(next(iter(data.values())).keys())
    rows = [[x] + [data[x][d] for d in designs] for x in SCALES]
    ratios = [data[x]["MorLog-SLDE"] for x in SCALES]
    emit(
        "sens_nvm_latency",
        format_table(
            ["latency scale"] + designs,
            rows,
            "Section VI-E: normalized throughput vs NVMM write latency",
        ),
        records=[
            record(
                "sens_nvm_latency",
                "slde_vs_fwb_min_ratio",
                min(ratios),
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
        ],
    )
    assert all(r > 0.9 for r in ratios)
