"""Ablations over the design knobs DESIGN.md calls out.

Not a paper figure — these quantify the paper's discussion-section
options on our substrate:

- the literal LLC redo discard (section III-A) vs the recovery-safe flush;
- centralized vs distributed per-thread logs (section III-F);
- fwb-scan vs transaction-table log truncation (section III-F);
- secure-NVMM modes (section IV-D);
- the general-purpose codec ladder (raw / Flip-N-Write / FPC / CRADE).
"""

from dataclasses import replace

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import INFO, LOWER, record
from repro.experiments.runner import default_config, run_design
from repro.workloads.base import DatasetSize, WorkloadParams

PARAMS = WorkloadParams(initial_items=2048, key_space=4096)
N_TX = 300


def _run(design="MorLog-SLDE", workload="echo", config=None):
    return run_design(
        design,
        workload,
        DatasetSize.SMALL,
        config=config,
        params=PARAMS,
        n_transactions=N_TX,
        n_threads=4,
    )


def test_ablation_llc_redo_discard(benchmark):
    def experiment():
        base = default_config()
        safe = _run(config=base)
        unsafe = _run(
            config=base.with_changes(
                logging=replace(base.logging, unsafe_llc_redo_discard=True)
            )
        )
        return safe, unsafe

    safe, unsafe = run_once(benchmark, experiment)
    rows = [
        ["safe (flush at write-back)", 1.0, 1.0],
        [
            "paper-literal discard",
            unsafe.throughput_tx_per_s / safe.throughput_tx_per_s,
            unsafe.nvmm_writes / safe.nvmm_writes,
        ],
    ]
    emit(
        "ablation_llc_redo_discard",
        format_table(
            ["variant", "throughput", "NVMM writes"],
            rows,
            "Ablation: LLC redo-entry handling (echo, MorLog-SLDE)",
        ),
        records=[
            record(
                "ablation_llc_redo_discard",
                "discard_writes_vs_safe_ratio",
                unsafe.nvmm_writes / safe.nvmm_writes,
                unit="ratio",
                direction=LOWER,
                tolerance=0.05,
            ),
        ],
    )
    assert unsafe.nvmm_writes <= safe.nvmm_writes


def test_ablation_log_layout_and_truncation(benchmark):
    def experiment():
        base = default_config()
        out = {"centralized/fwb-scan": _run(config=base)}
        out["distributed"] = _run(
            config=base.with_changes(
                logging=replace(base.logging, distributed_logs=True)
            )
        )
        out["tx-table"] = _run(
            config=base.with_changes(
                logging=replace(base.logging, truncation="tx-table")
            )
        )
        return out

    results = run_once(benchmark, experiment)
    baseline = results["centralized/fwb-scan"]
    rows = [
        [
            name,
            r.throughput_tx_per_s / baseline.throughput_tx_per_s,
            r.nvmm_writes / baseline.nvmm_writes,
        ]
        for name, r in results.items()
    ]
    emit(
        "ablation_log_layout",
        format_table(
            ["variant", "throughput", "NVMM writes"],
            rows,
            "Ablation: log layout and truncation (echo, MorLog-SLDE)",
        ),
        records=[
            record(
                "ablation_log_layout",
                "distributed_vs_central_throughput_ratio",
                results["distributed"].throughput_tx_per_s
                / baseline.throughput_tx_per_s,
                unit="ratio",
                direction=INFO,
            ),
        ],
    )


def test_ablation_secure_modes(benchmark):
    def experiment():
        base = default_config()
        return {
            mode: _run(
                config=base.with_changes(
                    encoding=replace(base.encoding, secure_mode=mode)
                )
            )
            for mode in ("none", "deuce", "full")
        }

    results = run_once(benchmark, experiment)
    plain = results["none"]
    rows = [
        [
            mode,
            r.nvmm_write_energy_pj / plain.nvmm_write_energy_pj,
            r.throughput_tx_per_s / plain.throughput_tx_per_s,
        ]
        for mode, r in results.items()
    ]
    emit(
        "ablation_secure_modes",
        format_table(
            ["secure mode", "write energy", "throughput"],
            rows,
            "Ablation: secure NVMM (section IV-D; echo, MorLog-SLDE)",
        ),
        records=[
            record(
                "ablation_secure_modes",
                "deuce_energy_vs_plain_ratio",
                results["deuce"].nvmm_write_energy_pj
                / plain.nvmm_write_energy_pj,
                unit="ratio",
                direction=LOWER,
                tolerance=0.10,
            ),
        ],
    )
    assert results["deuce"].nvmm_write_energy_pj >= plain.nvmm_write_energy_pj


def test_ablation_log_codecs(benchmark):
    """The codec ladder applied to log data (the paper-relevant axis).

    Note an honest reproduction finding: because log entries land in
    fresh (once-per-pass) slots, DCW gives no codec an old-value
    advantage, and raw's tag-free slots make it surprisingly strong on
    incompressible words; the wins of FPC/CRADE/SLDE come from the
    compressible majority and — for SLDE — from clean-byte discarding.
    """

    def experiment():
        from repro.core.system import System
        from repro.logging_hw.morlog import MorLogLogger
        from repro.workloads.base import make_workload

        base = default_config()
        out = {}
        for codec in ("raw", "flip-n-write", "fpc", "crade", "slde"):
            # The design factory pins the log codec, so assemble the
            # system directly to sweep it.
            config = base.with_changes(
                encoding=replace(base.encoding, log_codec=codec)
            )
            system = System(config, MorLogLogger, design_name="MorLog-" + codec)
            workload = make_workload("echo", PARAMS)
            out[codec] = system.run(workload, N_TX, n_threads=4)
        return out

    results = run_once(benchmark, experiment)
    raw = results["raw"]
    rows = [
        [
            codec,
            r.nvmm_write_energy_pj / raw.nvmm_write_energy_pj,
            r.log_bits / raw.log_bits,
        ]
        for codec, r in results.items()
    ]
    emit(
        "ablation_log_codecs",
        format_table(
            ["log codec", "write energy vs raw", "log bits vs raw"],
            rows,
            "Ablation: log-data codec ladder (echo, MorLog logger)",
        ),
        records=[
            record(
                "ablation_log_codecs",
                "slde_log_bits_vs_raw_ratio",
                results["slde"].log_bits / raw.log_bits,
                unit="ratio",
                direction=LOWER,
                tolerance=0.10,
            ),
        ],
    )
    assert results["slde"].log_bits <= results["crade"].log_bits
    assert results["slde"].nvmm_write_energy_pj <= raw.nvmm_write_energy_pj
