"""Result persistence for the benchmark harness.

Every benchmark writes its paper-shaped table to ``benchmarks/results/``
(and prints it), so a full ``pytest benchmarks/ --benchmark-only`` run
leaves the regenerated evaluation on disk next to the code.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
