"""Result persistence for the benchmark harness.

Every benchmark writes its paper-shaped table to ``benchmarks/results/``
so a full ``pytest benchmarks/`` run leaves the regenerated evaluation
on disk next to the code.  :func:`emit` is the single exit point:

- the human-readable table goes to ``results/<name>.txt``;
- when the caller passes ``records`` (a list of
  :class:`repro.bench.BenchRecord`), the same call writes
  ``results/<name>.json`` and appends the records to the current
  repo-root ``BENCH_<n>.json`` trajectory file — the ``.txt`` and the
  records always land together;
- when the caller passes ``figure`` (a ``{workload: {design: value}}``
  grid), the same call emits ``results/<name>.vl.json`` (a
  self-contained Vega-Lite spec) and ``results/<name>.csv`` through
  :mod:`repro.experiments.vega`, turning the results directory into a
  browsable dashboard (see ``repro bench report``);
- the table is echoed to stdout unless quieted (``quiet=True`` or
  ``REPRO_BENCH_QUIET=1``; CI's reduced-scale runs set the env var).

All writes are atomic (temp file + ``os.replace``; the trajectory append
additionally serializes on a lock file) so parallel benchmark runs can
never interleave into a torn result file.

``emit`` returns an :class:`EmitResult` naming every path it wrote, so
tests can assert on the artifacts.
"""

import os
import tempfile
from typing import Mapping, NamedTuple, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Default home of the ``BENCH_<n>.json`` trajectory files: the repo
#: root (``REPRO_BENCH_DIR`` overrides, tests point it at tmp dirs).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class EmitResult(NamedTuple):
    """Paths written by one :func:`emit` call."""

    txt_path: str
    json_path: Optional[str]
    run_path: Optional[str]
    vl_path: Optional[str] = None
    csv_path: Optional[str] = None


def _quiet(explicit: Optional[bool]) -> bool:
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_BENCH_QUIET", "").lower() in ("1", "true", "yes")


def emit(
    name: str,
    text: str,
    records: Optional[Sequence] = None,
    quiet: Optional[bool] = None,
    figure: Optional[Mapping] = None,
    figure_title: Optional[str] = None,
    figure_metric: str = "value",
) -> EmitResult:
    """Persist one benchmark's table (and records/figure), print unless quiet."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    fd, tmp_path = tempfile.mkstemp(prefix="." + name + "-", dir=RESULTS_DIR)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

    json_path = run_path = None
    if records:
        from repro.bench import append_records, current_run_path, write_result_json

        json_path = os.path.join(RESULTS_DIR, name + ".json")
        write_result_json(json_path, name, records)
        root = os.environ.get("REPRO_BENCH_DIR") or REPO_ROOT
        run_path, _total = append_records(current_run_path(root), records)

    vl_path = csv_path = None
    if figure:
        from repro.experiments.vega import write_figure

        vl_path, csv_path = write_figure(
            RESULTS_DIR, name, figure,
            figure_title or name, figure_metric,
        )

    if not _quiet(quiet):
        print()
        print(text)
    return EmitResult(
        txt_path=path, json_path=json_path, run_path=run_path,
        vl_path=vl_path, csv_path=csv_path,
    )
