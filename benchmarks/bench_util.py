"""Result persistence for the benchmark harness.

Every benchmark writes its paper-shaped table to ``benchmarks/results/``
(and prints it), so a full ``pytest benchmarks/ --benchmark-only`` run
leaves the regenerated evaluation on disk next to the code.  Writes are
atomic (temp file + ``os.replace``) so parallel benchmark runs can never
interleave into a torn result file.
"""

import os
import tempfile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    fd, tmp_path = tempfile.mkstemp(prefix="." + name + "-", dir=RESULTS_DIR)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    print()
    print(text)
