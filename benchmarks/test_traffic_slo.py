"""Open-loop SLO curves: goodput and tail latency vs offered load.

The closed-loop figures (12/14/16) measure the machine at 100 % duty
cycle, which hides queueing entirely.  This benchmark drives the PR-7
traffic layer instead: a seeded Poisson arrival stream over the
70/20/10 YCSB/TPC-C/Echo blend, Zipf-skewed across 16 tenants, swept
across offered loads that straddle the service capacity.  It asserts
the open-loop contract — tail latency decouples from goodput past the
overload knee — and emits every point as BenchRecords so the PR-5 gate
tracks SLO regressions per (design, offered-load) pair.

The scenario (loads, arrivals, blend, seed) deliberately matches the
``repro traffic`` CLI defaults so CI's traffic-smoke run and this
benchmark share cache cells and config digests.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.traffic import TrafficConfig, run_load_sweep, slo_table, sweep_records

#: Must match the ``repro traffic`` CLI defaults (see ``cli.py``).
DESIGNS = ("MorLog-DP", "FWB-CRADE")
LOADS = (100_000.0, 400_000.0, 1_600_000.0, 6_400_000.0)
SCENARIO = TrafficConfig()  # CLI defaults == dataclass defaults


def test_traffic_slo_curves(benchmark, grid_jobs, grid_cache):
    def experiment():
        return run_load_sweep(
            DESIGNS, LOADS, SCENARIO, jobs=grid_jobs, cache=grid_cache)

    outcome = run_once(benchmark, experiment)
    emit(
        "traffic_slo",
        slo_table(outcome) + "\n" + outcome.report.summary(),
        records=sweep_records(outcome),
    )

    knees = {design: outcome.knee(design) for design in DESIGNS}
    # The load range straddles saturation: at least one design must show
    # a measured overload knee (p99 blown, goodput plateaued).
    assert any(knee is not None for knee in knees.values()), knees

    for design in DESIGNS:
        points = outcome.results[design]
        light, heavy = points[0], points[-1]
        # Open-loop accounting is conservative at every point.
        for result in points:
            assert result.completed + result.dropped == result.arrivals
        # Past saturation the tail has decoupled from goodput.
        assert heavy.p99_latency_ns >= 3.0 * light.p99_latency_ns
        assert heavy.goodput_tx_per_s >= 0.8 * light.goodput_tx_per_s
