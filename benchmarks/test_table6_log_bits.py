"""Table VI: log-bit reduction with expansion coding disabled.

Paper values: MorLog-DP writes 59.5 % (small) / 45.8 % (large) fewer log
bits than FWB-CRADE; even FWB-SLDE saves ~40 %/34 % from DLDC alone.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.experiments import figures


def test_table6_log_bits(benchmark, scale):
    data = run_once(benchmark, lambda: figures.table6_log_bits(scale))
    rows = [
        [label] + [data[label][d] for d in figures.DESIGN_NAMES]
        for label in ("Small", "Large")
    ]
    emit(
        "table6_log_bits",
        format_table(
            ["dataset"] + list(figures.DESIGN_NAMES),
            rows,
            "Table VI: log-bit reduction vs FWB-CRADE, expansion disabled (%)",
            float_format="%.1f",
        ),
        records=[
            record(
                "table6_log_bits",
                "fwb_slde_reduction_small_percent",
                data["Small"]["FWB-SLDE"],
                unit="percent",
                direction=HIGHER,
                tolerance=0.15,
            ),
            record(
                "table6_log_bits",
                "slde_over_crade_margin_small_percent",
                data["Small"]["MorLog-SLDE"] - data["Small"]["MorLog-CRADE"],
                unit="percent",
                direction=HIGHER,
                tolerance=0.25,
            ),
        ],
    )
    for label in ("Small", "Large"):
        assert data[label]["FWB-SLDE"] > 0.0
        assert data[label]["MorLog-SLDE"] >= data[label]["MorLog-CRADE"]
