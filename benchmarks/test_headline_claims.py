"""The abstract's three headline numbers, measured.

Paper: MorLog (with all optimizations) vs the state-of-the-art FWB-CRADE:
+72.5 % throughput, -41.1 % NVMM write traffic, -49.9 % write energy.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.experiments.headline import PAPER_HEADLINE, headline_comparison


def test_headline_claims(benchmark, scale):
    result = run_once(benchmark, lambda: headline_comparison(scale))
    rows = [
        [name, PAPER_HEADLINE[name], value]
        for name, value in result.as_dict().items()
    ]
    emit(
        "headline_claims",
        format_table(
            ["claim (MorLog-DP vs FWB-CRADE)", "paper (%)", "measured (%)"],
            rows,
            "Abstract headline claims, geometric mean over %d cells" % result.cells,
            float_format="%.1f",
        ),
        records=[
            record(
                "headline_claims",
                name,
                value,
                unit="percent",
                direction=HIGHER,
                tolerance=0.15,
            )
            for name, value in result.as_dict().items()
        ],
    )
    assert result.shape_holds(), (
        "a headline effect flipped sign: %s" % result.as_dict()
    )
