"""Figure 14: macro-benchmark throughput, normalized to FWB-CRADE.

Paper shape: morphable logging pays off more on the macro-benchmarks
(better temporal locality): MorLog-CRADE beats FWB-CRADE, SLDE adds more,
MorLog-DP ends highest on average.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import HIGHER, record
from repro.common.stats import geometric_mean
from repro.experiments import figures


def test_fig14_macro_throughput(benchmark, scale):
    values = run_once(benchmark, lambda: figures.fig14_macro_throughput(scale))
    dp_gmean = geometric_mean(
        [row["MorLog-DP"] / row["FWB-CRADE"] for row in values.values()]
    )
    emit(
        "fig14_macro_throughput",
        figures.normalized_table(
            values, "Figure 14: macro throughput (normalized to FWB-CRADE)"
        ),
        records=[
            record(
                "fig14_macro_throughput",
                "gmean_morlog_dp_vs_fwb",
                dp_gmean,
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
        ],
        figure=values,
        figure_title="Figure 14: macro throughput",
        figure_metric="throughput (tx/s)",
    )
    assert dp_gmean > 1.0, "MorLog-DP must beat the baseline on macros"
