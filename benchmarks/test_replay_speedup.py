"""Acceptance: trace replay is >= 3x faster than direct re-execution.

Replay exists to score one recorded store stream against many designs
and configs without paying the workload again: rebuilding the pre-run
memory image becomes a vectorized bulk install
(:func:`repro.replay.replayer.apply_trace_setup`) and the codec
classification work is batch-prewarmed
(:mod:`repro.replay.prewarm`), while everything the paper measures —
caches, logger, NVM timing — still runs the production path.  This
benchmark pins the throughput claim on a setup-heavy cell (the regime
replay is for) with the same interleaved paired-min methodology as
``test_codec_memo.py``, and re-checks bit-exactness while it is at it.

``REPLAY_BENCH_SCALE`` (a float) shrinks the cell for smoke runs in CI,
and ``REPLAY_MIN_SPEEDUP`` lowers the pass threshold there — at reduced
scale the simulated portion (identical in both variants, by design)
amortizes the skipped setup less, so the full 3x bar would flake.  The
acceptance bar itself is unchanged: run unscaled (the default) to check
it.
"""

import gc
import os
import time

from benchmarks.bench_util import emit
from repro.analysis.report import format_table
from repro.bench import INFO, record
from repro.core.designs import make_system
from repro.experiments.runner import default_config
from repro.replay import record_trace, replay_trace
from repro.replay.prewarm import prewarm_codecs
from repro.workloads.base import WorkloadParams, make_workload

ROUNDS = 3
DESIGN = "MorLog-SLDE"
WORKLOAD = "hash"
#: Default cell shape: setup-dominated, like a real record-once /
#: replay-many-configs sweep over a populated store.
BASE_ITEMS = 8192
BASE_KEY_SPACE = 32768
BASE_TRANSACTIONS = 12
THREADS = 2
#: The acceptance bar; CI overrides it downward because the reduced
#: cell is simulation-dominated (see module docstring).
MIN_SPEEDUP = float(os.environ.get("REPLAY_MIN_SPEEDUP", "3.0"))


def _scale() -> float:
    return float(os.environ.get("REPLAY_BENCH_SCALE", "1.0"))


def cell():
    scale = _scale()
    params = WorkloadParams(
        initial_items=max(int(BASE_ITEMS * scale), 64),
        key_space=max(int(BASE_KEY_SPACE * scale), 128),
        seed=11,
    )
    n_tx = max(int(BASE_TRANSACTIONS * min(scale, 1.0)), 4)
    return params, n_tx


def result_fields(result):
    return (result.transactions, result.elapsed_ns, result.stats)


def test_replay_speedup(benchmark):
    params, n_tx = cell()
    config = default_config()
    trace, recorded_result, _system = record_trace(
        DESIGN, WORKLOAD, config=config, params=params,
        n_transactions=n_tx, n_threads=THREADS,
    )

    times = {"direct": [], "replay": []}
    outputs = {}

    def timed(run):
        # The direct variant litters the heap; without quiescing the
        # collector its garbage gets collected inside whichever timed
        # region comes next, which mostly punishes the (shorter) replay
        # rounds and makes the paired ratios noisy.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = run()
            return result, time.perf_counter() - start
        finally:
            gc.enable()

    def run_direct():
        system = make_system(DESIGN, config)
        return timed(lambda: system.run(make_workload(WORKLOAD, params), n_tx, THREADS))

    def run_replay():
        system = make_system(DESIGN, config)
        return timed(lambda: replay_trace(system, trace))

    def measure():
        run_direct(), run_replay()  # unrecorded warmup round
        for _ in range(ROUNDS):
            for name, runner in (("direct", run_direct),
                                 ("replay", run_replay)):
                result, seconds = runner()
                times[name].append(seconds)
                outputs[name] = result
        return {name: min(samples) for name, samples in times.items()}

    best = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Replay must be invisible in the results...
    assert result_fields(outputs["replay"]) == result_fields(outputs["direct"])
    assert result_fields(outputs["replay"]) == result_fields(recorded_result)

    # ...and visible in the wall clock.  Judge by the *worst* paired
    # round: even with maximal interference against the replay variant
    # the speedup must clear the bar.
    paired = [d / r for d, r in zip(times["direct"], times["replay"])]
    speedup = min(paired)

    prewarm_stats = prewarm_codecs(make_system(DESIGN, config), trace)
    emit(
        "replay_speedup",
        format_table(
            ["variant", "best of %d (s)" % ROUNDS, "speedup (x)"],
            [
                ["direct", best["direct"], 1.0],
                ["replay", best["replay"], speedup],
            ],
            "trace replay speedup (worst paired round of %d), %s/%s, "
            "%d setup stores, %d transactions"
            % (ROUNDS, DESIGN, WORKLOAD, trace.setup_addr.size, n_tx),
            float_format="%.4f",
        ),
        records=[
            record(
                "replay_speedup",
                "paired_min_speedup",
                speedup,
                unit="x",
                direction=INFO,  # wall clock: host-dependent, never gates
                attachments={
                    "design": DESIGN,
                    "workload": WORKLOAD,
                    "setup_stores": int(trace.setup_addr.size),
                    "transactions": n_tx,
                    "trace_digest": trace.digest(),
                    "prewarm": prewarm_stats,
                },
            ),
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        "trace replay is only %.2fx faster than direct re-run (need %.1fx)"
        % (speedup, MIN_SPEEDUP)
    )
