"""Comparative persistence testbed: the extension designs, measured.

The three extension designs answer the same question the paper's loggers
do — how to make stores atomic on NVMM — with different machinery:
InCLL embeds undo words in the cache line itself, CoW paging persists a
shadow copy of every dirtied page, and checkpointing compacts the undo
log at commit boundaries.  This bench pins their signature costs against
the central-log baselines: InCLL's two-word embedded entries write fewer
log bits than the three-slot central undo log, paging amplifies data
writes by the page/line ratio under small transactions, and
checkpointing shrinks the log a recovery scan must walk.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import BENCH_SCALE, run_once
from repro.analysis.report import format_table
from repro.bench import INFO, LOWER, record
from repro.common.config import LoggingConfig, SystemConfig
from repro.experiments.runner import run_design, run_design_system
from repro.workloads.base import DatasetSize, WorkloadParams

DESIGNS = ("Undo-CRADE", "FWB-CRADE", "InCLL-CRADE", "CoW-Page", "Ckpt-Undo")
PARAMS = WorkloadParams(initial_items=512, key_space=1024)
N_TX = BENCH_SCALE.transactions(False, DatasetSize.SMALL)
# A checkpoint cadence that does not divide the transaction count, so
# the post-run log keeps the (nonzero) tail since the last checkpoint.
CKPT_INTERVAL = 7


def _config(**logging_overrides) -> SystemConfig:
    logging_overrides.setdefault("log_region_bytes", 8 * 1024 * 1024)
    return SystemConfig(logging=LoggingConfig(**logging_overrides))


def _cell_config(design: str) -> SystemConfig:
    # Match the fault-sweep builder: paging runs on 256-byte pages so the
    # shadow-copy cost reflects a small-page design point, not the 4 KiB
    # worst case.
    if design == "CoW-Page":
        return _config(page_bytes=256)
    return _config()


def test_extension_designs(benchmark):
    def experiment():
        runs = {
            design: run_design(
                design,
                "hash",
                DatasetSize.SMALL,
                config=_cell_config(design),
                params=PARAMS,
                n_transactions=N_TX,
                n_threads=4,
            )
            for design in DESIGNS
        }
        # Recovery-log footprint: the records a post-crash scan walks,
        # with and without checkpoint compaction.
        log_records = {}
        for interval in (0, CKPT_INTERVAL):
            _, system = run_design_system(
                "Ckpt-Undo",
                "hash",
                DatasetSize.SMALL,
                config=_config(checkpoint_interval_tx=interval),
                params=PARAMS,
                n_transactions=N_TX,
                n_threads=4,
            )
            log_records[interval] = len(system.recover().records)
        return runs, log_records

    runs, log_records = run_once(benchmark, experiment)
    undo = runs["Undo-CRADE"]
    rows = [
        [
            design,
            runs[design].throughput_tx_per_s / undo.throughput_tx_per_s,
            runs[design].nvmm_writes / undo.nvmm_writes,
            runs[design].log_bits,
            int(runs[design].stats.get("data_writes", 0)),
        ]
        for design in DESIGNS
    ]
    incll_log_bits_ratio = runs["InCLL-CRADE"].log_bits / undo.log_bits
    paging_amplification = runs["CoW-Page"].stats["data_writes"] / undo.stats[
        "data_writes"
    ]
    ckpt_ratio = log_records[CKPT_INTERVAL] / log_records[0]
    emit(
        "extension_designs",
        format_table(
            ["design", "throughput", "NVMM writes", "log bits", "data writes"],
            rows,
            "Extension designs vs Undo-CRADE (hash, small)",
        )
        + "\nrecovery log records: no checkpoint=%d, interval %d=%d (%.3fx)\n"
        % (log_records[0], CKPT_INTERVAL, log_records[CKPT_INTERVAL], ckpt_ratio),
        records=[
            record(
                "extension_designs",
                "incll_vs_undo_log_bits_ratio",
                incll_log_bits_ratio,
                unit="ratio",
                direction=LOWER,
            ),
            record(
                "extension_designs",
                "paging_data_write_amplification",
                paging_amplification,
                unit="ratio",
                direction=LOWER,
            ),
            record(
                "extension_designs",
                "ckpt_recovery_log_ratio",
                ckpt_ratio,
                unit="ratio",
                direction=LOWER,
            ),
            record(
                "extension_designs",
                "cow_vs_undo_write_ratio",
                runs["CoW-Page"].nvmm_writes / undo.nvmm_writes,
                unit="ratio",
                direction=INFO,
            ),
            record(
                "extension_designs",
                "incll_vs_undo_write_ratio",
                runs["InCLL-CRADE"].nvmm_writes / undo.nvmm_writes,
                unit="ratio",
                direction=INFO,
            ),
        ],
    )
    # Embedded two-word entries carry less log payload than the central
    # log's three-slot entries.
    assert incll_log_bits_ratio < 1.0
    # Page-granular shadow copies amplify data writes well past the
    # word-granular designs under small transactions.
    assert paging_amplification > 2.0
    # Compaction strictly shrinks what recovery has to scan.
    assert log_records[CKPT_INTERVAL] < log_records[0]
