"""Table I + section IV-C: hardware overhead of morphable logging / SLDE.

These are closed-form in the configuration; the published values for the
paper's default configuration are asserted exactly where they match.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import LOWER, record
from repro.experiments import figures


def test_table1_hw_overhead(benchmark):
    data = run_once(benchmark, figures.table1_overheads)
    rows = [[key, value] for key, value in data.items()]
    emit(
        "table1_hw_overhead",
        format_table(["component", "value"], rows, "Table I + SLDE overheads"),
        records=[
            record(
                "table1_hw_overhead",
                name,
                data[name],
                unit=unit,
                direction=LOWER,
                tolerance=0.0,  # closed-form: any movement is a change
            )
            for name, unit in (
                ("logic_gates", "gates"),
                ("encode_latency_ns", "ns"),
                ("ulog_counters_bytes", "bytes"),
            )
        ],
    )
    assert data["log_registers_bytes"] == 16
    assert data["ulog_counters_bytes"] == 20.0       # paper: 20 bytes
    assert data["logic_gates"] == 4200               # paper: ~4.2 K gates
    assert data["encode_latency_ns"] <= 1.0          # paper: < 1 ns
