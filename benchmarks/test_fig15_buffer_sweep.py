"""Figure 15: throughput and write traffic vs the two log buffer sizes.

Paper shape (echo): growing the undo+redo buffer monotonically reduces
NVMM writes; throughput improves then flattens/drops as commit latency
grows; the paper settles on 16 undo+redo / 32 redo entries.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import LOWER, record
from repro.experiments import figures

UR_SIZES = (1, 4, 16, 64)
REDO_SIZES = (2, 32, 128)


def test_fig15_buffer_sweep(benchmark, scale):
    data = run_once(
        benchmark,
        lambda: figures.fig15_buffer_sweep(UR_SIZES, REDO_SIZES, scale),
    )
    base = data[(UR_SIZES[0], REDO_SIZES[0])]
    rows = []
    for redo in REDO_SIZES:
        for ur in UR_SIZES:
            throughput, writes = data[(ur, redo)]
            rows.append(
                [
                    "Redo%03d/UR%03d" % (redo, ur),
                    throughput / base[0],
                    writes / base[1],
                ]
            )
    emit(
        "fig15_buffer_sweep",
        format_table(
            ["config", "norm throughput", "norm NVMM writes"],
            rows,
            "Figure 15: buffer-size sensitivity (echo, MorLog-SLDE)",
        ),
        records=[
            record(
                "fig15_buffer_sweep",
                "norm_writes_largest_ur_buffer",
                data[(UR_SIZES[-1], REDO_SIZES[-1])][1] / base[1],
                unit="ratio",
                direction=LOWER,
                tolerance=0.10,
            ),
        ],
    )
    # Writes must not increase as the undo+redo buffer grows.
    for redo in REDO_SIZES:
        writes = [data[(ur, redo)][1] for ur in UR_SIZES]
        assert writes[-1] <= writes[0]
