"""Figure 1's taxonomy, measured: undo vs redo vs undo+redo logging.

Section II-A argues the ordering constraints of each scheme: undo logging
pays a forced data write-back at commit; redo logging pays staging
machinery to keep in-place data frozen; undo+redo (FWB) relaxes both but
doubles log data; MorLog keeps the relaxed ordering while trimming the
log.  This bench puts numbers on that story.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import INFO, record
from repro.experiments.runner import run_design
from repro.workloads.base import DatasetSize, WorkloadParams

SCHEMES = ("Undo-CRADE", "Redo-CRADE", "FWB-CRADE", "MorLog-CRADE", "MorLog-DP")
PARAMS = WorkloadParams(initial_items=512, key_space=1024)


def test_ablation_logging_schemes(benchmark):
    def experiment():
        out = {}
        for workload in ("echo", "hash"):
            for scheme in SCHEMES:
                out[(workload, scheme)] = run_design(
                    scheme,
                    workload,
                    DatasetSize.SMALL,
                    params=PARAMS,
                    n_transactions=200,
                    n_threads=4,
                )
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for workload in ("echo", "hash"):
        base = results[(workload, "FWB-CRADE")]
        for scheme in SCHEMES:
            r = results[(workload, scheme)]
            rows.append(
                [
                    workload,
                    scheme,
                    r.throughput_tx_per_s / base.throughput_tx_per_s,
                    r.nvmm_writes / base.nvmm_writes,
                    int(r.stats.get("forced_data_write_backs", 0)),
                    int(r.stats.get("staged_write_backs", 0)),
                ]
            )
    emit(
        "ablation_logging_schemes",
        format_table(
            [
                "workload",
                "scheme",
                "throughput",
                "NVMM writes",
                "forced WBs",
                "staged WBs",
            ],
            rows,
            "Ablation: logging-scheme taxonomy (normalized to FWB-CRADE)",
        ),
        records=[
            record(
                "ablation_logging_schemes",
                "undo_vs_fwb_throughput_ratio_echo",
                results[("echo", "Undo-CRADE")].throughput_tx_per_s
                / results[("echo", "FWB-CRADE")].throughput_tx_per_s,
                unit="ratio",
                direction=INFO,
            ),
        ],
    )
    for workload in ("echo", "hash"):
        undo = results[(workload, "Undo-CRADE")]
        fwb = results[(workload, "FWB-CRADE")]
        # Figure 1(c)'s cost is visible: undo-only forces data write-backs
        # at commit and ends up slower than undo+redo logging.
        assert undo.stats.get("forced_data_write_backs", 0) > 0
        assert undo.throughput_tx_per_s <= fwb.throughput_tx_per_s * 1.05
