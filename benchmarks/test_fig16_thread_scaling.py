"""Figure 16: normalized throughput vs thread count (1-16, as the paper).
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.experiments import figures

THREADS = (1, 2, 4, 8, 16)


def test_fig16_thread_scaling(benchmark, scale):
    data = run_once(
        benchmark,
        lambda: figures.fig16_thread_scaling(THREADS, scale=scale),
    )
    designs = list(next(iter(data.values())).keys())
    rows = [[n] + [data[n][d] for d in designs] for n in THREADS]
    emit(
        "fig16_thread_scaling",
        format_table(
            ["threads"] + designs,
            rows,
            "Figure 16: normalized throughput vs thread count (micro Gmean)",
        ),
        records=[
            record(
                "fig16_thread_scaling",
                "norm_throughput_slde_max_threads",
                data[THREADS[-1]]["MorLog-SLDE"],
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
        ],
    )
    for n in THREADS:
        assert data[n]["MorLog-SLDE"] >= 0.95  # never collapses below base
