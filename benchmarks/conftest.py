"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure and prints it.  The grid
of (design, micro-workload) runs is shared between the figures that the
paper derives from the same experiment (Figs 12/13, Table V).

Scale with ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.25 pytest benchmarks/``)
to trade fidelity for time.
"""

import pytest

from repro.experiments.runner import ExperimentScale, run_grid
from repro.experiments import figures
from repro.workloads.base import DatasetSize

BENCH_SCALE = ExperimentScale()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def micro_grid_small(scale):
    """The Figure 12(a)/13/Table V 'small dataset' experiment."""
    return run_grid(figures.DESIGN_NAMES, figures.MICRO, DatasetSize.SMALL, scale)


@pytest.fixture(scope="session")
def micro_grid_large(scale):
    """The Figure 12(b)/Table V 'large dataset' experiment."""
    return run_grid(figures.DESIGN_NAMES, figures.MICRO, DatasetSize.LARGE, scale)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
