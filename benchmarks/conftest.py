"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure and prints it.  The grid
of (design, micro-workload) runs is shared between the figures that the
paper derives from the same experiment (Figs 12/13, Table V).

Grids go through the parallel engine with the content-addressed result
cache, so repeated benchmark runs replay cached cells instead of
re-simulating.  Knobs (all also usable as env vars):

- ``--jobs`` / ``REPRO_JOBS`` — worker processes (default: all cores)
- ``--no-cache`` / ``REPRO_NO_CACHE=1`` — disable the result cache
- ``--cache-dir`` / ``REPRO_CACHE_DIR`` — cache location

Scale with ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.25 pytest benchmarks/``)
to trade fidelity for time; the scale is part of the cache key, so every
scale keeps its own cached grid.
"""

import os

import pytest

from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.parallel import default_jobs, run_grid_parallel
from repro.experiments.runner import ExperimentScale
from repro.experiments import figures
from repro.workloads.base import DatasetSize

BENCH_SCALE = ExperimentScale()


def pytest_addoption(parser):
    group = parser.getgroup("repro grid engine")
    group.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_JOBS or all cores)",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="always re-simulate grid cells (skip the result cache)",
    )
    group.addoption(
        "--cache-dir",
        default=None,
        help="result cache directory (default: REPRO_CACHE_DIR or ~/.cache)",
    )


@pytest.fixture(scope="session")
def grid_jobs(request) -> int:
    jobs = request.config.getoption("--jobs")
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "0")) or default_jobs()
    return jobs


@pytest.fixture(scope="session")
def grid_cache(request):
    if request.config.getoption("--no-cache") or os.environ.get("REPRO_NO_CACHE"):
        return None
    cache_dir = request.config.getoption("--cache-dir") or default_cache_dir()
    return ResultCache(cache_dir=cache_dir)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def micro_grid_small(scale, grid_jobs, grid_cache):
    """The Figure 12(a)/13/Table V 'small dataset' experiment."""
    outcome = run_grid_parallel(
        figures.DESIGN_NAMES, figures.MICRO, DatasetSize.SMALL, scale,
        jobs=grid_jobs, cache=grid_cache,
    )
    print("\n[micro_grid_small] " + outcome.report.summary())
    return outcome.results


@pytest.fixture(scope="session")
def micro_grid_large(scale, grid_jobs, grid_cache):
    """The Figure 12(b)/Table V 'large dataset' experiment."""
    outcome = run_grid_parallel(
        figures.DESIGN_NAMES, figures.MICRO, DatasetSize.LARGE, scale,
        jobs=grid_jobs, cache=grid_cache,
    )
    print("\n[micro_grid_large] " + outcome.report.summary())
    return outcome.results


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
