"""Figure 3: distribution of write distance for writes in transactions.

Paper shape: most workloads rewrite previously-written words heavily; on
average 44.8 % of write distances exceed 31 and only a minority of writes
are first writes.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import LOWER, record
from repro.experiments import figures


def test_fig03_write_distance(benchmark, scale):
    data = run_once(benchmark, lambda: figures.fig3_write_distance(scale))
    emit(
        "fig03_write_distance",
        figures.fig3_table(data),
        records=[
            record(
                "fig03_write_distance",
                "echo_first_write_fraction",
                data["echo"]["First Write"],
                unit="fraction",
                direction=LOWER,
                tolerance=0.15,
            ),
        ],
    )
    for dist in data.values():
        assert abs(sum(dist.values()) - 1.0) < 1e-9
    # The macro workloads must show substantial rewrite behaviour.
    assert data["echo"]["First Write"] < 0.6
