"""Section VI-C: endurance / NVMM lifetime.

The paper argues lifetime via the Table VI log-bit reduction ("MorLog can
improve the lifetime of NVMM").  Here we measure wear directly: per-word
programmed-cell counts across a run, and the estimated lifetime gain of
MorLog-DP over FWB-CRADE under ideal wear leveling.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.core.designs import make_system
from repro.experiments.runner import default_config
from repro.nvm.endurance import endurance_report, lifetime_improvement
from repro.workloads.base import WorkloadParams, make_workload

PARAMS = WorkloadParams(initial_items=512, key_space=1024)
DESIGNS = ("FWB-CRADE", "FWB-SLDE", "MorLog-SLDE", "MorLog-DP")


def test_endurance_lifetime(benchmark):
    def experiment():
        reports = {}
        for design in DESIGNS:
            system = make_system(design, default_config())
            workload = make_workload("echo", PARAMS)
            system.run(workload, 200, n_threads=4)
            reports[design] = endurance_report(system.controller.nvm.array)
        return reports

    reports = run_once(benchmark, experiment)
    baseline = reports["FWB-CRADE"]
    rows = [
        [
            design,
            report.total_cell_programs,
            report.max_word_wear,
            "%.2f" % report.wear_imbalance,
            "%.3f" % lifetime_improvement(baseline, report),
        ]
        for design, report in reports.items()
    ]
    emit(
        "endurance_lifetime",
        format_table(
            ["design", "cell programs", "max word wear", "imbalance", "lifetime vs FWB-CRADE"],
            rows,
            "Section VI-C: wear and estimated lifetime (echo)",
        ),
        records=[
            record(
                "endurance_lifetime",
                "morlog_dp_lifetime_vs_fwb",
                lifetime_improvement(baseline, reports["MorLog-DP"]),
                unit="ratio",
                direction=HIGHER,
                tolerance=0.10,
            ),
        ],
    )
    assert lifetime_improvement(baseline, reports["MorLog-DP"]) > 1.0
