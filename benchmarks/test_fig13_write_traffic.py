"""Figure 13: NVMM write traffic, small dataset, normalized to FWB-CRADE.

Paper shape: MorLog-CRADE trims up to ~25 % on rewrite-heavy workloads,
MorLog-SLDE up to ~39 %, MorLog-DP a further ~12 % on top; the Gmean for
the full MorLog design lands well below 1.0.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import LOWER, record
from repro.common.stats import geometric_mean
from repro.experiments import figures


def test_fig13_write_traffic(benchmark, micro_grid_small):
    values = run_once(
        benchmark,
        lambda: figures._grid_metric(
            micro_grid_small, lambda r: float(r.nvmm_writes)
        ),
    )
    gmean = geometric_mean(
        [row["MorLog-DP"] / row["FWB-CRADE"] for row in values.values()]
    )
    emit(
        "fig13_write_traffic",
        figures.normalized_table(
            values, "Figure 13: NVMM write traffic, small dataset (normalized)"
        ),
        records=[
            record(
                "fig13_write_traffic",
                "gmean_morlog_dp_vs_fwb",
                gmean,
                unit="ratio",
                direction=LOWER,
                tolerance=0.05,
            ),
        ],
        figure=values,
        figure_title="Figure 13: NVMM write traffic, small dataset",
        figure_metric="NVMM writes",
    )
    assert gmean < 1.0, "MorLog-DP must reduce NVMM write traffic"
    for row in values.values():
        assert row["MorLog-SLDE"] <= row["MorLog-CRADE"] * 1.05
