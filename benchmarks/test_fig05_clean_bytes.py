"""Figure 5: percentage of clean bytes among transactionally updated data.

Paper shape: 70.5 % of updated bytes are clean on average — the
observation motivating DLDC.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import HIGHER, record
from repro.experiments import figures


def test_fig05_clean_bytes(benchmark, scale):
    data = run_once(benchmark, lambda: figures.fig5_clean_bytes(scale))
    average = sum(data.values()) / len(data)
    emit(
        "fig05_clean_bytes",
        figures.fig5_table(data),
        records=[
            record(
                "fig05_clean_bytes",
                "avg_clean_bytes_percent",
                average,
                unit="percent",
                direction=HIGHER,
                tolerance=0.10,
            ),
        ],
    )
    assert 40.0 < average < 95.0, "clean-byte ratio lost the paper's shape"
