"""Figure 12: micro-benchmark transaction throughput (small + large).

Paper shape: MorLog-CRADE tracks FWB-CRADE closely (within a few percent,
occasionally below); SLDE lifts MorLog well above the baseline; the Gmean
ordering ends FWB-CRADE <= MorLog-SLDE <= ~MorLog-DP.
"""

from collections import OrderedDict

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.bench import HIGHER, record
from repro.common.stats import geometric_mean
from repro.experiments import figures


def _throughput(grid):
    return figures._grid_metric(grid, lambda r: r.throughput_tx_per_s)


def _gmean_ratio(values, design, baseline="FWB-CRADE"):
    return geometric_mean(
        [row[design] / row[baseline] for row in values.values()]
    )


def test_fig12a_small_dataset(benchmark, micro_grid_small):
    values = run_once(benchmark, lambda: _throughput(micro_grid_small))
    emit(
        "fig12a_micro_throughput_small",
        figures.normalized_table(
            values, "Figure 12(a): micro throughput, small dataset (normalized)"
        ),
        records=[
            record(
                "fig12a_micro_throughput_small",
                "gmean_morlog_slde_vs_fwb",
                _gmean_ratio(values, "MorLog-SLDE"),
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
            record(
                "fig12a_micro_throughput_small",
                "gmean_morlog_crade_vs_fwb",
                _gmean_ratio(values, "MorLog-CRADE"),
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
        ],
        figure=values,
        figure_title="Figure 12(a): micro throughput, small dataset",
        figure_metric="throughput (tx/s)",
    )
    assert _gmean_ratio(values, "MorLog-SLDE") > 1.0
    # MorLog-CRADE stays within a few percent of FWB-CRADE on micros.
    assert 0.9 < _gmean_ratio(values, "MorLog-CRADE") < 1.2


def test_fig12b_large_dataset(benchmark, micro_grid_large):
    values = run_once(benchmark, lambda: _throughput(micro_grid_large))
    row = values["sps"]
    emit(
        "fig12b_micro_throughput_large",
        figures.normalized_table(
            values, "Figure 12(b): micro throughput, large dataset (normalized)"
        ),
        records=[
            record(
                "fig12b_micro_throughput_large",
                "gmean_morlog_slde_vs_fwb",
                _gmean_ratio(values, "MorLog-SLDE"),
                unit="ratio",
                direction=HIGHER,
                tolerance=0.05,
            ),
            record(
                "fig12b_micro_throughput_large",
                "sps_slde_advantage_vs_crade",
                row["MorLog-SLDE"] / row["FWB-CRADE"]
                - row["MorLog-CRADE"] / row["FWB-CRADE"],
                unit="ratio",
                direction=HIGHER,
                tolerance=0.25,
            ),
        ],
        figure=values,
        figure_title="Figure 12(b): micro throughput, large dataset",
        figure_metric="throughput (tx/s)",
    )
    assert _gmean_ratio(values, "MorLog-SLDE") > 1.0
    # SPS with the large dataset is where SLDE shines the most (paper:
    # 8.8x there) because the swapped entries share templates.
    assert row["MorLog-SLDE"] / row["FWB-CRADE"] > row["MorLog-CRADE"] / row["FWB-CRADE"]
