"""Table V: NVMM write-energy reduction vs FWB-CRADE (both dataset sizes).

Paper values: MorLog-DP saves 45.9 % (small) / 36.0 % (large); SLDE
contributes the bulk, MorLog-CRADE alone only a few percent.
"""

from benchmarks.bench_util import emit
from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.bench import HIGHER, record
from repro.experiments import figures


def test_table5_write_energy(benchmark, micro_grid_small, micro_grid_large, scale):
    grids = {"Small": micro_grid_small, "Large": micro_grid_large}
    data = run_once(
        benchmark, lambda: figures.table5_write_energy(scale, grids=grids)
    )
    rows = [
        [label] + [data[label][d] for d in figures.DESIGN_NAMES]
        for label in ("Small", "Large")
    ]
    emit(
        "table5_write_energy",
        format_table(
            ["dataset"] + list(figures.DESIGN_NAMES),
            rows,
            "Table V: NVMM write-energy reduction vs FWB-CRADE (%)",
            float_format="%.1f",
        ),
        records=[
            record(
                "table5_write_energy",
                "morlog_dp_reduction_small_percent",
                data["Small"]["MorLog-DP"],
                unit="percent",
                direction=HIGHER,
                tolerance=0.15,
            ),
            record(
                "table5_write_energy",
                "morlog_dp_reduction_large_percent",
                data["Large"]["MorLog-DP"],
                unit="percent",
                direction=HIGHER,
                tolerance=0.15,
            ),
            record(
                "table5_write_energy",
                "slde_over_crade_margin_small_percent",
                data["Small"]["MorLog-SLDE"] - data["Small"]["MorLog-CRADE"],
                unit="percent",
                direction=HIGHER,
                tolerance=0.25,
            ),
        ],
    )
    for label in ("Small", "Large"):
        assert data[label]["MorLog-SLDE"] > data[label]["MorLog-CRADE"]
        assert data[label]["MorLog-DP"] > 0.0
