#!/usr/bin/env python3
"""A durable key-value store built on the public API.

Shows how an application would use the simulated NVMM machine as its
storage engine: every ``put``/``delete`` is one durable transaction over
the persistent hash map, and the store survives a simulated power loss.

Run with:  python examples/persistent_kv_store.py
"""

from repro.common.config import LoggingConfig, SystemConfig
from repro.core import make_system
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext
from repro.workloads.hashmap import PersistentHashMap

CONFIG = SystemConfig(logging=LoggingConfig(log_region_bytes=1 << 20))
VALUE_WORDS = 6


class DurableKV:
    """A tiny durable KV store: str keys, int values, atomic updates."""

    def __init__(self, design: str = "MorLog-DP") -> None:
        self.system = make_system(design, CONFIG)
        heap = PersistentHeap(
            self.system.config.nvmm_base, self.system.config.nvm.size_bytes
        )
        self.map = PersistentHashMap(heap, item_words=VALUE_WORDS + 2)
        self.map.create(SetupContext(self.system))
        self.system.reset_measurement()

    @staticmethod
    def _key_hash(key: str) -> int:
        value = 1469598103934665603
        for ch in key.encode():
            value = ((value ^ ch) * 1099511628211) & ((1 << 64) - 1)
        return value or 1

    def put(self, key: str, value: int) -> None:
        khash = self._key_hash(key)
        values = [value] + [0] * (VALUE_WORDS - 1)
        self.system.run_transaction(
            0, lambda ctx: self.map.insert(ctx, khash, values)
        )

    def get(self, key: str):
        khash = self._key_hash(key)
        result = []

        def body(ctx):
            node = self.map.lookup(ctx, khash)
            if node is not None:
                result.append(ctx.load(self.map.value_addr(node, 0)))

        self.system.run_transaction(0, body)
        return result[0] if result else None

    def delete(self, key: str) -> None:
        khash = self._key_hash(key)
        self.system.run_transaction(0, lambda ctx: self.map.delete(ctx, khash))

    def power_loss_and_recover(self) -> None:
        """Drop all volatile state and run crash recovery."""
        state = self.system.recover(verify_decode=True)
        print(
            "  [recovery: %d log records, %d transactions persisted]"
            % (len(state.records), len(state.persisted_txids))
        )


def main() -> None:
    store = DurableKV()
    store.put("alice", 31)
    store.put("bob", 27)
    store.put("alice", 32)   # overwrite
    store.delete("bob")
    print("alice =", store.get("alice"))
    print("bob   =", store.get("bob"))

    print("simulating power loss ...")
    store.power_loss_and_recover()
    print("alice =", store.get("alice"))
    assert store.get("alice") == 32
    assert store.get("bob") is None

    stats = store.system.stats
    print(
        "NVMM write traffic: %d requests, %.1f nJ"
        % (
            int(stats.get("log_writes", 0) + stats.get("data_writes", 0)
                + stats.get("commit_writes", 0)),
            stats.get("energy_pj", 0.0) / 1000.0,
        )
    )


if __name__ == "__main__":
    main()
