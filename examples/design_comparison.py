#!/usr/bin/env python3
"""Compare the six evaluated designs on one workload.

Reproduces a single column of the paper's evaluation interactively:
throughput, NVMM write traffic, write energy and log volume for each of
FWB-CRADE / FWB-Unsafe / FWB-SLDE / MorLog-CRADE / MorLog-SLDE /
MorLog-DP on a workload of your choice.

Run with:  python examples/design_comparison.py [workload] [n_tx]
           (workload defaults to "echo"; see repro.workloads for names)
"""

import sys

from repro.analysis.report import format_table
from repro.core.designs import DESIGN_NAMES, make_system
from repro.experiments.runner import default_config
from repro.workloads import make_workload
from repro.workloads.base import WorkloadParams


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "echo"
    n_tx = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    params = WorkloadParams(initial_items=256, key_space=1024)

    rows = []
    baseline = None
    for design in DESIGN_NAMES:
        system = make_system(design, default_config())
        workload = make_workload(workload_name, params)
        result = system.run(workload, n_tx, n_threads=4)
        if baseline is None:
            baseline = result
        rows.append(
            [
                design,
                result.throughput_tx_per_s / baseline.throughput_tx_per_s,
                result.nvmm_writes / baseline.nvmm_writes,
                result.nvmm_write_energy_pj / baseline.nvmm_write_energy_pj,
                int(result.stats.get("entries_appended", 0)),
                int(result.stats.get("silent_stores", 0)
                    + result.stats.get("silent_drops", 0)),
            ]
        )
    print(
        format_table(
            [
                "design",
                "throughput",
                "NVMM writes",
                "write energy",
                "log entries",
                "silent drops",
            ],
            rows,
            title="%s, %d transactions (normalized to FWB-CRADE)"
            % (workload_name, n_tx),
        )
    )


if __name__ == "__main__":
    main()
