#!/usr/bin/env python3
"""Observability tour: trace a run, read a timeline, export, profile.

This walks the `repro.trace` subsystem end to end:

1. run a MorLog system with the event bus enabled,
2. show what the bus captured (categories, drops, per-name counts),
3. assemble per-transaction timelines and walk one transaction's
   events — log-entry creation, word-state transitions, persists,
4. export a Chrome trace_event file (open it at https://ui.perfetto.dev)
   and a one-document metrics snapshot,
5. profile where *host* wall time goes, phase by phase.

Run with:  python examples/tracing_demo.py
"""

import json
import os
import tempfile

from repro.core.designs import make_system
from repro.trace import (
    TraceConfig,
    assemble_timelines,
    metrics_snapshot,
    profile_design,
    timeline_summary,
    write_chrome_trace,
)
from repro.workloads.base import WorkloadParams, make_workload

DESIGN = "MorLog-SLDE"
WORKLOAD = "sps"
PARAMS = WorkloadParams(initial_items=64, key_space=128, seed=7)


def main() -> None:
    # -- 1. a traced run ------------------------------------------------
    system = make_system(DESIGN, trace=TraceConfig(enabled=True))
    workload = make_workload(WORKLOAD, PARAMS)
    result = system.run(workload, n_transactions=50, n_threads=2)
    bus = system.tracer

    print("run                :", DESIGN, "on", WORKLOAD)
    print("transactions       :", result.transactions)
    print("events captured    :", len(bus))

    # -- 2. what the bus saw --------------------------------------------
    summary = bus.summary()
    print("\nevents by category :")
    for category, count in summary["by_category"].items():
        print("  %-12s %6d" % (category, count))
    print("dropped            :", summary["dropped"],
          "(ring capacity %d)" % bus.config.capacity)

    # -- 3. one transaction's timeline ----------------------------------
    timelines = assemble_timelines(bus.events)
    tl = timelines[min(timelines)]
    print("\ntimeline of txid=%d (core %s):" % (tl.txid, tl.core))
    for event in tl.events[:12]:
        detail = ", ".join(
            "%s=%s" % (k, v) for k, v in sorted(event.args.items())
        )
        print("  %12.1f ns  %-14s %s" % (event.ts_ns, event.name, detail))
    if len(tl.events) > 12:
        print("  ... %d more events" % (len(tl.events) - 12))
    stats = timeline_summary(timelines)
    print("transactions timed :", stats["transactions"])

    # -- 4. export ------------------------------------------------------
    out_dir = tempfile.mkdtemp(prefix="repro-trace-")
    trace_path = os.path.join(out_dir, "trace.json")
    count = write_chrome_trace(
        trace_path, bus.events, design=DESIGN, workload=WORKLOAD
    )
    print("\nwrote %s (%d events)" % (trace_path, count))
    print("  -> open it at https://ui.perfetto.dev")

    snapshot = metrics_snapshot(result, bus, design=DESIGN, workload=WORKLOAD)
    snapshot_path = os.path.join(out_dir, "metrics.json")
    with open(snapshot_path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
    print("wrote %s (counters + timelines + histograms)" % snapshot_path)

    # -- 5. where does the host time go? --------------------------------
    print("\nper-phase host profile (simulating, not simulated, time):")
    _result, report = profile_design(
        DESIGN, WORKLOAD, n_transactions=50, n_threads=2, params=PARAMS
    )
    print(report.format())


if __name__ == "__main__":
    main()
