#!/usr/bin/env python3
"""Capture a workload trace and reproduce the paper's motivation stats.

Wraps a workload in the trace recorder, saves the trace to disk, reloads
it, replays it under a trace tap, and prints the Figure 3 / Figure 5 /
Table II statistics for that exact store stream — the PIN-style workflow
of the paper's sections II-B and II-C.

Run with:  python examples/trace_analysis.py [workload]
"""

import os
import sys
import tempfile

from repro.analysis.report import format_table
from repro.analysis.trace import TraceCollector
from repro.analysis.trace_io import (
    RecordingWorkload,
    TraceWorkload,
    load_trace,
    save_trace,
)
from repro.core import make_system
from repro.experiments.runner import default_config
from repro.workloads import make_workload
from repro.workloads.base import WorkloadParams


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "redis"
    params = WorkloadParams(initial_items=256, key_space=512)

    # 1. Capture.
    system = make_system("FWB-CRADE", default_config())
    recorder = RecordingWorkload(make_workload(workload_name, params))
    system.run(recorder, 150, n_threads=2)
    path = os.path.join(tempfile.gettempdir(), "%s.trace.jsonl" % workload_name)
    count = save_trace(path, recorder.ops)
    print("captured %d ops from %s -> %s" % (count, workload_name, path))

    # 2. Reload and replay under the analysis tap.
    ops = load_trace(path)
    replay = TraceWorkload(ops)
    system = make_system("FWB-CRADE", default_config())
    collector = TraceCollector(track_patterns=True)
    system.trace = collector
    system.run(replay, replay.total_transactions(), n_threads=2)

    # 3. The paper's motivation numbers for this stream.
    dist = collector.distance_distribution()
    print(format_table(
        ["bucket", "% of writes"],
        [[k, 100 * v] for k, v in dist.items()],
        "Write distance (Figure 3 analysis)",
        float_format="%.1f",
    ))
    print()
    print("clean bytes (Figure 5): %.1f%%" % (100 * collector.clean_byte_fraction))
    print("stores rewriting a word already written in the same tx: %.1f%%"
          % (100 * collector.rewrite_fraction))
    print()
    print(format_table(
        ["DLDC pattern", "% of dirty stores"],
        [[k, 100 * v] for k, v in collector.pattern_fractions().items()],
        "Table II analysis",
        float_format="%.1f",
    ))


if __name__ == "__main__":
    main()
