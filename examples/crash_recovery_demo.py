#!/usr/bin/env python3
"""Crash-recovery demo: atomic persistence under power loss.

Runs a persistent hash-table workload, cuts power at a random store, and
shows that recovery leaves every transaction all-or-nothing — including
the delay-persistence protocol, where a suffix of committed transactions
may be sacrificed but never torn.

Run with:  python examples/crash_recovery_demo.py
"""

import random

from repro.common.config import LoggingConfig, SystemConfig
from repro.core import make_system
from repro.core.system import CrashInjected
from repro.workloads import make_workload
from repro.workloads.base import WorkloadParams

CONFIG = SystemConfig(logging=LoggingConfig(log_region_bytes=1 << 21))


def crash_run(design: str, crash_at: int, seed: int = 1234) -> None:
    system = make_system(design, CONFIG)
    workload = make_workload(
        "hash", WorkloadParams(initial_items=64, key_space=128, seed=seed)
    )
    workload.setup(system, 2)
    system.reset_measurement()

    counter = [0]

    def power_cut():
        counter[0] += 1
        if counter[0] >= crash_at:
            raise CrashInjected()

    system.crash_hook = power_cut
    committed = 0
    try:
        while True:
            core = min(range(2), key=system.core_time_ns.__getitem__)
            body = workload.transaction(core)
            try:
                system.run_transaction(core, body)
            except CrashInjected:
                raise
            committed += 1
    except CrashInjected:
        pass

    state = system.recover(verify_decode=True)
    lost = committed - len(state.persisted_txids & set(range(1, committed + 1)))
    print(
        "%-13s crash@store %4d | %3d committed | %3d persisted after "
        "recovery | %d sacrificed (DP only) | %d log records"
        % (
            design,
            crash_at,
            committed,
            len(state.persisted_txids),
            max(lost, 0) if design.endswith("DP") else 0,
            len(state.records),
        )
    )


def main() -> None:
    rng = random.Random(7)
    for design in ("FWB-CRADE", "MorLog-SLDE", "MorLog-DP"):
        for _ in range(3):
            crash_run(design, crash_at=rng.randrange(20, 800))
    print("\nEvery run above recovered to a transaction-consistent state "
          "(decode path verified word by word).")


if __name__ == "__main__":
    main()
