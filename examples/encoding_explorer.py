#!/usr/bin/env python3
"""Explore the SLDE encoding pipeline word by word.

Feeds a set of (old, new) word pairs through every codec — FPC, CRADE,
DLDC, Flip-N-Write and the SLDE selector — and prints the encoded sizes,
cell counts and per-write latency/energy the TLC RRAM model charges.
This is Figure 4 and Table II of the paper, interactively.

Run with:  python examples/encoding_explorer.py
"""

from repro.analysis.report import format_table
from repro.common.bitops import dirty_byte_mask
from repro.common.config import NVMConfig
from repro.encoding import CradeCodec, DldcCodec, FlipNWriteCodec, FpcCodec
from repro.encoding.expansion import cells_used
from repro.encoding.slde import LogWriteContext, SldeCodec
from repro.nvm.cell import program_cost
from repro.nvm.array import NvmArray

# (label, old value, new value) — the last pair is the paper's Figure 4.
SAMPLES = [
    ("zero word", 0xDEADBEEF, 0x0),
    ("small int", 0x0, 0x2A),
    ("counter bump", 0x00000000000012FF, 0x0000000000001300),
    ("pointer update", 0x00007F33_1000_0040, 0x00007F33_1000_0080),
    ("random word", 0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
    ("unchanged", 0x42424242, 0x42424242),
    ("paper Fig.4", 0xFFFFFFFFABCDEFFF, 0xFFFFFFFFABCDF000),
]


def cost_of(encoded, old_word, config):
    """Program the encoding into a fresh slot holding ``old_word`` raw."""
    array = NvmArray(config)
    from repro.encoding.base import RawCodec

    array.write_word(0, RawCodec().encode(old_word), old_word)
    return array.write_word(0, encoded, 0)


def main() -> None:
    config = NVMConfig()
    fpc, crade, dldc = FpcCodec(), CradeCodec(), DldcCodec()
    slde = SldeCodec()
    rows = []
    for label, old, new in SAMPLES:
        mask = dirty_byte_mask(old, new)
        candidates = {
            "FPC": fpc.encode(new),
            "CRADE": crade.encode(new),
            "DLDC": dldc.encode_log(new, mask),
            "SLDE": slde.encode_log(
                new, LogWriteContext(old_word=old, dirty_mask=mask)
            ),
        }
        for codec_name, encoded in candidates.items():
            if encoded.silent:
                rows.append([label, codec_name, 0, 0, 0.0, 0.0, "silent"])
                continue
            cost = cost_of(encoded, old, config)
            rows.append(
                [
                    label,
                    codec_name,
                    encoded.total_bits,
                    cells_used(encoded.payload_bits, encoded.policy),
                    cost.latency_ns,
                    cost.energy_pj,
                    encoded.method,
                ]
            )
    print(
        format_table(
            ["sample", "codec", "bits", "data cells", "latency ns", "energy pJ", "winner"],
            rows,
            title="Encoding one 64-bit log word (old -> new), TLC RRAM costs",
            float_format="%.1f",
        )
    )


if __name__ == "__main__":
    main()
