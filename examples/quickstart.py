#!/usr/bin/env python3
"""Quickstart: run one durable transaction on a MorLog system.

This walks the public API end to end:

1. build a simulated machine running one of the six designs,
2. execute a durable transaction (``Tx_Begin`` .. ``Tx_End``),
3. inspect what the hardware logger wrote to the NVMM log region,
4. crash the machine and recover.

Run with:  python examples/quickstart.py
"""

from repro.common.config import LoggingConfig, SystemConfig
from repro.core import make_system

CONFIG = SystemConfig(logging=LoggingConfig(log_region_bytes=1 << 20))


def main() -> None:
    system = make_system("MorLog-SLDE", CONFIG)
    base = system.config.nvmm_base

    # Install some persistent data (untimed setup phase).
    system.setup_store(base, 0x1111)
    system.setup_store(base + 8, 0x2222)
    system.reset_measurement()

    # One durable transaction on core 0: the hardware logs undo+redo data
    # for the first update to each word, coalesces rewrites, and persists
    # everything at commit.
    def body(ctx):
        a = ctx.load(base)
        ctx.store(base, a + 1)          # first update -> undo+redo entry
        ctx.store(base, a + 2)          # rewrite -> coalesced, no new entry
        ctx.store(base + 8, 0x2222)     # silent store -> nothing logged

    system.run_transaction(0, body)

    print("architectural value :", hex(system.coherent_word(base)))
    print("persistent value    :", hex(system.persistent_word(base)),
          "(in-place data still old; the log has the redo)")

    stats = system.stats
    print("log entries appended:", int(stats.get("entries_appended")))
    print("silent stores       :", int(stats.get("silent_stores")))
    print("NVMM writes         :", int(stats.get("log_writes")
                                        + stats.get("commit_writes", 0)
                                        + stats.get("data_writes", 0)))

    # Power loss: caches and log buffers vanish; recovery replays the log.
    state = system.recover(verify_decode=True)
    print("recovery            : %d records scanned, %d tx persisted"
          % (len(state.records), len(state.persisted_txids)))
    print("recovered value     :", hex(system.persistent_word(base)))
    assert system.persistent_word(base) == 0x1113


if __name__ == "__main__":
    main()
