"""Persistent linked-list queue (micro-benchmark ``Queue``).

Header block: ``[head, tail, length]``.  Node layout: ``[next, value...]``.
Transactions enqueue a fresh entry at the tail or dequeue from the head —
the enqueue/dequeue mix keeps the queue near its initial length.
"""

from typing import Callable, Iterator, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentQueue:
    """FIFO queue of fixed-size entries in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int) -> None:
        if item_words < 2:
            raise ValueError("queue nodes need at least 2 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 1
        self.header = heap.pmalloc(3 * WORD_BYTES)

    def create(self, ctx) -> None:
        ctx.store_words(self.header, [0, 0, 0])

    def _head(self, ctx) -> int:
        return ctx.load(self.header)

    def _tail(self, ctx) -> int:
        return ctx.load(self.header + WORD_BYTES)

    def length(self, ctx) -> int:
        return ctx.load(self.header + 2 * WORD_BYTES)

    def enqueue(self, ctx, values: List[int]) -> int:
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        node = self.heap.pmalloc(self.node_words * WORD_BYTES)
        ctx.store(node, 0)  # next
        for i, value in enumerate(values):
            ctx.store(node + (1 + i) * WORD_BYTES, value)
        tail = self._tail(ctx)
        if tail:
            ctx.store(tail, node)
        else:
            ctx.store(self.header, node)
        ctx.store(self.header + WORD_BYTES, node)
        ctx.store(self.header + 2 * WORD_BYTES, self.length(ctx) + 1)
        return node

    def dequeue(self, ctx) -> Optional[List[int]]:
        head = self._head(ctx)
        if not head:
            return None
        values = [
            ctx.load(head + (1 + i) * WORD_BYTES) for i in range(self.value_words)
        ]
        nxt = ctx.load(head)
        ctx.store(self.header, nxt)
        if not nxt:
            ctx.store(self.header + WORD_BYTES, 0)
        ctx.store(self.header + 2 * WORD_BYTES, self.length(ctx) - 1)
        self.heap.pfree(head)
        return values

    def items(self, ctx) -> Iterator[List[int]]:
        node = self._head(ctx)
        while node:
            yield [
                ctx.load(node + (1 + i) * WORD_BYTES)
                for i in range(self.value_words)
            ]
            node = ctx.load(node)


class QueueWorkload(Workload):
    """Insert/delete entries in a queue (Table IV)."""

    name = "queue"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.queues: List[Optional[PersistentQueue]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.queues) <= tid:
            self.queues.append(None)
        queue = PersistentQueue(self.heap, self.params.dataset.item_words)
        queue.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            queue.enqueue(ctx, self.value_words(rng, queue.value_words))
        self.queues[tid] = queue

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        queue = self.queues[tid]
        if rng.random() < 0.5:
            values = self.value_words(rng, queue.value_words)

            def body(ctx):
                queue.enqueue(ctx, values)
        else:
            def body(ctx):
                queue.dequeue(ctx)

        return body
