"""Benchmark workloads (paper Table IV).

Micro-benchmarks — each transaction performs one operation on a persistent
data structure, with both the small (64-byte) and large (4-KB) dataset
item sizes the paper evaluates:

- :mod:`repro.workloads.btree`   — insert/delete nodes in a B-tree
- :mod:`repro.workloads.hashmap` — insert/delete entries in a hash table
- :mod:`repro.workloads.queue`   — insert/delete entries in a queue
- :mod:`repro.workloads.rbtree`  — insert/delete nodes in a red-black tree
- :mod:`repro.workloads.sdg`     — insert/delete edges in a scalable graph
- :mod:`repro.workloads.sps`     — swap two random entries in an array

Macro-benchmarks (WHISPER-derived, reimplemented over the persistent
heap):

- :mod:`repro.workloads.echo`    — a scalable key-value store
- :mod:`repro.workloads.ycsb`    — 20 % read / 80 % update
- :mod:`repro.workloads.tpcc`    — TPC-C new-order transactions
"""

from repro.workloads.base import (
    DatasetSize,
    SetupContext,
    Workload,
    WorkloadParams,
    make_workload,
    MICRO_WORKLOADS,
    MACRO_WORKLOADS,
    MOTIVATION_EXTRAS,
)
from repro.workloads.btree import BTreeWorkload
from repro.workloads.ctree import CTreeWorkload
from repro.workloads.hashmap import HashMapWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.redis import RedisWorkload
from repro.workloads.sdg import SdgWorkload
from repro.workloads.sps import SpsWorkload
from repro.workloads.echo import EchoWorkload
from repro.workloads.vacation import VacationWorkload
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.tpcc import TpccWorkload

__all__ = [
    "DatasetSize",
    "SetupContext",
    "Workload",
    "WorkloadParams",
    "make_workload",
    "MICRO_WORKLOADS",
    "MACRO_WORKLOADS",
    "MOTIVATION_EXTRAS",
    "BTreeWorkload",
    "CTreeWorkload",
    "HashMapWorkload",
    "MemcachedWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
    "RedisWorkload",
    "SdgWorkload",
    "SpsWorkload",
    "EchoWorkload",
    "VacationWorkload",
    "YcsbWorkload",
    "TpccWorkload",
]
