"""Echo-style scalable key-value store (macro-benchmark ``Echo``).

Echo (from the WHISPER suite) is a versioned key-value store: every put
advances a global clock and stamps the entry with the new version.  We
reproduce that write pattern over the persistent hash map: a put
transaction bumps the clock word, then writes the entry's version,
timestamp and payload; a get transaction only reads.  Puts dominate, as in
the WHISPER configuration.
"""

from typing import Callable, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.workloads.base import SetupContext, Workload
from repro.workloads.hashmap import PersistentHashMap

PUT_FRACTION = 0.75
# WHISPER's echo batches client operations into one durable transaction;
# the batching is what gives the macro-benchmarks the strong intra-
# transaction temporal locality the paper reports (sections II-B, VI-D):
# the clock word and hot entries are rewritten many times per transaction.
OPS_PER_TX = 12
# Keys per transaction are drawn from a small hot window: WHISPER's echo
# shows ~83 % of transactional writes hitting previously-written words
# (paper Figure 3), dominated by metadata and hot-entry rewrites.
HOT_WINDOW = 6


class EchoStore:
    """Versioned KV store over a persistent hash map."""

    def __init__(self, heap, item_words: int) -> None:
        if item_words < 5:
            raise ValueError("echo entries need at least 5 words")
        self.map = PersistentHashMap(heap, item_words)
        self.payload_words = self.map.value_words - 2
        self.clock_addr = heap.pmalloc(WORD_BYTES)

    def create(self, ctx) -> None:
        self.map.create(ctx)
        ctx.store(self.clock_addr, 0)

    def put(self, ctx, key: int, payload: List[int]) -> int:
        """Versioned put; returns the new version number."""
        version = ctx.load(self.clock_addr) + 1
        ctx.store(self.clock_addr, version)
        values = [version, version * 1_000 + key % 997] + list(payload)
        self.map.insert(ctx, key, values)
        return version

    def get(self, ctx, key: int) -> Optional[List[int]]:
        node = self.map.lookup(ctx, key)
        if node is None:
            return None
        return [
            ctx.load(self.map.value_addr(node, 2 + i))
            for i in range(self.payload_words)
        ]

    def version(self, ctx, key: int) -> Optional[int]:
        node = self.map.lookup(ctx, key)
        if node is None:
            return None
        return ctx.load(self.map.value_addr(node, 0))


class EchoWorkload(Workload):
    """A scalable key-value store (Table IV)."""

    name = "echo"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.stores: List[Optional[EchoStore]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.stores) <= tid:
            self.stores.append(None)
        store = EchoStore(self.heap, self.params.dataset.item_words)
        store.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            store.put(ctx, key, self.value_words(rng, store.payload_words))
        self.stores[tid] = store

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        store = self.stores[tid]
        # A batch of puts/gets over a hot key window: repeated keys within
        # one transaction rewrite the same entry (and always the clock).
        window = rng.randrange(1, max(self.params.key_space - HOT_WINDOW, 2))
        ops = []
        for _ in range(OPS_PER_TX):
            key = window + rng.randrange(HOT_WINDOW)
            if rng.random() < PUT_FRACTION:
                ops.append((key, self.value_words(rng, store.payload_words)))
            else:
                ops.append((key, None))

        def body(ctx):
            for key, payload in ops:
                if payload is None:
                    store.get(ctx, key)
                else:
                    store.put(ctx, key, payload)

        return body
