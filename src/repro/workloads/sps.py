"""Persistent array swap (micro-benchmark ``SPS``).

An array of fixed-size entries; each transaction swaps two random entries
word by word.  The paper notes that with the large dataset MorLog shines
here "since the array entries are initialized with the same value" — many
swap bytes are clean; we initialize entries from a small pool of repeated
templates to reproduce that.
"""

from typing import Callable, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentArray:
    """Flat array of multi-word entries in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int, n_entries: int) -> None:
        self.heap = heap
        self.item_words = item_words
        self.n_entries = n_entries
        self.base = heap.pmalloc(n_entries * item_words * WORD_BYTES)

    def entry_addr(self, index: int) -> int:
        return self.base + index * self.item_words * WORD_BYTES

    def read_entry(self, ctx, index: int) -> List[int]:
        return ctx.load_words(self.entry_addr(index), self.item_words)

    def write_entry(self, ctx, index: int, words: List[int]) -> None:
        ctx.store_words(self.entry_addr(index), words)

    def swap(self, ctx, a: int, b: int) -> None:
        """Swap entries ``a`` and ``b`` word by word."""
        addr_a, addr_b = self.entry_addr(a), self.entry_addr(b)
        for i in range(self.item_words):
            offset = i * WORD_BYTES
            va = ctx.load(addr_a + offset)
            vb = ctx.load(addr_b + offset)
            ctx.store(addr_a + offset, vb)
            ctx.store(addr_b + offset, va)


class SpsWorkload(Workload):
    """Swap two random entries in an array (Table IV)."""

    name = "sps"
    # Entries start from a handful of templates, so many swaps move
    # identical bytes (the paper's "initialized with the same value").
    N_TEMPLATES = 4

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.arrays: List[Optional[PersistentArray]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.arrays) <= tid:
            self.arrays.append(None)
        item_words = self.params.dataset.item_words
        array = PersistentArray(self.heap, item_words, self.params.initial_items)
        rng = self.rngs[tid]
        templates = [
            self.value_words(rng, item_words) for _ in range(self.N_TEMPLATES)
        ]
        for i in range(array.n_entries):
            array.write_entry(ctx, i, templates[rng.randrange(self.N_TEMPLATES)])
        self.arrays[tid] = array

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        array = self.arrays[tid]
        a = rng.randrange(array.n_entries)
        b = rng.randrange(array.n_entries)

        def body(ctx):
            array.swap(ctx, a, b)

        return body
