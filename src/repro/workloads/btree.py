"""Persistent B-tree (micro-benchmark ``BTree``).

Node layout in NVMM (``item_words`` = 8 for the small dataset, 512 for the
large one):

====== ==========================================
word   contents
====== ==========================================
0      header: ``leaf << 32 | n_keys``
1..k   keys (k = max keys = (item_words - 2) // 2)
k+1..  children (k + 1 pointers)
====== ==========================================

Insertion uses single-pass preemptive splitting (CLRS); deletion removes
from the leaf (replacing internal keys with their predecessor) without
rebalancing — the tree stays a valid search tree, nodes may underflow.
Transactions perform one insert or one delete of a uniformly random key,
as in the paper's micro-benchmarks.
"""

from typing import Callable, Iterator, List, Optional, Tuple

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentBTree:
    """A B-tree stored in simulated NVMM, accessed through a context."""

    def __init__(self, heap: PersistentHeap, item_words: int) -> None:
        if item_words < 8:
            raise ValueError("B-tree nodes need at least 8 words")
        self.heap = heap
        self.node_words = item_words
        self.max_keys = (item_words - 2) // 2
        self.min_degree = (self.max_keys + 1) // 2
        self.root_ptr = heap.pmalloc(WORD_BYTES)

    # -- node field helpers --------------------------------------------

    def _header(self, ctx, node: int) -> Tuple[bool, int]:
        header = ctx.load(node)
        return bool(header >> 32), header & 0xFFFF_FFFF

    def _set_header(self, ctx, node: int, leaf: bool, n: int) -> None:
        ctx.store(node, (int(leaf) << 32) | n)

    def _key(self, ctx, node: int, i: int) -> int:
        return ctx.load(node + (1 + i) * WORD_BYTES)

    def _set_key(self, ctx, node: int, i: int, key: int) -> None:
        ctx.store(node + (1 + i) * WORD_BYTES, key)

    def _child(self, ctx, node: int, i: int) -> int:
        return ctx.load(node + (1 + self.max_keys + i) * WORD_BYTES)

    def _set_child(self, ctx, node: int, i: int, child: int) -> None:
        ctx.store(node + (1 + self.max_keys + i) * WORD_BYTES, child)

    def _alloc_node(self, ctx, leaf: bool) -> int:
        node = self.heap.pmalloc(self.node_words * WORD_BYTES)
        self._set_header(ctx, node, leaf, 0)
        return node

    # -- lifecycle -------------------------------------------------------

    def create(self, ctx) -> None:
        root = self._alloc_node(ctx, leaf=True)
        ctx.store(self.root_ptr, root)

    def _root(self, ctx) -> int:
        return ctx.load(self.root_ptr)

    # -- search ----------------------------------------------------------

    def search(self, ctx, key: int) -> bool:
        node = self._root(ctx)
        while True:
            leaf, n = self._header(ctx, node)
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            if i < n and self._key(ctx, node, i) == key:
                return True
            if leaf:
                return False
            node = self._child(ctx, node, i)

    # -- insert ------------------------------------------------------------

    def _split_child(self, ctx, parent: int, index: int, child: int) -> None:
        """Split a full ``child`` of ``parent`` around its median key."""
        leaf, n = self._header(ctx, child)
        mid = n // 2
        median = self._key(ctx, child, mid)
        right = self._alloc_node(ctx, leaf)
        right_n = n - mid - 1
        for i in range(right_n):
            self._set_key(ctx, right, i, self._key(ctx, child, mid + 1 + i))
        if not leaf:
            for i in range(right_n + 1):
                self._set_child(ctx, right, i, self._child(ctx, child, mid + 1 + i))
        self._set_header(ctx, right, leaf, right_n)
        self._set_header(ctx, child, leaf, mid)
        _pleaf, pn = self._header(ctx, parent)
        for i in range(pn, index, -1):
            self._set_key(ctx, parent, i, self._key(ctx, parent, i - 1))
            self._set_child(ctx, parent, i + 1, self._child(ctx, parent, i))
        self._set_key(ctx, parent, index, median)
        self._set_child(ctx, parent, index + 1, right)
        self._set_header(ctx, parent, False, pn + 1)

    def insert(self, ctx, key: int) -> None:
        root = self._root(ctx)
        _leaf, n = self._header(ctx, root)
        if n == self.max_keys:
            new_root = self._alloc_node(ctx, leaf=False)
            self._set_child(ctx, new_root, 0, root)
            self._split_child(ctx, new_root, 0, root)
            ctx.store(self.root_ptr, new_root)
            root = new_root
        self._insert_nonfull(ctx, root, key)

    def _insert_nonfull(self, ctx, node: int, key: int) -> None:
        while True:
            leaf, n = self._header(ctx, node)
            if leaf:
                i = n - 1
                while i >= 0 and key < self._key(ctx, node, i):
                    self._set_key(ctx, node, i + 1, self._key(ctx, node, i))
                    i -= 1
                self._set_key(ctx, node, i + 1, key)
                self._set_header(ctx, node, True, n + 1)
                return
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            child = self._child(ctx, node, i)
            _cleaf, cn = self._header(ctx, child)
            if cn == self.max_keys:
                self._split_child(ctx, node, i, child)
                if key > self._key(ctx, node, i):
                    i += 1
                child = self._child(ctx, node, i)
            node = child

    # -- delete (exact multiset semantics, no rebalance) -------------------

    def delete(self, ctx, key: int) -> bool:
        """Remove one occurrence of ``key``; returns True when found.

        Internal hits are replaced with the predecessor (or successor)
        pulled from an adjacent subtree; nodes are allowed to underflow,
        which keeps the structure a valid search tree without the full
        CLRS rebalancing machinery (documented simplification).
        """
        node = self._root(ctx)
        while True:
            leaf, n = self._header(ctx, node)
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            if i < n and self._key(ctx, node, i) == key:
                if leaf:
                    self._remove_from_leaf(ctx, node, i, n)
                else:
                    self._remove_internal(ctx, node, i, n)
                return True
            if leaf:
                return False
            node = self._child(ctx, node, i)

    def _remove_from_leaf(self, ctx, node: int, index: int, n: int) -> None:
        for i in range(index, n - 1):
            self._set_key(ctx, node, i, self._key(ctx, node, i + 1))
        self._set_header(ctx, node, True, n - 1)

    def _remove_internal(self, ctx, node: int, index: int, n: int) -> None:
        predecessor = self._take_max(ctx, self._child(ctx, node, index))
        if predecessor is not None:
            self._set_key(ctx, node, index, predecessor)
            return
        successor = self._take_min(ctx, self._child(ctx, node, index + 1))
        if successor is not None:
            self._set_key(ctx, node, index, successor)
            return
        # Both adjacent subtrees are empty: drop the key and the (empty)
        # right child, shifting the remainder left.
        for i in range(index, n - 1):
            self._set_key(ctx, node, i, self._key(ctx, node, i + 1))
        for i in range(index + 1, n):
            self._set_child(ctx, node, i, self._child(ctx, node, i + 1))
        self._set_header(ctx, node, False, n - 1)

    def _take_max(self, ctx, node: int) -> Optional[int]:
        """Remove and return the largest key of a subtree (None if empty)."""
        leaf, n = self._header(ctx, node)
        if leaf:
            if n == 0:
                return None
            key = self._key(ctx, node, n - 1)
            self._set_header(ctx, node, True, n - 1)
            return key
        taken = self._take_max(ctx, self._child(ctx, node, n))
        if taken is not None:
            return taken
        if n == 0:
            return None
        # The rightmost child is empty: this node's last key is the max;
        # dropping it also drops the empty child, keeping n+1 children.
        key = self._key(ctx, node, n - 1)
        self._set_header(ctx, node, False, n - 1)
        return key

    def _take_min(self, ctx, node: int) -> Optional[int]:
        """Remove and return the smallest key of a subtree (None if empty)."""
        leaf, n = self._header(ctx, node)
        if leaf:
            if n == 0:
                return None
            key = self._key(ctx, node, 0)
            self._remove_from_leaf(ctx, node, 0, n)
            return key
        taken = self._take_min(ctx, self._child(ctx, node, 0))
        if taken is not None:
            return taken
        if n == 0:
            return None
        key = self._key(ctx, node, 0)
        for i in range(n - 1):
            self._set_key(ctx, node, i, self._key(ctx, node, i + 1))
        for i in range(n):
            self._set_child(ctx, node, i, self._child(ctx, node, i + 1))
        self._set_header(ctx, node, False, n - 1)
        return key

    # -- iteration (tests / oracles) --------------------------------------

    def items(self, ctx) -> Iterator[int]:
        def walk(node: int) -> Iterator[int]:
            leaf, n = self._header(ctx, node)
            for i in range(n):
                if not leaf:
                    yield from walk(self._child(ctx, node, i))
                yield self._key(ctx, node, i)
            if not leaf:
                yield from walk(self._child(ctx, node, n))

        yield from walk(self._root(ctx))


class BTreeWorkload(Workload):
    """Insert/delete nodes in a B-tree (Table IV)."""

    name = "btree"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.trees: List[Optional[PersistentBTree]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.trees) <= tid:
            self.trees.append(None)
        tree = PersistentBTree(self.heap, self.params.dataset.item_words)
        tree.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            tree.insert(ctx, rng.randrange(1, self.params.key_space))
        self.trees[tid] = tree

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        tree = self.trees[tid]
        key = rng.randrange(1, self.params.key_space)
        insert = rng.random() < 0.6

        def body(ctx):
            if insert:
                tree.insert(ctx, key)
            else:
                tree.delete(ctx, key)

        return body
