"""YCSB-style workload: 20 % read / 80 % update (macro-benchmark ``YCSB``).

A preloaded key-value table (every key present) accessed with a Zipfian
key distribution, the standard YCSB skew.  Updates rewrite the entry's
value words in place; reads walk the chain and load the values.
"""

import bisect
from typing import Callable, List, Optional

from repro.workloads.base import SetupContext, Workload
from repro.workloads.hashmap import PersistentHashMap

UPDATE_FRACTION = 0.8
ZIPF_THETA = 0.99
# Operations batched per durable transaction (WHISPER groups YCSB ops);
# the Zipfian skew makes hot keys repeat within a batch.
OPS_PER_TX = 8


def zipf_cdf(n: int, theta: float = ZIPF_THETA) -> List[float]:
    """Cumulative Zipf(theta) distribution over ranks 1..n."""
    weights = [1.0 / (i ** theta) for i in range(1, n + 1)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


class YcsbWorkload(Workload):
    """20 %/80 % read/update over a hash-indexed table (Table IV)."""

    name = "ycsb"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.tables: List[Optional[PersistentHashMap]] = []
        self._cdf: List[float] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.tables) <= tid:
            self.tables.append(None)
        table = PersistentHashMap(self.heap, self.params.dataset.item_words)
        table.create(ctx)
        rng = self.rngs[tid]
        n_keys = self.params.key_space
        if not self._cdf:
            self._cdf = zipf_cdf(n_keys)
        # YCSB preloads the whole table before the measured phase.
        for key in range(1, n_keys + 1):
            table.insert(ctx, key, self.value_words(rng, table.value_words))
        self.tables[tid] = table

    def _zipf_key(self, rng) -> int:
        rank = bisect.bisect_left(self._cdf, rng.random())
        return 1 + min(rank, len(self._cdf) - 1)

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        table = self.tables[tid]
        ops = []
        for _ in range(OPS_PER_TX):
            key = self._zipf_key(rng)
            if rng.random() < UPDATE_FRACTION:
                ops.append((key, self.value_words(rng, table.value_words)))
            else:
                ops.append((key, None))

        def body(ctx):
            for key, values in ops:
                if values is None:
                    node = table.lookup(ctx, key)
                    if node is not None:
                        for i in range(table.value_words):
                            ctx.load(table.value_addr(node, i))
                else:
                    table.insert(ctx, key, values)

        return body
