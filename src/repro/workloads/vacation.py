"""Travel reservation system (STAMP/WHISPER ``vacation``).

Three resource tables (cars, flights, rooms) plus customers and their
reservation lists.  A *make-reservation* transaction queries a handful of
candidates per resource type (loads), picks the cheapest with free
capacity, increments its ``used`` counter and appends a reservation node
to the customer; a *delete-customer* transaction releases everything the
customer holds.  The counter increments and list splices give vacation
its WHISPER write profile.

Resource record (8 words): ``[id, total, used, price, pad...]``.
Customer record (8 words): ``[id, reservation_head, n_reservations, pad...]``.
Reservation node (``item_words``): ``[resource_addr, next, value...]``.
"""

from typing import Callable, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload

RESOURCE_TYPES = 3   # cars, flights, rooms
RECORD_WORDS = 8
QUERY_CANDIDATES = 4


class VacationSystem:
    """The reservation database in simulated NVMM."""

    def __init__(
        self,
        heap: PersistentHeap,
        item_words: int,
        n_resources: int,
        n_customers: int,
    ) -> None:
        if item_words < 3:
            raise ValueError("reservation nodes need at least 3 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 2
        self.n_resources = n_resources
        self.n_customers = n_customers
        record_bytes = RECORD_WORDS * WORD_BYTES
        self.tables = [
            heap.pmalloc(n_resources * record_bytes) for _ in range(RESOURCE_TYPES)
        ]
        self.customers = heap.pmalloc(n_customers * record_bytes)

    def resource_rec(self, table: int, index: int) -> int:
        return self.tables[table] + index * RECORD_WORDS * WORD_BYTES

    def customer_rec(self, index: int) -> int:
        return self.customers + index * RECORD_WORDS * WORD_BYTES

    def populate(self, ctx, rng) -> None:
        for table in range(RESOURCE_TYPES):
            for i in range(self.n_resources):
                ctx.store_words(
                    self.resource_rec(table, i),
                    [i, rng.randrange(5, 50), 0, rng.randrange(50, 500),
                     0, 0, 0, 0],
                )
        for c in range(self.n_customers):
            ctx.store_words(self.customer_rec(c), [c, 0, 0, 0, 0, 0, 0, 0])

    # -- transactions --------------------------------------------------------

    def make_reservation(self, ctx, rng, values: List[int]) -> int:
        """Reserve one resource of each type for a random customer.

        Returns the number of resources actually reserved.
        """
        customer = self.customer_rec(rng.randrange(self.n_customers))
        reserved = 0
        for table in range(RESOURCE_TYPES):
            best, best_price = 0, 1 << 62
            for _ in range(QUERY_CANDIDATES):
                rec = self.resource_rec(table, rng.randrange(self.n_resources))
                total = ctx.load(rec + WORD_BYTES)
                used = ctx.load(rec + 2 * WORD_BYTES)
                price = ctx.load(rec + 3 * WORD_BYTES)
                if used < total and price < best_price:
                    best, best_price = rec, price
            if not best:
                continue
            ctx.store(best + 2 * WORD_BYTES, ctx.load(best + 2 * WORD_BYTES) + 1)
            node = self.heap.pmalloc(self.node_words * WORD_BYTES)
            ctx.store(node, best)
            ctx.store(node + WORD_BYTES, ctx.load(customer + WORD_BYTES))
            for i, value in enumerate(values):
                ctx.store(node + (2 + i) * WORD_BYTES, value)
            ctx.store(customer + WORD_BYTES, node)
            ctx.store(
                customer + 2 * WORD_BYTES,
                ctx.load(customer + 2 * WORD_BYTES) + 1,
            )
            reserved += 1
        return reserved

    def delete_customer(self, ctx, rng) -> int:
        """Release every reservation of a random customer."""
        customer = self.customer_rec(rng.randrange(self.n_customers))
        node = ctx.load(customer + WORD_BYTES)
        released = 0
        while node:
            resource = ctx.load(node)
            ctx.store(
                resource + 2 * WORD_BYTES,
                max(ctx.load(resource + 2 * WORD_BYTES) - 1, 0),
            )
            nxt = ctx.load(node + WORD_BYTES)
            self.heap.pfree(node)
            node = nxt
            released += 1
        ctx.store(customer + WORD_BYTES, 0)
        ctx.store(customer + 2 * WORD_BYTES, 0)
        return released

    # -- invariants (tests) ---------------------------------------------------

    def total_used(self, ctx) -> int:
        return sum(
            ctx.load(self.resource_rec(t, i) + 2 * WORD_BYTES)
            for t in range(RESOURCE_TYPES)
            for i in range(self.n_resources)
        )

    def total_reservations(self, ctx) -> int:
        return sum(
            ctx.load(self.customer_rec(c) + 2 * WORD_BYTES)
            for c in range(self.n_customers)
        )


class VacationWorkload(Workload):
    """Travel reservations (WHISPER vacation equivalent)."""

    name = "vacation"
    RESERVE_FRACTION = 0.8

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.systems: List[Optional[VacationSystem]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.systems) <= tid:
            self.systems.append(None)
        system = VacationSystem(
            self.heap,
            self.params.dataset.item_words,
            n_resources=max(self.params.initial_items // 4, 16),
            n_customers=max(self.params.initial_items // 2, 16),
        )
        system.populate(ctx, self.rngs[tid])
        self.systems[tid] = system

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        system = self.systems[tid]
        if rng.random() < self.RESERVE_FRACTION:
            values = self.value_words(rng, system.value_words)

            def body(ctx):
                system.make_reservation(ctx, rng, values)
        else:
            def body(ctx):
                system.delete_customer(ctx, rng)

        return body
