"""Persistent red-black tree (micro-benchmark ``RBTree``).

Node layout (``item_words``): ``[key, left, right, parent, color,
value...]`` — 3 value words for the small dataset, 507 for the large one.
Null pointers are 0; the null node is black.  Insert and delete implement
the full CLRS algorithms with rebalancing fixups (delete tracks the
spliced child's parent explicitly instead of using a sentinel).
"""

from typing import Callable, Iterator, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload

RED = 1
BLACK = 0


class PersistentRBTree:
    """Red-black tree in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int) -> None:
        if item_words < 6:
            raise ValueError("red-black nodes need at least 6 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 5
        self.root_ptr = heap.pmalloc(WORD_BYTES)

    def create(self, ctx) -> None:
        ctx.store(self.root_ptr, 0)

    # -- node fields ----------------------------------------------------

    def _key(self, ctx, n: int) -> int:
        return ctx.load(n)

    def _left(self, ctx, n: int) -> int:
        return ctx.load(n + WORD_BYTES)

    def _right(self, ctx, n: int) -> int:
        return ctx.load(n + 2 * WORD_BYTES)

    def _parent(self, ctx, n: int) -> int:
        return ctx.load(n + 3 * WORD_BYTES)

    def _color(self, ctx, n: int) -> int:
        return BLACK if n == 0 else ctx.load(n + 4 * WORD_BYTES)

    def _set_left(self, ctx, n: int, v: int) -> None:
        ctx.store(n + WORD_BYTES, v)

    def _set_right(self, ctx, n: int, v: int) -> None:
        ctx.store(n + 2 * WORD_BYTES, v)

    def _set_parent(self, ctx, n: int, v: int) -> None:
        if n:
            ctx.store(n + 3 * WORD_BYTES, v)

    def _set_color(self, ctx, n: int, v: int) -> None:
        if n:
            ctx.store(n + 4 * WORD_BYTES, v)

    def _root(self, ctx) -> int:
        return ctx.load(self.root_ptr)

    def _set_root(self, ctx, n: int) -> None:
        ctx.store(self.root_ptr, n)
        self._set_parent(ctx, n, 0)

    # -- rotations ---------------------------------------------------------

    def _rotate_left(self, ctx, x: int) -> None:
        y = self._right(ctx, x)
        beta = self._left(ctx, y)
        self._set_right(ctx, x, beta)
        self._set_parent(ctx, beta, x)
        parent = self._parent(ctx, x)
        self._set_parent(ctx, y, parent)
        if not parent:
            ctx.store(self.root_ptr, y)
        elif self._left(ctx, parent) == x:
            self._set_left(ctx, parent, y)
        else:
            self._set_right(ctx, parent, y)
        self._set_left(ctx, y, x)
        self._set_parent(ctx, x, y)

    def _rotate_right(self, ctx, x: int) -> None:
        y = self._left(ctx, x)
        beta = self._right(ctx, y)
        self._set_left(ctx, x, beta)
        self._set_parent(ctx, beta, x)
        parent = self._parent(ctx, x)
        self._set_parent(ctx, y, parent)
        if not parent:
            ctx.store(self.root_ptr, y)
        elif self._right(ctx, parent) == x:
            self._set_right(ctx, parent, y)
        else:
            self._set_left(ctx, parent, y)
        self._set_right(ctx, y, x)
        self._set_parent(ctx, x, y)

    # -- search ------------------------------------------------------------

    def search(self, ctx, key: int) -> Optional[int]:
        node = self._root(ctx)
        while node:
            k = self._key(ctx, node)
            if key == k:
                return node
            node = self._left(ctx, node) if key < k else self._right(ctx, node)
        return None

    # -- insert ------------------------------------------------------------

    def insert(self, ctx, key: int, values: List[int]) -> int:
        """Insert ``key`` (updating values if present); returns the node."""
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        parent, node = 0, self._root(ctx)
        while node:
            k = self._key(ctx, node)
            if key == k:
                for i, value in enumerate(values):
                    ctx.store(node + (5 + i) * WORD_BYTES, value)
                return node
            parent, node = node, (
                self._left(ctx, node) if key < k else self._right(ctx, node)
            )
        fresh = self.heap.pmalloc(self.node_words * WORD_BYTES)
        ctx.store(fresh, key)
        self._set_left(ctx, fresh, 0)
        self._set_right(ctx, fresh, 0)
        ctx.store(fresh + 3 * WORD_BYTES, parent)
        self._set_color(ctx, fresh, RED)
        for i, value in enumerate(values):
            ctx.store(fresh + (5 + i) * WORD_BYTES, value)
        if not parent:
            ctx.store(self.root_ptr, fresh)
        elif key < self._key(ctx, parent):
            self._set_left(ctx, parent, fresh)
        else:
            self._set_right(ctx, parent, fresh)
        self._insert_fixup(ctx, fresh)
        return fresh

    def _insert_fixup(self, ctx, z: int) -> None:
        while self._color(ctx, self._parent(ctx, z)) == RED:
            parent = self._parent(ctx, z)
            grand = self._parent(ctx, parent)
            if parent == self._left(ctx, grand):
                uncle = self._right(ctx, grand)
                if self._color(ctx, uncle) == RED:
                    self._set_color(ctx, parent, BLACK)
                    self._set_color(ctx, uncle, BLACK)
                    self._set_color(ctx, grand, RED)
                    z = grand
                else:
                    if z == self._right(ctx, parent):
                        z = parent
                        self._rotate_left(ctx, z)
                        parent = self._parent(ctx, z)
                        grand = self._parent(ctx, parent)
                    self._set_color(ctx, parent, BLACK)
                    self._set_color(ctx, grand, RED)
                    self._rotate_right(ctx, grand)
            else:
                uncle = self._left(ctx, grand)
                if self._color(ctx, uncle) == RED:
                    self._set_color(ctx, parent, BLACK)
                    self._set_color(ctx, uncle, BLACK)
                    self._set_color(ctx, grand, RED)
                    z = grand
                else:
                    if z == self._left(ctx, parent):
                        z = parent
                        self._rotate_right(ctx, z)
                        parent = self._parent(ctx, z)
                        grand = self._parent(ctx, parent)
                    self._set_color(ctx, parent, BLACK)
                    self._set_color(ctx, grand, RED)
                    self._rotate_left(ctx, grand)
        root = self._root(ctx)
        if self._color(ctx, root) != BLACK:
            self._set_color(ctx, root, BLACK)

    # -- delete ------------------------------------------------------------

    def _minimum(self, ctx, node: int) -> int:
        while True:
            left = self._left(ctx, node)
            if not left:
                return node
            node = left

    def _transplant(self, ctx, u: int, v: int) -> None:
        parent = self._parent(ctx, u)
        if not parent:
            ctx.store(self.root_ptr, v)
        elif u == self._left(ctx, parent):
            self._set_left(ctx, parent, v)
        else:
            self._set_right(ctx, parent, v)
        self._set_parent(ctx, v, parent)

    def delete(self, ctx, key: int) -> bool:
        z = self.search(ctx, key)
        if z is None:
            return False
        y = z
        y_original_color = self._color(ctx, y)
        if not self._left(ctx, z):
            x = self._right(ctx, z)
            x_parent = self._parent(ctx, z)
            self._transplant(ctx, z, x)
        elif not self._right(ctx, z):
            x = self._left(ctx, z)
            x_parent = self._parent(ctx, z)
            self._transplant(ctx, z, x)
        else:
            y = self._minimum(ctx, self._right(ctx, z))
            y_original_color = self._color(ctx, y)
            x = self._right(ctx, y)
            if self._parent(ctx, y) == z:
                x_parent = y
                self._set_parent(ctx, x, y)
            else:
                x_parent = self._parent(ctx, y)
                self._transplant(ctx, y, x)
                self._set_right(ctx, y, self._right(ctx, z))
                self._set_parent(ctx, self._right(ctx, y), y)
            self._transplant(ctx, z, y)
            self._set_left(ctx, y, self._left(ctx, z))
            self._set_parent(ctx, self._left(ctx, y), y)
            self._set_color(ctx, y, self._color(ctx, z))
        if y_original_color == BLACK:
            self._delete_fixup(ctx, x, x_parent)
        self.heap.pfree(z)
        return True

    def _delete_fixup(self, ctx, x: int, x_parent: int) -> None:
        while x != self._root(ctx) and self._color(ctx, x) == BLACK:
            if x_parent == 0:
                break
            if x == self._left(ctx, x_parent):
                w = self._right(ctx, x_parent)
                if self._color(ctx, w) == RED:
                    self._set_color(ctx, w, BLACK)
                    self._set_color(ctx, x_parent, RED)
                    self._rotate_left(ctx, x_parent)
                    w = self._right(ctx, x_parent)
                if (
                    self._color(ctx, self._left(ctx, w)) == BLACK
                    and self._color(ctx, self._right(ctx, w)) == BLACK
                ):
                    self._set_color(ctx, w, RED)
                    x = x_parent
                    x_parent = self._parent(ctx, x)
                else:
                    if self._color(ctx, self._right(ctx, w)) == BLACK:
                        self._set_color(ctx, self._left(ctx, w), BLACK)
                        self._set_color(ctx, w, RED)
                        self._rotate_right(ctx, w)
                        w = self._right(ctx, x_parent)
                    self._set_color(ctx, w, self._color(ctx, x_parent))
                    self._set_color(ctx, x_parent, BLACK)
                    self._set_color(ctx, self._right(ctx, w), BLACK)
                    self._rotate_left(ctx, x_parent)
                    x = self._root(ctx)
                    x_parent = 0
            else:
                w = self._left(ctx, x_parent)
                if self._color(ctx, w) == RED:
                    self._set_color(ctx, w, BLACK)
                    self._set_color(ctx, x_parent, RED)
                    self._rotate_right(ctx, x_parent)
                    w = self._left(ctx, x_parent)
                if (
                    self._color(ctx, self._right(ctx, w)) == BLACK
                    and self._color(ctx, self._left(ctx, w)) == BLACK
                ):
                    self._set_color(ctx, w, RED)
                    x = x_parent
                    x_parent = self._parent(ctx, x)
                else:
                    if self._color(ctx, self._left(ctx, w)) == BLACK:
                        self._set_color(ctx, self._right(ctx, w), BLACK)
                        self._set_color(ctx, w, RED)
                        self._rotate_left(ctx, w)
                        w = self._left(ctx, x_parent)
                    self._set_color(ctx, w, self._color(ctx, x_parent))
                    self._set_color(ctx, x_parent, BLACK)
                    self._set_color(ctx, self._left(ctx, w), BLACK)
                    self._rotate_right(ctx, x_parent)
                    x = self._root(ctx)
                    x_parent = 0
        self._set_color(ctx, x, BLACK)

    # -- iteration -----------------------------------------------------------

    def items(self, ctx) -> Iterator[int]:
        def walk(node: int) -> Iterator[int]:
            if not node:
                return
            yield from walk(self._left(ctx, node))
            yield self._key(ctx, node)
            yield from walk(self._right(ctx, node))

        yield from walk(self._root(ctx))


class RBTreeWorkload(Workload):
    """Insert/delete nodes in a red-black tree (Table IV)."""

    name = "rbtree"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.trees: List[Optional[PersistentRBTree]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.trees) <= tid:
            self.trees.append(None)
        tree = PersistentRBTree(self.heap, self.params.dataset.item_words)
        tree.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            tree.insert(ctx, key, self.value_words(rng, tree.value_words))
        self.trees[tid] = tree

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        tree = self.trees[tid]
        key = rng.randrange(1, self.params.key_space)
        if rng.random() < 0.6:
            values = self.value_words(rng, tree.value_words)

            def body(ctx):
                tree.insert(ctx, key, values)
        else:
            def body(ctx):
                tree.delete(ctx, key)

        return body
