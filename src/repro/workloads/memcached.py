"""Memcached-style LRU cache (WHISPER ``memcached`` equivalent).

A bounded hash-indexed cache with an intrusive doubly-linked LRU list.
``set`` inserts/updates an item and evicts the tail when the cache is at
capacity; ``get`` promotes the item to the LRU head.  The promotions are
pure pointer surgery on hot list heads — exactly the metadata-rewrite
pattern that gives memcached its high Figure 3 rewrite rate.

Item layout (``item_words``): ``[key, hash_next, lru_prev, lru_next,
value...]``.  Header block: ``[lru_head, lru_tail, count]``.
"""

from typing import Callable, Iterator, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentLruCache:
    """Bounded LRU cache in simulated NVMM."""

    def __init__(
        self,
        heap: PersistentHeap,
        item_words: int,
        capacity: int,
        n_buckets: int = 128,
    ) -> None:
        if item_words < 5:
            raise ValueError("cache items need at least 5 words")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 4
        self.capacity = capacity
        self.n_buckets = n_buckets
        self.buckets = heap.pmalloc(n_buckets * WORD_BYTES)
        self.header = heap.pmalloc(3 * WORD_BYTES)

    def create(self, ctx) -> None:
        for i in range(self.n_buckets):
            ctx.store(self.buckets + i * WORD_BYTES, 0)
        ctx.store_words(self.header, [0, 0, 0])

    # -- field helpers ----------------------------------------------------

    def _bucket(self, key: int) -> int:
        return self.buckets + (
            (key * 0x9E3779B97F4A7C15 >> 40) % self.n_buckets
        ) * WORD_BYTES

    def _key(self, ctx, node):
        return ctx.load(node)

    def _hash_next(self, ctx, node):
        return ctx.load(node + WORD_BYTES)

    def _prev(self, ctx, node):
        return ctx.load(node + 2 * WORD_BYTES)

    def _next(self, ctx, node):
        return ctx.load(node + 3 * WORD_BYTES)

    def value_addr(self, node: int, i: int = 0) -> int:
        return node + (4 + i) * WORD_BYTES

    def count(self, ctx) -> int:
        return ctx.load(self.header + 2 * WORD_BYTES)

    # -- LRU list surgery ---------------------------------------------------

    def _unlink_lru(self, ctx, node: int) -> None:
        prev, nxt = self._prev(ctx, node), self._next(ctx, node)
        if prev:
            ctx.store(prev + 3 * WORD_BYTES, nxt)
        else:
            ctx.store(self.header, nxt)
        if nxt:
            ctx.store(nxt + 2 * WORD_BYTES, prev)
        else:
            ctx.store(self.header + WORD_BYTES, prev)

    def _push_front(self, ctx, node: int) -> None:
        head = ctx.load(self.header)
        ctx.store(node + 2 * WORD_BYTES, 0)
        ctx.store(node + 3 * WORD_BYTES, head)
        if head:
            ctx.store(head + 2 * WORD_BYTES, node)
        else:
            ctx.store(self.header + WORD_BYTES, node)
        ctx.store(self.header, node)

    def _promote(self, ctx, node: int) -> None:
        if ctx.load(self.header) == node:
            return
        self._unlink_lru(ctx, node)
        self._push_front(ctx, node)

    # -- hash chain surgery ----------------------------------------------------

    def _hash_lookup(self, ctx, key: int) -> Optional[int]:
        node = ctx.load(self._bucket(key))
        while node:
            if self._key(ctx, node) == key:
                return node
            node = self._hash_next(ctx, node)
        return None

    def _hash_unlink(self, ctx, node: int) -> None:
        key = self._key(ctx, node)
        bucket = self._bucket(key)
        cursor = ctx.load(bucket)
        prev = None
        while cursor:
            if cursor == node:
                nxt = self._hash_next(ctx, cursor)
                if prev is None:
                    ctx.store(bucket, nxt)
                else:
                    ctx.store(prev + WORD_BYTES, nxt)
                return
            prev, cursor = cursor, self._hash_next(ctx, cursor)

    # -- public operations -------------------------------------------------------

    def get(self, ctx, key: int) -> Optional[List[int]]:
        node = self._hash_lookup(ctx, key)
        if node is None:
            return None
        self._promote(ctx, node)
        return [ctx.load(self.value_addr(node, i)) for i in range(self.value_words)]

    def set(self, ctx, key: int, values: List[int]) -> int:
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        node = self._hash_lookup(ctx, key)
        if node is not None:
            for i, value in enumerate(values):
                ctx.store(self.value_addr(node, i), value)
            self._promote(ctx, node)
            return node
        if self.count(ctx) >= self.capacity:
            self._evict_tail(ctx)
        node = self.heap.pmalloc(self.node_words * WORD_BYTES)
        ctx.store(node, key)
        bucket = self._bucket(key)
        ctx.store(node + WORD_BYTES, ctx.load(bucket))
        ctx.store(bucket, node)
        for i, value in enumerate(values):
            ctx.store(self.value_addr(node, i), value)
        self._push_front(ctx, node)
        ctx.store(self.header + 2 * WORD_BYTES, self.count(ctx) + 1)
        return node

    def _evict_tail(self, ctx) -> None:
        tail = ctx.load(self.header + WORD_BYTES)
        if not tail:
            return
        self._unlink_lru(ctx, tail)
        self._hash_unlink(ctx, tail)
        ctx.store(self.header + 2 * WORD_BYTES, self.count(ctx) - 1)
        self.heap.pfree(tail)

    def keys_lru_order(self, ctx) -> Iterator[int]:
        node = ctx.load(self.header)
        while node:
            yield self._key(ctx, node)
            node = self._next(ctx, node)


class MemcachedWorkload(Workload):
    """LRU cache gets/sets (WHISPER memcached equivalent)."""

    name = "memcached"
    GET_FRACTION = 0.7
    OPS_PER_TX = 6

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.caches: List[Optional[PersistentLruCache]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.caches) <= tid:
            self.caches.append(None)
        cache = PersistentLruCache(
            self.heap,
            self.params.dataset.item_words,
            capacity=max(self.params.initial_items, 2),
        )
        cache.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            cache.set(ctx, key, self.value_words(rng, cache.value_words))
        self.caches[tid] = cache

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        cache = self.caches[tid]
        ops = []
        for _ in range(self.OPS_PER_TX):
            key = rng.randrange(1, self.params.key_space)
            if rng.random() < self.GET_FRACTION:
                ops.append((key, None))
            else:
                ops.append((key, self.value_words(rng, cache.value_words)))

        def body(ctx):
            for key, values in ops:
                if values is None:
                    cache.get(ctx, key)
                else:
                    cache.set(ctx, key, values)

        return body
