"""Redis-style command mix (WHISPER ``redis`` equivalent).

A persistent dictionary plus a handful of list objects, driven by a mix
of the commands WHISPER's redis port issues: ``SET``/``GET``, ``INCR``
(counter bumps — one dirty byte most of the time, DLDC's best case),
``LPUSH``/``RPOP``.  Commands batch into transactions like redis
pipelines.
"""

from typing import Callable, List, Optional

from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload
from repro.workloads.hashmap import PersistentHashMap
from repro.workloads.queue import PersistentQueue

N_LISTS = 8


class RedisStore:
    """Dict + lists + counters in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int) -> None:
        self.map = PersistentHashMap(heap, item_words)
        self.lists = [PersistentQueue(heap, item_words) for _ in range(N_LISTS)]
        self.value_words = self.map.value_words

    def create(self, ctx) -> None:
        self.map.create(ctx)
        for lst in self.lists:
            lst.create(ctx)

    def set(self, ctx, key: int, values: List[int]) -> None:
        self.map.insert(ctx, key, values)

    def get(self, ctx, key: int) -> Optional[List[int]]:
        node = self.map.lookup(ctx, key)
        if node is None:
            return None
        return [
            ctx.load(self.map.value_addr(node, i))
            for i in range(self.value_words)
        ]

    def incr(self, ctx, key: int) -> int:
        """INCR: create-or-bump an integer value (first value word)."""
        node = self.map.lookup(ctx, key)
        if node is None:
            values = [1] + [0] * (self.value_words - 1)
            self.map.insert(ctx, key, values)
            return 1
        addr = self.map.value_addr(node, 0)
        value = ctx.load(addr) + 1
        ctx.store(addr, value)
        return value

    def lpush(self, ctx, list_id: int, values: List[int]) -> None:
        self.lists[list_id % N_LISTS].enqueue(ctx, values[: self.value_words + 1])

    def rpop(self, ctx, list_id: int) -> Optional[List[int]]:
        return self.lists[list_id % N_LISTS].dequeue(ctx)


class RedisWorkload(Workload):
    """SET/GET/INCR/LPUSH/RPOP command mix (WHISPER redis equivalent)."""

    name = "redis"
    OPS_PER_TX = 6
    # Command mix roughly mirroring a counter-heavy redis deployment.
    MIX = (("incr", 0.35), ("set", 0.25), ("get", 0.2), ("lpush", 0.1), ("rpop", 0.1))

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.stores: List[Optional[RedisStore]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.stores) <= tid:
            self.stores.append(None)
        store = RedisStore(self.heap, self.params.dataset.item_words)
        store.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            store.set(ctx, key, self.value_words(rng, store.value_words))
        self.stores[tid] = store

    def _pick_command(self, rng) -> str:
        roll = rng.random()
        acc = 0.0
        for name, weight in self.MIX:
            acc += weight
            if roll < acc:
                return name
        return self.MIX[-1][0]

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        store = self.stores[tid]
        # Counters live in a small hot keyspace, like real rate counters.
        ops = []
        for _ in range(self.OPS_PER_TX):
            command = self._pick_command(rng)
            if command == "incr":
                ops.append(("incr", rng.randrange(1, 64), None))
            elif command == "set":
                ops.append(
                    ("set", rng.randrange(1, self.params.key_space),
                     self.value_words(rng, store.value_words))
                )
            elif command == "get":
                ops.append(("get", rng.randrange(1, self.params.key_space), None))
            elif command == "lpush":
                ops.append(
                    ("lpush", rng.randrange(N_LISTS),
                     self.value_words(rng, store.lists[0].value_words))
                )
            else:
                ops.append(("rpop", rng.randrange(N_LISTS), None))

        def body(ctx):
            for command, arg, values in ops:
                if command == "incr":
                    store.incr(ctx, arg)
                elif command == "set":
                    store.set(ctx, arg, values)
                elif command == "get":
                    store.get(ctx, arg)
                elif command == "lpush":
                    store.lpush(ctx, arg, values)
                else:
                    store.rpop(ctx, arg)

        return body
