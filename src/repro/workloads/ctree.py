"""Persistent crit-bit tree (WHISPER's ``ctree``).

A binary trie over 64-bit keys: internal nodes test one bit, leaves hold
a key plus payload.  Node layout (``item_words``):

- internal: ``[1, crit_bit, left, right, pad...]``
- leaf:     ``[0, key, value...]``

Insert walks to the best leaf, finds the highest differing bit, and
splices an internal node; delete removes the leaf and splices its parent
out — both touch a short pointer chain, the pattern WHISPER's ctree
exhibits.
"""

from typing import Callable, Iterator, List, Optional, Tuple

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload

INTERNAL = 1
LEAF = 0


class PersistentCritBitTree:
    """Crit-bit trie in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int) -> None:
        if item_words < 4:
            raise ValueError("crit-bit nodes need at least 4 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 2
        self.root_ptr = heap.pmalloc(WORD_BYTES)

    def create(self, ctx) -> None:
        ctx.store(self.root_ptr, 0)

    # -- node accessors ---------------------------------------------------

    def _kind(self, ctx, node: int) -> int:
        return ctx.load(node)

    def _crit_bit(self, ctx, node: int) -> int:
        return ctx.load(node + WORD_BYTES)

    def _child(self, ctx, node: int, side: int) -> int:
        return ctx.load(node + (2 + side) * WORD_BYTES)

    def _set_child(self, ctx, node: int, side: int, child: int) -> None:
        ctx.store(node + (2 + side) * WORD_BYTES, child)

    def _leaf_key(self, ctx, node: int) -> int:
        return ctx.load(node + WORD_BYTES)

    def _alloc_leaf(self, ctx, key: int, values: List[int]) -> int:
        node = self.heap.pmalloc(self.node_words * WORD_BYTES)
        ctx.store(node, LEAF)
        ctx.store(node + WORD_BYTES, key)
        for i, value in enumerate(values):
            ctx.store(node + (2 + i) * WORD_BYTES, value)
        return node

    def _alloc_internal(self, ctx, crit_bit: int, left: int, right: int) -> int:
        node = self.heap.pmalloc(self.node_words * WORD_BYTES)
        ctx.store(node, INTERNAL)
        ctx.store(node + WORD_BYTES, crit_bit)
        self._set_child(ctx, node, 0, left)
        self._set_child(ctx, node, 1, right)
        return node

    @staticmethod
    def _direction(key: int, crit_bit: int) -> int:
        return (key >> crit_bit) & 1

    # -- operations ---------------------------------------------------------

    def _walk_to_leaf(self, ctx, key: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Returns (leaf, path) with path = [(internal node, side), ...]."""
        node = ctx.load(self.root_ptr)
        path: List[Tuple[int, int]] = []
        while node and self._kind(ctx, node) == INTERNAL:
            side = self._direction(key, self._crit_bit(ctx, node))
            path.append((node, side))
            node = self._child(ctx, node, side)
        return node, path

    def lookup(self, ctx, key: int) -> Optional[int]:
        leaf, _path = self._walk_to_leaf(ctx, key)
        if leaf and self._leaf_key(ctx, leaf) == key:
            return leaf
        return None

    def insert(self, ctx, key: int, values: List[int]) -> int:
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        leaf, _path = self._walk_to_leaf(ctx, key)
        if not leaf:
            fresh = self._alloc_leaf(ctx, key, values)
            ctx.store(self.root_ptr, fresh)
            return fresh
        existing = self._leaf_key(ctx, leaf)
        if existing == key:
            for i, value in enumerate(values):
                ctx.store(leaf + (2 + i) * WORD_BYTES, value)
            return leaf
        crit_bit = (existing ^ key).bit_length() - 1
        fresh = self._alloc_leaf(ctx, key, values)
        # Re-walk, stopping where the new critical bit belongs (crit-bit
        # invariant: bits decrease along any root-to-leaf path).
        node = ctx.load(self.root_ptr)
        parent, parent_side = 0, 0
        while (
            node
            and self._kind(ctx, node) == INTERNAL
            and self._crit_bit(ctx, node) > crit_bit
        ):
            parent = node
            parent_side = self._direction(key, self._crit_bit(ctx, node))
            node = self._child(ctx, node, parent_side)
        side = self._direction(key, crit_bit)
        children = [node, fresh] if side == 1 else [fresh, node]
        internal = self._alloc_internal(ctx, crit_bit, children[0], children[1])
        if parent:
            self._set_child(ctx, parent, parent_side, internal)
        else:
            ctx.store(self.root_ptr, internal)
        return fresh

    def delete(self, ctx, key: int) -> bool:
        leaf, path = self._walk_to_leaf(ctx, key)
        if not leaf or self._leaf_key(ctx, leaf) != key:
            return False
        if not path:
            ctx.store(self.root_ptr, 0)
        else:
            parent, side = path[-1]
            sibling = self._child(ctx, parent, 1 - side)
            if len(path) >= 2:
                grand, grand_side = path[-2]
                self._set_child(ctx, grand, grand_side, sibling)
            else:
                ctx.store(self.root_ptr, sibling)
            self.heap.pfree(parent)
        self.heap.pfree(leaf)
        return True

    def items(self, ctx) -> Iterator[int]:
        def walk(node: int) -> Iterator[int]:
            if not node:
                return
            if self._kind(ctx, node) == LEAF:
                yield self._leaf_key(ctx, node)
            else:
                yield from walk(self._child(ctx, node, 0))
                yield from walk(self._child(ctx, node, 1))

        yield from walk(ctx.load(self.root_ptr))


class CTreeWorkload(Workload):
    """Insert/delete in a crit-bit tree (WHISPER ctree equivalent)."""

    name = "ctree"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.trees: List[Optional[PersistentCritBitTree]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.trees) <= tid:
            self.trees.append(None)
        tree = PersistentCritBitTree(self.heap, self.params.dataset.item_words)
        tree.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            tree.insert(ctx, key, self.value_words(rng, tree.value_words))
        self.trees[tid] = tree

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        tree = self.trees[tid]
        key = rng.randrange(1, self.params.key_space)
        if rng.random() < 0.6:
            values = self.value_words(rng, tree.value_words)

            def body(ctx):
                tree.insert(ctx, key, values)
        else:
            def body(ctx):
                tree.delete(ctx, key)

        return body
