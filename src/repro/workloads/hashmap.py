"""Persistent chained hash table (micro-benchmark ``Hash``).

Layout: a bucket array of head pointers plus chained nodes.  Node layout
(``item_words`` words): ``[key, next, value...]``.  Transactions insert a
key (allocating or updating the node and rewriting its value words) or
delete one (unlinking and freeing the node).
"""

from typing import Callable, Iterator, List, Optional, Tuple

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentHashMap:
    """Chained hash map in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int, n_buckets: int = 256) -> None:
        if item_words < 3:
            raise ValueError("hash nodes need at least 3 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 2
        self.n_buckets = n_buckets
        self.buckets = heap.pmalloc(n_buckets * WORD_BYTES)

    def create(self, ctx) -> None:
        for i in range(self.n_buckets):
            ctx.store(self.buckets + i * WORD_BYTES, 0)

    def _bucket_addr(self, key: int) -> int:
        # Multiplicative hashing keeps buckets balanced for sequential keys.
        index = (key * 0x9E3779B97F4A7C15 >> 32) % self.n_buckets
        return self.buckets + index * WORD_BYTES

    # -- node fields ----------------------------------------------------

    def _key(self, ctx, node: int) -> int:
        return ctx.load(node)

    def _next(self, ctx, node: int) -> int:
        return ctx.load(node + WORD_BYTES)

    def _set_next(self, ctx, node: int, nxt: int) -> None:
        ctx.store(node + WORD_BYTES, nxt)

    def value_addr(self, node: int, i: int = 0) -> int:
        return node + (2 + i) * WORD_BYTES

    # -- operations -------------------------------------------------------

    def lookup(self, ctx, key: int) -> Optional[int]:
        """Return the node address for ``key``, or None."""
        node = ctx.load(self._bucket_addr(key))
        while node:
            if self._key(ctx, node) == key:
                return node
            node = self._next(ctx, node)
        return None

    def insert(self, ctx, key: int, values: List[int]) -> int:
        """Insert or update; returns the node address."""
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        node = self.lookup(ctx, key)
        if node is None:
            node = self.heap.pmalloc(self.node_words * WORD_BYTES)
            bucket = self._bucket_addr(key)
            head = ctx.load(bucket)
            ctx.store(node, key)
            self._set_next(ctx, node, head)
            ctx.store(bucket, node)
        for i, value in enumerate(values):
            ctx.store(self.value_addr(node, i), value)
        return node

    def delete(self, ctx, key: int) -> bool:
        bucket = self._bucket_addr(key)
        node = ctx.load(bucket)
        prev = None
        while node:
            if self._key(ctx, node) == key:
                nxt = self._next(ctx, node)
                if prev is None:
                    ctx.store(bucket, nxt)
                else:
                    self._set_next(ctx, prev, nxt)
                self.heap.pfree(node)
                return True
            prev, node = node, self._next(ctx, node)
        return False

    def items(self, ctx) -> Iterator[Tuple[int, List[int]]]:
        for i in range(self.n_buckets):
            node = ctx.load(self.buckets + i * WORD_BYTES)
            while node:
                values = [
                    ctx.load(self.value_addr(node, j))
                    for j in range(self.value_words)
                ]
                yield self._key(ctx, node), values
                node = self._next(ctx, node)


class HashMapWorkload(Workload):
    """Insert/delete entries in a hash table (Table IV)."""

    name = "hash"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.maps: List[Optional[PersistentHashMap]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.maps) <= tid:
            self.maps.append(None)
        table = PersistentHashMap(self.heap, self.params.dataset.item_words)
        table.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            key = rng.randrange(1, self.params.key_space)
            table.insert(ctx, key, self.value_words(rng, table.value_words))
        self.maps[tid] = table

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        table = self.maps[tid]
        key = rng.randrange(1, self.params.key_space)
        if rng.random() < 0.6:
            values = self.value_words(rng, table.value_words)

            def body(ctx):
                table.insert(ctx, key, values)
        else:
            def body(ctx):
                table.delete(ctx, key)

        return body
