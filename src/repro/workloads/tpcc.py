"""TPC-C new-order transactions (macro-benchmark ``TPCC``).

A per-thread warehouse with the tables the new-order transaction touches,
laid out as flat record arrays in NVMM (8-word records):

- ``district``: ``[next_o_id, tax, ytd, pad...]`` x N_DISTRICTS
- ``item``: ``[price, name_hash, data...]`` (read-only)
- ``stock``: ``[quantity, ytd, order_cnt, remote_cnt, data...]``
- ``customer``: ``[c_id, discount, balance, data...]`` (read-mostly)
- ``order`` / ``new_order`` / ``order_line``: per-district ring buffers
  the transaction appends to.

Each transaction follows the TPC-C new-order recipe: read the district and
bump ``next_o_id``, read the customer, insert the order header and
new-order record, and for 5-15 order lines read the item, update the stock
row and append an order line.
"""

from typing import Callable, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload

N_DISTRICTS = 8
RECORD_WORDS = 8
ORDER_CAPACITY = 1024  # per-district ring capacity (o_id wraps modulo this)
MIN_LINES, MAX_LINES = 5, 15


class TpccWarehouse:
    """One warehouse's worth of TPC-C state in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, n_items: int, n_customers: int) -> None:
        self.heap = heap
        self.n_items = n_items
        self.n_customers = n_customers
        record_bytes = RECORD_WORDS * WORD_BYTES
        self.district = heap.pmalloc(N_DISTRICTS * record_bytes)
        self.item = heap.pmalloc(n_items * record_bytes)
        self.stock = heap.pmalloc(n_items * record_bytes)
        self.customer = heap.pmalloc(n_customers * record_bytes)
        self.orders = heap.pmalloc(N_DISTRICTS * ORDER_CAPACITY * record_bytes)
        self.new_orders = heap.pmalloc(N_DISTRICTS * ORDER_CAPACITY * record_bytes)
        # Order lines: MAX_LINES records per order slot.
        self.order_lines = heap.pmalloc(
            N_DISTRICTS * ORDER_CAPACITY * MAX_LINES * record_bytes
        )

    # -- record addressing ----------------------------------------------

    @staticmethod
    def _record(base: int, index: int) -> int:
        return base + index * RECORD_WORDS * WORD_BYTES

    def district_rec(self, d: int) -> int:
        return self._record(self.district, d)

    def item_rec(self, i: int) -> int:
        return self._record(self.item, i)

    def stock_rec(self, i: int) -> int:
        return self._record(self.stock, i)

    def customer_rec(self, c: int) -> int:
        return self._record(self.customer, c)

    def order_rec(self, d: int, o_id: int) -> int:
        return self._record(self.orders, d * ORDER_CAPACITY + o_id % ORDER_CAPACITY)

    def new_order_rec(self, d: int, o_id: int) -> int:
        return self._record(self.new_orders, d * ORDER_CAPACITY + o_id % ORDER_CAPACITY)

    def order_line_rec(self, d: int, o_id: int, line: int) -> int:
        index = (d * ORDER_CAPACITY + o_id % ORDER_CAPACITY) * MAX_LINES + line
        return self._record(self.order_lines, index)

    # -- setup ------------------------------------------------------------

    def populate(self, ctx, rng) -> None:
        for d in range(N_DISTRICTS):
            ctx.store_words(
                self.district_rec(d), [1, rng.randrange(2000), 0, 0, 0, 0, 0, 0]
            )
        for i in range(self.n_items):
            price = rng.randrange(100, 10_000)
            ctx.store_words(
                self.item_rec(i),
                [price, hash(("item", i)) & 0xFFFF_FFFF, 0, 0, 0, 0, 0, 0],
            )
            ctx.store_words(
                self.stock_rec(i),
                [rng.randrange(10, 100), 0, 0, 0, 0, 0, 0, 0],
            )
        for c in range(self.n_customers):
            ctx.store_words(
                self.customer_rec(c),
                [c, rng.randrange(5000), 0, 0, 0, 0, 0, 0],
            )

    # -- the new-order transaction ------------------------------------------

    def new_order(self, ctx, rng) -> int:
        """Run one new-order transaction; returns the order id."""
        d = rng.randrange(N_DISTRICTS)
        district = self.district_rec(d)
        o_id = ctx.load(district)
        ctx.store(district, o_id + 1)
        d_tax = ctx.load(district + WORD_BYTES)

        c = rng.randrange(self.n_customers)
        customer = self.customer_rec(c)
        c_discount = ctx.load(customer + WORD_BYTES)

        ol_cnt = rng.randrange(MIN_LINES, MAX_LINES + 1)
        entry_d = o_id * 7 + d  # deterministic "timestamp"
        ctx.store_words(
            self.order_rec(d, o_id),
            [o_id, d, c, entry_d, ol_cnt, 0, 0, 0],
        )
        ctx.store_words(self.new_order_rec(d, o_id), [o_id, d, 1, 0, 0, 0, 0, 0])

        total = 0
        for line in range(ol_cnt):
            # TPC-C orders skew toward popular items, so one order often
            # touches the same stock row more than once — the intra-
            # transaction rewrites Figure 3 reports.
            if rng.random() < 0.5:
                i = rng.randrange(min(32, self.n_items))
            else:
                i = rng.randrange(self.n_items)
            price = ctx.load(self.item_rec(i))
            stock = self.stock_rec(i)
            quantity = ctx.load(stock)
            order_qty = rng.randrange(1, 11)
            new_quantity = quantity - order_qty
            if new_quantity < 10:
                new_quantity += 91
            ctx.store(stock, new_quantity)
            ctx.store(stock + WORD_BYTES, ctx.load(stock + WORD_BYTES) + order_qty)
            ctx.store(stock + 2 * WORD_BYTES, ctx.load(stock + 2 * WORD_BYTES) + 1)
            amount = order_qty * price
            total += amount
            ctx.store_words(
                self.order_line_rec(d, o_id, line),
                [o_id, line, i, order_qty, amount, d_tax, c_discount, 0],
            )
        return o_id


class TpccWorkload(Workload):
    """TPC-C new-order transactions (Table IV)."""

    name = "tpcc"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.warehouses: List[Optional[TpccWarehouse]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.warehouses) <= tid:
            self.warehouses.append(None)
        rng = self.rngs[tid]
        warehouse = TpccWarehouse(
            self.heap,
            n_items=max(self.params.key_space // 4, 64),
            n_customers=max(self.params.initial_items, 64),
        )
        warehouse.populate(ctx, rng)
        self.warehouses[tid] = warehouse

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        warehouse = self.warehouses[tid]

        def body(ctx):
            warehouse.new_order(ctx, rng)

        return body
