"""Workload infrastructure.

A workload is set up once (untimed, through :class:`SetupContext`) and
then produces one transaction body per call.  Threads operate on disjoint
shards of the structure — the paper relies on software isolation (fine-
grained locking) between conflicting transactions (section III-A); sharding
gives the same non-conflicting behaviour deterministically.

Dataset sizes: the paper runs every micro-benchmark with a *small* (64 B)
and *large* (4 KB) dataset item (section VI-A); the item size sets the
node/entry layout of each structure.
"""

import enum
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap


class DatasetSize(enum.Enum):
    SMALL = 64        # bytes per item
    LARGE = 4096

    @property
    def item_words(self) -> int:
        return self.value // WORD_BYTES


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs shared by all workloads."""

    dataset: DatasetSize = DatasetSize.SMALL
    # Items preloaded per thread shard during setup.
    initial_items: int = 512
    # Key space per shard (micro-benchmarks pick uniform random keys in
    # it, like the paper's "data structures with random keys").
    key_space: int = 4096
    seed: int = 1234
    # Fraction of value words that are zero / small / random — shapes the
    # clean-byte and compressibility behaviour like real application data.
    zero_fraction: float = 0.45
    small_fraction: float = 0.35

    def scaled_for_large(self) -> "WorkloadParams":
        """Shrink item counts when items are 4 KB so setup stays sane."""
        if self.dataset is DatasetSize.SMALL:
            return self
        return replace(
            self,
            initial_items=max(self.initial_items // 8, 16),
            key_space=max(self.key_space // 8, 64),
        )


class SetupContext:
    """Same load/store interface as TxContext, but untimed and unlogged."""

    def __init__(self, system) -> None:
        self._system = system

    def load(self, addr: int) -> int:
        return self._system.setup_load(addr)

    def store(self, addr: int, value: int) -> None:
        self._system.setup_store(addr, value)

    def load_words(self, addr: int, count: int) -> List[int]:
        return [self.load(addr + i * WORD_BYTES) for i in range(count)]

    def store_words(self, addr: int, values) -> None:
        for i, value in enumerate(values):
            self.store(addr + i * WORD_BYTES, value)

    def fill(self, addr: int, count: int, value: int = 0) -> None:
        for i in range(count):
            self.store(addr + i * WORD_BYTES, value)

    def compute(self, cycles: int) -> None:
        """No-op during setup (matches TxContext's interface)."""


class Workload:
    """Base class: one persistent structure shard per thread."""

    name = "abstract"

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        self.params = (params or WorkloadParams()).scaled_for_large()
        self.heap: Optional[PersistentHeap] = None
        self.rngs: List[random.Random] = []
        self.n_threads = 0

    # -- subclass API ---------------------------------------------------

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        raise NotImplementedError

    def transaction(self, tid: int) -> Callable:
        """Return the next transaction body for thread ``tid``."""
        raise NotImplementedError

    # -- plumbing ---------------------------------------------------------

    def setup(
        self,
        system,
        n_threads: int,
        heap_base: Optional[int] = None,
        heap_size: Optional[int] = None,
    ) -> None:
        """Build the persistent structure (untimed).

        ``heap_base``/``heap_size`` carve this workload's heap out of a
        sub-range of NVMM instead of the whole device — the mixture
        provider (:mod:`repro.workloads.mixture`) gives each component
        its own disjoint slice so their allocators cannot collide.
        """
        self.n_threads = n_threads
        self.rngs = [
            random.Random(self.params.seed * 1_000_003 + tid) for tid in range(n_threads)
        ]
        if heap_base is None:
            heap_base = system.config.nvmm_base
        if heap_size is None:
            heap_size = system.config.nvm.size_bytes - (
                heap_base - system.config.nvmm_base)
        self.heap = PersistentHeap(heap_base, heap_size)
        ctx = SetupContext(system)
        for tid in range(n_threads):
            self.setup_shard(ctx, tid)

    # -- value generation -------------------------------------------------

    def value_word(self, rng: random.Random) -> int:
        """One payload word with realistic entropy.

        Real application payloads are a mix of zeros, small integers and
        high-entropy data; the mix drives the clean-byte ratio (Figure 5)
        and DLDC/FPC compressibility (Table II).
        """
        roll = rng.random()
        if roll < self.params.zero_fraction:
            return 0
        if roll < self.params.zero_fraction + self.params.small_fraction:
            return rng.randrange(1 << 16)
        return rng.getrandbits(64)

    def value_words(self, rng: random.Random, count: int) -> List[int]:
        return [self.value_word(rng) for _ in range(count)]

    # -- recording ---------------------------------------------------------

    def trace_provenance(self) -> Dict[str, object]:
        """Identity stamped into a recorded trace's metadata.

        The recorder (:mod:`repro.replay.recorder`) writes this into the
        trace header, so a replayed cell can state — and the cache key
        can hash — which workload and parameters produced the stream.
        """
        return {
            "workload": self.name,
            "dataset": self.params.dataset.name,
            "initial_items": self.params.initial_items,
            "key_space": self.params.key_space,
            "seed": self.params.seed,
            "zero_fraction": self.params.zero_fraction,
            "small_fraction": self.params.small_fraction,
        }


# Registries used by the experiment harness.
MICRO_WORKLOADS = ("btree", "hash", "queue", "rbtree", "sdg", "sps")
MACRO_WORKLOADS = ("echo", "ycsb", "tpcc")
# The additional WHISPER applications the paper's motivation figures use.
MOTIVATION_EXTRAS = ("vacation", "ctree", "redis", "memcached")


def make_workload(name: str, params: Optional[WorkloadParams] = None) -> Workload:
    """Build a workload by its Table IV name."""
    from repro.workloads.btree import BTreeWorkload
    from repro.workloads.ctree import CTreeWorkload
    from repro.workloads.echo import EchoWorkload
    from repro.workloads.hashmap import HashMapWorkload
    from repro.workloads.memcached import MemcachedWorkload
    from repro.workloads.queue import QueueWorkload
    from repro.workloads.rbtree import RBTreeWorkload
    from repro.workloads.redis import RedisWorkload
    from repro.workloads.sdg import SdgWorkload
    from repro.workloads.sps import SpsWorkload
    from repro.workloads.mixture import MixtureWorkload
    from repro.workloads.tpcc import TpccWorkload
    from repro.workloads.vacation import VacationWorkload
    from repro.workloads.ycsb import YcsbWorkload

    classes: Dict[str, type] = {
        "btree": BTreeWorkload,
        "ctree": CTreeWorkload,
        "hash": HashMapWorkload,
        "memcached": MemcachedWorkload,
        "queue": QueueWorkload,
        "rbtree": RBTreeWorkload,
        "redis": RedisWorkload,
        "sdg": SdgWorkload,
        "sps": SpsWorkload,
        "echo": EchoWorkload,
        "vacation": VacationWorkload,
        "ycsb": YcsbWorkload,
        "tpcc": TpccWorkload,
        "mix": MixtureWorkload,
    }
    if name not in classes:
        raise ValueError("unknown workload %r (choose from %s)" % (
            name, sorted(classes)))
    return classes[name](params)
