"""Mixed workload blends — the traffic engine's multi-tenant payload.

A :class:`MixtureWorkload` composes several registered workloads (e.g.
70 % YCSB + 20 % TPC-C new-order + 10 % Echo) behind the standard
:class:`~repro.workloads.base.Workload` interface, so it drops into the
closed-loop ``System.run`` unchanged while also exposing the
per-component entry point (:meth:`MixtureWorkload.component_transaction`)
the open-loop traffic engine (:mod:`repro.traffic`) uses to route each
tenant to its blend component.

Each component gets a disjoint slice of the NVMM heap (via the
``heap_base``/``heap_size`` setup override) so their allocators cannot
collide, and a derived seed so blends stay deterministic while the
components' streams remain independent.
"""

import random
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.workloads.base import Workload, WorkloadParams

#: The blend named in the roadmap: 70 % YCSB + 20 % TPC-C + 10 % Echo.
DEFAULT_BLEND: Tuple[Tuple[str, float], ...] = (
    ("ycsb", 0.7),
    ("tpcc", 0.2),
    ("echo", 0.1),
)

#: Heap slices are aligned down to this many bytes.
_SLICE_ALIGN = 4096


def normalize_blend(blend) -> Tuple[Tuple[str, float], ...]:
    """Canonicalize a blend: positive weights, normalized to sum 1."""
    items = tuple((str(name), float(weight)) for name, weight in blend)
    if not items:
        raise ValueError("blend must name at least one workload")
    for name, weight in items:
        if name == "mix":
            raise ValueError("blend cannot nest another mixture")
        if not weight > 0:
            raise ValueError(
                "blend weight for %r must be positive, got %r" % (name, weight))
    total = sum(weight for _, weight in items)
    return tuple((name, weight / total) for name, weight in items)


def parse_blend(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse ``"ycsb:0.7,tpcc:0.2,echo:0.1"`` into a normalized blend."""
    items: List[Tuple[str, float]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise ValueError(
                "blend component %r must look like name:weight" % part)
        name, weight_text = part.split(":", 1)
        try:
            weight = float(weight_text)
        except ValueError:
            raise ValueError(
                "blend weight %r for %r is not a number" % (weight_text, name))
        items.append((name.strip(), weight))
    return normalize_blend(items)


def blend_slug(blend) -> str:
    """Stable short name for a blend (used in benchmark identifiers)."""
    return "+".join(
        "%s%d" % (name, round(weight * 100)) for name, weight in blend)


class MixtureWorkload(Workload):
    """Weighted blend of registered workloads over disjoint heap slices."""

    name = "mix"

    def __init__(self, params: Optional[WorkloadParams] = None,
                 blend=None) -> None:
        raw = params or WorkloadParams()
        super().__init__(params)
        self.blend = normalize_blend(blend if blend is not None else DEFAULT_BLEND)
        # Derived seeds keep component streams independent: two blend
        # positions never share an rng even when they name the same
        # workload.  Built from the *unscaled* params so the component's
        # own scaled_for_large() applies exactly once.
        from repro.workloads.base import make_workload

        self.components: List[Workload] = [
            make_workload(name, replace(raw, seed=raw.seed + 7919 * (i + 1)))
            for i, (name, _weight) in enumerate(self.blend)
        ]
        cum = 0.0
        self._cumulative: List[float] = []
        for _, weight in self.blend:
            cum += weight
            self._cumulative.append(cum)
        self._cumulative[-1] = 1.0

    def setup(self, system, n_threads: int,
              heap_base: Optional[int] = None,
              heap_size: Optional[int] = None) -> None:
        self.n_threads = n_threads
        # Mixing rngs (one per thread) pick which component serves each
        # closed-loop transaction() call.
        self.rngs = [
            random.Random(self.params.seed * 1_000_003 + tid)
            for tid in range(n_threads)
        ]
        if heap_base is None:
            heap_base = system.config.nvmm_base
        if heap_size is None:
            heap_size = system.config.nvm.size_bytes - (
                heap_base - system.config.nvmm_base)
        slice_bytes = (heap_size // len(self.components)) & ~(_SLICE_ALIGN - 1)
        if slice_bytes <= 0:
            raise ValueError(
                "heap of %d bytes cannot be sliced %d ways" % (
                    heap_size, len(self.components)))
        for index, component in enumerate(self.components):
            component.setup(
                system,
                n_threads,
                heap_base=heap_base + index * slice_bytes,
                heap_size=slice_bytes,
            )

    def component_index(self, rng: random.Random) -> int:
        """Draw a component by blend weight."""
        roll = rng.random()
        for index, threshold in enumerate(self._cumulative):
            if roll < threshold:
                return index
        return len(self._cumulative) - 1

    def component_transaction(self, index: int, tid: int) -> Callable:
        """Next transaction body from blend component ``index``."""
        return self.components[index].transaction(tid)

    def transaction(self, tid: int) -> Callable:
        return self.component_transaction(
            self.component_index(self.rngs[tid]), tid)

    def trace_provenance(self) -> Dict[str, object]:
        provenance = super().trace_provenance()
        provenance["blend"] = [[name, weight] for name, weight in self.blend]
        return provenance
