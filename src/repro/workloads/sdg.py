"""Persistent scalable directed graph (micro-benchmark ``SDG``).

A vertex table of adjacency-list heads plus edge nodes ``[dest, next,
weight/value...]``.  Transactions insert or delete a random edge, walking
the source vertex's adjacency list — the access pattern of the scalable
graph benchmark used by DHTM/ATOM/FWB.
"""

from typing import Callable, Iterator, List, Optional, Tuple

from repro.common.bitops import WORD_BYTES
from repro.heap.allocator import PersistentHeap
from repro.workloads.base import SetupContext, Workload


class PersistentGraph:
    """Directed graph with adjacency lists in simulated NVMM."""

    def __init__(self, heap: PersistentHeap, item_words: int, n_vertices: int = 256) -> None:
        if item_words < 3:
            raise ValueError("edge nodes need at least 3 words")
        self.heap = heap
        self.node_words = item_words
        self.value_words = item_words - 2
        self.n_vertices = n_vertices
        self.vertices = heap.pmalloc(n_vertices * WORD_BYTES)

    def create(self, ctx) -> None:
        for i in range(self.n_vertices):
            ctx.store(self.vertices + i * WORD_BYTES, 0)

    def _head_addr(self, src: int) -> int:
        return self.vertices + (src % self.n_vertices) * WORD_BYTES

    def insert_edge(self, ctx, src: int, dst: int, values: List[int]) -> int:
        """Add (or refresh) the edge src -> dst; returns the edge node."""
        if len(values) != self.value_words:
            raise ValueError("expected %d value words" % self.value_words)
        head_addr = self._head_addr(src)
        node = ctx.load(head_addr)
        while node:
            if ctx.load(node) == dst:
                break
            node = ctx.load(node + WORD_BYTES)
        if not node:
            node = self.heap.pmalloc(self.node_words * WORD_BYTES)
            ctx.store(node, dst)
            ctx.store(node + WORD_BYTES, ctx.load(head_addr))
            ctx.store(head_addr, node)
        for i, value in enumerate(values):
            ctx.store(node + (2 + i) * WORD_BYTES, value)
        return node

    def delete_edge(self, ctx, src: int, dst: int) -> bool:
        head_addr = self._head_addr(src)
        node = ctx.load(head_addr)
        prev = None
        while node:
            if ctx.load(node) == dst:
                nxt = ctx.load(node + WORD_BYTES)
                if prev is None:
                    ctx.store(head_addr, nxt)
                else:
                    ctx.store(prev + WORD_BYTES, nxt)
                self.heap.pfree(node)
                return True
            prev, node = node, ctx.load(node + WORD_BYTES)
        return False

    def has_edge(self, ctx, src: int, dst: int) -> bool:
        node = ctx.load(self._head_addr(src))
        while node:
            if ctx.load(node) == dst:
                return True
            node = ctx.load(node + WORD_BYTES)
        return False

    def edges(self, ctx) -> Iterator[Tuple[int, int]]:
        for src in range(self.n_vertices):
            node = ctx.load(self.vertices + src * WORD_BYTES)
            while node:
                yield src, ctx.load(node)
                node = ctx.load(node + WORD_BYTES)


class SdgWorkload(Workload):
    """Insert/delete edges in a scalable graph (Table IV)."""

    name = "sdg"

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.graphs: List[Optional[PersistentGraph]] = []

    def setup_shard(self, ctx: SetupContext, tid: int) -> None:
        while len(self.graphs) <= tid:
            self.graphs.append(None)
        n_vertices = max(self.params.initial_items // 8, 16)
        graph = PersistentGraph(
            self.heap, self.params.dataset.item_words, n_vertices
        )
        graph.create(ctx)
        rng = self.rngs[tid]
        for _ in range(self.params.initial_items):
            src = rng.randrange(n_vertices)
            dst = rng.randrange(n_vertices)
            graph.insert_edge(ctx, src, dst, self.value_words(rng, graph.value_words))
        self.graphs[tid] = graph

    def transaction(self, tid: int) -> Callable:
        rng = self.rngs[tid]
        graph = self.graphs[tid]
        src = rng.randrange(graph.n_vertices)
        dst = rng.randrange(graph.n_vertices)
        if rng.random() < 0.6:
            values = self.value_words(rng, graph.value_words)

            def body(ctx):
                graph.insert_edge(ctx, src, dst, values)
        else:
            def body(ctx):
                graph.delete_edge(ctx, src, dst)

        return body
