"""Three-level cache hierarchy with eviction callbacks for the loggers.

Private L1 and L2 per core and a shared L3, managed (mostly) exclusively:
a line lives in L1 while hot, slides to L2 then L3 on eviction, and is
written back to memory when it leaves L3 dirty.  A minimal directory moves
a line between cores on conflicting accesses (write-invalidate), which is
all the coherence the paper's per-thread-dominated workloads need.

The hardware loggers observe the hierarchy through :class:`CacheListener`:

- ``on_l1_evict`` fires before a line (with its per-word log state) leaves
  an L1 — MorLog uses it to create redo entries for ULog words
  (section III-B) and to flush pending undo+redo entries (ordering).
- ``on_llc_write_back`` fires when in-place data reach NVMM — MorLog uses
  it to discard now-unnecessary redo buffer entries.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.cache import SetAssocCache
from repro.cache.cacheline import CacheLine
from repro.common.bitops import WORD_BYTES
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.memory.controller import MemoryController


class CacheListener:
    """Callbacks the hardware loggers register with the hierarchy."""

    def on_l1_evict(self, core: int, line: CacheLine, now_ns: float) -> float:
        """Line is about to leave an L1 (eviction or invalidation).

        Returns the time after any log activity this triggers.
        """
        return now_ns

    def before_llc_write_back(self, line_addr: int, now_ns: float) -> float:
        """A line is about to be written to memory.

        This is where write-ahead ordering is enforced: any still-buffered
        undo data covering the line must be persisted first.  Returns the
        time after that log activity.
        """
        return now_ns

    def on_data_persisted(self, line_addr: int, now_ns: float) -> None:
        """A line's in-place data reached the persistence domain."""

    def divert_write_back(self, line: "CacheLine", now_ns: float) -> bool:
        """Claim a write-back instead of letting it reach NVMM.

        Redo-only logging designs must not update in-place data while a
        transaction is in flight; returning True here means the listener
        staged the line elsewhere (e.g. a DRAM cache, as ReDU does) and
        the hierarchy skips the memory write.
        """
        return False


class CacheHierarchy:
    """L1/L2 per core, shared L3, eviction plumbing and FWB scans."""

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        stats: Optional[StatGroup] = None,
        listener: Optional[CacheListener] = None,
    ) -> None:
        self.config = config
        self.controller = controller
        self.stats = stats if stats is not None else StatGroup("caches")
        self.listener = listener if listener is not None else CacheListener()
        n = config.cores.n_cores
        self.l1s = [SetAssocCache("l1.%d" % c, config.caches.l1, self.stats) for c in range(n)]
        self.l2s = [SetAssocCache("l2.%d" % c, config.caches.l2, self.stats) for c in range(n)]
        self.l3 = SetAssocCache("l3", config.caches.l3, self.stats)
        # line base address -> core whose private caches hold it
        self._owner: Dict[int, int] = {}
        self._ns_per_cycle = config.cores.ns_per_cycle

    # ------------------------------------------------------------------
    # Eviction plumbing
    # ------------------------------------------------------------------

    def _write_back(self, line: CacheLine, now_ns: float) -> float:
        """Write a dirty line to memory; returns producer-visible time."""
        if self.listener.divert_write_back(line, now_ns):
            self.stats.add("diverted_write_backs")
            return now_ns
        now_ns = self.listener.before_llc_write_back(line.base_addr, now_ns)
        done = self.controller.write_line(line.base_addr, line.words, now_ns)
        self.listener.on_data_persisted(line.base_addr, now_ns)
        self.stats.add("memory_write_backs")
        return done

    def _insert_l3(self, line: CacheLine, now_ns: float) -> float:
        victim = self.l3.insert(line)
        if victim is not None and victim.dirty:
            return self._write_back(victim, now_ns)
        return now_ns

    def _insert_l2(self, core: int, line: CacheLine, now_ns: float) -> float:
        victim = self.l2s[core].insert(line)
        if victim is not None:
            # Exclusive hierarchy: every L2 victim slides into L3.
            self._owner.pop(victim.base_addr, None)
            now_ns = self._insert_l3(victim, now_ns)
        return now_ns

    def _insert_l1(self, core: int, line: CacheLine, now_ns: float) -> float:
        victim = self.l1s[core].insert(line)
        if victim is not None:
            now_ns = self.listener.on_l1_evict(core, victim, now_ns)
            victim.clear_log_state()
            now_ns = self._insert_l2(core, victim, now_ns)
        self._owner[line.base_addr] = core
        return now_ns

    def _remove_from_private(self, core: int, base: int) -> Optional[CacheLine]:
        line = self.l1s[core].remove(base)
        if line is None:
            line = self.l2s[core].remove(base)
        if line is not None:
            self._owner.pop(base, None)
        return line

    def _steal_from_owner(self, requester: int, base: int, now_ns: float) -> Tuple[Optional[CacheLine], float]:
        """Pull the line out of another core's private caches."""
        owner = self._owner.get(base)
        if owner is None or owner == requester:
            return None, now_ns
        line = self.l1s[owner].lookup(base, touch=False)
        if line is not None:
            now_ns = self.listener.on_l1_evict(owner, line, now_ns)
            line.clear_log_state()
        line = self._remove_from_private(owner, base)
        self.stats.add("coherence_transfers")
        return line, now_ns

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, core: int, addr: int, now_ns: float, is_store: bool) -> Tuple[CacheLine, float]:
        """Bring the line holding ``addr`` into ``core``'s L1.

        Returns the resident line and the core-visible completion time.
        The caller mutates the line for stores; the per-word log state is
        the loggers' business.
        """
        cfg = self.config.caches
        base = self.l1s[core].line_base(addr)
        line = self.l1s[core].lookup(base)
        if line is not None:
            self.stats.add("l1_hits")
            # Stores retire through the store buffer on an L1 hit.
            cycles = (
                self.config.cores.store_hit_cycles
                if is_store
                else cfg.l1.latency_cycles
            )
            return line, now_ns + cycles * self._ns_per_cycle
        lat = cfg.l1.latency_cycles * self._ns_per_cycle

        lat += cfg.l2.latency_cycles * self._ns_per_cycle
        line = self.l2s[core].remove(base)
        if line is not None:
            self.stats.add("l2_hits")
            done = self._insert_l1(core, line, now_ns + lat)
            return line, max(now_ns + lat, done)

        # Another core may hold it; coherence transfer costs an L3 round.
        lat += cfg.l3.latency_cycles * self._ns_per_cycle
        line, now_after = self._steal_from_owner(core, base, now_ns)
        if line is not None:
            done = self._insert_l1(core, line, max(now_ns + lat, now_after))
            return line, max(now_ns + lat, done)

        line = self.l3.remove(base)
        if line is not None:
            self.stats.add("l3_hits")
            done = self._insert_l1(core, line, now_ns + lat)
            return line, max(now_ns + lat, done)

        # Memory fill.
        self.stats.add("misses")
        words, finish = self.controller.read_line(base, now_ns + lat)
        line = CacheLine(base, list(words))
        done = self._insert_l1(core, line, finish)
        return line, max(finish, done)

    # ------------------------------------------------------------------
    # Whole-cache operations
    # ------------------------------------------------------------------

    def coherent_word(self, addr: int) -> int:
        """Read the newest value of a word, wherever it lives (for tests)."""
        base = addr - (addr % self.config.caches.line_bytes)
        index = (addr % self.config.caches.line_bytes) // WORD_BYTES
        owner = self._owner.get(base)
        if owner is not None:
            for cache in (self.l1s[owner], self.l2s[owner]):
                line = cache.lookup(base, touch=False)
                if line is not None:
                    return line.word(index)
        line = self.l3.lookup(base, touch=False)
        if line is not None:
            return line.word(index)
        if self.controller.is_persistent(addr):
            return self.controller.nvm.array.read_logical(addr)
        return self.controller.dram.read_word(addr)

    def write_back_line(self, addr: int, now_ns: float) -> float:
        """Write one line back to memory if dirty, keeping it resident
        (``clwb`` semantics — what undo-only commit forces per line)."""
        base = addr - (addr % self.config.caches.line_bytes)
        owner = self._owner.get(base)
        caches = []
        if owner is not None:
            caches = [self.l1s[owner], self.l2s[owner]]
        caches.append(self.l3)
        for cache in caches:
            line = cache.lookup(base, touch=False)
            if line is not None:
                if line.dirty:
                    now_ns = max(now_ns, self._write_back(line, now_ns))
                    line.dirty = False
                return now_ns
        return now_ns

    def flush_line(self, addr: int, now_ns: float) -> float:
        """Evict one line from every level, writing it back if dirty.

        Non-temporal stores use this to keep a line coherent before they
        bypass the caches (section III-F).
        """
        base = addr - (addr % self.config.caches.line_bytes)
        owner = self._owner.get(base)
        if owner is not None:
            line = self.l1s[owner].lookup(base, touch=False)
            if line is not None:
                now_ns = self.listener.on_l1_evict(owner, line, now_ns)
                line.clear_log_state()
            line = self._remove_from_private(owner, base)
            if line is not None and line.dirty:
                now_ns = max(now_ns, self._write_back(line, now_ns))
        line = self.l3.remove(base)
        if line is not None and line.dirty:
            now_ns = max(now_ns, self._write_back(line, now_ns))
        return now_ns

    def force_write_back_scan(self, now_ns: float) -> float:
        """One force-write-back pass (section III-F, first option).

        Dirty lines seen for the first time get their flag bit set; lines
        whose flag is already set are written back (without invalidation,
        like ``clwb``) and cleaned.
        """
        caches: List[SetAssocCache] = list(self.l1s) + list(self.l2s) + [self.l3]
        for cache in caches:
            for line in cache.iter_lines():
                if not line.dirty:
                    continue
                if not line.fwb_flag:
                    line.fwb_flag = True
                    continue
                now_ns = max(now_ns, self._write_back(line, now_ns))
                line.dirty = False
                line.fwb_flag = False
        self.stats.add("fwb_scans")
        return now_ns

    def drain_all(self, now_ns: float) -> float:
        """Write back every dirty line (end-of-run accounting, tests)."""
        for core in range(len(self.l1s)):
            for line in list(self.l1s[core].iter_lines()):
                now_ns = self.listener.on_l1_evict(core, line, now_ns)
                line.clear_log_state()
                if line.dirty:
                    now_ns = max(now_ns, self._write_back(line, now_ns))
                    line.dirty = False
        for cache in list(self.l2s) + [self.l3]:
            for line in cache.iter_lines():
                if line.dirty:
                    now_ns = max(now_ns, self._write_back(line, now_ns))
                    line.dirty = False
        return now_ns
