"""A set-associative, write-back, LRU cache."""

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from repro.cache.cacheline import CacheLine
from repro.common.config import CacheLevelConfig
from repro.common.stats import StatGroup


class SetAssocCache:
    """Set-associative cache of :class:`CacheLine` objects.

    Each set is an OrderedDict from line base address to line, ordered
    least- to most-recently used; Python's dict move-to-end gives O(1) LRU.
    """

    def __init__(self, name: str, config: CacheLevelConfig, stats: Optional[StatGroup] = None) -> None:
        self.name = name
        self.config = config
        self.stats = stats if stats is not None else StatGroup(name)
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(config.n_sets)
        ]

    def _set_index(self, base_addr: int) -> int:
        return (base_addr // self.config.line_bytes) % self.config.n_sets

    def line_base(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Find the line containing ``addr``; refresh LRU on hit."""
        base = self.line_base(addr)
        bucket = self._sets[self._set_index(base)]
        line = bucket.get(base)
        if line is not None and touch:
            bucket.move_to_end(base)
        return line

    def insert(self, line: CacheLine) -> Optional[CacheLine]:
        """Insert a line; returns the evicted victim, if any."""
        base = line.base_addr
        if base % self.config.line_bytes:
            raise ValueError("line base address must be line-aligned")
        bucket = self._sets[self._set_index(base)]
        victim = None
        if base not in bucket and len(bucket) >= self.config.assoc:
            _victim_base, victim = bucket.popitem(last=False)
            self.stats.add("evictions")
        bucket[base] = line
        bucket.move_to_end(base)
        return victim

    def remove(self, addr: int) -> Optional[CacheLine]:
        """Remove (invalidate) the line containing ``addr``."""
        base = self.line_base(addr)
        return self._sets[self._set_index(base)].pop(base, None)

    def iter_lines(self) -> Iterator[CacheLine]:
        for bucket in self._sets:
            yield from bucket.values()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
