"""Cache lines and the per-word log state machine (paper Figure 8).

Each L1 line is extended with an 8-bit TID, a 16-bit TxID, a 16-bit log
state flag (2 bits per 64-bit word) and — for SLDE — an 8-bit dirty flag
per word (one bit per byte).  The states:

- ``CLEAN``: the word has not been updated by a transaction.
- ``DIRTY``: updated by an in-flight transaction; its undo+redo entry is
  still in the undo+redo buffer.
- ``URLOG``: the undo+redo entry has been persisted.
- ``ULOG``: the oldest undo data are persisted but the newest redo data are
  buffered *in place* in this line and not yet logged.
"""

import enum
from typing import List, Optional

from repro.common.bitops import WORDS_PER_LINE, mask_word


class LogState(enum.Enum):
    CLEAN = 0
    DIRTY = 1
    URLOG = 2
    ULOG = 3


class CacheLine:
    """One 64-byte line; logical words plus MorLog L1 extensions."""

    __slots__ = (
        "base_addr",
        "words",
        "dirty",
        "tid",
        "txid",
        "word_states",
        "word_dirty_flags",
        "fwb_flag",
    )

    def __init__(self, base_addr: int, words: Optional[List[int]] = None) -> None:
        self.base_addr = base_addr
        self.words: List[int] = list(words) if words is not None else [0] * WORDS_PER_LINE
        if len(self.words) != WORDS_PER_LINE:
            raise ValueError("a line holds exactly 8 words")
        self.dirty = False
        self.tid: Optional[int] = None
        self.txid: Optional[int] = None
        self.word_states: List[LogState] = [LogState.CLEAN] * WORDS_PER_LINE
        # Accumulated per-byte dirtiness of each word relative to the value
        # the last log entry captured (section IV-A).
        self.word_dirty_flags: List[int] = [0] * WORDS_PER_LINE
        # Force-write-back scan flag (section III-F, first log-management
        # option).
        self.fwb_flag = False

    def word(self, index: int) -> int:
        return self.words[index]

    def set_word(self, index: int, value: int) -> None:
        self.words[index] = mask_word(value)
        self.dirty = True

    def state(self, index: int) -> LogState:
        return self.word_states[index]

    def set_state(self, index: int, state: LogState) -> None:
        self.word_states[index] = state

    def clear_log_state(self) -> None:
        """Reset all logging extensions (on fill or after commit cleanup)."""
        self.tid = None
        self.txid = None
        self.word_states = [LogState.CLEAN] * WORDS_PER_LINE
        self.word_dirty_flags = [0] * WORDS_PER_LINE

    def words_in_state(self, state: LogState) -> List[int]:
        return [i for i, s in enumerate(self.word_states) if s is state]

    def has_log_state(self) -> bool:
        return any(s is not LogState.CLEAN for s in self.word_states)

    def __repr__(self) -> str:
        return "CacheLine(%#x, dirty=%s, tx=%s)" % (
            self.base_addr,
            self.dirty,
            self.txid,
        )
