"""Cache hierarchy with MorLog's L1 extensions.

- :mod:`repro.cache.cacheline` — cache lines carrying the paper's L1
  extensions: per-word 2-bit log state (Figure 8), per-word dirty flag
  (section IV-A), TID/TxID, and the force-write-back flag bit.
- :mod:`repro.cache.cache` — a set-associative write-back cache with LRU
  replacement.
- :mod:`repro.cache.hierarchy` — private L1/L2 per core, shared L3, a
  minimal invalidation directory, and the force-write-back scanner
  (section III-F).
"""

from repro.cache.cacheline import CacheLine, LogState
from repro.cache.cache import SetAssocCache
from repro.cache.hierarchy import CacheHierarchy, CacheListener

__all__ = [
    "CacheLine",
    "LogState",
    "SetAssocCache",
    "CacheHierarchy",
    "CacheListener",
]
