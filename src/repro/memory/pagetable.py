"""Durable page-table state for the copy-on-write paging design.

The *NVMM cache design: Logging vs. Paging* line of work persists updates
by copying each touched page to a shadow frame and atomically flipping a
mapping at commit.  On our substrate the value oracle reads *home*
addresses, so the model is undo-style shadow paging: the shadow frame
keeps the pre-transaction image, home pages update in place, and the
commit record is the atomic "flip" that retires the shadow.  Recovery
copies live shadows back over the home pages of uncommitted
transactions.

Durable layout (all above the central log region):

- control line at ``aux_base``: word 0 holds the *watermark* W — every
  page-table entry with slot index below W is retired;
- PTE slots from ``aux_base + 64``, one 64-byte line each: word 0 is the
  packed header (valid | tid | txid), word 1 the page index;
- shadow frames above the PTE area, one ``page_bytes`` frame per slot,
  so a slot's shadow address is derived, never stored.

Slots allocate monotonically and are never reused, which makes the
recovery scan (walk slots until the first invalid header) sound, and
makes the watermark a plain high-water mark: it only ever advances, and
only past slots whose transactions have closed.
"""

from typing import Tuple

from repro.common.bitops import WORD_BYTES
from repro.common.config import SystemConfig
from repro.memory.controller import MemoryController
from repro.nvm.module import WriteKind

#: Address space reserved for PTE slots (sparse, so reservation is free).
MAX_PTE_SLOTS = 1 << 20

_VALID_BIT = 1
_TID_SHIFT = 1
_TXID_SHIFT = 9


def paging_aux_base(config: SystemConfig) -> int:
    """Base address of the page-table region (above the central log)."""
    return (
        config.nvmm_base
        + config.nvm.size_bytes
        + config.logging.log_region_bytes
    )


def pack_pte_header(tid: int, txid: int) -> int:
    return _VALID_BIT | ((tid & 0xFF) << _TID_SHIFT) | ((txid & 0xFFFF) << _TXID_SHIFT)


def unpack_pte_header(header: int) -> Tuple[bool, int, int]:
    """(valid, tid, txid) from a packed PTE header word."""
    return (
        bool(header & _VALID_BIT),
        (header >> _TID_SHIFT) & 0xFF,
        (header >> _TXID_SHIFT) & 0xFFFF,
    )


class PageTable:
    """Volatile allocator over the durable PTE + shadow-frame layout."""

    def __init__(self, controller: MemoryController, config: SystemConfig) -> None:
        self.controller = controller
        self.config = config
        self.page_bytes = config.logging.page_bytes
        self.aux_base = paging_aux_base(config)
        self.control_addr = self.aux_base
        self.slot_base = self.aux_base + 64
        self.shadow_base = self.slot_base + MAX_PTE_SLOTS * 64
        self.alloc = 0          # next slot index (monotone, never reused)
        self.watermark = 0      # volatile copy of the durable watermark

    def slot_addr(self, index: int) -> int:
        return self.slot_base + index * 64

    def shadow_addr(self, index: int) -> int:
        return self.shadow_base + index * self.page_bytes

    def allocate(self) -> int:
        index = self.alloc
        self.alloc += 1
        return index

    def persist_header(
        self, index: int, tid: int, txid: int, page_index: int, now_ns: float
    ) -> float:
        """Write a slot's validating header + page index (one request)."""
        result = self.controller.write_log_entry(
            self.slot_addr(index),
            [pack_pte_header(tid, txid), page_index],
            now_ns,
            kind=WriteKind.LOG,
        )
        return now_ns + result.schedule.stall_ns

    def persist_watermark(self, value: int, now_ns: float) -> float:
        self.watermark = value
        result = self.controller.write_log_entry(
            self.control_addr, [value], now_ns, kind=WriteKind.LOG
        )
        return now_ns + result.schedule.stall_ns

    @staticmethod
    def read_watermark(controller: MemoryController, config: SystemConfig) -> int:
        return controller.nvm.array.read_logical(paging_aux_base(config))
