"""The memory controller: routes requests to DRAM or the NVM module.

DRAM and NVMM live on one memory bus mapped to a single physical address
space; user-critical data sit in NVMM, everything else in DRAM (section
III-A).  The controller also exposes the log write path that the log
buffers use to bypass the caches (section III-A, Figure 6).
"""

from typing import Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.memory.dram import Dram
from repro.nvm.module import LogDataWord, NvmModule, WriteKind, WriteResult


class MemoryController:
    """Address routing plus the ADR persistence boundary."""

    def __init__(self, config: SystemConfig, stats: Optional[StatGroup] = None) -> None:
        self.stats = stats if stats is not None else StatGroup("memory_controller")
        self.config = config
        self.nvm = NvmModule(
            config.nvm, config.encoding, self.stats, config.caches.line_bytes
        )
        self.dram = Dram(self.stats)
        # Optional debug tap: called with (addr, words) before every
        # in-place NVMM line write (used by the WAL-ordering checker).
        self.data_write_observer = None
        # Optional read hook: called with the address of every NVMM line
        # read; a non-None return value (a word list) services the read
        # instead of the array.  Redo-only logging stages in-flight lines
        # in DRAM and keeps them readable through this hook.
        self.read_interceptor = None

    def is_persistent(self, addr: int) -> bool:
        return addr >= self.config.nvmm_base

    # ------------------------------------------------------------------
    # Cache-line path
    # ------------------------------------------------------------------

    def read_line(self, addr: int, now_ns: float) -> Tuple[Tuple[int, ...], float]:
        if self.is_persistent(addr):
            if self.read_interceptor is not None:
                staged = self.read_interceptor(addr)
                if staged is not None:
                    from repro.memory.dram import DRAM_READ_NS

                    return tuple(staged), now_ns + DRAM_READ_NS
            return self.nvm.read_line(addr, now_ns)
        return self.dram.read_line(addr, now_ns)

    def write_line(self, addr: int, words: Sequence[int], now_ns: float) -> float:
        """Write back one cache line; returns the producer-visible time.

        NVMM line writes are posted (the producer resumes at queue-accept
        time); DRAM writes complete at fixed latency.
        """
        if self.is_persistent(addr):
            if self.data_write_observer is not None:
                self.data_write_observer(addr, words)
            result = self.nvm.write_data_line(addr, words, now_ns)
            return result.schedule.accept_ns
        return self.dram.write_line(addr, words, now_ns)

    # ------------------------------------------------------------------
    # Log path (cache-bypassing, used by the log buffers)
    # ------------------------------------------------------------------

    def write_log_entry(
        self,
        addr: int,
        meta_words: Sequence[int],
        now_ns: float,
        undo: Optional[LogDataWord] = None,
        redo: Optional[LogDataWord] = None,
        kind: WriteKind = WriteKind.LOG,
    ) -> WriteResult:
        return self.nvm.write_log_entry(
            addr, meta_words, now_ns, undo=undo, redo=redo, kind=kind
        )
