"""Memory-bus level models: DRAM and the memory controller.

DRAM and NVMM share one physical address space (paper section III-A);
addresses at or above ``SystemConfig.nvmm_base`` route to the NVM module,
lower addresses to DRAM.  The controller's write queue (inside
:mod:`repro.nvm.timing`) is in the ADR persistence domain.
"""

from repro.memory.dram import Dram
from repro.memory.controller import MemoryController

__all__ = ["Dram", "MemoryController"]
