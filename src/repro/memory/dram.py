"""A deliberately simple DRAM model.

DRAM stores the data that do not require persistence (section III-A) and
the staging region for non-temporal stores (section III-F).  It needs no
cell-level cost model — just fixed access latencies and a word store.
"""

from typing import Dict, Optional, Sequence, Tuple

from repro.common.bitops import WORD_BYTES, WORDS_PER_LINE, align_down, mask_word
from repro.common.stats import StatGroup

DRAM_READ_NS = 50.0
DRAM_WRITE_NS = 50.0


class Dram:
    """Sparse word-granularity DRAM."""

    def __init__(self, stats: Optional[StatGroup] = None) -> None:
        self._words: Dict[int, int] = {}
        self.stats = stats if stats is not None else StatGroup("dram")

    def read_line(self, addr: int, now_ns: float) -> Tuple[Tuple[int, ...], float]:
        base = align_down(addr, WORD_BYTES * WORDS_PER_LINE)
        words = tuple(
            self._words.get(base + i * WORD_BYTES, 0) for i in range(WORDS_PER_LINE)
        )
        self.stats.add("reads")
        return words, now_ns + DRAM_READ_NS

    def write_line(self, addr: int, words: Sequence[int], now_ns: float) -> float:
        base = align_down(addr, WORD_BYTES * WORDS_PER_LINE)
        for i, word in enumerate(words):
            self._words[base + i * WORD_BYTES] = mask_word(word)
        self.stats.add("writes")
        return now_ns + DRAM_WRITE_NS

    def read_word(self, addr: int) -> int:
        return self._words.get(align_down(addr, WORD_BYTES), 0)

    def write_word(self, addr: int, value: int) -> None:
        self._words[align_down(addr, WORD_BYTES)] = mask_word(value)
