"""Recovery invariants checked at every crash point.

The oracle replays the recorded per-transaction write sets over the
pre-crash values and compares the recovered persistence domain word by
word, exactly like the hand-written crash tests — but packaged so the
sweep scheduler can run it at *every* persist boundary:

1. **Durability** (default commit protocol): every transaction whose
   ``end_tx`` completed before the crash is applied after recovery.
2. **Commit-order prefix**: the applied transactions form a prefix of
   the commit order (this is the whole guarantee under the
   delay-persistence protocol, and implied by durability otherwise).
3. **Atomicity + exact values**: each transaction's write set is
   entirely applied or entirely absent, with no torn words — every
   touched word must equal the oracle's replayed value.
4. **Idempotence**: running recovery a second time changes nothing.
5. **Delay-persistence accounting**: the persisted set recovered from
   the ``ulog`` counters is a timestamp prefix of *all* scanned commit
   records.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.logging_hw.entries import EntryType

#: Cap on divergent words kept per violation (reporting only).
MAX_DIVERGENT_WORDS = 8


class WriteSetTracker:
    """Records each transaction's oldest-old / newest-new value per word.

    Doubles as the ``system.trace`` tap and as the commit-order journal
    the sweep driver feeds after each successful ``end_tx``.
    """

    def __init__(self) -> None:
        # txid -> {addr: [oldest old value, newest new value]}
        self.tx_writes: Dict[int, Dict[int, List[int]]] = {}
        # txids in the order their end_tx completed.
        self.committed: List[int] = []

    def on_tx_store(self, tid: int, txid: int, addr: int, old: int, new: int) -> None:
        writes = self.tx_writes.setdefault(txid, {})
        slot = writes.get(addr)
        if slot is None:
            writes[addr] = [old, new]
        else:
            slot[1] = new

    def on_commit(self, txid: int) -> None:
        self.committed.append(txid)


@dataclass(frozen=True)
class Violation:
    """One failed recovery invariant at one crash state."""

    kind: str       # durability | prefix | values | idempotence | dp-accounting
    message: str
    # (addr, actual, expected) triples, capped at MAX_DIVERGENT_WORDS.
    words: Tuple[Tuple[int, int, int], ...] = ()

    def format(self) -> str:
        lines = ["[%s] %s" % (self.kind, self.message)]
        for addr, actual, expected in self.words:
            lines.append(
                "  word %#x: recovered %#x, expected %#x" % (addr, actual, expected)
            )
        return "\n".join(lines)


def expected_image(
    tracker: WriteSetTracker, applied: Set[int]
) -> Dict[int, int]:
    """The word values recovery must produce, from the write sets.

    Applied transactions contribute their newest values (replayed in
    txid order — begin order, which matches commit order within a
    thread; threads write disjoint shards); everything else contributes
    its *oldest* old value, first writer wins.
    """
    expected: Dict[int, int] = {}
    for txid in sorted(tracker.tx_writes):
        writes = tracker.tx_writes[txid]
        if txid in applied:
            for addr, (_old, new) in writes.items():
                expected[addr] = new
        else:
            for addr, (old, _new) in writes.items():
                if addr not in expected:
                    expected[addr] = old
    return expected


def check_crash_state(system, tracker: WriteSetTracker, verify_decode: bool = True):
    """Run recovery against the current persistence domain and verify it.

    Returns ``(recovered_state, violations)``.  Mutates the NVMM array's
    logical values (recovery rolls words forward/back); callers probing a
    *live* run must wrap the call in
    ``system.controller.nvm.array.journaled_logical_writes()``.
    """
    violations: List[Violation] = []
    array = system.controller.nvm.array
    delay_persistence = system.config.logging.delay_persistence

    state = system.recover(verify_decode=verify_decode)
    applied = set(state.persisted_txids)

    # A committed transaction with no trace left in the log was truncated
    # — which the log controller only does once its in-place data are
    # persistent, so it counts as applied.  (If truncation fired too
    # early, the value oracle below catches the stale in-place words.)
    seen = {r.meta.txid for r in state.records}
    applied.update(
        txid for txid in tracker.committed if txid not in seen
    )

    # 1. Durability (default protocol only: commit implies persistence).
    if not delay_persistence:
        missing = [txid for txid in tracker.committed if txid not in applied]
        if missing:
            violations.append(
                Violation(
                    "durability",
                    "committed transactions lost by recovery: %s" % missing,
                )
            )

    # 2. Commit-order prefix over the transactions the program saw commit.
    flags = [txid in applied for txid in tracker.committed]
    if False in flags and True in flags[flags.index(False):]:
        violations.append(
            Violation(
                "prefix",
                "applied set is not a prefix of commit order: %s"
                % list(zip(tracker.committed, flags)),
            )
        )

    # 5. Delay-persistence accounting: the ulog-derived persisted set must
    # be a timestamp prefix of every commit record found in the log.
    if delay_persistence:
        commits = sorted(
            (r for r in state.records if r.meta.type is EntryType.COMMIT),
            key=lambda r: r.meta.timestamp,
        )
        cflags = [r.meta.txid in applied for r in commits]
        if False in cflags and True in cflags[cflags.index(False):]:
            violations.append(
                Violation(
                    "dp-accounting",
                    "ulog accounting persisted a non-prefix of the commit "
                    "records: %s" % [(r.meta.txid, f) for r, f in zip(commits, cflags)],
                )
            )

    # 3. Atomicity + exact values (also catches torn words: a word that is
    # neither its old nor its new value diverges from the oracle).
    expected = expected_image(tracker, applied)
    divergent = []
    for addr, value in expected.items():
        actual = system.persistent_word(addr)
        if actual != value:
            divergent.append((addr, actual, value))
    if divergent:
        divergent.sort()
        violations.append(
            Violation(
                "values",
                "%d corrupted words after recovery" % len(divergent),
                tuple(divergent[:MAX_DIVERGENT_WORDS]),
            )
        )

    # 4. Idempotence: a second recovery run must be a no-op.
    touched = {
        r.meta.addr
        for r in state.records
        if r.meta.type is not EntryType.COMMIT
    }
    first_pass = {addr: array.read_logical(addr) for addr in touched}
    second = system.recover(verify_decode=False)
    if second.persisted_txids != state.persisted_txids:
        violations.append(
            Violation(
                "idempotence",
                "second recovery changed the persisted set: %s != %s"
                % (sorted(second.persisted_txids), sorted(state.persisted_txids)),
            )
        )
    drifted = [
        (addr, array.read_logical(addr), value)
        for addr, value in first_pass.items()
        if array.read_logical(addr) != value
    ]
    if drifted:
        drifted.sort()
        violations.append(
            Violation(
                "idempotence",
                "%d words drifted on the second recovery run" % len(drifted),
                tuple(drifted[:MAX_DIVERGENT_WORDS]),
            )
        )

    return state, violations
