"""Log-occupancy accounting and recovery-work profiling after a crash.

The traffic engine's crash-under-peak-load composition needs two things
the fault injector never measured: *how full* the log region was when
power cut (occupancy scales with the backlog the arrival process built
up) and *how much work* recovery then performs.  This module reads both
off a crashed :class:`~repro.core.system.System` — occupancy from the
live-entry index, recovery work by actually running the PR-1 recovery
path — and adds a first-order recovery-time estimate from the NVM
timing model (sequential region scan plus one write per redone/undone
word), so recovery-time-vs-log-occupancy curves have a time axis.
"""

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.common.bitops import WORD_BYTES, WORDS_PER_LINE
from repro.logging_hw.region import LogRegion, LogRegionSet


def log_regions(system) -> List[LogRegion]:
    """The system's log regions as a flat list (1 unless distributed)."""
    if isinstance(system.log_region, LogRegionSet):
        return list(system.log_region.regions)
    return [system.log_region]


def log_occupancy(system) -> Dict[str, Any]:
    """Live-slot accounting across every log region, plus a fraction."""
    regions = log_regions(system)
    used = sum(region.used_slots() for region in regions)
    capacity = sum(region.capacity_slots for region in regions)
    return {
        "regions": len(regions),
        "live_entries": sum(len(region.live) for region in regions),
        "used_slots": used,
        "capacity_slots": capacity,
        "used_bytes": used * WORD_BYTES,
        "occupancy_fraction": (used / capacity) if capacity else 0.0,
    }


@dataclass(frozen=True)
class RecoveryProfile:
    """Occupancy at the crash plus the measured recovery work."""

    regions: int
    live_entries: int
    used_slots: int
    capacity_slots: int
    used_bytes: int
    occupancy_fraction: float
    committed_txids: int
    persisted_txids: int
    log_records: int
    redone_words: int
    undone_words: int
    estimated_recovery_ns: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "regions": self.regions,
            "live_entries": self.live_entries,
            "used_slots": self.used_slots,
            "capacity_slots": self.capacity_slots,
            "used_bytes": self.used_bytes,
            "occupancy_fraction": self.occupancy_fraction,
            "committed_txids": self.committed_txids,
            "persisted_txids": self.persisted_txids,
            "log_records": self.log_records,
            "redone_words": self.redone_words,
            "undone_words": self.undone_words,
            "estimated_recovery_ns": self.estimated_recovery_ns,
        }


def estimate_recovery_ns(system, used_slots: int, replayed_words: int) -> float:
    """First-order recovery time from the NVM timing parameters.

    Recovery scans the written portion of each region line-by-line
    (reads), then writes back one word per redone/undone location.  The
    estimate charges the per-access overhead plus read latency per
    scanned line and the worst-level program latency per replayed line
    — deliberately simple, but monotone in occupancy, which is what the
    recovery-vs-occupancy curve needs.
    """
    nvm = system.config.nvm
    scanned_lines = -(-used_slots // WORDS_PER_LINE)  # ceil
    replayed_lines = -(-replayed_words // WORDS_PER_LINE)
    read_ns = nvm.access_overhead_ns + nvm.read_latency_ns
    write_ns = nvm.access_overhead_ns + nvm.write_latency_ns(
        nvm.bits_per_cell - 1)
    return scanned_lines * read_ns + replayed_lines * write_ns


def recovery_profile(system, verify_decode: bool = False) -> RecoveryProfile:
    """Measure occupancy, run recovery, and profile the work done.

    Call on a system whose run ended in :class:`CrashInjected` — the
    persistence domain is still exactly as the power cut left it.
    """
    occupancy = log_occupancy(system)
    state = system.recover(verify_decode=verify_decode)
    replayed = state.redone_words + state.undone_words
    return RecoveryProfile(
        regions=occupancy["regions"],
        live_entries=occupancy["live_entries"],
        used_slots=occupancy["used_slots"],
        capacity_slots=occupancy["capacity_slots"],
        used_bytes=occupancy["used_bytes"],
        occupancy_fraction=occupancy["occupancy_fraction"],
        committed_txids=len(state.committed_txids),
        persisted_txids=len(state.persisted_txids),
        log_records=len(state.records),
        redone_words=state.redone_words,
        undone_words=state.undone_words,
        estimated_recovery_ns=estimate_recovery_ns(
            system, occupancy["used_slots"], replayed),
    )
