"""Crash-point fault injection and systematic recovery verification.

The subsystem instruments every persist-boundary event of the simulated
machine with a named crash point (:mod:`repro.faultinject.plan`), drives
workloads under a deterministic crash-point scheduler that checks the
recovery invariants at each point (:mod:`repro.faultinject.sweep`,
:mod:`repro.faultinject.oracle`), and ships deliberately broken logger
mutants that the sweep must catch (:mod:`repro.faultinject.mutants`).

Entry points:

- ``repro fault-sweep`` (CLI) — enumerate crash points for one workload
  across logging designs and report violations with replayable schedules;
- :func:`repro.faultinject.sweep.run_sweep` — the same, programmatically;
- :func:`repro.faultinject.sweep.replay_schedule` — re-execute a recorded
  counterexample schedule with a real injected crash.
"""

from repro.faultinject.plan import (
    CRASH_POINTS,
    CountingPlan,
    CrashAt,
    CrashEvent,
    CrashPlan,
)
from repro.faultinject.sweep import (
    CrashSchedule,
    SweepOptions,
    SweepResult,
    replay_schedule,
    run_sweep,
)

__all__ = [
    "CRASH_POINTS",
    "CountingPlan",
    "CrashAt",
    "CrashEvent",
    "CrashPlan",
    "CrashSchedule",
    "SweepOptions",
    "SweepResult",
    "replay_schedule",
    "run_sweep",
]
