"""Deliberately broken logger mutants (test-only).

Each mutant injects one specific persistence-ordering bug into a live
:class:`~repro.core.system.System`, modelling hardware that *believes* it
logged (all volatile bookkeeping proceeds normally) while the NVMM write
silently never happens.  The fault-sweep must catch every applicable
mutant with a replayable counterexample schedule; a mutant surviving a
sweep means the sweep's coverage regressed.

These exist purely to validate the fault-injection subsystem — never
enable one outside tests or the ``repro fault-sweep --mutant`` flag.
"""

from typing import Callable, Dict

from repro.logging_hw.entries import EntryType
from repro.nvm.array import WriteCost
from repro.nvm.timing import WriteSchedule
from repro.nvm.module import WriteResult


def _fake_result(now_ns: float) -> WriteResult:
    """A WriteResult for a write that never reached NVMM."""
    return WriteResult(
        schedule=WriteSchedule(accept_ns=now_ns, finish_ns=now_ns, stall_ns=0.0),
        cost=WriteCost.zero(),
        encoded_words=(),
    )


def _drop_entries(system, types) -> None:
    """Make persist_entry swallow entries of ``types`` without logging.

    The logger's post-persist bookkeeping (L1 word-state flips, stats)
    still runs, so the machine behaves as if the entry were durable —
    exactly the "ordering bug" shape a write-ahead violation takes.
    """
    logger = system.logger
    original = logger.persist_entry

    def mutated(entry, now_ns):
        if entry.type in types:
            logger.stats.add("mutant_dropped_entries")
            result = _fake_result(now_ns)
            logger._entry_persisted(entry, result, now_ns)
            return result
        return original(entry, now_ns)

    logger.persist_entry = mutated


def drop_undo(system) -> None:
    """Skip persisting undo-carrying entries (UNDO and UNDO_REDO).

    Breaks write-ahead ordering for every design that relies on undo
    data: in-place updates of uncommitted transactions become
    unrecoverable, and committed MorLog/FWB transactions lose the redo
    half of their undo+redo entries.
    """
    _drop_entries(system, (EntryType.UNDO, EntryType.UNDO_REDO))


def drop_redo(system) -> None:
    """Skip persisting redo entries.

    Committed transactions of redo-only logging (and MorLog's lazily
    drained ULOG words) can no longer be rolled forward.
    """
    _drop_entries(system, (EntryType.REDO,))


def skip_wal_flush(system) -> None:
    """Disable the write-ahead flush at LLC write-backs.

    In-place data can now overtake their buffered log entries into NVMM
    — the classic steal-policy WAL violation.  Needs cache pressure (LLC
    evictions of lines with still-buffered entries) to manifest.
    """
    logger = system.logger

    def mutated(line_addr, now_ns):
        logger.stats.add("mutant_skipped_wal_flushes")
        return now_ns

    logger.before_llc_write_back = mutated


MUTANTS: Dict[str, Callable] = {
    "drop-undo": drop_undo,
    "drop-redo": drop_redo,
    "skip-wal": skip_wal_flush,
}


def apply_mutant(system, name: str) -> None:
    """Install the named mutant on a live system."""
    try:
        MUTANTS[name](system)
    except KeyError:
        raise ValueError(
            "unknown mutant %r (choose from %s)" % (name, ", ".join(sorted(MUTANTS)))
        )
