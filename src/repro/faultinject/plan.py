"""Crash plans: named persist-boundary crash points and schedules.

Every component that can mutate the persistence domain fires a *crash
point* just before (and, where ordering proofs need it, just after) the
mutation.  A :class:`CrashPlan` installed via
:meth:`repro.core.system.System.install_crash_plan` observes the fired
events in execution order and may raise
:class:`~repro.core.system.CrashInjected` at any of them — which models a
power cut at exactly that boundary: all volatile state (caches, log
buffers, L1 log-state bits) is lost and only the NVMM array survives.

Because the simulator is deterministic, the global event index alone
identifies a crash state: rerunning the same (design, workload, seed,
threads) and crashing at the same index reproduces the same persistence
domain bit for bit.  That is what makes counterexample schedules
replayable.

The crash-point catalogue (see docs/fault_injection.md):

==================  =====================================================
point               fired
==================  =====================================================
tx-store            before a transactional store enters the logger
tx-nt-store         before a non-temporal transactional store is logged
tx-commit           before the commit sequence starts
log-append          before a log entry is written to the log region
undo-persisted      after an undo-carrying entry reached the log region
redo-persisted      after a redo entry reached the log region
commit-record       before the commit record is written
commit-persisted    after the commit record reached the log region
data-writeback      before any in-place NVMM line write programs cells
redo-drain          before MorLog turns a ULOG word into a redo entry
nt-flush            before buffered non-temporal redo entries are forced
forced-writeback    before undo-only logging force-writes a line at commit
stage-release       before redo-only logging releases a staged line
wal-flush           before FWB flushes write-ahead entries at an LLC evict
log-truncate        before the truncated head pointer is persisted
fwb-scan            before a force-write-back scan starts
embedded-write      before an InCLL embedded slot/epoch word is written
page-table-write    before a CoW page-table header or watermark persists
page-flip           before CoW paging's atomic commit flip is persisted
log-compaction      before a checkpoint compacts the covered log prefix
==================  =====================================================

Crashing *before* each NVMM mutation is sufficient for exhaustiveness:
the persistent state after mutation ``k`` equals the state immediately
before mutation ``k+1``, so the pre-points enumerate every distinct
crash state.  The post-points (``*-persisted``) add named completion
markers the invariant checker uses for durability reasoning.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: All crash-point names, in rough execution-order groups.
CRASH_POINTS = (
    "tx-store",
    "tx-nt-store",
    "tx-commit",
    "log-append",
    "undo-persisted",
    "redo-persisted",
    "commit-record",
    "commit-persisted",
    "data-writeback",
    "redo-drain",
    "nt-flush",
    "forced-writeback",
    "stage-release",
    "wal-flush",
    "log-truncate",
    "fwb-scan",
    "embedded-write",
    "page-table-write",
    "page-flip",
    "log-compaction",
)

_POINT_SET = frozenset(CRASH_POINTS)


@dataclass(frozen=True)
class CrashEvent:
    """One fired crash point (1-based global index)."""

    index: int
    point: str
    detail: Tuple[Tuple[str, int], ...] = ()

    def detail_dict(self) -> Dict[str, int]:
        return dict(self.detail)


def _freeze_detail(detail: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(detail.items()))


class CrashPlan:
    """Base plan: observes fired crash points, never crashes.

    Subclasses override :meth:`on_event`; :meth:`fire` handles indexing
    and point-name validation.  ``fire`` is called on hot paths, so the
    components guard the call with a ``plan is not None`` check.
    """

    def __init__(self) -> None:
        self.fired = 0
        self.per_point: Dict[str, int] = {}

    def fire(self, point: str, **detail: int) -> None:
        if point not in _POINT_SET:
            raise ValueError("unknown crash point %r" % point)
        self.fired += 1
        self.per_point[point] = self.per_point.get(point, 0) + 1
        self.on_event(CrashEvent(self.fired, point, _freeze_detail(detail)))

    def on_event(self, event: CrashEvent) -> None:
        """Subclass hook; may raise CrashInjected to cut power here."""


class CountingPlan(CrashPlan):
    """Counts events without crashing (the enumeration pre-pass)."""

    def __init__(self, keep_trace: bool = False) -> None:
        super().__init__()
        self.trace: List[CrashEvent] = []
        self._keep_trace = keep_trace

    def on_event(self, event: CrashEvent) -> None:
        if self._keep_trace:
            self.trace.append(event)


class CrashAt(CrashPlan):
    """Raise :class:`CrashInjected` at the ``crash_index``-th event.

    Used by schedule replay: the deterministic run guarantees the same
    event sits at the same index, so the crash lands on the same
    persist boundary as the recorded counterexample.
    """

    def __init__(self, crash_index: int) -> None:
        super().__init__()
        if crash_index < 1:
            raise ValueError("crash index is 1-based")
        self.crash_index = crash_index
        self.crash_event: Optional[CrashEvent] = None

    def on_event(self, event: CrashEvent) -> None:
        from repro.core.system import CrashInjected

        if event.index == self.crash_index:
            self.crash_event = event
            raise CrashInjected()
