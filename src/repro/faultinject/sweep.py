"""Deterministic crash-point enumeration and recovery verification.

The sweep drives a workload exactly like :meth:`System.run` (same
dispatch order, same RNG seeds) with a crash plan installed, and at each
fired crash point asks: *if power were cut right here, would recovery
produce a consistent state?*  Because recovery reads only the NVMM array
and the probe journals its logical writes, the question is answered
in-line — one workload execution checks every crash point, instead of
re-running the workload once per point.

Modes:

- **exhaustive** (``budget=0``): every fired event is checked — feasible
  for short runs and the shape the acceptance bar requires;
- **sampled** (``budget=N``): a seeded-random subset of N event indices,
  chosen after a counting pre-pass, for long runs.  The subset is a pure
  function of (seed, budget, total events), so sampled sweeps are
  replayable too.

A violation yields a :class:`Counterexample` carrying the *minimal*
crash schedule (events are checked in execution order, so the first
failure has the smallest index) and the divergent words.  The schedule
is a small JSON document; :func:`replay_schedule` re-executes it with a
real injected crash (volatile state actually lost) to confirm the
failure outside the in-line probe.
"""

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.config import (
    CacheConfig,
    CacheLevelConfig,
    CoreConfig,
    LoggingConfig,
    NVMConfig,
    SystemConfig,
)
from repro.core.designs import available_designs, make_system
from repro.core.system import CrashInjected, System
from repro.faultinject.mutants import apply_mutant
from repro.faultinject.oracle import Violation, WriteSetTracker, check_crash_state
from repro.faultinject.plan import CountingPlan, CrashAt, CrashEvent, CrashPlan
from repro.workloads.base import WorkloadParams, make_workload

#: Short aliases for the sweep's design matrix.  The acceptance set is
#: the four logging *schemes* (morphable, undo-only, redo-only, FWB).
DESIGN_ALIASES: Dict[str, str] = {
    "morlog": "MorLog-SLDE",
    "morlog-dp": "MorLog-DP",
    "fwb": "FWB-CRADE",
    "undo-only": "Undo-CRADE",
    "redo-only": "Redo-CRADE",
    "incll": "InCLL-CRADE",
    "paging": "CoW-Page",
    "ckpt-undo": "Ckpt-Undo",
}

DEFAULT_SWEEP_DESIGNS = ("morlog", "undo-only", "redo-only", "fwb")

#: The comparative-testbed extensions, swept alongside the default set
#: by the acceptance suite and the designs-smoke CI job.
EXTENSION_SWEEP_DESIGNS = ("incll", "paging", "ckpt-undo")


def resolve_design(name: str) -> str:
    """Map an alias or full design name to the factory's design name."""
    full = DESIGN_ALIASES.get(name.lower(), name)
    if full not in available_designs(include_ablation=True, include_extensions=True):
        raise ValueError(
            "unknown design %r (aliases: %s)" % (name, ", ".join(sorted(DESIGN_ALIASES)))
        )
    return full


def sweep_system_config(**logging_overrides) -> SystemConfig:
    """A small, fast machine for crash sweeps (mirrors the test config)."""
    defaults = dict(log_region_bytes=256 * 1024, fwb_interval_cycles=200_000)
    defaults.update(logging_overrides)
    return SystemConfig(
        cores=CoreConfig(n_cores=4),
        caches=CacheConfig(
            l1=CacheLevelConfig(4 * 1024, 4, 64, 4),
            l2=CacheLevelConfig(16 * 1024, 4, 64, 12),
            l3=CacheLevelConfig(64 * 1024, 8, 64, 28, shared=True),
        ),
        nvm=NVMConfig(size_bytes=64 * 1024 * 1024),
        logging=LoggingConfig(**defaults),
    )


@dataclass(frozen=True)
class CrashSchedule:
    """Everything needed to reproduce one crash state bit for bit."""

    design: str
    workload: str
    transactions: int
    threads: int
    seed: int
    crash_index: int
    point: str = ""
    mutant: Optional[str] = None
    fwb_interval_cycles: Optional[int] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "design": self.design,
                "workload": self.workload,
                "transactions": self.transactions,
                "threads": self.threads,
                "seed": self.seed,
                "crash_index": self.crash_index,
                "point": self.point,
                "mutant": self.mutant,
                "fwb_interval_cycles": self.fwb_interval_cycles,
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "CrashSchedule":
        data = json.loads(text)
        return CrashSchedule(
            design=data["design"],
            workload=data["workload"],
            transactions=int(data["transactions"]),
            threads=int(data["threads"]),
            seed=int(data["seed"]),
            crash_index=int(data["crash_index"]),
            point=data.get("point", ""),
            mutant=data.get("mutant"),
            fwb_interval_cycles=data.get("fwb_interval_cycles"),
        )


@dataclass
class Counterexample:
    """A crash state that violated a recovery invariant."""

    schedule: CrashSchedule
    event: CrashEvent
    violations: List[Violation]

    def format(self) -> str:
        lines = [
            "counterexample at crash point #%d (%s%s)"
            % (
                self.event.index,
                self.event.point,
                "".join(", %s=%#x" % kv for kv in self.event.detail),
            )
        ]
        for violation in self.violations:
            lines.append(violation.format())
        lines.append("replay schedule:")
        lines.append(self.schedule.to_json())
        return "\n".join(lines)


@dataclass
class SweepResult:
    """Outcome of sweeping one design."""

    design: str
    workload: str
    total_events: int
    checked_events: int
    per_point: Dict[str, int]
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


@dataclass(frozen=True)
class SweepOptions:
    """Knobs for one fault sweep."""

    workload: str = "hash"
    transactions: int = 10
    threads: int = 2
    seed: int = 7
    budget: int = 0            # 0 = exhaustive
    verify_decode: bool = True
    mutant: Optional[str] = None
    initial_items: int = 48
    key_space: int = 96
    # Lowering the FWB interval makes short sweeps reach the scan-driven
    # crash points (fwb-scan, redo-drain, data-writeback, log-truncate).
    fwb_interval_cycles: Optional[int] = None


class _SweepAbort(Exception):
    """Stops the drive loop once the first counterexample is recorded."""


class _SweepPlan(CrashPlan):
    """Probes recovery invariants at (a subset of) fired crash points."""

    def __init__(
        self,
        system: System,
        tracker: WriteSetTracker,
        selected: Optional[Set[int]],
        verify_decode: bool,
    ) -> None:
        super().__init__()
        self.system = system
        self.tracker = tracker
        self.selected = selected
        self.verify_decode = verify_decode
        self.checked = 0
        self.failure: Optional[Tuple[CrashEvent, List[Violation]]] = None

    def on_event(self, event: CrashEvent) -> None:
        if self.selected is not None and event.index not in self.selected:
            return
        self.checked += 1
        array = self.system.controller.nvm.array
        with array.journaled_logical_writes():
            _state, violations = check_crash_state(
                self.system, self.tracker, verify_decode=self.verify_decode
            )
        if violations:
            self.failure = (event, violations)
            raise _SweepAbort()


def _build(design: str, options: SweepOptions):
    """Fresh (system, workload, tracker) for one deterministic pass."""
    overrides = {}
    if options.fwb_interval_cycles is not None:
        overrides["fwb_interval_cycles"] = options.fwb_interval_cycles
    resolved = resolve_design(design)
    if resolved == "CoW-Page":
        # A 4 KiB page makes every crash-point probe restore hundreds of
        # words; a small page keeps the exhaustive sweep fast while still
        # exercising multi-line copies.  Both passes (and replay) share
        # the override, so schedules stay deterministic.
        overrides.setdefault("page_bytes", 256)
    system = make_system(resolved, sweep_system_config(**overrides))
    if options.mutant is not None:
        apply_mutant(system, options.mutant)
    workload = make_workload(
        options.workload,
        WorkloadParams(
            initial_items=options.initial_items,
            key_space=options.key_space,
            seed=options.seed,
        ),
    )
    return system, workload, WriteSetTracker()


def _drive(
    system: System,
    workload,
    tracker: WriteSetTracker,
    plan: CrashPlan,
    options: SweepOptions,
    trace=None,
) -> None:
    """Run the workload with ``plan`` installed, mirroring System.run.

    The plan goes in only after setup (setup stores are untimed and
    unlogged, hence crash-free by construction).  Raises CrashInjected or
    _SweepAbort out of the loop; normal completion returns None.

    ``trace`` (a :class:`repro.replay.StoreTrace`) swaps the workload for
    a recorded store stream: setup replays the trace's setup stores and
    the loop dispatches the recorded transactions on their recorded
    cores.  A trace recorded from the same (design-config, workload,
    seed) cell produces the identical sweep — same fired events, same
    verdict (pinned in tests/test_replay_differential.py).
    """
    bodies = cores = None
    if trace is None:
        workload.setup(system, options.threads)
        limit = options.transactions
    else:
        from repro.replay.replayer import apply_trace_setup, trace_transaction_bodies

        apply_trace_setup(system, trace)
        bodies = trace_transaction_bodies(trace)
        cores = trace.tx_core.tolist()
        limit = min(options.transactions, len(bodies))
    system.reset_measurement()
    system._active_threads = options.threads
    system.trace = tracker
    system.install_crash_plan(plan)
    try:
        dispatched = 0
        while dispatched < limit:
            if bodies is None:
                core = min(
                    range(options.threads), key=system.core_time_ns.__getitem__
                )
                body = workload.transaction(core)
            else:
                core = cores[dispatched]
                body = bodies[dispatched]
            tx = system.begin_tx(core)
            try:
                body(system.contexts[core])
                system.end_tx(core)
            except CrashInjected:
                system.current_tx[core] = None
                raise
            tracker.on_commit(tx.txid)
            system._maybe_force_write_back()
            dispatched += 1
    finally:
        system.install_crash_plan(None)
        system.trace = None


def _select_indices(options: SweepOptions, total: int) -> Optional[Set[int]]:
    """The event indices to check; None means all of them."""
    if options.budget <= 0 or options.budget >= total:
        return None
    rng = random.Random((options.seed, options.budget, total).__hash__())
    return set(rng.sample(range(1, total + 1), options.budget))


def run_sweep(
    design: str, options: SweepOptions = SweepOptions(), trace=None
) -> SweepResult:
    """Sweep every (or a budgeted subset of) crash points for one design.

    ``trace`` drives both passes from a recorded store stream instead of
    re-running the workload (see :func:`_drive`).
    """
    selected: Optional[Set[int]] = None
    if options.budget > 0:
        # Counting pre-pass: the run is deterministic, so the event total
        # (and each index's meaning) carries over to the sweep pass.
        system, workload, tracker = _build(design, options)
        counter = CountingPlan()
        _drive(system, workload, tracker, counter, options, trace=trace)
        selected = _select_indices(options, counter.fired)

    system, workload, tracker = _build(design, options)
    plan = _SweepPlan(system, tracker, selected, options.verify_decode)
    try:
        _drive(system, workload, tracker, plan, options, trace=trace)
    except _SweepAbort:
        pass

    counterexample = None
    if plan.failure is not None:
        event, violations = plan.failure
        schedule = CrashSchedule(
            design=resolve_design(design),
            workload=options.workload,
            transactions=options.transactions,
            threads=options.threads,
            seed=options.seed,
            crash_index=event.index,
            point=event.point,
            mutant=options.mutant,
            fwb_interval_cycles=options.fwb_interval_cycles,
        )
        counterexample = Counterexample(schedule, event, violations)
    return SweepResult(
        design=resolve_design(design),
        workload=options.workload,
        total_events=plan.fired,
        checked_events=plan.checked,
        per_point=dict(plan.per_point),
        counterexample=counterexample,
    )


@dataclass
class ReplayReport:
    """Outcome of re-executing a counterexample schedule."""

    schedule: CrashSchedule
    crashed: bool
    event: Optional[CrashEvent]
    violations: List[Violation]

    @property
    def reproduced(self) -> bool:
        return self.crashed and bool(self.violations)


def replay_schedule(schedule: CrashSchedule, verify_decode: bool = True) -> ReplayReport:
    """Re-execute a schedule with a *real* crash at its index.

    Unlike the in-line sweep probe, the replay actually loses all
    volatile state (the run stops dead at the crash point) before
    recovery runs — the strongest confirmation a counterexample can get.
    """
    options = SweepOptions(
        workload=schedule.workload,
        transactions=schedule.transactions,
        threads=schedule.threads,
        seed=schedule.seed,
        mutant=schedule.mutant,
        fwb_interval_cycles=schedule.fwb_interval_cycles,
    )
    system, workload, tracker = _build(schedule.design, options)
    plan = CrashAt(schedule.crash_index)
    crashed = False
    try:
        _drive(system, workload, tracker, plan, options)
    except CrashInjected:
        crashed = True
    violations: List[Violation] = []
    if crashed:
        _state, violations = check_crash_state(
            system, tracker, verify_decode=verify_decode
        )
    return ReplayReport(
        schedule=schedule,
        crashed=crashed,
        event=plan.crash_event,
        violations=violations,
    )
