"""Open-loop traffic engine: arrivals, admission queues, SLO metrics.

The closed-loop harness (``System.run``) issues the next transaction the
instant a core goes idle, so offered load always equals throughput and
queueing delay is identically zero.  This engine breaks that loop: a
seeded arrival process (:mod:`repro.traffic.arrivals`) produces
timestamps independent of the machine's speed, a Zipf-skewed tenant
table (:mod:`repro.traffic.tenancy`) routes each arrival to its home
core and blend component, and a bounded per-core admission queue either
holds the transaction until its core frees up — charging the wait
against its commit latency — or sheds it under overload.

Commit latency here is *arrival → commit-persist* on the simulated
clock, i.e. queueing delay plus the usual simulated execution, which is
what an SLO actually promises a client.  Everything is deterministic
under a fixed seed: same config → bit-identical TrafficResult.
"""

import math
import random
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.designs import make_system
from repro.core.system import CrashInjected, System
from repro.traffic.arrivals import ARRIVAL_PROCESSES, make_arrivals
from repro.traffic.tenancy import TenantTable
from repro.workloads.base import WorkloadParams
from repro.workloads.mixture import DEFAULT_BLEND, MixtureWorkload, normalize_blend

DROP_POLICIES = ("shed", "drop-oldest")

# Seed-stream offsets: one independent rng per concern, derived from the
# single user-facing seed with the same multiplier the workloads use.
_SEED_ARRIVALS = 101
_SEED_TENANTS = 202
_SEED_DRAWS = 303


@dataclass(frozen=True)
class TrafficConfig:
    """One open-loop traffic scenario (everything the seed drives)."""

    offered_tx_per_s: float = 200_000.0
    arrivals: int = 400
    process: str = "poisson"
    burst_on_fraction: float = 0.25
    burst_cycle_ns: float = 200_000.0
    n_tenants: int = 16
    zipf_theta: float = 0.9
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_BLEND
    n_threads: int = 4
    queue_capacity: int = 16
    drop_policy: str = "shed"
    seed: int = 42
    # Workload sizing: traffic cells run many (design, load) points, so
    # the per-component structures default smaller than the grid's.
    initial_items: int = 64
    key_space: int = 256

    def validate(self) -> None:
        if self.offered_tx_per_s <= 0:
            raise ValueError("offered_tx_per_s must be positive")
        if self.arrivals < 1:
            raise ValueError("arrivals must be >= 1")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                "unknown arrival process %r (choose from %s)" % (
                    self.process, ", ".join(ARRIVAL_PROCESSES)))
        if not 0.0 < self.burst_on_fraction < 1.0:
            raise ValueError("burst_on_fraction must be in (0, 1)")
        if self.burst_cycle_ns <= 0:
            raise ValueError("burst_cycle_ns must be positive")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                "unknown drop policy %r (choose from %s)" % (
                    self.drop_policy, ", ".join(DROP_POLICIES)))
        normalize_blend(self.mix)

    def workload_params(self) -> WorkloadParams:
        return WorkloadParams(
            initial_items=self.initial_items,
            key_space=self.key_space,
            seed=self.seed,
        )


def traffic_config_to_dict(config: TrafficConfig) -> Dict[str, Any]:
    """JSON-safe dict (canonical: blend normalized, lists not tuples)."""
    data = asdict(config)
    data["mix"] = [[name, weight] for name, weight in normalize_blend(config.mix)]
    return data


def traffic_config_from_dict(data: Dict[str, Any]) -> TrafficConfig:
    """Inverse of :func:`traffic_config_to_dict`."""
    fields = dict(data)
    fields["mix"] = tuple(
        (str(name), float(weight)) for name, weight in fields["mix"])
    return TrafficConfig(**fields)


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(fraction * len(ordered))), 1)
    return ordered[rank - 1]


@dataclass(frozen=True)
class TrafficResult:
    """SLO-style outcome of one open-loop run (all times simulated ns)."""

    design: str
    offered_tx_per_s: float
    arrivals: int
    admitted: int
    completed: int
    dropped: int
    crashed: bool
    makespan_ns: float
    last_arrival_ns: float
    mean_latency_ns: float
    p50_latency_ns: float
    p99_latency_ns: float
    p999_latency_ns: float
    max_latency_ns: float
    mean_queue_ns: float
    p50_queue_ns: float
    p99_queue_ns: float
    p999_queue_ns: float
    max_queue_depth: int
    drops_by_core: Tuple[int, ...]
    completions_by_tenant: Tuple[int, ...]
    drops_by_tenant: Tuple[int, ...]
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def goodput_tx_per_s(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.completed / (self.makespan_ns * 1e-9)

    @property
    def drop_rate(self) -> float:
        if self.arrivals <= 0:
            return 0.0
        return self.dropped / self.arrivals

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["drops_by_core"] = list(self.drops_by_core)
        data["completions_by_tenant"] = list(self.completions_by_tenant)
        data["drops_by_tenant"] = list(self.drops_by_tenant)
        data["stats"] = dict(sorted(self.stats.items()))
        return data


def traffic_result_from_dict(data: Dict[str, Any]) -> TrafficResult:
    fields = dict(data)
    fields["drops_by_core"] = tuple(fields["drops_by_core"])
    fields["completions_by_tenant"] = tuple(fields["completions_by_tenant"])
    fields["drops_by_tenant"] = tuple(fields["drops_by_tenant"])
    return TrafficResult(**fields)


def run_traffic_system(
    design: str,
    traffic: TrafficConfig,
    config=None,
    crash_at_arrival: Optional[int] = None,
) -> Tuple[TrafficResult, System]:
    """Drive one open-loop scenario; returns (result, system).

    With ``crash_at_arrival`` set, a crash hook is armed once that many
    arrivals have been admitted: the next transactional store raises
    :class:`CrashInjected`, execution stops, and the returned system is
    left un-drained so callers can inspect log occupancy and run
    recovery — the crash-under-peak-load composition.
    """
    traffic.validate()
    if config is None:
        from repro.experiments.runner import default_config

        config = default_config()
    system = make_system(design, config)
    if traffic.n_threads > system.config.cores.n_cores:
        raise ValueError("more threads than cores")

    mixture = MixtureWorkload(
        params=traffic.workload_params(), blend=traffic.mix)
    if system._ran:
        system.reset_machine()
    system._ran = True
    mixture.setup(system, traffic.n_threads)
    system.reset_measurement()
    system._active_threads = traffic.n_threads

    seed = traffic.seed * 1_000_003
    arrivals = make_arrivals(
        traffic.process,
        traffic.offered_tx_per_s,
        traffic.arrivals,
        random.Random(seed + _SEED_ARRIVALS),
        on_fraction=traffic.burst_on_fraction,
        cycle_ns=traffic.burst_cycle_ns,
    )
    tenants = TenantTable(
        traffic.n_tenants,
        traffic.zipf_theta,
        traffic.n_threads,
        normalize_blend(traffic.mix),
        random.Random(seed + _SEED_TENANTS),
    )
    draw_rng = random.Random(seed + _SEED_DRAWS)

    queues: List[deque] = [deque() for _ in range(traffic.n_threads)]
    latencies: List[float] = []
    queue_delays: List[float] = []
    completions_by_tenant = [0] * traffic.n_tenants
    drops_by_tenant = [0] * traffic.n_tenants
    drops_by_core = [0] * traffic.n_threads
    dropped = 0
    completed = 0
    max_queue_depth = 0
    crashed = False

    def execute(core: int, arrival_ns: float, tenant: int, component: int) -> None:
        nonlocal completed
        body = mixture.component_transaction(component, core)
        start_ns, finish_ns = system.dispatch_transaction(
            core, body, arrival_ns=arrival_ns)
        queue_delays.append(start_ns - arrival_ns)
        latencies.append(finish_ns - arrival_ns)
        completions_by_tenant[tenant] += 1
        completed += 1

    def crash_now() -> None:
        raise CrashInjected("traffic crash under load")

    try:
        for index, arrival_ns in enumerate(arrivals):
            if (crash_at_arrival is not None and index >= crash_at_arrival
                    and system.crash_hook is None):
                system.crash_hook = crash_now
            tenant = tenants.draw(draw_rng)
            core = tenants.home_core[tenant]
            component = tenants.component[tenant]
            queue = queues[core]
            # The core works through its backlog until the new arrival.
            while queue and system.core_time_ns[core] <= arrival_ns:
                execute(core, *queue.popleft())
            if not queue and system.core_time_ns[core] <= arrival_ns:
                execute(core, arrival_ns, tenant, component)
            elif len(queue) >= traffic.queue_capacity:
                if traffic.drop_policy == "drop-oldest":
                    _, old_tenant, _ = queue.popleft()
                    drops_by_tenant[old_tenant] += 1
                    drops_by_core[core] += 1
                    dropped += 1
                    queue.append((arrival_ns, tenant, component))
                else:  # shed the newcomer
                    drops_by_tenant[tenant] += 1
                    drops_by_core[core] += 1
                    dropped += 1
            else:
                queue.append((arrival_ns, tenant, component))
            max_queue_depth = max(max_queue_depth, len(queue))
        # No more arrivals: drain every backlog to completion.
        for core, queue in enumerate(queues):
            while queue:
                execute(core, *queue.popleft())
    except CrashInjected:
        crashed = True

    admitted = traffic.arrivals - dropped
    makespan = max(system.core_time_ns[: traffic.n_threads]) if completed else 0.0
    measured = system.stats.as_dict()
    if not crashed:
        # Mirror System.run: drain for post-run invariants, but only on
        # clean completion — a crashed machine must keep its persistence
        # domain exactly as the power cut left it for recovery.
        end = system.logger.drain(makespan)
        end = system.hierarchy.drain_all(end)
        if system._tx_table:
            system._truncate_log(end)

    result = TrafficResult(
        design=design,
        offered_tx_per_s=traffic.offered_tx_per_s,
        arrivals=traffic.arrivals,
        admitted=admitted,
        completed=completed,
        dropped=dropped,
        crashed=crashed,
        makespan_ns=makespan,
        last_arrival_ns=arrivals[-1],
        mean_latency_ns=(sum(latencies) / len(latencies)) if latencies else 0.0,
        p50_latency_ns=percentile(latencies, 0.50),
        p99_latency_ns=percentile(latencies, 0.99),
        p999_latency_ns=percentile(latencies, 0.999),
        max_latency_ns=max(latencies) if latencies else 0.0,
        mean_queue_ns=(sum(queue_delays) / len(queue_delays)) if queue_delays else 0.0,
        p50_queue_ns=percentile(queue_delays, 0.50),
        p99_queue_ns=percentile(queue_delays, 0.99),
        p999_queue_ns=percentile(queue_delays, 0.999),
        max_queue_depth=max_queue_depth,
        drops_by_core=tuple(drops_by_core),
        completions_by_tenant=tuple(completions_by_tenant),
        drops_by_tenant=tuple(drops_by_tenant),
        stats=measured,
    )
    return result, system


def run_traffic(
    design: str,
    traffic: TrafficConfig,
    config=None,
    crash_at_arrival: Optional[int] = None,
) -> TrafficResult:
    """Like :func:`run_traffic_system`, without keeping the machine."""
    result, _system = run_traffic_system(
        design, traffic, config=config, crash_at_arrival=crash_at_arrival)
    return result
