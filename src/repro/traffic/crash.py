"""Crash-under-peak-load: traffic engine × fault injector composition.

Runs an open-loop scenario, cuts power once a chosen fraction of the
arrivals has been dispatched — i.e. mid-backlog, when the log region is
as full as the offered load can make it — then measures log occupancy
and runs recovery.  Sweeping the offered load yields the
recovery-time-vs-log-occupancy curve ROADMAP item 1 asks for: higher
load → deeper queues → more in-flight/undrained transactions at the cut
→ more live log entries → more recovery work.
"""

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence

from repro.faultinject.occupancy import RecoveryProfile, recovery_profile
from repro.traffic.engine import TrafficConfig, TrafficResult, run_traffic_system


@dataclass(frozen=True)
class CrashLoadPoint:
    """One (offered load → occupancy → recovery) measurement."""

    design: str
    offered_tx_per_s: float
    crash_at_arrival: int
    crashed: bool
    completed: int
    profile: RecoveryProfile

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "offered_tx_per_s": self.offered_tx_per_s,
            "crash_at_arrival": self.crash_at_arrival,
            "crashed": self.crashed,
            "completed": self.completed,
            "profile": self.profile.to_dict(),
        }


def run_crash_under_load(
    design: str,
    traffic: TrafficConfig,
    config=None,
    crash_fraction: float = 0.8,
    verify_decode: bool = False,
) -> CrashLoadPoint:
    """Crash one scenario near its load peak and profile recovery."""
    if not 0.0 < crash_fraction <= 1.0:
        raise ValueError("crash_fraction must be in (0, 1]")
    crash_at = max(int(crash_fraction * traffic.arrivals) - 1, 0)
    result, system = run_traffic_system(
        design, traffic, config=config, crash_at_arrival=crash_at)
    profile = recovery_profile(system, verify_decode=verify_decode)
    return CrashLoadPoint(
        design=design,
        offered_tx_per_s=traffic.offered_tx_per_s,
        crash_at_arrival=crash_at,
        crashed=result.crashed,
        completed=result.completed,
        profile=profile,
    )


def crash_recovery_curve(
    design: str,
    loads: Sequence[float],
    traffic: TrafficConfig,
    config=None,
    crash_fraction: float = 0.8,
) -> List[CrashLoadPoint]:
    """One crash point per offered load — the occupancy/recovery curve."""
    return [
        run_crash_under_load(
            design,
            replace(traffic, offered_tx_per_s=load),
            config=config,
            crash_fraction=crash_fraction,
        )
        for load in loads
    ]
