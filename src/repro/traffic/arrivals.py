"""Seeded open-loop arrival processes (timestamps in simulated ns).

Two models, both driven by an explicit ``random.Random`` so a traffic
run is bit-deterministic under a fixed seed:

- **poisson** — memoryless arrivals at the offered rate (exponential
  inter-arrival times), the classic open-loop client population.
- **bursty** — a two-state on/off MMPP: arrivals come only during "on"
  dwells, at ``rate / on_fraction`` so the *long-run* offered rate still
  matches the requested one, with exponentially distributed on and off
  dwell lengths.  This models synchronized client bursts (the regime
  where admission queues actually fill).
"""

import random
from typing import List

ARRIVAL_PROCESSES = ("poisson", "bursty")


def poisson_arrivals(
    rate_tx_per_ns: float, count: int, rng: random.Random
) -> List[float]:
    """``count`` Poisson arrival timestamps at the given rate."""
    if rate_tx_per_ns <= 0:
        raise ValueError("arrival rate must be positive")
    t = 0.0
    out: List[float] = []
    for _ in range(count):
        t += rng.expovariate(rate_tx_per_ns)
        out.append(t)
    return out


def bursty_arrivals(
    rate_tx_per_ns: float,
    count: int,
    rng: random.Random,
    on_fraction: float = 0.25,
    cycle_ns: float = 200_000.0,
) -> List[float]:
    """``count`` on/off MMPP arrival timestamps.

    ``on_fraction`` is the long-run fraction of time spent bursting;
    ``cycle_ns`` the mean on+off cycle length.  Within a burst the
    instantaneous rate is ``rate / on_fraction``.
    """
    if rate_tx_per_ns <= 0:
        raise ValueError("arrival rate must be positive")
    if not 0.0 < on_fraction < 1.0:
        raise ValueError("on_fraction must be in (0, 1)")
    if cycle_ns <= 0:
        raise ValueError("cycle_ns must be positive")
    burst_rate = rate_tx_per_ns / on_fraction
    mean_on = cycle_ns * on_fraction
    mean_off = cycle_ns * (1.0 - on_fraction)
    t = 0.0
    on_end = rng.expovariate(1.0 / mean_on)
    out: List[float] = []
    while len(out) < count:
        dt = rng.expovariate(burst_rate)
        if t + dt <= on_end:
            t += dt
            out.append(t)
        else:
            # The burst ended first: jump over the off dwell into the
            # next burst.  The exponential is memoryless, so simply
            # redrawing the inter-arrival there is distribution-exact.
            t = on_end + rng.expovariate(1.0 / mean_off)
            on_end = t + rng.expovariate(1.0 / mean_on)
    return out


def make_arrivals(
    process: str,
    offered_tx_per_s: float,
    count: int,
    rng: random.Random,
    on_fraction: float = 0.25,
    cycle_ns: float = 200_000.0,
) -> List[float]:
    """Dispatch on the process name; rate given in tx/s like the CLI."""
    rate_tx_per_ns = offered_tx_per_s * 1e-9
    if process == "poisson":
        return poisson_arrivals(rate_tx_per_ns, count, rng)
    if process == "bursty":
        return bursty_arrivals(
            rate_tx_per_ns, count, rng,
            on_fraction=on_fraction, cycle_ns=cycle_ns)
    raise ValueError(
        "unknown arrival process %r (choose from %s)" % (
            process, ", ".join(ARRIVAL_PROCESSES)))
