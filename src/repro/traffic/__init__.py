"""Open-loop traffic: arrivals, tenancy, admission queues, SLO sweeps.

See docs/traffic.md.  The public surface:

- :class:`TrafficConfig` / :func:`run_traffic` — one open-loop scenario
  against one design, returning a :class:`TrafficResult` with
  p50/p99/p999 commit latency (queueing included), goodput and drop
  accounting.
- :func:`run_load_sweep` / :func:`find_knee` / :func:`sweep_records` —
  designs × offered-loads sweeps (parallel, cached, deterministic) with
  overload-knee detection and BenchRecord emission.
- :func:`run_crash_under_load` / :func:`crash_recovery_curve` — the
  fault-injector composition: crash at peak backlog, then measure
  recovery work against log occupancy.
"""

from repro.traffic.arrivals import (
    ARRIVAL_PROCESSES,
    bursty_arrivals,
    make_arrivals,
    poisson_arrivals,
)
from repro.traffic.crash import (
    CrashLoadPoint,
    crash_recovery_curve,
    run_crash_under_load,
)
from repro.traffic.engine import (
    DROP_POLICIES,
    TrafficConfig,
    TrafficResult,
    percentile,
    run_traffic,
    run_traffic_system,
    traffic_config_from_dict,
    traffic_config_to_dict,
    traffic_result_from_dict,
)
from repro.traffic.sweep import (
    SweepOutcome,
    TrafficCellSpec,
    find_knee,
    resolve_traffic_cell,
    run_load_sweep,
    run_traffic_cells,
    slo_table,
    sweep_records,
)
from repro.traffic.tenancy import TenantTable

__all__ = [
    "ARRIVAL_PROCESSES",
    "DROP_POLICIES",
    "CrashLoadPoint",
    "SweepOutcome",
    "TenantTable",
    "TrafficCellSpec",
    "TrafficConfig",
    "TrafficResult",
    "bursty_arrivals",
    "crash_recovery_curve",
    "find_knee",
    "make_arrivals",
    "percentile",
    "poisson_arrivals",
    "resolve_traffic_cell",
    "run_crash_under_load",
    "run_load_sweep",
    "run_traffic",
    "run_traffic_cells",
    "run_traffic_system",
    "slo_table",
    "sweep_records",
    "traffic_config_from_dict",
    "traffic_config_to_dict",
    "traffic_result_from_dict",
]
