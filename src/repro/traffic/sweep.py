"""Offered-load sweeps: designs × loads, parallel, cached, observed.

The traffic analogue of the grid engine: each (design, offered-load)
point is resolved to an explicit serializable cell in the parent —
``REPRO_SCALE`` applied exactly once — checked against the
content-addressed cache, and only the misses fan out over a process
pool.  Assembly is by cell identity, never completion order, so a
``jobs=4`` sweep is bit-identical to a serial one.

On top of the raw points this module computes the *overload knee* (the
first offered load where tail latency has blown past the lightly-loaded
baseline while goodput has stopped following offered load), renders the
SLO table, and emits everything as BenchRecords for the PR-5
observatory.
"""

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.records import HIGHER, INFO, LOWER, BenchRecord, record
from repro.experiments.cache import PayloadCache, traffic_key_fields
from repro.experiments.parallel import CellReport, GridReport, default_jobs
from repro.experiments.serialize import (
    config_to_dict,
    stable_hash,
    strip_result_inert_encoding,
)
from repro.traffic.engine import (
    TrafficConfig,
    TrafficResult,
    run_traffic,
    traffic_config_from_dict,
    traffic_config_to_dict,
    traffic_result_from_dict,
)
from repro.workloads.mixture import blend_slug

#: Floor on arrivals after REPRO_SCALE shrinks a sweep — fewer and the
#: p99 of the sample stops meaning anything at all.
MIN_ARRIVALS = 30


@dataclass(frozen=True)
class TrafficCellSpec:
    """One fully-resolved traffic point: everything a worker needs."""

    design: str
    traffic_dict: Dict[str, Any]
    config_dict: Dict[str, Any]
    repro_scale: float

    def key_fields(self) -> Dict[str, Any]:
        return traffic_key_fields(
            self.design, self.traffic_dict, self.config_dict, self.repro_scale)

    def key(self) -> str:
        return stable_hash(self.key_fields())


def resolve_traffic_cell(
    design: str,
    traffic: TrafficConfig,
    config=None,
) -> TrafficCellSpec:
    """Resolve one (design, scenario) point, applying ``REPRO_SCALE``."""
    from repro.experiments.runner import _scale, default_config

    scale = _scale()
    config = config if config is not None else default_config()
    resolved = replace(
        traffic,
        arrivals=max(int(round(traffic.arrivals * scale)), MIN_ARRIVALS),
    )
    resolved.validate()
    return TrafficCellSpec(
        design=design,
        traffic_dict=traffic_config_to_dict(resolved),
        config_dict=config_to_dict(config),
        repro_scale=scale,
    )


def _run_traffic_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point (module-level so it pickles everywhere)."""
    from repro.experiments.megagrid import apply_injected_fault
    from repro.experiments.serialize import config_from_dict

    started = time.perf_counter()
    apply_injected_fault(payload)
    result = run_traffic(
        payload["design"],
        traffic_config_from_dict(payload["traffic_dict"]),
        config=config_from_dict(payload["config_dict"]),
    )
    return {
        "result": result.to_dict(),
        "seconds": time.perf_counter() - started,
    }


def _payload(spec: TrafficCellSpec) -> Dict[str, Any]:
    return {
        "design": spec.design,
        "traffic_dict": spec.traffic_dict,
        "config_dict": spec.config_dict,
    }


def run_traffic_cells(
    specs: List[TrafficCellSpec],
    jobs: Optional[int] = None,
    cache: Optional[PayloadCache] = None,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    fail_soft: bool = False,
) -> Tuple[List[TrafficResult], "MegaGridReport"]:
    """Execute traffic cells on the mega-grid engine, in input order.

    Per-future submission (not one batch ``pool.map``): each result
    streams into the cache the moment its future resolves, duplicate
    specs are simulated once and fanned out, and with ``fail_soft=True``
    a crashing cell becomes a typed entry in ``report.failures`` while
    every other cell completes.  The default stays fail-fast — load
    sweeps index into the flat result list positionally, so an absent
    cell raises :class:`~repro.experiments.megagrid.GridAssemblyError`
    instead of silently shifting every later position.
    """
    from repro.experiments.megagrid import (
        ExecutionPolicy,
        GridAssemblyError,
        MegaGridReport,
        execute_payloads,
    )

    jobs = jobs or default_jobs()
    report = MegaGridReport(jobs=jobs)
    started = time.perf_counter()

    keys = [spec.key() for spec in specs]
    order: Dict[str, List[int]] = {}
    for i, key in enumerate(keys):
        order.setdefault(key, []).append(i)

    results: List[Optional[TrafficResult]] = [None] * len(specs)
    reports: List[Optional[CellReport]] = [None] * len(specs)
    to_run: List[str] = []
    for key, indices in order.items():
        spec = specs[indices[0]]
        cached = (
            cache.get_payload(key, decode=traffic_result_from_dict)
            if cache is not None else None
        )
        if cached is None:
            to_run.append(key)
            continue
        for position, i in enumerate(indices):
            results[i] = cached
            reports[i] = CellReport(
                spec.design, "mix", "traffic", True, 0.0, key,
                deduped=position > 0)

    def handle_output(key: str, output: Dict[str, Any], attempts: int) -> None:
        indices = order[key]
        spec = specs[indices[0]]
        result = traffic_result_from_dict(output["result"])
        if cache is not None:
            cache.put_payload(
                key, output["result"], key_fields=spec.key_fields())
        for position, i in enumerate(indices):
            results[i] = result
            reports[i] = CellReport(
                spec.design, "mix", "traffic", position > 0,
                output["seconds"] if position == 0 else 0.0, key,
                deduped=position > 0)

    entries = [(key, _payload(specs[order[key][0]])) for key in to_run]
    _outputs, failure_map = execute_payloads(
        entries,
        _run_traffic_payload,
        ExecutionPolicy(
            jobs=jobs, retries=retries, timeout_s=timeout_s,
            fail_soft=fail_soft),
        describe=lambda key: (specs[order[key][0]].design, "mix", "traffic"),
        on_output=handle_output,
    )

    report.cells = [r for r in reports if r is not None]
    report.failures = list(failure_map.values())
    report.wall_seconds = time.perf_counter() - started
    missing = [i for i, r in enumerate(results) if r is None]
    if missing and not fail_soft:
        raise GridAssemblyError(
            "run_traffic_cells: %d cell(s) absent at indices %s"
            % (len(missing), missing))
    # Positions are preserved even under fail_soft: a failed cell stays
    # None at its own index (see report.failures) — compacting here
    # would silently shift every later cell, the exact bug this engine
    # exists to kill.
    return results, report


@dataclass
class SweepOutcome:
    """Per-design load curves plus the execution report."""

    designs: List[str]
    loads: List[float]
    traffic: TrafficConfig
    results: Dict[str, List[TrafficResult]] = field(default_factory=dict)
    report: GridReport = field(default_factory=GridReport)

    def knee(self, design: str) -> Optional[float]:
        return find_knee(self.results[design])


def run_load_sweep(
    designs: Sequence[str],
    loads: Sequence[float],
    traffic: TrafficConfig,
    config=None,
    jobs: Optional[int] = None,
    cache: Optional[PayloadCache] = None,
) -> SweepOutcome:
    """Sweep offered load across designs; deterministic for any ``jobs``."""
    designs = list(designs)
    loads = list(loads)
    specs = [
        resolve_traffic_cell(
            design, replace(traffic, offered_tx_per_s=load), config)
        for design in designs
        for load in loads
    ]
    flat, report = run_traffic_cells(specs, jobs=jobs, cache=cache)
    results: Dict[str, List[TrafficResult]] = {}
    index = 0
    for design in designs:
        results[design] = flat[index:index + len(loads)]
        index += len(loads)
    return SweepOutcome(
        designs=designs, loads=loads, traffic=traffic,
        results=results, report=report)


def find_knee(
    results: Sequence[TrafficResult],
    p99_factor: float = 3.0,
    goodput_gain: float = 0.10,
) -> Optional[float]:
    """First offered load past the overload knee, or None.

    The knee is where the two SLO curves decouple: p99 commit latency
    has risen to ``p99_factor``× the lightest point's p99 (queueing
    dominates), while goodput captured less than ``goodput_gain`` of the
    relative offered-load increase since the previous point (the machine
    stopped converting load into throughput).
    """
    points = sorted(results, key=lambda r: r.offered_tx_per_s)
    if len(points) < 2:
        return None
    base_p99 = points[0].p99_latency_ns or 1.0
    for prev, cur in zip(points, points[1:]):
        p99_blown = cur.p99_latency_ns >= p99_factor * base_p99
        offered_growth = cur.offered_tx_per_s / prev.offered_tx_per_s - 1.0
        plateaued = cur.goodput_tx_per_s < prev.goodput_tx_per_s * (
            1.0 + goodput_gain * offered_growth)
        if p99_blown and plateaued:
            return cur.offered_tx_per_s
    return None


def slo_table(outcome: SweepOutcome) -> str:
    """Human-readable SLO table, one block per design."""
    lines: List[str] = []
    header = "%12s %12s %6s %6s %6s %10s %10s %10s %8s" % (
        "offered/s", "goodput/s", "admit", "done", "drop",
        "p50(us)", "p99(us)", "p999(us)", "maxq")
    for design in outcome.designs:
        lines.append("%s  [mix %s]" % (design, blend_slug(outcome.traffic.mix)))
        lines.append(header)
        for result in outcome.results[design]:
            lines.append(
                "%12.0f %12.0f %6d %6d %6d %10.2f %10.2f %10.2f %8d" % (
                    result.offered_tx_per_s,
                    result.goodput_tx_per_s,
                    result.admitted,
                    result.completed,
                    result.dropped,
                    result.p50_latency_ns / 1000.0,
                    result.p99_latency_ns / 1000.0,
                    result.p999_latency_ns / 1000.0,
                    result.max_queue_depth,
                ))
        knee = outcome.knee(design)
        lines.append(
            "overload knee: %s" % (
                "%.0f tx/s offered" % knee if knee is not None
                else "not reached in this load range"))
        lines.append("")
    return "\n".join(lines)


def sweep_records(outcome: SweepOutcome, config=None) -> List[BenchRecord]:
    """BenchRecords for every sweep point plus per-design knee markers.

    The config digest covers the system config *and* the traffic
    scenario (minus the swept offered load, which is in the benchmark
    id), so points from different scenarios can never be compared.
    """
    if config is None:
        from repro.experiments.runner import default_config

        config = default_config()
    from repro.bench.records import repro_scale

    scenario = traffic_config_to_dict(outcome.traffic)
    scenario.pop("offered_tx_per_s")
    digest = stable_hash({
        "config": strip_result_inert_encoding(config_to_dict(config)),
        "traffic": scenario,
        "scale": repro_scale(),
    })
    records: List[BenchRecord] = []
    for design in outcome.designs:
        for result in outcome.results[design]:
            benchmark = "traffic/%s/load_%d" % (
                design, int(round(result.offered_tx_per_s)))
            records.append(record(
                benchmark, "goodput_tx_per_s", result.goodput_tx_per_s,
                unit="tx/s", direction=HIGHER, config_digest=digest))
            for metric, value in (
                ("p50_latency_ns", result.p50_latency_ns),
                ("p99_latency_ns", result.p99_latency_ns),
                ("p999_latency_ns", result.p999_latency_ns),
            ):
                records.append(record(
                    benchmark, metric, value,
                    unit="ns", direction=LOWER, config_digest=digest))
            records.append(record(
                benchmark, "drop_rate", result.drop_rate,
                direction=INFO, config_digest=digest))
        knee = outcome.knee(design)
        records.append(record(
            "traffic/%s" % design, "knee_offered_tx_per_s",
            knee if knee is not None else 0.0,
            unit="tx/s", direction=INFO, config_digest=digest))
    return records
