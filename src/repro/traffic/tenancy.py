"""Multi-tenant population: Zipfian skew, home cores, blend components.

Tenants are ranked by popularity (tenant 0 hottest) and drawn with the
same Zipf CDF the YCSB workload uses for keys.  Each tenant is pinned to
a *home core* round-robin by rank — so the hottest tenants land on
different cores — and to one blend component, drawn once at build time
by blend weight.  Pinning (rather than least-loaded placement) is what
makes skew visible: a hot tenant queues behind itself on its home core
while other cores idle, exactly the multi-tenant interference the SLO
metrics are meant to expose.
"""

import bisect
import random
from typing import List, Sequence, Tuple

from repro.workloads.ycsb import zipf_cdf


class TenantTable:
    """Immutable tenant→(core, component) map plus the popularity draw."""

    def __init__(
        self,
        n_tenants: int,
        zipf_theta: float,
        n_cores: int,
        blend: Sequence[Tuple[str, float]],
        rng: random.Random,
    ) -> None:
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_tenants = n_tenants
        self.zipf_theta = zipf_theta
        self._cdf = zipf_cdf(n_tenants, zipf_theta)
        self.home_core: List[int] = [t % n_cores for t in range(n_tenants)]
        cumulative: List[float] = []
        acc = 0.0
        for _, weight in blend:
            acc += weight
            cumulative.append(acc)
        cumulative[-1] = max(cumulative[-1], 1.0)
        self.component: List[int] = [
            bisect.bisect_left(cumulative, rng.random())
            for _ in range(n_tenants)
        ]

    def draw(self, rng: random.Random) -> int:
        """Draw a tenant id by Zipf popularity."""
        rank = bisect.bisect_left(self._cdf, rng.random())
        return min(rank, self.n_tenants - 1)
