"""MorLog reproduction: morphable hardware logging for atomic persistence.

Public API surface:

- :func:`repro.core.make_system` / :data:`repro.core.DESIGN_NAMES` — build
  one of the paper's six evaluated designs.
- :class:`repro.core.System` — the simulated machine (transactions, crash
  injection, recovery).
- :class:`repro.common.config.SystemConfig` — the Table III configuration.
- :mod:`repro.workloads` — the Table IV benchmark workloads.
- :mod:`repro.experiments` — regenerate every paper table and figure.
- :mod:`repro.encoding` — the SLDE/DLDC/CRADE/FPC codec stack, usable
  standalone.
"""

from repro.common.config import SystemConfig
from repro.core import DESIGN_NAMES, System, TxContext, make_system

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "DESIGN_NAMES",
    "System",
    "TxContext",
    "make_system",
    "__version__",
]
