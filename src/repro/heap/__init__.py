"""Persistent heap: the pmalloc/pfree interface the workloads use.

The paper's macro-benchmarks are modified WHISPER applications that
allocate through pmalloc/pfree instead of mmap (section VI-A); the
micro-benchmarks build their data structures the same way.  The heap hands
out word-aligned extents of the NVMM address range.
"""

from repro.heap.allocator import PersistentHeap

__all__ = ["PersistentHeap"]
