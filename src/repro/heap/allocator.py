"""A segregated-freelist bump allocator over the NVMM range.

Deliberately simple and deterministic: allocation metadata lives on the
host (the paper's allocator metadata persistence is orthogonal to its
logging study), but the *placement* behaviour — size-class reuse, bump
growth, cache-line alignment — matters for locality and is modelled.
"""

from typing import Dict, List

from repro.common.bitops import align_up
from repro.common.errors import AllocationError

_LINE = 64


class PersistentHeap:
    """pmalloc/pfree over ``[base, base + size)``."""

    def __init__(self, base: int, size: int) -> None:
        if base % _LINE:
            raise ValueError("heap base must be cache-line aligned")
        self.base = base
        self.size = size
        self._bump = base
        self._end = base + size
        self._free_lists: Dict[int, List[int]] = {}
        self._sizes: Dict[int, int] = {}

    @staticmethod
    def _size_class(nbytes: int) -> int:
        """Round to a cache-line multiple; nodes never straddle lines."""
        return align_up(max(nbytes, 8), _LINE)

    def pmalloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns a 64-byte-aligned address."""
        cls = self._size_class(nbytes)
        free = self._free_lists.get(cls)
        if free:
            addr = free.pop()
        else:
            addr = self._bump
            if addr + cls > self._end:
                raise AllocationError(
                    "heap exhausted: %d bytes requested" % nbytes
                )
            self._bump = addr + cls
        self._sizes[addr] = cls
        return addr

    def pfree(self, addr: int) -> None:
        cls = self._sizes.pop(addr, None)
        if cls is None:
            raise AllocationError("pfree of unallocated address %#x" % addr)
        self._free_lists.setdefault(cls, []).append(addr)

    @property
    def allocated_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def high_water_mark(self) -> int:
        return self._bump - self.base
