"""Endurance analysis (paper section VI-C).

NVM cells wear out after a bounded number of programs; reducing the number
of written bits improves lifetime.  The array tracks per-word cumulative
programmed-cell counts; this module turns them into the metrics the
paper's endurance argument rests on: total cell programs, the wear of the
hottest word (which bounds unleveled lifetime), and an estimated lifetime
under ideal wear leveling (where lifetime scales with *average* wear).
"""

from dataclasses import dataclass

from repro.nvm.array import NvmArray

# A mid-range RRAM cell endurance (programs per cell).
DEFAULT_CELL_ENDURANCE = 1e8


@dataclass(frozen=True)
class EnduranceReport:
    """Wear statistics for one run."""

    total_cell_programs: int
    words_touched: int
    max_word_wear: int
    mean_word_wear: float
    # Programs a single cell can take before failing.
    cell_endurance: float

    @property
    def wear_imbalance(self) -> float:
        """Hottest word's wear over the mean (1.0 = perfectly level).

        A zero mean with a worn hottest word is unbounded imbalance, not
        a level array — reports built from inconsistent wear tables used
        to read as perfectly level here.
        """
        if self.mean_word_wear == 0:
            return 1.0 if self.max_word_wear == 0 else float("inf")
        return self.max_word_wear / self.mean_word_wear

    def lifetime_runs_unleveled(self) -> float:
        """How many identical runs until the hottest word wears out."""
        if self.max_word_wear == 0:
            return float("inf")
        # A word has 22 data cells; wear counts cell programs, so the
        # per-cell average within the hottest word is wear / 22.
        return self.cell_endurance / (self.max_word_wear / 22.0)

    def lifetime_runs_leveled(self) -> float:
        """Runs until wear-out under ideal wear leveling.

        Ideal leveling spreads all programs over the touched footprint;
        lifetime scales with the *average* wear rather than the hottest
        word's.
        """
        if self.mean_word_wear == 0:
            return float("inf")
        return self.cell_endurance / (self.mean_word_wear / 22.0)


def endurance_report(
    array: NvmArray, cell_endurance: float = DEFAULT_CELL_ENDURANCE
) -> EnduranceReport:
    """Summarize the array's wear table."""
    wear = array.wear
    total = sum(wear.values())
    touched = len(wear)
    return EnduranceReport(
        total_cell_programs=total,
        words_touched=touched,
        max_word_wear=max(wear.values()) if wear else 0,
        mean_word_wear=(total / touched) if touched else 0.0,
        cell_endurance=cell_endurance,
    )


def lifetime_improvement(
    baseline: EnduranceReport, improved: EnduranceReport
) -> float:
    """Relative lifetime gain on an equal-capacity device.

    The paper's §VI-C argument: with wear leveling spreading programs
    over the same physical array, lifetime is inversely proportional to
    the total number of cell programs per unit of work — so writing
    fewer log bits directly extends the device's life.
    """
    if improved.total_cell_programs == 0:
        return 1.0 if baseline.total_cell_programs == 0 else float("inf")
    return baseline.total_cell_programs / improved.total_cell_programs
