"""TLC RRAM main-memory model (paper Table III).

- :mod:`repro.nvm.cell` — per-cell program cost with data-comparison write.
- :mod:`repro.nvm.array` — the byte-addressable NVMM array storing encoded
  words (cell levels + sideband tags) with per-write cost accounting.
- :mod:`repro.nvm.timing` — channel/bank occupancy and the FRFCFS-WQF
  write-queue model.
- :mod:`repro.nvm.module` — the NVM module controller with the SLDE codec
  on its write and read paths (paper Figure 10).
"""

from repro.nvm.array import NvmArray, StoredWord, WriteCost
from repro.nvm.cell import program_cost
from repro.nvm.endurance import EnduranceReport, endurance_report
from repro.nvm.module import NvmModule, WriteKind
from repro.nvm.timing import BankTiming, WriteQueue
from repro.nvm.wear_leveling import StartGapRemapper

__all__ = [
    "NvmArray",
    "StoredWord",
    "WriteCost",
    "program_cost",
    "EnduranceReport",
    "endurance_report",
    "NvmModule",
    "WriteKind",
    "BankTiming",
    "WriteQueue",
    "StartGapRemapper",
]
