"""Channel/bank occupancy and the FRFCFS-WQF write-queue model.

The paper's memory controller is FRFCFS-WQF with a 64-entry write queue and
an 80 % drain watermark (Table III).  We approximate it:

- Addresses interleave across channels, then banks, at cache-line
  granularity.
- Each bank has a ``busy_until`` time; a request begins service at
  ``max(arrival, busy_until)`` and occupies the bank for its latency.
- Writes are *posted*: the producer only waits until the write is accepted
  into the channel's write queue (full queue => stall).  Acceptance is the
  ADR persistence point (section III-A): once in the controller the data
  survive power loss.
- Reads contend with in-flight writes through bank occupancy; while the
  queue is above the drain watermark, reads additionally wait for the
  queue to drain back to the watermark (the WQF "write drain" phase).
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from repro.common.config import NVMConfig
from repro.common.stats import StatGroup


@dataclass(frozen=True)
class WriteSchedule:
    """Outcome of posting one write."""

    accept_ns: float   # when the write entered the queue (persistence point)
    finish_ns: float   # when the cells finished programming
    stall_ns: float    # how long the producer waited for queue space


class WriteQueue:
    """One channel's bounded write queue."""

    def __init__(self, capacity: int, watermark: float) -> None:
        if capacity <= 0:
            raise ValueError("write queue needs at least one entry")
        self.capacity = capacity
        self.watermark_entries = max(1, int(capacity * watermark))
        self._service_ends: Deque[float] = deque()

    def _prune(self, now_ns: float) -> None:
        while self._service_ends and self._service_ends[0] <= now_ns:
            self._service_ends.popleft()

    def occupancy(self, now_ns: float) -> int:
        self._prune(now_ns)
        return len(self._service_ends)

    def accept_time(self, now_ns: float) -> float:
        """Earliest time a new write can enter the queue."""
        self._prune(now_ns)
        if len(self._service_ends) < self.capacity:
            return now_ns
        # Wait for the oldest in-flight write to finish.
        overflow = len(self._service_ends) - self.capacity + 1
        return self._service_ends[overflow - 1]

    def drain_time_to_watermark(self, now_ns: float) -> float:
        """Time at which occupancy falls back to the watermark."""
        self._prune(now_ns)
        excess = len(self._service_ends) - self.watermark_entries
        if excess <= 0:
            return now_ns
        return self._service_ends[excess - 1]

    def push(self, service_end_ns: float) -> None:
        # Service ends are monotone per channel because banks serialize,
        # but cross-bank writes may complete out of order; keep sorted so
        # drain queries stay correct.
        if self._service_ends and service_end_ns < self._service_ends[-1]:
            items = sorted(list(self._service_ends) + [service_end_ns])
            self._service_ends = deque(items)
        else:
            self._service_ends.append(service_end_ns)


class BankTiming:
    """Per-bank occupancy plus per-channel write queues."""

    def __init__(self, config: NVMConfig, stats: StatGroup, line_bytes: int = 64) -> None:
        self._config = config
        self._line_bytes = line_bytes
        self._busy_until: Dict[Tuple[int, int], float] = {}
        self._queues: List[WriteQueue] = [
            WriteQueue(config.write_queue_entries, config.drain_watermark)
            for _ in range(config.channels)
        ]
        self.stats = stats

    def location(self, addr: int) -> Tuple[int, int]:
        """Map an address to (channel, bank) by line interleaving."""
        line = addr // self._line_bytes
        channel = line % self._config.channels
        bank = (line // self._config.channels) % (
            self._config.banks * self._config.ranks
        )
        return channel, bank

    def _acquire(self, channel: int, bank: int, start_ns: float, duration_ns: float) -> Tuple[float, float]:
        key = (channel, bank)
        begin = max(start_ns, self._busy_until.get(key, 0.0))
        end = begin + duration_ns
        self._busy_until[key] = end
        return begin, end

    def read(self, addr: int, now_ns: float) -> float:
        """Schedule a read; returns its completion time."""
        channel, bank = self.location(addr)
        queue = self._queues[channel]
        start = now_ns
        if queue.occupancy(now_ns) > queue.watermark_entries:
            # Write-drain phase: reads wait for the queue to fall back.
            drain = queue.drain_time_to_watermark(now_ns)
            if drain > start:
                self.stats.add("read_drain_stall_ns", drain - start)
                start = drain
        duration = self._config.read_latency_ns + self._config.access_overhead_ns
        _begin, end = self._acquire(channel, bank, start, duration)
        self.stats.add("reads")
        return end

    def write(self, addr: int, now_ns: float, latency_ns: float) -> WriteSchedule:
        """Post a write; the producer resumes at ``accept_ns``."""
        channel, bank = self.location(addr)
        queue = self._queues[channel]
        accept = queue.accept_time(now_ns)
        stall = accept - now_ns
        if stall > 0:
            self.stats.add("write_queue_stall_ns", stall)
        duration = latency_ns + self._config.access_overhead_ns
        _begin, end = self._acquire(channel, bank, accept, duration)
        queue.push(end)
        self.stats.add("writes")
        return WriteSchedule(accept_ns=accept, finish_ns=end, stall_ns=stall)

    def queue_occupancy(self, channel: int, now_ns: float) -> int:
        return self._queues[channel].occupancy(now_ns)

    def reset(self) -> None:
        self._busy_until.clear()
        for queue in self._queues:
            queue._service_ends.clear()
