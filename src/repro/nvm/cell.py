"""Per-cell TLC program cost with data-comparison write (DCW).

DCW (Yang et al., ISCAS 2007) reads the old cell contents and programs only
the cells whose target level differs.  Programming a TLC cell to level L
costs the Table III latency/energy for L; the cells of one write program in
parallel, so write latency is the *maximum* per-cell latency while energy
is the *sum*.
"""

from dataclasses import dataclass
from typing import Sequence

from repro.common.config import NVMConfig


@dataclass(frozen=True)
class CellProgramCost:
    """Cost of programming one group of cells under DCW."""

    cells_programmed: int
    latency_ns: float
    energy_pj: float

    def merged(self, other: "CellProgramCost") -> "CellProgramCost":
        """Combine two groups programmed in parallel."""
        return CellProgramCost(
            cells_programmed=self.cells_programmed + other.cells_programmed,
            latency_ns=max(self.latency_ns, other.latency_ns),
            energy_pj=self.energy_pj + other.energy_pj,
        )


ZERO_COST = CellProgramCost(0, 0.0, 0.0)


def _cost_tables(config: NVMConfig):
    """Per-level latency/energy lookup lists, cached on the config object."""
    tables = getattr(config, "_cost_tables_cache", None)
    if tables is None:
        latency = [config.write_latency_ns(level) for level in range(8)]
        energy = [config.write_energy_pj(level) for level in range(8)]
        tables = (latency, energy)
        object.__setattr__(config, "_cost_tables_cache", tables)
    return tables


def program_cost(
    old_levels: Sequence[int],
    new_levels: Sequence[int],
    config: NVMConfig,
) -> CellProgramCost:
    """DCW cost of moving cells from ``old_levels`` to ``new_levels``.

    The sequences must be equal length; a *silent* write (identical levels)
    programs zero cells and costs nothing.
    """
    if len(old_levels) != len(new_levels):
        raise ValueError("old and new cell images differ in length")
    if old_levels == new_levels:
        return ZERO_COST
    latency_table, energy_table = _cost_tables(config)
    programmed = 0
    latency = 0.0
    energy = 0.0
    for old, new in zip(old_levels, new_levels):
        if old == new:
            continue
        programmed += 1
        cell_latency = latency_table[new]
        if cell_latency > latency:
            latency = cell_latency
        energy += energy_table[new]
    return CellProgramCost(programmed, latency, energy)
