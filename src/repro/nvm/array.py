"""The NVMM array: encoded word storage with per-write cost accounting.

Each 64-bit word slot owns 22 TLC data cells plus a small group of *tag
cells* holding the sideband metadata (encoding type flag, expansion policy,
DLDC dirty flag).  A write encodes the word (done by the module controller),
maps the payload onto cell levels, and programs data and tag cells under
DCW; cells beyond the encoded payload keep their old levels — that is where
expansion coding and DLDC save writes.

The array also keeps the *logical* value of every word so recovery and
tests can check decode(read(addr)) against ground truth, and supports
snapshot/restore for crash-injection testing.
"""

from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.common.bitops import (
    WORD_BYTES,
    WORD_MASK,
    align_down,
    mask_word,
    split_cells,
)
from repro.common.config import NVMConfig
from repro.common.stats import StatGroup
from repro.encoding.base import EncodedWord
from repro.encoding.expansion import (
    CELLS_PER_WORD,
    ExpansionPolicy,
    cells_used,
    map_bits_to_cells,
)
from repro.nvm.cell import ZERO_COST, CellProgramCost, program_cost

# Sideband metadata per word: 3-bit encoding type flag, 2-bit expansion
# policy, 8-bit dirty flag, plus up to 8 codec tag-payload bits (FPC
# prefix, flip bit, ...) => 21 bits => 7 tag cells at 3 bits per cell.
TAG_BITS = 21
TAG_CELLS = (TAG_BITS + 2) // 3

_METHOD_IDS = {"raw": 0, "fpc": 1, "crade": 2, "dldc": 3, "flip-n-write": 4, "slde": 5}
_POLICY_IDS = {ExpansionPolicy.RAW: 0, ExpansionPolicy.EXPAND2: 1, ExpansionPolicy.EXPAND1: 2}


@dataclass(slots=True)
class StoredWord:
    """Physical state of one word slot."""

    logical: int
    data_cells: Tuple[int, ...]
    tag_cells: Tuple[int, ...]
    encoded: Optional[EncodedWord]

    @staticmethod
    def pristine() -> "StoredWord":
        # Slot updates replace the cell tuples wholesale (tuples are
        # immutable), so every pristine slot can share these constants.
        return StoredWord(0, _PRISTINE_DATA_CELLS, _PRISTINE_TAG_CELLS, None)


_PRISTINE_DATA_CELLS = (0,) * CELLS_PER_WORD
_PRISTINE_TAG_CELLS = (0,) * TAG_CELLS


@dataclass(frozen=True)
class WriteCost:
    """Accounting result of one word write."""

    cells_programmed: int
    bits_written: int
    latency_ns: float
    energy_pj: float
    silent: bool

    @staticmethod
    def zero() -> "WriteCost":
        return WriteCost(0, 0, 0.0, 0.0, True)

    def merged(self, other: "WriteCost") -> "WriteCost":
        return WriteCost(
            cells_programmed=self.cells_programmed + other.cells_programmed,
            bits_written=self.bits_written + other.bits_written,
            latency_ns=max(self.latency_ns, other.latency_ns),
            energy_pj=self.energy_pj + other.energy_pj,
            silent=self.silent and other.silent,
        )


def _tag_value(encoded: EncodedWord) -> int:
    method = _METHOD_IDS.get(encoded.method, 7)
    policy = _POLICY_IDS[encoded.policy]
    dirty = encoded.dirty_mask or 0
    tag_payload = encoded.tag_payload & 0xFF
    return method | (policy << 3) | (dirty << 5) | (tag_payload << 13)


@lru_cache(maxsize=1 << 14)
def _tag_cells(tag_value: int) -> Tuple[int, ...]:
    return tuple(split_cells(tag_value, TAG_BITS, 3))


class NvmArray:
    """Sparse word-granularity NVMM array."""

    def __init__(self, config: NVMConfig, stats: Optional[StatGroup] = None) -> None:
        self._config = config
        self._words: Dict[int, StoredWord] = {}
        self.stats = stats if stats is not None else StatGroup("nvm_array")
        # Per-word cumulative programmed-cell counts (endurance, §VI-C).
        self.wear: Dict[int, int] = {}
        # Active logical-write journal (crash-injection recovery probes).
        self._journal: Optional[Dict[int, Optional[int]]] = None

    @staticmethod
    def word_addr(addr: int) -> int:
        return align_down(addr, WORD_BYTES)

    def _slot(self, addr: int) -> StoredWord:
        waddr = self.word_addr(addr)
        slot = self._words.get(waddr)
        if slot is None:
            slot = StoredWord.pristine()
            self._words[waddr] = slot
        return slot

    def write_word(self, addr: int, encoded: EncodedWord, logical: int) -> WriteCost:
        """Program one encoded word; returns the DCW cost.

        ``logical`` is the decoded value the slot now represents (kept so
        reads and recovery can be checked against ground truth).  A silent
        encoding programs nothing and leaves the slot untouched.
        """
        if encoded.silent:
            self.stats.add("silent_word_writes")
            return WriteCost.zero()
        slot = self._slot(addr)
        mapped = map_bits_to_cells(
            encoded.payload, encoded.payload_bits, encoded.policy
        )
        if len(mapped) == CELLS_PER_WORD:
            new_data = mapped
        else:
            new_data = mapped + slot.data_cells[len(mapped):]
        data_cost = program_cost(slot.data_cells, new_data, self._config)

        tag_cost = ZERO_COST
        new_tags = slot.tag_cells
        if encoded.tag_bits > 0 or encoded.method != "raw":
            new_tags = _tag_cells(_tag_value(encoded))
            tag_cost = program_cost(slot.tag_cells, new_tags, self._config)

        slot.logical = mask_word(logical)
        slot.data_cells = new_data
        slot.tag_cells = new_tags
        slot.encoded = encoded

        total = data_cost.merged(tag_cost)
        if total.cells_programmed:
            waddr = self.word_addr(addr)
            self.wear[waddr] = self.wear.get(waddr, 0) + total.cells_programmed
        bits = encoded.total_bits
        self.stats.add("word_writes")
        self.stats.add("cells_programmed", total.cells_programmed)
        self.stats.add("bits_written", bits)
        self.stats.add("energy_pj", total.energy_pj)
        return WriteCost(
            cells_programmed=total.cells_programmed,
            bits_written=bits,
            latency_ns=total.latency_ns,
            energy_pj=total.energy_pj,
            silent=total.cells_programmed == 0,
        )

    def read_word(self, addr: int) -> StoredWord:
        """Return the stored state of a word slot (pristine if unwritten)."""
        waddr = self.word_addr(addr)
        return self._words.get(waddr, StoredWord.pristine())

    def read_logical(self, addr: int) -> int:
        return self.read_word(addr).logical

    def write_logical(self, addr: int, value: int) -> None:
        """Set a slot's logical value without cost accounting.

        Used by the recovery routine, which copies log data to home
        locations outside the measured execution window.
        """
        if self._journal is not None:
            waddr = self.word_addr(addr)
            if waddr not in self._journal:
                slot = self._words.get(waddr)
                self._journal[waddr] = slot.logical if slot is not None else None
        self._slot(addr).logical = mask_word(value)

    def bulk_write_logical(self, addrs, values) -> None:
        """Install many logical words at once (trace-replay setup path).

        Semantically ``write_logical`` in a loop, with the per-call
        aligning/journal/dict overhead hoisted out; replaying a recorded
        setup image is pure data movement, so this is the hot path of
        :func:`repro.replay.replayer.apply_trace_setup`.
        """
        align = ~(WORD_BYTES - 1)
        if not self._words and self._journal is None:
            # Empty array (a freshly reset machine): build the slot map
            # in one comprehension.  Duplicate addresses keep the last
            # value, same as sequential writes.
            self._words = {
                addr & align: StoredWord(
                    value & WORD_MASK, _PRISTINE_DATA_CELLS, _PRISTINE_TAG_CELLS, None
                )
                for addr, value in zip(addrs, values)
            }
            return
        if self._journal is not None:
            for addr, value in zip(addrs, values):
                self.write_logical(addr, value)
            return
        words = self._words
        for addr, value in zip(addrs, values):
            waddr = addr & align
            slot = words.get(waddr)
            if slot is None:
                slot = StoredWord.pristine()
                words[waddr] = slot
            slot.logical = value & WORD_MASK

    @contextmanager
    def journaled_logical_writes(self):
        """Roll back every :meth:`write_logical` made inside the block.

        The crash-point sweep probes recovery against the *live* array
        mid-run; recovery only mutates logical values, so journaling the
        first-touch old value of each written word (and dropping slots
        recovery created from pristine) restores the array exactly.
        Cheaper than :meth:`snapshot`, which copies every slot.
        """
        if self._journal is not None:
            raise RuntimeError("logical-write journal cannot nest")
        self._journal = {}
        try:
            yield self
        finally:
            journal, self._journal = self._journal, None
            for waddr, old in journal.items():
                if old is None:
                    self._words.pop(waddr, None)
                else:
                    self._words[waddr].logical = old

    def written_addresses(self, lo: int, hi: int) -> list:
        """Sorted word addresses with a slot allocated in ``[lo, hi)``.

        Design-private recovery (InCLL embedded slots, CoW page tables)
        heap-scans its durable region through this accessor; the array
        is sparse, so only slots that were ever written enumerate.
        """
        return sorted(addr for addr in self._words if lo <= addr < hi)

    def snapshot(self) -> Dict[int, StoredWord]:
        """Copy the persistent state for crash-injection tests."""
        return {
            addr: StoredWord(s.logical, s.data_cells, s.tag_cells, s.encoded)
            for addr, s in self._words.items()
        }

    def restore(self, snapshot: Dict[int, StoredWord]) -> None:
        self._words = {
            addr: StoredWord(s.logical, s.data_cells, s.tag_cells, s.encoded)
            for addr, s in snapshot.items()
        }

    def __len__(self) -> int:
        return len(self._words)
