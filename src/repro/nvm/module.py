"""NVM module controller with the SLDE codec (paper Figure 10).

The module sits between the memory bus and the NVMM array.  Its write path
encodes incoming data — with the configured general-purpose codec for
in-place data, and with SLDE (DLDC + alternative, least cost wins) for log
data — then programs cells under DCW and books bank/queue timing.  The read
path decodes stored words.

Write requests and their sizes:

- a *data line* write is one 64-byte request (8 words, each encoded
  independently, programmed in parallel);
- a *log entry* write is one request carrying the entry's metadata words
  plus its undo/redo data words;
- both count as one entry in the paper's "NVMM write traffic" metric.
"""

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.bitops import WORD_BYTES, WORDS_PER_LINE, mask_word
from repro.common.config import EncodingConfig, NVMConfig
from repro.common.stats import StatGroup
from repro.encoding import make_codec
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.memo import MemoConfig
from repro.encoding.slde import LogWriteContext, SldeCodec
from repro.nvm.array import NvmArray, WriteCost
from repro.nvm.timing import BankTiming, WriteSchedule


class WriteKind(enum.Enum):
    """What a write request carries, for traffic breakdown stats."""

    DATA = "data"
    LOG = "log"
    COMMIT = "commit"


@dataclass(frozen=True)
class LogDataWord:
    """One word of log data handed to the module for encoding.

    ``context`` carries the dirty flag and old value the SLDE/DLDC path
    needs; None means the producer has no dirty information (e.g. the FWB
    baseline without SLDE) and the word takes the alternative codec path.
    """

    logical: int
    context: Optional[LogWriteContext] = None


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one write request."""

    schedule: WriteSchedule
    cost: WriteCost
    encoded_words: Tuple[EncodedWord, ...]


class NvmModule:
    """The NVMM module: codec + array + timing."""

    def __init__(
        self,
        nvm_config: NVMConfig,
        encoding_config: EncodingConfig,
        stats: Optional[StatGroup] = None,
        line_bytes: int = 64,
    ) -> None:
        self.stats = stats if stats is not None else StatGroup("nvm_module")
        self.array = NvmArray(nvm_config, self.stats)
        self.timing = BankTiming(nvm_config, self.stats, line_bytes)
        self._nvm_config = nvm_config
        self._encoding_config = encoding_config
        memo = MemoConfig(
            enabled=encoding_config.codec_memo,
            entries=encoding_config.codec_memo_entries,
        )
        self.data_codec: WordCodec = make_codec(
            encoding_config.data_codec, encoding_config.expansion_enabled, memo
        )
        self.log_codec: WordCodec = make_codec(
            encoding_config.log_codec, encoding_config.expansion_enabled, memo
        )
        # Secure-NVMM model (section IV-D).  Encryption only changes what
        # the cells see (ciphertext entropy / dirtiness); the array keeps
        # plaintext as the logical ground truth, so decode verification is
        # disabled in secure modes.
        self._secure = encoding_config.secure_mode
        self._line_epoch: dict = {}
        # Fault-injection plan (installed by System.install_crash_plan):
        # fires "data-writeback" before any in-place line write programs
        # cells, so crash schedules can cut power at every write-ahead
        # boundary regardless of which layer issued the write.
        self.crash_plan = None
        # Trace bus (installed via set_tracer); observation only.
        self.tracer = None
        # Simulated timestamp of the in-flight log write, so the SLDE
        # decision hook (which fires mid-encode, with no clock in scope)
        # can stamp its events.
        self._trace_now = 0.0

    def set_tracer(self, bus) -> None:
        """Attach a trace bus; also taps the SLDE size comparator."""
        self.tracer = bus
        if isinstance(self.log_codec, SldeCodec):
            self.log_codec.decision_hook = self._emit_slde_decision

    def memo_stats(self) -> dict:
        """Codec-memo counters for both codecs, canonically ordered.

        ``{"data.<memo>": counters, "log.<memo>": counters}`` — empty
        when memoization is disabled.  Surfaced by ``metrics_snapshot``
        under its ``memo`` key so bench records capture cache
        effectiveness alongside throughput.
        """
        stats = {}
        for prefix, codec in (("data", self.data_codec), ("log", self.log_codec)):
            for name, counters in codec.memo_stats().items():
                stats["%s.%s" % (prefix, name)] = counters
        return dict(sorted(stats.items()))

    def _emit_slde_decision(
        self, word, chosen, chosen_bits, rejected, rejected_bits, silent
    ) -> None:
        if self.tracer is None:
            return
        args = {"chosen": chosen, "chosen_bits": chosen_bits, "silent": silent}
        if rejected is not None:
            args["rejected"] = rejected
            args["rejected_bits"] = rejected_bits
        self.tracer.emit("slde-decision", "codec", self._trace_now, **args)

    @staticmethod
    def _cipher(addr: int, value: int, epoch: int = 0) -> int:
        """A stand-in block cipher: a 64-bit mix of (addr, value, epoch)."""
        x = (value ^ (addr * 0x9E3779B97F4A7C15) ^ (epoch * 0xBF58476D1CE4E5B9)) & ((1 << 64) - 1)
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
        return x ^ (x >> 31)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _write_words(
        self,
        addr: int,
        encoded: Sequence[EncodedWord],
        logicals: Sequence[int],
        now_ns: float,
        kind: WriteKind,
    ) -> WriteResult:
        cost = WriteCost.zero()
        for i, (enc, logical) in enumerate(zip(encoded, logicals)):
            word_cost = self.array.write_word(addr + i * WORD_BYTES, enc, logical)
            cost = cost.merged(word_cost)
        if cost.silent:
            # Nothing was programmed: the request is elided entirely.
            schedule = WriteSchedule(accept_ns=now_ns, finish_ns=now_ns, stall_ns=0.0)
            self.stats.add("silent_requests")
        else:
            schedule = self.timing.write(addr, now_ns, cost.latency_ns)
            self.stats.add("%s_writes" % kind.value)
            self.stats.add("%s_bits" % kind.value, cost.bits_written)
            self.stats.add("%s_energy_pj" % kind.value, cost.energy_pj)
        if self.tracer is not None:
            self.tracer.emit(
                "nvm-write",
                "nvm",
                now_ns,
                addr=addr,
                dur_ns=max(schedule.finish_ns - now_ns, 0.0),
                kind=kind.value,
                bits=cost.bits_written,
                energy_pj=cost.energy_pj,
                silent=cost.silent,
                stall_ns=schedule.stall_ns,
            )
        return WriteResult(schedule, cost, tuple(encoded))

    def write_data_line(
        self, addr: int, words: Sequence[int], now_ns: float
    ) -> WriteResult:
        """Write one in-place 64-byte cache line."""
        if len(words) != WORDS_PER_LINE:
            raise ValueError("a data line write carries exactly 8 words")
        if self.crash_plan is not None:
            self.crash_plan.fire("data-writeback", addr=addr)
        epoch = 0
        if self._secure == "full":
            # Naive encryption: the whole line re-encrypts with a new
            # counter on every write — everything turns dirty.
            epoch = self._line_epoch.get(addr, 0) + 1
            self._line_epoch[addr] = epoch
        news = [mask_word(word) for word in words]
        if self._secure == "none":
            olds = [
                self.array.read_logical(addr + i * WORD_BYTES)
                for i in range(len(news))
            ]
            encoded = self.data_codec.encode_line(news, olds)
        elif self._secure == "deuce":
            # DEUCE: only changed words are re-encrypted; the cipher
            # text of an unchanged word stays put (DCW-silent).
            encoded = self.data_codec.encode_line(
                [
                    self._cipher(addr + i * WORD_BYTES, new)
                    for i, new in enumerate(news)
                ]
            )
        else:
            encoded = self.data_codec.encode_line(
                [
                    self._cipher(addr + i * WORD_BYTES, new, epoch)
                    for i, new in enumerate(news)
                ]
            )
        return self._write_words(addr, encoded, news, now_ns, WriteKind.DATA)

    def encode_log_words(
        self,
        meta_words: Sequence[int],
        undo: Optional[LogDataWord] = None,
        redo: Optional[LogDataWord] = None,
    ) -> Tuple[List[EncodedWord], List[int]]:
        """Encode a log entry's words (metadata first, then undo, then redo).

        Metadata words always take the alternative/general codec (Figure 4
        compresses log metadata with FPC).  Undo+redo pairs respect the
        never-both-DLDC rule via :meth:`SldeCodec.encode_undo_redo_pair`.
        """
        logicals: List[int] = [mask_word(meta) for meta in meta_words]
        # Metadata words batch through the general codec in one call.
        encoded: List[EncodedWord] = list(self.data_codec.encode_line(logicals))

        # The array keeps plaintext as the logical ground truth; secure
        # modes only change what the cells (and costs) see.
        plain = [item.logical if item is not None else None for item in (undo, redo)]
        if self._secure != "none":
            undo, redo = self._encrypt_log_words(undo, redo)

        slde = self.log_codec if isinstance(self.log_codec, SldeCodec) else None
        if undo is not None and redo is not None and slde is not None:
            mask = 0xFF
            if redo.context is not None:
                mask = redo.context.dirty_mask
            undo_enc, redo_enc = slde.encode_undo_redo_pair(
                undo.logical, redo.logical, mask
            )
            encoded.extend([undo_enc, redo_enc])
            logicals.extend([mask_word(plain[0]), mask_word(plain[1])])
            return encoded, logicals

        for item, plain_value in zip((undo, redo), plain):
            if item is None:
                continue
            if slde is not None and item.context is not None:
                encoded.append(slde.encode_log(item.logical, item.context))
            else:
                encoded.append(self.log_codec.encode(item.logical))
            logicals.append(mask_word(plain_value))
        return encoded, logicals

    def _encrypt_log_words(self, undo, redo):
        """Apply the secure-mode transform to a log entry's data words.

        DEUCE keeps completely-clean words clean (silent log writes still
        vanish) but a dirty word re-encrypts wholesale: all bytes dirty,
        ciphertext incompressible.  Naive ("full") encryption dirties
        everything unconditionally.
        """
        out = []
        for item in (undo, redo):
            if item is None:
                out.append(None)
                continue
            ctx = item.context
            if self._secure == "deuce" and ctx is not None and ctx.dirty_mask == 0:
                out.append(item)  # clean word stays clean under DEUCE
                continue
            cipher = self._cipher(0, item.logical, 1)
            new_ctx = None
            if ctx is not None:
                new_ctx = LogWriteContext(
                    old_word=None, dirty_mask=0xFF, allow_dldc=ctx.allow_dldc
                )
            out.append(LogDataWord(cipher, new_ctx))
        return out[0], out[1]

    def write_log_entry(
        self,
        addr: int,
        meta_words: Sequence[int],
        now_ns: float,
        undo: Optional[LogDataWord] = None,
        redo: Optional[LogDataWord] = None,
        kind: WriteKind = WriteKind.LOG,
    ) -> WriteResult:
        """Write one log entry (or commit record) to the log region."""
        if self.tracer is not None:
            self._trace_now = now_ns
        encoded, logicals = self.encode_log_words(meta_words, undo, redo)
        return self._write_words(addr, encoded, logicals, now_ns, kind)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_line(self, addr: int, now_ns: float) -> Tuple[Tuple[int, ...], float]:
        """Read a 64-byte line; returns (words, completion time)."""
        finish = self.timing.read(addr, now_ns)
        words = tuple(
            self.array.read_logical(addr + i * WORD_BYTES)
            for i in range(WORDS_PER_LINE)
        )
        return words, finish

    def decode_word(self, addr: int, base_word: Optional[int] = None) -> int:
        """Decode one stored word through the codec (exercised by recovery).

        ``base_word`` supplies the clean bytes for DLDC-encoded log data.
        Raises if the decoded value disagrees with the slot's logical value,
        which would indicate a codec bug.  In secure modes the cells hold
        ciphertext while the logical value stays plaintext, so decode
        verification is skipped there.
        """
        slot = self.array.read_word(addr)
        if slot.encoded is None or self._secure != "none":
            return slot.logical
        enc = slot.encoded
        if enc.method == "dldc":
            decoded = (
                self.log_codec.decode(enc, base_word)
                if isinstance(self.log_codec, SldeCodec)
                else enc.payload
            )
        elif enc.method == self.data_codec.name:
            decoded = self.data_codec.decode(enc, base_word)
        elif isinstance(self.log_codec, SldeCodec):
            decoded = self.log_codec.decode(enc, base_word)
        else:
            decoded = self.log_codec.decode(enc, base_word)
        if decoded != slot.logical:
            raise ValueError(
                "decode mismatch at %#x: %#x != %#x" % (addr, decoded, slot.logical)
            )
        return decoded
