"""Start-Gap wear leveling (Qureshi et al., MICRO 2009).

The endurance argument of section VI-C assumes wear can be spread across
the array; Start-Gap is the classic low-cost scheme that does it: the
physical array keeps one spare line (the *gap*); every ``gap_interval``
writes, the line just before the gap moves into it and the gap walks one
slot backwards; when the gap reaches slot 0 it jumps back to the top and
the ``start`` register advances, so over time every logical line rotates
through every physical slot.

Canonical mapping (N logical lines over N+1 physical slots)::

    raw  = (logical + start) mod N          # in [0, N-1]
    phys = raw + 1 if raw >= gap else raw   # skips the empty gap slot

The remapper is address-translation only; the caller performs (and pays
for) the gap-move copies it reports.
"""

from typing import Optional, Tuple

from repro.common.stats import StatGroup

LINE_BYTES = 64


class StartGapRemapper:
    """Logical-to-physical line remapping over a region of N lines."""

    def __init__(
        self,
        base_addr: int,
        n_lines: int,
        gap_interval: int = 128,
        stats: Optional[StatGroup] = None,
    ) -> None:
        if n_lines < 2:
            raise ValueError("start-gap needs at least two lines")
        if base_addr % LINE_BYTES:
            raise ValueError("region base must be line aligned")
        self.base_addr = base_addr
        self.n_lines = n_lines          # logical lines (N)
        self.n_physical = n_lines + 1   # one spare (the gap)
        self.gap_interval = gap_interval
        self.stats = stats if stats is not None else StatGroup("start_gap")
        self.gap = n_lines              # empty physical slot, starts at N
        self.start = 0
        self._writes_since_move = 0

    def contains(self, addr: int) -> bool:
        return self.base_addr <= addr < self.base_addr + self.n_lines * LINE_BYTES

    def physical_line(self, logical_line: int) -> int:
        """Map a logical line index to its physical slot."""
        if not 0 <= logical_line < self.n_lines:
            raise ValueError("logical line out of range")
        raw = (logical_line + self.start) % self.n_lines
        return raw + 1 if raw >= self.gap else raw

    def remap(self, addr: int) -> int:
        """Translate a byte address (must be inside the region)."""
        offset = addr - self.base_addr
        logical_line, within = divmod(offset, LINE_BYTES)
        physical = self.physical_line(logical_line)
        return self.base_addr + physical * LINE_BYTES + within

    def on_write(self) -> Optional[Tuple[int, int]]:
        """Count one line write; returns a (src, dst) copy when a gap move
        is due (physical byte addresses).  The caller performs the copy —
        it is a real write and wears the destination like any other.
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_interval:
            return None
        self._writes_since_move = 0
        self.stats.add("gap_moves")
        if self.gap > 0:
            src, dst = self.gap - 1, self.gap
            self.gap -= 1
        else:
            # Gap wrapped: slot N's line slides into slot 0 and the start
            # register advances one position.
            src, dst = self.n_lines, 0
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
            self.stats.add("rotations")
        return (
            self.base_addr + src * LINE_BYTES,
            self.base_addr + dst * LINE_BYTES,
        )
