"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``designs`` — list every available design (paper, ablation, extension).
- ``run`` — run one (design, workload) cell and print its metrics.
- ``compare`` — run all designs on one workload, normalized table.
- ``figure`` — regenerate one paper table/figure by name.
- ``overhead`` — print Table I for the current configuration.
- ``fault-sweep`` — enumerate crash points and verify recovery at each.
- ``trace`` — run one cell with event tracing, export a Chrome trace.
- ``profile`` — run one cell under the host-side phase profiler.
- ``traffic`` — open-loop offered-load sweeps: Poisson/bursty arrivals,
  multi-tenant workload mixes, bounded admission queues; reports
  p50/p99/p999 commit latency (queueing included), goodput and the
  overload knee, with optional BenchRecord emission and a
  crash-under-load recovery curve.
- ``bench`` — the benchmark observatory: ``record`` a cell as typed
  BenchRecords, ``compare`` two trajectory points, ``gate`` a run
  against the committed baseline (non-zero exit on regression), and
  ``report`` the markdown dashboard with the paper-fidelity scorecard.
"""

import argparse
import os
import sys

from repro.analysis.report import format_table
from repro.core.designs import DESIGN_NAMES, available_designs, make_system

ALL_DESIGNS = available_designs(include_ablation=True, include_extensions=True)

#: Aliases the trace/profile verbs accept on top of the full design
#: names: the fault-sweep scheme aliases plus "undo-redo" for the
#: morphable undo+redo design (MorLog is the only logger with the
#: ULog/URLog word states the timeline view is about).
TRACE_DESIGN_ALIASES = {
    "morlog": "MorLog-SLDE",
    "morlog-dp": "MorLog-DP",
    "fwb": "FWB-CRADE",
    "undo-only": "Undo-CRADE",
    "redo-only": "Redo-CRADE",
    "undo-redo": "MorLog-SLDE",
    "incll": "InCLL-CRADE",
    "paging": "CoW-Page",
    "ckpt-undo": "Ckpt-Undo",
}


def _resolve_trace_design(name: str) -> str:
    full = TRACE_DESIGN_ALIASES.get(name.lower(), name)
    if full not in ALL_DESIGNS:
        raise SystemExit(
            "unknown design %r (designs: %s; aliases: %s)"
            % (name, ", ".join(ALL_DESIGNS),
               ", ".join(sorted(TRACE_DESIGN_ALIASES)))
        )
    return full
from repro.experiments import figures
from repro.experiments.runner import ExperimentScale, default_config, run_design
from repro.workloads.base import DatasetSize, MACRO_WORKLOADS, MICRO_WORKLOADS

FIGURES = {
    "fig3": lambda scale: figures.fig3_table(figures.fig3_write_distance(scale)),
    "fig5": lambda scale: figures.fig5_table(figures.fig5_clean_bytes(scale)),
    "table1": lambda scale: format_table(
        ["component", "value"],
        [[k, v] for k, v in figures.table1_overheads().items()],
        "Table I + SLDE overheads",
    ),
    "table2": lambda scale: figures.table2_table(figures.table2_patterns(scale)),
    "fig12a": lambda scale: figures.normalized_table(
        figures.fig12_micro_throughput(DatasetSize.SMALL, scale)[1],
        "Figure 12(a): micro throughput, small dataset",
    ),
    "fig12b": lambda scale: figures.normalized_table(
        figures.fig12_micro_throughput(DatasetSize.LARGE, scale)[1],
        "Figure 12(b): micro throughput, large dataset",
    ),
    "fig13": lambda scale: figures.normalized_table(
        figures.fig13_write_traffic(DatasetSize.SMALL, scale)[1],
        "Figure 13: NVMM write traffic, small dataset",
    ),
    "fig14": lambda scale: figures.normalized_table(
        figures.fig14_macro_throughput(scale),
        "Figure 14: macro throughput",
    ),
    "fig12x": lambda scale: figures.normalized_table(
        figures.fig12x_extension_throughput(DatasetSize.SMALL, scale)[1],
        "Figure 12 extended: micro throughput incl. extension designs",
    ),
    "fig13x": lambda scale: figures.normalized_table(
        figures.fig13x_extension_write_traffic(DatasetSize.SMALL, scale)[1],
        "Figure 13 extended: NVMM write traffic incl. extension designs",
    ),
    "ext-latency": lambda scale: figures.extension_latency_table(
        figures.extension_commit_latency(scale)
    ),
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MorLog (ISCA 2020) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the evaluated designs")

    run_p = sub.add_parser("run", help="run one design on one workload")
    run_p.add_argument("--design", default="MorLog-SLDE", choices=ALL_DESIGNS)
    run_p.add_argument(
        "--workload",
        default="echo",
        # "mix" is the default 70/20/10 traffic blend run closed-loop;
        # grid/figure stay micro+macro so figure grids keep their shape.
        choices=MICRO_WORKLOADS + MACRO_WORKLOADS + ("mix",),
    )
    run_p.add_argument("--transactions", type=int, default=200)
    run_p.add_argument("--threads", type=int, default=4)
    run_p.add_argument("--large", action="store_true", help="4 KB dataset items")

    grid_p = sub.add_parser(
        "grid",
        help="run a design x workload grid in parallel with result caching",
    )
    grid_p.add_argument(
        "--designs",
        default=",".join(DESIGN_NAMES),
        help="comma-separated design names, or 'all' (default: the six"
        " evaluated designs)",
    )
    grid_p.add_argument(
        "--workloads",
        default="micro",
        help="comma-separated workload names, or 'micro'/'macro'",
    )
    grid_p.add_argument("--large", action="store_true", help="4 KB dataset items")
    grid_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: all CPU cores)",
    )
    grid_p.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate (skip the result cache)",
    )
    grid_p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: REPRO_CACHE_DIR or"
        " ~/.cache/morlog-repro/grid)",
    )
    grid_p.add_argument(
        "--transactions", type=int, default=None,
        help="override per-cell transaction count",
    )
    grid_p.add_argument(
        "--threads", type=int, default=None,
        help="override per-cell thread count",
    )
    grid_p.add_argument(
        "--timing", action="store_true", help="print the per-cell timing table"
    )
    grid_p.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="also write a Chrome trace per simulated cell into DIR"
        " (cached cells record whether their artifact already exists)",
    )
    grid_p.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the sweep's shard manifest to PATH before execution"
        " (enables 'repro grid --resume PATH' and streams progress to"
        " PATH.progress.jsonl)",
    )
    grid_p.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume a sweep from its manifest: only cells the result"
        " cache does not hold are simulated (exactly-once); the grid"
        " shape comes from the manifest, not --designs/--workloads",
    )
    grid_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count recorded in the manifest (default: --jobs)",
    )
    grid_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-submissions per cell after a worker exception or timeout"
        " (default: 1)",
    )
    grid_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="cell_timeout",
        help="per-cell attempt deadline; a cell still running past it is"
        " abandoned (fail-soft) — needs --jobs >= 2",
    )
    grid_p.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the sweep on the first cell failure instead of"
        " recording it and completing the rest",
    )
    grid_p.add_argument(
        "--figures-dir",
        default=None,
        metavar="DIR",
        dest="figures_dir",
        help="also emit the grid throughput figure as Vega-Lite JSON +"
        " CSV into DIR",
    )
    grid_p.add_argument(
        "--bench",
        action="store_true",
        help="append sweep-shape records to the bench observatory",
    )
    grid_p.add_argument(
        "--bench-dir",
        default=None,
        help="observatory root (default: benchmarks/results/runs)",
    )
    # Deterministic mid-flight kill for the kill-and-resume smoke tests:
    # raises KeyboardInterrupt after N cells have streamed to the cache.
    grid_p.add_argument(
        "--interrupt-after", type=int, default=None, help=argparse.SUPPRESS
    )

    cmp_p = sub.add_parser("compare", help="all designs on one workload")
    cmp_p.add_argument(
        "--workload",
        default="echo",
        choices=MICRO_WORKLOADS + MACRO_WORKLOADS,
    )
    cmp_p.add_argument("--transactions", type=int, default=200)
    cmp_p.add_argument("--threads", type=int, default=4)

    fig_p = sub.add_parser("figure", help="regenerate one paper table/figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.add_argument(
        "--fast", action="store_true", help="quarter-scale transaction counts"
    )

    sub.add_parser("overhead", help="print Table I")

    rec_p = sub.add_parser(
        "record", help="record a workload's store stream into a trace"
    )
    rec_p.add_argument("out", help="output trace container (.mltr)")
    rec_p.add_argument(
        "--workload",
        default="queue",
        choices=MICRO_WORKLOADS + MACRO_WORKLOADS,
    )
    rec_p.add_argument("--design", default="MorLog-SLDE", choices=ALL_DESIGNS)
    rec_p.add_argument("--transactions", type=int, default=100)
    rec_p.add_argument("--threads", type=int, default=2)

    rep_p = sub.add_parser(
        "replay", help="replay a recorded trace under any design"
    )
    rep_p.add_argument("trace", help="trace container to replay")
    rep_p.add_argument("--design", default="MorLog-SLDE", choices=ALL_DESIGNS)
    rep_p.add_argument(
        "--no-prewarm",
        action="store_true",
        help="skip the vectorized codec prewarm (results are identical)",
    )

    fs_p = sub.add_parser(
        "fault-sweep",
        help="crash at every persist boundary and verify recovery",
    )
    fs_p.add_argument(
        "--design",
        default="all",
        help="design name, alias (morlog/undo-only/redo-only/fwb/morlog-dp)"
        " or 'all' for the four logging schemes",
    )
    fs_p.add_argument(
        "--workload",
        default="hash",
        choices=MICRO_WORKLOADS + MACRO_WORKLOADS,
    )
    fs_p.add_argument("--transactions", type=int, default=10)
    fs_p.add_argument("--threads", type=int, default=2)
    fs_p.add_argument("--seed", type=int, default=7)
    fs_p.add_argument(
        "--budget",
        type=int,
        default=0,
        help="crash points to sample (0 = exhaustive, check every one)",
    )
    fs_p.add_argument(
        "--fwb-interval",
        type=int,
        default=None,
        help="override the FWB scan interval (cycles); small values reach"
        " the scan/truncation crash points in short runs",
    )
    fs_p.add_argument(
        "--mutant",
        default=None,
        help="install a deliberately broken logger first (the sweep must"
        " then FAIL with a counterexample)",
    )
    fs_p.add_argument(
        "--no-verify-decode",
        action="store_true",
        help="skip codec decode verification during recovery scans",
    )
    fs_p.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-execute a saved counterexample schedule instead of sweeping",
    )
    fs_p.add_argument(
        "--save",
        default=None,
        metavar="FILE",
        help="write the first counterexample schedule to FILE as JSON",
    )

    tr_p = sub.add_parser(
        "trace",
        help="run one cell with event tracing, export a Chrome trace",
    )
    tr_p.add_argument(
        "design",
        help="design name or alias (undo-redo/morlog/morlog-dp/fwb/"
        "undo-only/redo-only)",
    )
    tr_p.add_argument(
        "workload", choices=MICRO_WORKLOADS + MACRO_WORKLOADS
    )
    tr_p.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event JSON output (load in Perfetto)",
    )
    tr_p.add_argument(
        "--events", default=None, metavar="FILE",
        help="also dump the raw events as JSON lines",
    )
    tr_p.add_argument(
        "--limit", type=int, default=1 << 20,
        help="trace ring capacity in events (oldest dropped beyond it)",
    )
    tr_p.add_argument("--transactions", type=int, default=None)
    tr_p.add_argument("--threads", type=int, default=None)
    tr_p.add_argument("--large", action="store_true", help="4 KB dataset items")

    pr_p = sub.add_parser(
        "profile",
        help="run one cell under the host-side phase profiler",
    )
    pr_p.add_argument("design", help="design name or alias")
    pr_p.add_argument(
        "workload", choices=MICRO_WORKLOADS + MACRO_WORKLOADS
    )
    pr_p.add_argument("--transactions", type=int, default=None)
    pr_p.add_argument("--threads", type=int, default=None)
    pr_p.add_argument("--large", action="store_true", help="4 KB dataset items")
    pr_p.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the profile summary as JSON",
    )

    tf_p = sub.add_parser(
        "traffic",
        help="open-loop offered-load sweep with SLO tail-latency reporting",
    )
    tf_p.add_argument(
        "--designs", default="MorLog-DP,FWB-CRADE",
        help="comma-separated design names, or 'all'",
    )
    tf_p.add_argument(
        "--loads", default="100000,400000,1600000,6400000",
        help="comma-separated offered loads (tx/s)",
    )
    tf_p.add_argument(
        "--arrivals", type=int, default=400,
        help="arrivals per point before REPRO_SCALE (default 400)",
    )
    tf_p.add_argument(
        "--arrival-process", choices=("poisson", "bursty"), default="poisson",
    )
    tf_p.add_argument(
        "--burst-on-fraction", type=float, default=0.25,
        help="bursty process: long-run fraction of time spent bursting",
    )
    tf_p.add_argument(
        "--burst-cycle-ns", type=float, default=200000.0,
        help="bursty process: mean on+off cycle length (ns)",
    )
    tf_p.add_argument("--tenants", type=int, default=16)
    tf_p.add_argument(
        "--zipf-theta", type=float, default=0.9,
        help="tenant popularity skew (0 = uniform)",
    )
    tf_p.add_argument(
        "--mix", default="ycsb:0.7,tpcc:0.2,echo:0.1",
        help="workload blend, e.g. ycsb:0.7,tpcc:0.2,echo:0.1",
    )
    tf_p.add_argument("--threads", type=int, default=4)
    tf_p.add_argument(
        "--queue-capacity", type=int, default=16,
        help="per-core admission queue bound",
    )
    tf_p.add_argument(
        "--drop-policy", choices=("shed", "drop-oldest"), default="shed",
    )
    tf_p.add_argument("--seed", type=int, default=42)
    tf_p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all CPU cores)",
    )
    tf_p.add_argument(
        "--no-cache", action="store_true",
        help="always re-simulate (skip the result cache)",
    )
    tf_p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR or"
        " ~/.cache/morlog-repro/grid)",
    )
    tf_p.add_argument(
        "--bench", action="store_true",
        help="append the SLO metrics to the BENCH trajectory as BenchRecords",
    )
    tf_p.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="trajectory directory (default: REPRO_BENCH_DIR or cwd)",
    )
    tf_p.add_argument(
        "--crash-fraction", type=float, default=None, metavar="FRAC",
        help="also crash each point at FRAC of its arrivals and print the"
        " recovery-vs-log-occupancy curve",
    )
    tf_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the SLO table to FILE",
    )

    bench_p = sub.add_parser(
        "bench",
        help="benchmark observatory: records, comparisons, gates, reports",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    br_p = bench_sub.add_parser(
        "record", help="run one cell and record its metrics as BenchRecords"
    )
    br_p.add_argument("--design", default="MorLog-SLDE", choices=ALL_DESIGNS)
    br_p.add_argument(
        "--workload",
        default="echo",
        choices=MICRO_WORKLOADS + MACRO_WORKLOADS,
    )
    br_p.add_argument("--transactions", type=int, default=200)
    br_p.add_argument("--threads", type=int, default=4)
    br_p.add_argument("--large", action="store_true", help="4 KB dataset items")
    br_p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="trajectory directory (default: REPRO_BENCH_DIR or cwd)",
    )

    bc_p = bench_sub.add_parser(
        "compare", help="classify metric movements between two trajectory points"
    )
    bc_p.add_argument(
        "baseline", nargs="?", default=None,
        help="baseline trajectory file (default: second-latest BENCH_*.json)",
    )
    bc_p.add_argument(
        "candidate", nargs="?", default=None,
        help="candidate trajectory file (default: latest BENCH_*.json)",
    )
    bc_p.add_argument(
        "--tolerance", type=float, default=None,
        help="override every record's relative tolerance band",
    )
    bc_p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="trajectory directory (default: REPRO_BENCH_DIR or cwd)",
    )

    bg_p = bench_sub.add_parser(
        "gate",
        help="fail (exit 1) when the latest run regresses vs the baseline",
    )
    bg_p.add_argument(
        "--baseline", default="benchmarks/BASELINE.json",
        help="committed baseline trajectory (default: benchmarks/BASELINE.json)",
    )
    bg_p.add_argument(
        "--run", default=None, metavar="FILE",
        help="candidate trajectory (default: latest BENCH_*.json)",
    )
    bg_p.add_argument(
        "--tolerance", type=float, default=None,
        help="override every record's relative tolerance band",
    )
    bg_p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="trajectory directory (default: REPRO_BENCH_DIR or cwd)",
    )

    bp_p = bench_sub.add_parser(
        "report", help="render the markdown dashboard + paper scorecard"
    )
    bp_p.add_argument(
        "--run", default=None, metavar="FILE",
        help="trajectory to report on (default: latest BENCH_*.json)",
    )
    bp_p.add_argument(
        "--out", default=os.path.join("benchmarks", "results", "REPORT.md"),
        help="output markdown file (default: benchmarks/results/REPORT.md)",
    )
    bp_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="also include a classified comparison against this trajectory",
    )
    bp_p.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any paper expectation fails",
    )
    bp_p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="trajectory directory (default: REPRO_BENCH_DIR or cwd)",
    )
    return parser


def _cmd_run(args) -> None:
    dataset = DatasetSize.LARGE if args.large else DatasetSize.SMALL
    result = run_design(
        args.design,
        args.workload,
        dataset,
        n_threads=args.threads,
        n_transactions=args.transactions,
    )
    rows = [
        ["transactions", result.transactions],
        ["elapsed (simulated us)", result.elapsed_ns / 1000.0],
        ["throughput (tx/s)", result.throughput_tx_per_s],
        ["NVMM writes", result.nvmm_writes],
        ["NVMM write energy (nJ)", result.nvmm_write_energy_pj / 1000.0],
        ["log bits", result.log_bits],
    ]
    print(format_table(["metric", "value"], rows,
                       "%s on %s" % (args.design, args.workload)))


def _cmd_grid(args) -> int:
    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.megagrid import run_megagrid
    from repro.experiments.parallel import default_jobs, resolve_cell

    resume = args.resume is not None
    specs = None
    if not resume:
        if args.designs == "all":
            designs = list(ALL_DESIGNS)
        else:
            designs = [d.strip() for d in args.designs.split(",") if d.strip()]
        for design in designs:
            if design not in ALL_DESIGNS:
                print("unknown design %r (choose from %s)"
                      % (design, ALL_DESIGNS))
                return 2
        if args.workloads == "micro":
            workloads = list(MICRO_WORKLOADS)
        elif args.workloads == "macro":
            workloads = list(MACRO_WORKLOADS)
        else:
            workloads = [
                w.strip() for w in args.workloads.split(",") if w.strip()
            ]
        known = MICRO_WORKLOADS + MACRO_WORKLOADS
        for workload in workloads:
            if workload not in known:
                print("unknown workload %r (choose from %s)"
                      % (workload, known))
                return 2
        dataset = DatasetSize.LARGE if args.large else DatasetSize.SMALL
        specs = [
            resolve_cell(
                design, workload, dataset,
                n_transactions=args.transactions, n_threads=args.threads,
            )
            for workload in workloads
            for design in designs
        ]

    cache = None
    if not args.no_cache:
        cache = ResultCache(cache_dir=args.cache_dir or default_cache_dir())
    jobs = args.jobs or default_jobs()
    manifest_path = args.resume if resume else args.manifest
    try:
        outcome = run_megagrid(
            specs=specs,
            manifest_path=manifest_path,
            resume=resume,
            jobs=jobs,
            cache=cache,
            retries=args.retries,
            timeout_s=args.cell_timeout,
            fail_soft=not args.fail_fast,
            shards=args.shards,
            trace_dir=args.trace_dir,
            interrupt_after=args.interrupt_after,
        )
    except KeyboardInterrupt:
        print("\ninterrupted — completed cells are already in the cache")
        if manifest_path:
            print("resume with: repro grid --resume %s" % manifest_path)
        return 130
    report = outcome.report

    # Grid shape by cell identity (the manifest's on resume): a failed
    # cell renders as nan at its own position, never shifting others.
    workloads = list(dict.fromkeys(s.workload for s in outcome.specs))
    designs = list(dict.fromkeys(s.design for s in outcome.specs))
    values = {w: {d: None for d in designs} for w in workloads}
    for spec, result in zip(outcome.specs, outcome.results):
        if result is not None:
            values[spec.workload][spec.design] = result.throughput_tx_per_s
    baseline = designs[0]
    headers = ["workload"] + designs
    rows = []
    for workload in workloads:
        row = values[workload]
        base = row[baseline]
        rows.append([workload] + [
            row[d] / base if base and row[d] is not None else float("nan")
            for d in designs
        ])
    print(
        format_table(
            headers,
            rows,
            "grid throughput (normalized to %s)" % baseline,
            float_format="%.3f",
        )
    )
    if args.timing:
        timing_rows = [
            [c.workload, c.design, "hit" if c.cached else "miss", c.seconds]
            for c in report.cells
        ]
        print(
            format_table(
                ["workload", "design", "cache", "seconds"],
                timing_rows,
                "per-cell timing",
                float_format="%.3f",
            )
        )
    if outcome.failures:
        failure_rows = [
            [f.workload, f.design, f.kind, f.attempts, f.message[:60]]
            for f in outcome.failures
        ]
        print(
            format_table(
                ["workload", "design", "kind", "attempts", "error"],
                failure_rows,
                "failed cells (results above render as nan)",
            )
        )
    if args.figures_dir is not None:
        from repro.experiments.vega import write_figure

        paths = write_figure(
            args.figures_dir,
            "grid_throughput",
            values,
            "grid throughput (tx/s)",
            "throughput (tx/s)",
        )
        print("figure: %s + %s" % (paths.vl_path, paths.csv_path))
    print(report.summary())
    if manifest_path and not args.fail_fast:
        print("manifest: %s (resume with: repro grid --resume %s)"
              % (manifest_path, manifest_path))
    if args.trace_dir is not None:
        traced = sum(1 for c in report.cells if c.trace_path is not None)
        print("traces: %d/%d cells have artifacts in %s"
              % (traced, len(report.cells), args.trace_dir))
    if cache is not None:
        print(
            "cache: hits=%d misses=%d stores=%d dir=%s"
            % (
                cache.stats.hits,
                cache.stats.misses,
                cache.stats.stores,
                cache.cache_dir,
            )
        )
    if args.bench:
        from repro.bench import append_records, current_run_path
        from repro.experiments.megagrid import megagrid_records

        records = megagrid_records(outcome)
        path, total = append_records(
            current_run_path(args.bench_dir), records)
        print("%d record(s) appended to %s (%d total)"
              % (len(records), path, total))
    return 1 if outcome.failures else 0


def _cmd_compare(args) -> None:
    # The classification/ratio logic is the bench comparator's — one
    # implementation for every diffing surface (see repro.bench.compare).
    from repro.bench.compare import RUN_RESULT_METRICS, run_result_deltas

    rows = []
    baseline = None
    for design in DESIGN_NAMES:
        result = run_design(
            design,
            args.workload,
            DatasetSize.SMALL,
            n_threads=args.threads,
            n_transactions=args.transactions,
        )
        if baseline is None:
            baseline = result
        deltas = run_result_deltas(design, baseline, result)
        rows.append([design] + [d.ratio for d in deltas])
    print(
        format_table(
            ["design"] + [label for _attr, label, _dir in RUN_RESULT_METRICS],
            rows,
            "%s (normalized to FWB-CRADE)" % args.workload,
        )
    )


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "designs":
        for name in ALL_DESIGNS:
            print(name)
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "grid":
        return _cmd_grid(args)
    elif args.command == "compare":
        _cmd_compare(args)
    elif args.command == "figure":
        scale = ExperimentScale()
        if args.fast:
            scale = ExperimentScale(
                micro_transactions=60,
                macro_transactions=40,
                micro_threads=2,
                macro_threads=2,
            )
        print(FIGURES[args.name](scale))
    elif args.command == "overhead":
        print(FIGURES["table1"](None))
    elif args.command == "record":
        _cmd_record(args)
    elif args.command == "replay":
        _cmd_replay(args)
    elif args.command == "fault-sweep":
        return _cmd_fault_sweep(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "profile":
        return _cmd_profile(args)
    elif args.command == "traffic":
        return _cmd_traffic(args)
    elif args.command == "bench":
        return _cmd_bench(args)
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.runner import run_design_system
    from repro.trace import (
        TraceConfig,
        assemble_timelines,
        metrics_snapshot,
        timeline_summary,
        write_chrome_trace,
    )
    from repro.trace.export import write_event_lines

    design = _resolve_trace_design(args.design)
    dataset = DatasetSize.LARGE if args.large else DatasetSize.SMALL
    result, system = run_design_system(
        design,
        args.workload,
        dataset,
        n_transactions=args.transactions,
        n_threads=args.threads,
        trace=TraceConfig(enabled=True, capacity=args.limit),
    )
    bus = system.tracer
    count = write_chrome_trace(
        args.out, bus.events, design=design, workload=args.workload,
        dropped=bus.dropped,
    )
    print("wrote %d events to %s (load in ui.perfetto.dev)" % (count, args.out))
    if args.events is not None:
        n = write_event_lines(args.events, bus.events)
        print("wrote %d raw events to %s" % (n, args.events))
    summary = bus.summary()
    if summary["dropped"]:
        print(
            "warning: ring dropped %d events — the export and metrics"
            " snapshot cover a TRUNCATED stream (raise --limit beyond %d)"
            % (summary["dropped"], args.limit)
        )
    rows = [[cat, n] for cat, n in summary["by_category"].items()]
    print(format_table(["category", "events"], rows,
                       "%s on %s" % (design, args.workload)))
    tl = timeline_summary(assemble_timelines(bus.events))
    print(format_table(
        ["metric", "value"], [[k, v] for k, v in tl.items()], "transactions"
    ))
    snapshot = metrics_snapshot(
        result, bus, design=design, workload=args.workload,
        memo=system.controller.nvm.memo_stats(),
    )
    print("metrics snapshot: %d counters, %d trace names%s"
          % (len(snapshot["counters"]),
             len(snapshot["trace"]["bus"]["by_name"]),
             " [TRUNCATED]" if snapshot["trace"]["truncated"] else ""))
    memo = snapshot.get("memo") or {}
    if memo:
        hits = sum(c["hits"] for c in memo.values())
        misses = sum(c["misses"] for c in memo.values())
        print("codec memo: %d hits / %d misses over %d cache(s)"
              % (hits, misses, len(memo)))
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.trace import profile_design

    design = _resolve_trace_design(args.design)
    dataset = DatasetSize.LARGE if args.large else DatasetSize.SMALL
    result, report = profile_design(
        design,
        args.workload,
        dataset=dataset,
        n_transactions=args.transactions,
        n_threads=args.threads,
    )
    print(report.format("%s on %s (%d tx, %.0f tx/s simulated)" % (
        design, args.workload, result.transactions, result.throughput_tx_per_s
    )))
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "design": design,
                    "workload": args.workload,
                    "transactions": result.transactions,
                    "profile": report.as_dict(),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        print("profile summary written to %s" % args.json)
    return 0


def _cmd_fault_sweep(args) -> int:
    from repro.faultinject.sweep import (
        DEFAULT_SWEEP_DESIGNS,
        CrashSchedule,
        SweepOptions,
        replay_schedule,
        run_sweep,
    )

    if args.replay is not None:
        with open(args.replay) as fh:
            schedule = CrashSchedule.from_json(fh.read())
        report = replay_schedule(
            schedule, verify_decode=not args.no_verify_decode
        )
        if not report.crashed:
            print("replay never reached crash index %d" % schedule.crash_index)
            return 1
        print(
            "crashed at #%d (%s); recovery: %s"
            % (
                schedule.crash_index,
                report.event.point if report.event else "?",
                "%d violation(s)" % len(report.violations)
                if report.violations
                else "clean",
            )
        )
        for violation in report.violations:
            print(violation.format())
        return 1 if report.violations else 0

    designs = (
        DEFAULT_SWEEP_DESIGNS if args.design == "all" else (args.design,)
    )
    options = SweepOptions(
        workload=args.workload,
        transactions=args.transactions,
        threads=args.threads,
        seed=args.seed,
        budget=args.budget,
        verify_decode=not args.no_verify_decode,
        mutant=args.mutant,
        fwb_interval_cycles=args.fwb_interval,
    )
    rows = []
    failed = False
    for design in designs:
        result = run_sweep(design, options)
        rows.append(
            [
                result.design,
                result.total_events,
                result.checked_events,
                "PASS" if result.ok else "FAIL",
            ]
        )
        if not result.ok:
            failed = True
            print(result.counterexample.format())
            if args.save is not None:
                with open(args.save, "w") as fh:
                    fh.write(result.counterexample.schedule.to_json())
                print("schedule saved to %s" % args.save)
    mode = "exhaustive" if args.budget <= 0 else "budget=%d" % args.budget
    print(
        format_table(
            ["design", "crash points", "checked", "verdict"],
            rows,
            "fault sweep: %s, %d tx, %d threads, seed %d, %s"
            % (args.workload, args.transactions, args.threads, args.seed, mode),
        )
    )
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    if args.bench_command == "record":
        return _cmd_bench_record(args)
    if args.bench_command == "compare":
        return _cmd_bench_compare(args)
    if args.bench_command == "gate":
        return _cmd_bench_gate(args)
    return _cmd_bench_report(args)


def _cmd_bench_record(args) -> int:
    from repro.bench import (
        HIGHER,
        LOWER,
        append_records,
        current_run_path,
        record,
    )
    from repro.experiments.runner import run_design_system
    from repro.experiments.serialize import (
        config_to_dict,
        params_to_dict,
        stable_hash,
        strip_result_inert_encoding,
    )
    from repro.experiments.runner import default_config, resolve_params
    from repro.trace import metrics_snapshot

    dataset = DatasetSize.LARGE if args.large else DatasetSize.SMALL
    result, system = run_design_system(
        args.design,
        args.workload,
        dataset,
        n_threads=args.threads,
        n_transactions=args.transactions,
    )
    # The digest covers everything that shapes this cell's absolute
    # numbers, so `bench compare` never pairs incompatible measurements.
    digest = stable_hash(
        {
            "config": strip_result_inert_encoding(
                config_to_dict(default_config())
            ),
            "design": args.design,
            "params": params_to_dict(resolve_params(None, dataset)),
            "threads": args.threads,
            "transactions": args.transactions,
            "workload": args.workload,
        }
    )
    benchmark = "cell/%s/%s" % (args.design, args.workload)
    snapshot = metrics_snapshot(
        result,
        design=args.design,
        workload=args.workload,
        memo=system.controller.nvm.memo_stats(),
    )
    records = [
        record(
            benchmark, "throughput_tx_per_s", result.throughput_tx_per_s,
            unit="tx/s", direction=HIGHER, config_digest=digest,
            attachments={"metrics_snapshot": snapshot},
        ),
        record(
            benchmark, "nvmm_writes", float(result.nvmm_writes),
            unit="writes", direction=LOWER, config_digest=digest,
        ),
        record(
            benchmark, "nvmm_write_energy_pj", result.nvmm_write_energy_pj,
            unit="pJ", direction=LOWER, config_digest=digest,
        ),
        record(
            benchmark, "log_bits", float(result.log_bits),
            unit="bits", direction=LOWER, config_digest=digest,
        ),
    ]
    path, total = append_records(current_run_path(args.dir), records)
    rows = [[r.metric, r.value, r.unit, r.direction] for r in records]
    print(format_table(["metric", "value", "unit", "direction"], rows,
                       "%s (recorded)" % benchmark))
    print("%d record(s) appended to %s (%d total)" % (len(records), path, total))
    return 0


def _resolve_trajectories(args):
    """(baseline_path, candidate_path) for ``bench compare``."""
    from repro.bench import list_runs

    baseline, candidate = args.baseline, args.candidate
    if baseline is None or candidate is None:
        runs = list_runs(args.dir)
        if candidate is None:
            if not runs:
                raise SystemExit("no BENCH_*.json trajectory files found")
            candidate = runs[-1]
        if baseline is None:
            earlier = [r for r in runs if r != candidate]
            if not earlier:
                raise SystemExit(
                    "need two trajectory points to compare (found only %s)"
                    % candidate
                )
            baseline = earlier[-1]
    return baseline, candidate


def _print_comparison(report, baseline_name: str, candidate_name: str) -> None:
    print("baseline:  %s" % baseline_name)
    print("candidate: %s" % candidate_name)
    for delta in report.deltas:
        print(delta.format() + ("  [%s]" % delta.note if delta.note else ""))
    print(report.summary())


def _cmd_bench_compare(args) -> int:
    from repro.bench import compare_records, load_run

    baseline_path, candidate_path = _resolve_trajectories(args)
    _header, baseline = load_run(baseline_path)
    _header, candidate = load_run(candidate_path)
    report = compare_records(
        baseline, candidate, tolerance_override=args.tolerance
    )
    _print_comparison(report, baseline_path, candidate_path)
    return 0


def _cmd_bench_gate(args) -> int:
    from repro.bench import compare_records, latest_run, load_run

    if not os.path.exists(args.baseline):
        print("gate: baseline %s does not exist (refresh it per"
              " docs/benchmarking.md)" % args.baseline)
        return 2
    run_path = args.run or latest_run(args.dir)
    if run_path is None:
        print("gate: no BENCH_*.json trajectory to check")
        return 2
    _header, baseline = load_run(args.baseline)
    _header, candidate = load_run(run_path)
    report = compare_records(
        baseline, candidate, tolerance_override=args.tolerance
    )
    _print_comparison(report, args.baseline, run_path)
    compared = [d for d in report.deltas if d.verdict != "skipped"]
    if not compared:
        print("gate: FAIL — no comparable metrics (config/scale mismatch"
              " with the baseline?)")
        return 1
    if report.regressions:
        print("gate: FAIL — %d metric(s) regressed beyond tolerance:"
              % len(report.regressions))
        for delta in report.regressions:
            print("  " + delta.format())
        return 1
    print("gate: PASS (%d metric(s) compared)" % len(compared))
    return 0


def _cmd_bench_report(args) -> int:
    from repro.bench import (
        compare_records,
        evaluate_expectations,
        latest_run,
        load_run,
        render_report,
        scorecard_counts,
    )

    run_path = args.run or latest_run(args.dir)
    if run_path is None:
        print("report: no BENCH_*.json trajectory to report on")
        return 2
    header, records = load_run(run_path)
    comparison = baseline_name = None
    if args.baseline:
        _bheader, baseline = load_run(args.baseline)
        comparison = compare_records(baseline, records)
        baseline_name = args.baseline
    from repro.experiments.vega import discover_figures

    out_dir_for_figures = os.path.dirname(args.out) or "."
    text = render_report(
        records,
        run_header=header,
        run_name=os.path.basename(run_path),
        comparison=comparison,
        baseline_name=baseline_name or "baseline",
        figures=discover_figures(out_dir_for_figures),
    )
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(text)
    counts = scorecard_counts(evaluate_expectations(records))
    print("report written to %s (%d records)" % (args.out, len(records)))
    print("scorecard: %d pass, %d drift, %d fail, %d missing" % (
        counts["pass"], counts["drift"], counts["fail"], counts["missing"]
    ))
    if args.strict and counts["fail"]:
        return 1
    return 0


def _cmd_traffic(args) -> int:
    from repro.experiments.cache import PayloadCache, default_cache_dir
    from repro.traffic import (
        TrafficConfig,
        crash_recovery_curve,
        run_load_sweep,
        slo_table,
        sweep_records,
    )
    from repro.workloads.mixture import parse_blend

    if args.designs == "all":
        designs = list(ALL_DESIGNS)
    else:
        designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    for design in designs:
        if design not in ALL_DESIGNS:
            print("unknown design %r (choose from %s)" % (design, ALL_DESIGNS))
            return 2
    try:
        loads = [float(l) for l in args.loads.split(",") if l.strip()]
        blend = parse_blend(args.mix)
        traffic = TrafficConfig(
            arrivals=args.arrivals,
            process=args.arrival_process,
            burst_on_fraction=args.burst_on_fraction,
            burst_cycle_ns=args.burst_cycle_ns,
            n_tenants=args.tenants,
            zipf_theta=args.zipf_theta,
            mix=blend,
            n_threads=args.threads,
            queue_capacity=args.queue_capacity,
            drop_policy=args.drop_policy,
            seed=args.seed,
        )
        traffic.validate()
    except ValueError as error:
        print("traffic: %s" % error)
        return 2
    if not loads:
        print("traffic: need at least one offered load")
        return 2

    cache = None
    if not args.no_cache:
        cache = PayloadCache(cache_dir=args.cache_dir or default_cache_dir())
    outcome = run_load_sweep(
        designs, loads, traffic, jobs=args.jobs, cache=cache)
    table = slo_table(outcome)
    print(table)
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(table + "\n")
        print("SLO table written to %s" % args.out)
    print(outcome.report.summary())
    if cache is not None:
        print("cache: hits=%d misses=%d stores=%d dir=%s" % (
            cache.stats.hits, cache.stats.misses, cache.stats.stores,
            cache.cache_dir))

    if args.crash_fraction is not None:
        from repro.traffic.sweep import resolve_traffic_cell
        from repro.experiments.serialize import config_from_dict

        rows = []
        for design in designs:
            # Resolve through the same path as the sweep so REPRO_SCALE
            # shrinks the crash points identically.
            spec = resolve_traffic_cell(design, traffic)
            from repro.traffic import traffic_config_from_dict

            resolved = traffic_config_from_dict(spec.traffic_dict)
            for point in crash_recovery_curve(
                design, loads, resolved, crash_fraction=args.crash_fraction,
            ):
                profile = point.profile
                rows.append([
                    design,
                    point.offered_tx_per_s,
                    "yes" if point.crashed else "no",
                    profile.live_entries,
                    profile.used_bytes,
                    "%.4f" % profile.occupancy_fraction,
                    profile.redone_words + profile.undone_words,
                    profile.estimated_recovery_ns / 1000.0,
                ])
        print(format_table(
            ["design", "offered/s", "crashed", "live", "log bytes",
             "occupancy", "replayed words", "est recovery (us)"],
            rows,
            "crash at %.0f%% of arrivals: recovery vs log occupancy"
            % (args.crash_fraction * 100),
        ))

    if args.bench:
        from repro.bench import append_records, current_run_path

        records = sweep_records(outcome)
        path, total = append_records(
            current_run_path(args.bench_dir), records)
        print("%d record(s) appended to %s (%d total)" % (
            len(records), path, total))
    return 0


def _cmd_record(args) -> None:
    from repro.replay import record_trace, save_trace

    trace, _result, _system = record_trace(
        args.design,
        args.workload,
        n_transactions=args.transactions,
        n_threads=args.threads,
    )
    digest = save_trace(args.out, trace)
    print(
        "wrote %d transactions (%d ops, %d store pairs, %d setup stores) to %s"
        % (
            trace.n_transactions,
            trace.n_ops,
            trace.pair_old.size,
            trace.setup_addr.size,
            args.out,
        )
    )
    print("trace digest: %s" % digest)


def _cmd_replay(args) -> None:
    from repro.replay import load_trace, replay_trace

    trace = load_trace(args.trace)
    system = make_system(args.design, default_config())
    result = replay_trace(system, trace, prewarm=not args.no_prewarm)
    rows = [
        ["replayed transactions", result.transactions],
        ["throughput (tx/s)", result.throughput_tx_per_s],
        ["NVMM writes", result.nvmm_writes],
        ["NVMM write energy (nJ)", result.nvmm_write_energy_pj / 1000.0],
    ]
    print(format_table(["metric", "value"], rows,
                       "%s replaying %s" % (args.design, args.trace)))


if __name__ == "__main__":
    sys.exit(main())
