"""The statistical comparator: one implementation for every diff path.

Both CLI comparison surfaces — the long-standing ``repro compare``
(designs against a baseline design) and the new ``repro bench compare`` /
``repro bench gate`` (one trajectory point against another) — classify
metrics here, so there is exactly one notion of "improved", "regressed"
and "unchanged" in the codebase.

Classification is *relative with a tolerance band*: a metric moves only
when its ratio to the baseline leaves ``1 ± tolerance``, judged in the
metric's direction of goodness.  ``info`` metrics never classify (they
ride along for context).  Repeats reduce by **paired best**: when a run
holds several records for one (benchmark, metric), the comparison takes
the best one per side — max for higher-is-better, min for lower-is-
better — the same noise filter the wall-clock benchmarks apply
(interference only ever pushes a measurement the bad way, so the best
repeat is the cleanest).
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.records import (
    DEFAULT_TOLERANCE,
    HIGHER,
    INFO,
    LOWER,
    BenchRecord,
)

IMPROVED = "improved"
REGRESSED = "regressed"
UNCHANGED = "unchanged"
SKIPPED = "skipped"  # not comparable (config mismatch / info / zero base)


def classify(
    baseline: float,
    value: float,
    direction: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Classify ``value`` against ``baseline`` for one metric."""
    if direction == INFO or baseline == 0:
        return SKIPPED
    ratio = value / baseline
    if abs(ratio - 1.0) <= tolerance:
        return UNCHANGED
    better = ratio > 1.0 if direction == HIGHER else ratio < 1.0
    return IMPROVED if better else REGRESSED


@dataclass(frozen=True)
class MetricDelta:
    """One classified metric movement between two measurement sets."""

    benchmark: str
    metric: str
    baseline: float
    value: float
    direction: str
    tolerance: float
    verdict: str
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> float:
        return self.value / self.baseline if self.baseline else float("nan")

    @property
    def key(self) -> str:
        return "%s/%s" % (self.benchmark, self.metric)

    def format(self) -> str:
        return "%-44s %12.4f -> %12.4f  (%+7.2f%%)  %s" % (
            self.key,
            self.baseline,
            self.value,
            100.0 * (self.ratio - 1.0) if self.baseline else float("nan"),
            self.verdict,
        )


def best_of(records: Sequence[BenchRecord]) -> BenchRecord:
    """Reduce repeats of one metric to the single record comparisons use."""
    if not records:
        raise ValueError("best_of needs at least one record")
    direction = records[0].direction
    if direction == HIGHER:
        return max(records, key=lambda r: r.value)
    if direction == LOWER:
        return min(records, key=lambda r: r.value)
    return records[-1]  # info: latest wins


def index_records(
    records: Iterable[BenchRecord],
) -> Dict[str, List[BenchRecord]]:
    """Group records by comparison key, preserving order within a key."""
    index: Dict[str, List[BenchRecord]] = {}
    for rec in records:
        index.setdefault(rec.key, []).append(rec)
    return index


@dataclass(frozen=True)
class ComparisonReport:
    """Every classified metric between two record sets."""

    deltas: Tuple[MetricDelta, ...]

    def by_verdict(self, verdict: str) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == verdict]

    @property
    def regressions(self) -> List[MetricDelta]:
        return self.by_verdict(REGRESSED)

    @property
    def improvements(self) -> List[MetricDelta]:
        return self.by_verdict(IMPROVED)

    def counts(self) -> Dict[str, int]:
        out = {IMPROVED: 0, REGRESSED: 0, UNCHANGED: 0, SKIPPED: 0}
        for delta in self.deltas:
            out[delta.verdict] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        return (
            "%d metric(s): %d improved, %d regressed, %d unchanged, %d skipped"
            % (
                len(self.deltas),
                counts[IMPROVED],
                counts[REGRESSED],
                counts[UNCHANGED],
                counts[SKIPPED],
            )
        )


def compare_records(
    baseline: Iterable[BenchRecord],
    candidate: Iterable[BenchRecord],
    tolerance_override: Optional[float] = None,
    require_matching_config: bool = True,
) -> ComparisonReport:
    """Classify every candidate metric that also exists in the baseline.

    Records pair on (benchmark, metric) *at the candidate's config
    digest*: a baseline file may hold the same metric measured at
    several scales/configurations (the committed baseline does), and
    each candidate record is compared against the baseline population
    with its own digest.  A metric whose baseline exists only under
    other digests is ``skipped`` (measured under a different
    configuration or scale — not comparable) unless
    ``require_matching_config`` is off.  The tolerance is the candidate
    record's own band unless overridden.
    """
    baseline = list(baseline)
    base_index = index_records(baseline)
    base_by_digest: Dict[Tuple[str, str], List[BenchRecord]] = {}
    for rec in baseline:
        base_by_digest.setdefault((rec.key, rec.config_digest), []).append(rec)
    cand_index = index_records(candidate)
    deltas: List[MetricDelta] = []
    for key in sorted(cand_index):
        cand = best_of(cand_index[key])
        if key not in base_index:
            continue  # new metric: nothing to compare against
        matching = base_by_digest.get((key, cand.config_digest))
        base = best_of(matching if matching else base_index[key])
        tolerance = (
            cand.effective_tolerance()
            if tolerance_override is None
            else tolerance_override
        )
        note = ""
        if not cand.gates or not base.gates:
            verdict = SKIPPED
            note = "info metric"
        elif require_matching_config and not matching:
            verdict = SKIPPED
            note = "config digest mismatch"
        else:
            verdict = classify(base.value, cand.value, cand.direction, tolerance)
            if verdict == SKIPPED:
                note = "zero baseline"
        deltas.append(
            MetricDelta(
                benchmark=cand.benchmark,
                metric=cand.metric,
                baseline=base.value,
                value=cand.value,
                direction=cand.direction,
                tolerance=tolerance,
                verdict=verdict,
                unit=cand.unit,
                note=note,
            )
        )
    return ComparisonReport(deltas=tuple(deltas))


# ---------------------------------------------------------------------------
# RunResult comparison (shared with ``repro compare``)
# ---------------------------------------------------------------------------

#: The metrics a design-vs-design comparison reports, with directions.
RUN_RESULT_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("throughput_tx_per_s", "throughput", HIGHER),
    ("nvmm_writes", "NVMM writes", LOWER),
    ("nvmm_write_energy_pj", "write energy", LOWER),
)


def run_result_deltas(
    benchmark: str,
    baseline,
    result,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricDelta]:
    """Classified deltas of one :class:`RunResult` against a baseline.

    The ``repro compare`` table is these deltas' ratios; the bench CLI
    reuses the same classification for design comparisons.
    """
    deltas = []
    for attr, label, direction in RUN_RESULT_METRICS:
        base_value = float(getattr(baseline, attr))
        value = float(getattr(result, attr))
        deltas.append(
            MetricDelta(
                benchmark=benchmark,
                metric=label,
                baseline=base_value,
                value=value,
                direction=direction,
                tolerance=tolerance,
                verdict=classify(base_value, value, direction, tolerance),
            )
        )
    return deltas
