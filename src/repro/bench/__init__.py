"""The benchmark observatory (see docs/benchmarking.md).

Turns every benchmark run into typed, schema-versioned
:class:`~repro.bench.records.BenchRecord` values, persists them next to
the human-readable tables and as repo-root ``BENCH_<n>.json`` trajectory
files, classifies metric movements between trajectory points
(:mod:`repro.bench.compare`), scores the paper-fidelity expectations
table (:mod:`repro.bench.expectations`) and renders the markdown
dashboard (:mod:`repro.bench.report`).  The CLI surface is
``repro bench record|compare|gate|report``.
"""

from repro.bench.compare import (
    IMPROVED,
    REGRESSED,
    SKIPPED,
    UNCHANGED,
    ComparisonReport,
    MetricDelta,
    best_of,
    classify,
    compare_records,
    run_result_deltas,
)
from repro.bench.expectations import (
    PAPER_EXPECTATIONS,
    Expectation,
    ExpectationResult,
    evaluate_expectations,
    scorecard_counts,
)
from repro.bench.records import (
    DEFAULT_TOLERANCE,
    HIGHER,
    INFO,
    LOWER,
    RECORD_SCHEMA_VERSION,
    BenchRecord,
    default_config_digest,
    host_metadata,
    record,
)
from repro.bench.report import render_report
from repro.bench.store import (
    append_records,
    bench_root,
    current_run_path,
    latest_run,
    list_runs,
    load_run,
    open_run,
    reset_current_run,
    write_result_json,
)

__all__ = [
    "BenchRecord",
    "ComparisonReport",
    "DEFAULT_TOLERANCE",
    "Expectation",
    "ExpectationResult",
    "HIGHER",
    "IMPROVED",
    "INFO",
    "LOWER",
    "MetricDelta",
    "PAPER_EXPECTATIONS",
    "RECORD_SCHEMA_VERSION",
    "REGRESSED",
    "SKIPPED",
    "UNCHANGED",
    "append_records",
    "bench_root",
    "best_of",
    "classify",
    "compare_records",
    "current_run_path",
    "default_config_digest",
    "evaluate_expectations",
    "host_metadata",
    "latest_run",
    "list_runs",
    "load_run",
    "open_run",
    "record",
    "render_report",
    "reset_current_run",
    "run_result_deltas",
    "scorecard_counts",
    "write_result_json",
]
