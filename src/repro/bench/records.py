"""Typed, schema-versioned benchmark records.

Every benchmark run produces :class:`BenchRecord` values — one per
(benchmark, metric) — that are persisted as JSON next to the
human-readable ``.txt`` tables and rolled up into a repo-root
``BENCH_<n>.json`` trajectory file per run (see :mod:`repro.bench.store`).
A record carries everything a later comparison needs to decide whether
two measurements are comparable and which way "better" points:

- the benchmark id and metric name/value/unit;
- the *direction of goodness* (``higher`` / ``lower`` / ``info`` — info
  metrics are context and never gate);
- a relative tolerance band chosen by the emitter (wall-clock metrics
  get wide bands or ``info``; simulated metrics are deterministic and
  get tight ones);
- a config digest over the canonical :mod:`repro.experiments.serialize`
  dict of the experiment configuration plus ``REPRO_SCALE``, so records
  measured under different configurations are never compared;
- host metadata and an optional ``metrics_snapshot`` attachment.

Records round-trip through :meth:`BenchRecord.to_dict` /
:meth:`BenchRecord.from_dict`; the canonical JSON form (sorted keys) is
what the store writes.
"""

import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

#: Bump when the record dict shape changes incompatibly.
RECORD_SCHEMA_VERSION = 1

#: Directions of goodness.  ``info`` metrics are recorded for context
#: (wall-clock timings, counts) and are exempt from regression gating.
HIGHER = "higher"
LOWER = "lower"
INFO = "info"
DIRECTIONS = (HIGHER, LOWER, INFO)

#: Default relative tolerance band for gated metrics.  The simulator is
#: deterministic, but reduced-scale runs wobble a little when transaction
#: counts round differently, so the default is loose enough to absorb
#: that while catching real regressions.
DEFAULT_TOLERANCE = 0.05


def host_metadata() -> Dict[str, Any]:
    """Stable description of the measuring host (canonical key order)."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": platform.system(),
        "python": platform.python_version(),
    }


def repro_scale() -> float:
    """The effective ``REPRO_SCALE`` (malformed values behave like 1.0)."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


def default_config_digest() -> str:
    """Digest of the default experiment configuration + ``REPRO_SCALE``.

    Result-inert encoding knobs (the codec memo) are stripped exactly as
    the grid result cache strips them, so toggling memoization does not
    fork the record space.
    """
    from repro.experiments.runner import default_config
    from repro.experiments.serialize import (
        config_to_dict,
        stable_hash,
        strip_result_inert_encoding,
    )

    return stable_hash(
        {
            "config": strip_result_inert_encoding(
                config_to_dict(default_config())
            ),
            "scale": repro_scale(),
        }
    )


@dataclass(frozen=True)
class BenchRecord:
    """One measured metric from one benchmark run."""

    benchmark: str
    metric: str
    value: float
    unit: str = ""
    direction: str = INFO
    tolerance: Optional[float] = None
    config_digest: str = ""
    scale: float = 1.0
    unix_time: float = 0.0
    host: Dict[str, Any] = field(default_factory=dict)
    attachments: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = RECORD_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.benchmark or not self.metric:
            raise ValueError("benchmark and metric ids are required")
        if self.direction not in DIRECTIONS:
            raise ValueError(
                "direction must be one of %s, got %r"
                % (", ".join(DIRECTIONS), self.direction)
            )
        if self.tolerance is not None and self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    @property
    def gates(self) -> bool:
        """True when this metric participates in regression gating."""
        return self.direction in (HIGHER, LOWER)

    @property
    def key(self) -> str:
        """The identity a comparison pairs records on."""
        return "%s/%s" % (self.benchmark, self.metric)

    def effective_tolerance(self) -> float:
        return DEFAULT_TOLERANCE if self.tolerance is None else self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "config_digest": self.config_digest,
            "scale": self.scale,
            "unix_time": self.unix_time,
            "host": dict(sorted(self.host.items())),
        }
        if self.attachments:
            out["attachments"] = self.attachments
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        return cls(
            benchmark=str(data["benchmark"]),
            metric=str(data["metric"]),
            value=float(data["value"]),
            unit=str(data.get("unit", "")),
            direction=str(data.get("direction", INFO)),
            tolerance=(
                None if data.get("tolerance") is None
                else float(data["tolerance"])
            ),
            config_digest=str(data.get("config_digest", "")),
            scale=float(data.get("scale", 1.0)),
            unix_time=float(data.get("unix_time", 0.0)),
            host=dict(data.get("host", {})),
            attachments=dict(data.get("attachments", {})),
            schema_version=int(data.get("schema_version", RECORD_SCHEMA_VERSION)),
        )


def record(
    benchmark: str,
    metric: str,
    value: float,
    unit: str = "",
    direction: str = INFO,
    tolerance: Optional[float] = None,
    attachments: Optional[Dict[str, Any]] = None,
    config_digest: Optional[str] = None,
) -> BenchRecord:
    """Build a :class:`BenchRecord` with host/digest/scale filled in.

    This is the constructor benchmark files use: one line per metric,
    everything environmental derived here.
    """
    return BenchRecord(
        benchmark=benchmark,
        metric=metric,
        value=float(value),
        unit=unit,
        direction=direction,
        tolerance=tolerance,
        config_digest=(
            default_config_digest() if config_digest is None else config_digest
        ),
        scale=repro_scale(),
        unix_time=time.time(),
        host=host_metadata(),
        attachments=dict(attachments or {}),
    )
