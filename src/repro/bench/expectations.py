"""The paper-fidelity scorecard: declarative expectations vs records.

Each :class:`Expectation` states, in one line, something the paper
reports — a Figure-12 speedup direction, the Table-II pattern coverage,
a Table-V/VI saving — as bounds on one recorded metric.  Evaluating the
table against the latest benchmark records yields a scorecard where
every wired paper claim is ``pass``, ``drift`` (outside the bound but
within the slack band — the shape survived, the magnitude is eroding),
``fail`` (the claim no longer holds on our substrate) or ``missing``
(the benchmark has not recorded that metric yet).

The bounds are *shape* bounds, not exact paper values: this reproduction
runs orders of magnitude fewer transactions than the paper's simulator,
so what must be preserved is the sign and rough magnitude of every
effect, matching the assertions the benchmark suite itself makes.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.compare import best_of, index_records
from repro.bench.records import BenchRecord

PASS = "pass"
DRIFT = "drift"
FAIL = "fail"
MISSING = "missing"


@dataclass(frozen=True)
class Expectation:
    """One paper-reported claim as bounds on a recorded metric."""

    id: str
    paper: str          # the paper artifact this encodes, e.g. "Fig. 13"
    description: str
    benchmark: str      # record benchmark id (the emit name)
    metric: str         # record metric name
    low: Optional[float] = None   # inclusive lower bound, None = unbounded
    high: Optional[float] = None  # inclusive upper bound, None = unbounded
    slack: float = 0.0  # absolute drift band outside the bounds

    def evaluate(self, value: Optional[float]) -> "ExpectationResult":
        if value is None:
            return ExpectationResult(self, None, MISSING)
        shortfall = 0.0
        if self.low is not None and value < self.low:
            shortfall = self.low - value
        elif self.high is not None and value > self.high:
            shortfall = value - self.high
        if shortfall == 0.0:
            status = PASS
        elif shortfall <= self.slack:
            status = DRIFT
        else:
            status = FAIL
        return ExpectationResult(self, value, status)

    def bounds(self) -> str:
        if self.low is not None and self.high is not None:
            return "[%g, %g]" % (self.low, self.high)
        if self.low is not None:
            return ">= %g" % self.low
        if self.high is not None:
            return "<= %g" % self.high
        return "(any)"


@dataclass(frozen=True)
class ExpectationResult:
    expectation: Expectation
    value: Optional[float]
    status: str

    def format(self) -> str:
        value = "-" if self.value is None else "%.4f" % self.value
        return "%-28s %-10s %-12s %s  (%s)" % (
            self.expectation.id,
            self.expectation.paper,
            value,
            self.status.upper(),
            self.expectation.bounds(),
        )


#: The wired paper claims.  Benchmark/metric names match what the
#: benchmark files emit through ``bench_util.emit(..., records=...)``.
PAPER_EXPECTATIONS: Tuple[Expectation, ...] = (
    Expectation(
        id="fig3-rewrite-heavy",
        paper="Fig. 3",
        description="Transactions rewrite heavily: echo's first-write"
        " fraction stays well below half (paper: 44.8% of write"
        " distances exceed 31 on average)",
        benchmark="fig03_write_distance",
        metric="echo_first_write_fraction",
        high=0.6,
        slack=0.1,
    ),
    Expectation(
        id="fig5-clean-bytes",
        paper="Fig. 5",
        description="A large share of transactionally updated bytes are"
        " clean (paper average: 70.5%)",
        benchmark="fig05_clean_bytes",
        metric="avg_clean_bytes_percent",
        low=40.0,
        high=95.0,
        slack=5.0,
    ),
    Expectation(
        id="fig12a-slde-lifts",
        paper="Fig. 12(a)",
        description="SLDE lifts MorLog above FWB-CRADE on the small-"
        "dataset micros (gmean throughput ratio > 1)",
        benchmark="fig12a_micro_throughput_small",
        metric="gmean_morlog_slde_vs_fwb",
        low=1.0,
        slack=0.03,
    ),
    Expectation(
        id="fig12a-crade-tracks",
        paper="Fig. 12(a)",
        description="MorLog-CRADE tracks FWB-CRADE within a few percent"
        " on the micros",
        benchmark="fig12a_micro_throughput_small",
        metric="gmean_morlog_crade_vs_fwb",
        low=0.9,
        high=1.2,
        slack=0.05,
    ),
    Expectation(
        id="fig12b-slde-lifts",
        paper="Fig. 12(b)",
        description="The SLDE lift survives the large dataset",
        benchmark="fig12b_micro_throughput_large",
        metric="gmean_morlog_slde_vs_fwb",
        low=1.0,
        slack=0.03,
    ),
    Expectation(
        id="fig12b-sps-slde-shines",
        paper="Fig. 12(b)",
        description="SPS/large is where SLDE shines most (paper: 8.8x);"
        " its lift over plain MorLog-CRADE is positive",
        benchmark="fig12b_micro_throughput_large",
        metric="sps_slde_advantage_vs_crade",
        low=0.0,
        slack=0.02,
    ),
    Expectation(
        id="fig13-dp-cuts-traffic",
        paper="Fig. 13",
        description="MorLog-DP reduces NVMM write traffic vs FWB-CRADE"
        " (paper gmean: well below 1)",
        benchmark="fig13_write_traffic",
        metric="gmean_morlog_dp_vs_fwb",
        high=1.0,
        slack=0.03,
    ),
    Expectation(
        id="table2-pattern-coverage",
        paper="Table II",
        description="The eight DLDC patterns cover a substantial share"
        " of dirty log data (paper: ~42.5% cumulative)",
        benchmark="table2_dldc_patterns",
        metric="compressible_fraction",
        low=0.1,
        high=1.0,
        slack=0.05,
    ),
    Expectation(
        id="table5-dp-saves-small",
        paper="Table V",
        description="MorLog-DP reduces NVMM write energy on the small"
        " dataset (paper: 45.9%)",
        benchmark="table5_write_energy",
        metric="morlog_dp_reduction_small_percent",
        low=0.0,
        slack=2.0,
    ),
    Expectation(
        id="table5-dp-saves-large",
        paper="Table V",
        description="MorLog-DP reduces NVMM write energy on the large"
        " dataset (paper: 36.0%)",
        benchmark="table5_write_energy",
        metric="morlog_dp_reduction_large_percent",
        low=0.0,
        slack=2.0,
    ),
    Expectation(
        id="table5-slde-over-crade",
        paper="Table V",
        description="SLDE contributes energy savings beyond plain CRADE",
        benchmark="table5_write_energy",
        metric="slde_over_crade_margin_small_percent",
        low=0.0,
        slack=1.0,
    ),
    Expectation(
        id="table6-dldc-alone-saves",
        paper="Table VI",
        description="DLDC alone (FWB-SLDE) already cuts log bits"
        " (paper: ~40% small / ~34% large)",
        benchmark="table6_log_bits",
        metric="fwb_slde_reduction_small_percent",
        low=0.0,
        slack=2.0,
    ),
    Expectation(
        id="table6-slde-geq-crade",
        paper="Table VI",
        description="MorLog+SLDE never writes more log bits than the"
        " undo+redo CRADE baseline",
        benchmark="table6_log_bits",
        metric="slde_over_crade_margin_small_percent",
        low=0.0,
        slack=0.5,
    ),
    Expectation(
        id="headline-throughput",
        paper="Abstract",
        description="MorLog-DP improves throughput vs FWB-CRADE"
        " (paper: +72.5%)",
        benchmark="headline_claims",
        metric="throughput_improvement_pct",
        low=0.0,
        slack=1.0,
    ),
    Expectation(
        id="headline-write-traffic",
        paper="Abstract",
        description="MorLog-DP reduces NVMM write traffic (paper: 41.1%)",
        benchmark="headline_claims",
        metric="write_traffic_reduction_pct",
        low=0.0,
        slack=1.0,
    ),
    Expectation(
        id="headline-write-energy",
        paper="Abstract",
        description="MorLog-DP reduces NVMM write energy (paper: 49.9%)",
        benchmark="headline_claims",
        metric="write_energy_reduction_pct",
        low=0.0,
        slack=1.0,
    ),
    # Extension claims: the comparative persistence testbed's designs
    # (docs/designs.md), bounded the same way as the paper rows.
    Expectation(
        id="ext-incll-log-bits",
        paper="Ext.",
        description="InCLL's two-word embedded entries carry less log"
        " payload than the central undo log's three-slot entries",
        benchmark="extension_designs",
        metric="incll_vs_undo_log_bits_ratio",
        low=0.5,
        high=0.95,
        slack=0.05,
    ),
    Expectation(
        id="ext-paging-amplifies",
        paper="Ext.",
        description="Copy-on-write paging amplifies data writes by"
        " roughly the page/line ratio under small transactions",
        benchmark="extension_designs",
        metric="paging_data_write_amplification",
        low=2.0,
        high=12.0,
        slack=0.5,
    ),
    Expectation(
        id="ext-ckpt-compacts",
        paper="Ext.",
        description="Commit-boundary checkpoints compact the log a"
        " recovery scan must walk to the tail since the last checkpoint",
        benchmark="extension_designs",
        metric="ckpt_recovery_log_ratio",
        high=0.25,
        slack=0.05,
    ),
)


def evaluate_expectations(
    records: Iterable[BenchRecord],
    expectations: Tuple[Expectation, ...] = PAPER_EXPECTATIONS,
) -> List[ExpectationResult]:
    """Score every expectation against the given record set."""
    index = index_records(records)
    results = []
    for expectation in expectations:
        key = "%s/%s" % (expectation.benchmark, expectation.metric)
        group = index.get(key)
        value = best_of(group).value if group else None
        results.append(expectation.evaluate(value))
    return results


def scorecard_counts(results: Iterable[ExpectationResult]) -> Dict[str, int]:
    counts = {PASS: 0, DRIFT: 0, FAIL: 0, MISSING: 0}
    for result in results:
        counts[result.status] += 1
    return counts
