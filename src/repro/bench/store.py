"""Persistence for benchmark records: result files and run trajectories.

Two layers:

- **per-benchmark files** — :func:`write_result_json` puts each
  benchmark's records in ``benchmarks/results/<name>.json`` next to its
  ``.txt`` table (same atomic temp-file + ``os.replace`` discipline);
- **trajectory files** — every run rolls all its records up into one
  repo-root ``BENCH_<n>.json`` (``n`` increments per run), so the
  sequence of files is the repo's machine-readable perf trajectory.

Trajectory appends are safe under concurrent writers: allocation uses
``O_CREAT | O_EXCL`` (first creator wins, losers move to ``n + 1``) and
appends serialize on a sidecar ``.lock`` file around a read–modify–
``os.replace`` cycle, so two processes appending into the same run file
can never tear it or drop each other's records.

The directory trajectories land in is resolved by :func:`bench_root`:
``REPRO_BENCH_DIR`` when set, else the current working directory (the
benchmark harness passes the repo root explicitly).  A single run file
per process is memoized by :func:`current_run_path`;
``REPRO_BENCH_RUN_FILE`` pins it externally (CI uses this to gate on the
exact file the suite wrote).
"""

import errno
import json
import os
import re
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bench.records import (
    RECORD_SCHEMA_VERSION,
    BenchRecord,
    host_metadata,
    repro_scale,
)

#: Trajectory file name pattern, anchored at the bench root.
TRAJECTORY_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: How long an appender waits on the sidecar lock before giving up.
LOCK_TIMEOUT_S = 10.0


def bench_root(root: Optional[str] = None) -> str:
    """The directory trajectory files live in."""
    if root is not None:
        return root
    return os.environ.get("REPRO_BENCH_DIR") or os.getcwd()


def _atomic_write_json(path: str, document: Dict[str, Any]) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix="." + os.path.basename(path) + "-", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_result_json(path: str, name: str, records: Iterable[BenchRecord]) -> None:
    """Write one benchmark's records as ``<path>`` (atomic)."""
    _atomic_write_json(
        path,
        {
            "schema_version": RECORD_SCHEMA_VERSION,
            "benchmark": name,
            "records": [r.to_dict() for r in records],
        },
    )


# ---------------------------------------------------------------------------
# Trajectory files
# ---------------------------------------------------------------------------


def _empty_run_document() -> Dict[str, Any]:
    return {
        "schema_version": RECORD_SCHEMA_VERSION,
        "run": {
            "host": host_metadata(),
            "scale": repro_scale(),
            "started_unix_time": time.time(),
        },
        "records": [],
    }


def list_runs(root: Optional[str] = None) -> List[str]:
    """Trajectory files under the bench root, oldest first (by index)."""
    root = bench_root(root)
    try:
        names = os.listdir(root)
    except OSError:
        return []
    indexed = []
    for name in names:
        match = TRAJECTORY_PATTERN.match(name)
        if match:
            indexed.append((int(match.group(1)), os.path.join(root, name)))
    return [path for _idx, path in sorted(indexed)]


def latest_run(root: Optional[str] = None) -> Optional[str]:
    runs = list_runs(root)
    return runs[-1] if runs else None


def open_run(root: Optional[str] = None) -> str:
    """Allocate the next ``BENCH_<n>.json`` and return its path.

    Creation uses ``O_CREAT | O_EXCL`` so concurrent allocators can never
    claim the same index: whoever loses the race retries at ``n + 1``.
    """
    root = bench_root(root)
    os.makedirs(root, exist_ok=True)
    runs = list_runs(root)
    index = 1
    if runs:
        index = int(TRAJECTORY_PATTERN.match(os.path.basename(runs[-1])).group(1)) + 1
    while True:
        path = os.path.join(root, "BENCH_%d.json" % index)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            index += 1
            continue
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(_empty_run_document(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except BaseException:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        return path


#: Process-wide current run file (one trajectory point per process).
_CURRENT_RUN: Optional[str] = None


def current_run_path(root: Optional[str] = None) -> str:
    """The run file this process appends to, allocating it on first use.

    ``REPRO_BENCH_RUN_FILE`` pins the path (created on first append if
    missing); otherwise the first caller allocates the next index under
    the bench root and every later caller reuses it.
    """
    global _CURRENT_RUN
    pinned = os.environ.get("REPRO_BENCH_RUN_FILE")
    if pinned:
        return pinned
    if _CURRENT_RUN is None or not os.path.exists(_CURRENT_RUN):
        _CURRENT_RUN = open_run(root)
    return _CURRENT_RUN


def reset_current_run() -> None:
    """Forget the memoized run file (tests and explicit new runs)."""
    global _CURRENT_RUN
    _CURRENT_RUN = None


class _FileLock:
    """A sidecar ``O_EXCL`` lock file; crashes leave a stale lock that
    times out rather than corrupting the protected file."""

    def __init__(self, path: str, timeout_s: float = LOCK_TIMEOUT_S) -> None:
        self.lock_path = path + ".lock"
        self.timeout_s = timeout_s

    def __enter__(self) -> "_FileLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(fd)
                return self
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        "could not acquire %s within %.0fs (stale lock?)"
                        % (self.lock_path, self.timeout_s)
                    )
                time.sleep(0.005)

    def __exit__(self, *exc_info) -> None:
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass


def append_records(
    path: str, records: Iterable[BenchRecord]
) -> Tuple[str, int]:
    """Append records to the trajectory file at ``path`` (lock + replace).

    Creates the file if missing (pinned paths start lazily).  Returns
    ``(path, total records now in the file)``.
    """
    records = list(records)
    with _FileLock(path):
        if os.path.exists(path):
            with open(path) as handle:
                document = json.load(handle)
        else:
            document = _empty_run_document()
        document["records"].extend(r.to_dict() for r in records)
        _atomic_write_json(path, document)
        return path, len(document["records"])


def load_run(path: str) -> Tuple[Dict[str, Any], List[BenchRecord]]:
    """Parse a trajectory file into ``(run header, records)``.

    Raises ``ValueError`` on structurally invalid documents so callers
    (the gate) fail loudly instead of comparing garbage.
    """
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "records" not in document:
        raise ValueError("%s is not a trajectory file (no records)" % path)
    version = document.get("schema_version")
    if version != RECORD_SCHEMA_VERSION:
        raise ValueError(
            "%s has schema_version %r, this code reads %d"
            % (path, version, RECORD_SCHEMA_VERSION)
        )
    records = [BenchRecord.from_dict(item) for item in document["records"]]
    return document.get("run", {}), records
