"""Markdown dashboard over the record store (``repro bench report``).

Renders one trajectory point — by default the latest ``BENCH_<n>.json``
— into ``benchmarks/results/REPORT.md``: the paper-fidelity scorecard
first (that is the headline: does the reproduction still track the
paper?), then every recorded metric grouped by benchmark, then the
figure artifacts (the Vega-Lite + CSV pairs the benchmarks emit next to
their ``.txt`` tables, discovered from the results directory), then,
when a baseline is given, the classified comparison against it.
"""

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.compare import ComparisonReport, best_of, index_records
from repro.bench.expectations import (
    ExpectationResult,
    evaluate_expectations,
    scorecard_counts,
)
from repro.bench.records import BenchRecord

_STATUS_ICON = {
    "pass": "✅",
    "drift": "⚠️",
    "fail": "❌",
    "missing": "➖",
    "improved": "✅",
    "regressed": "❌",
    "unchanged": "·",
    "skipped": "➖",
}


def _table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> List[str]:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return "%.4f" % value


def scorecard_section(results: List[ExpectationResult]) -> List[str]:
    counts = scorecard_counts(results)
    lines = [
        "## Paper-fidelity scorecard",
        "",
        "%d expectation(s): %d pass, %d drift, %d fail, %d missing"
        % (
            len(results),
            counts["pass"],
            counts["drift"],
            counts["fail"],
            counts["missing"],
        ),
        "",
    ]
    rows = []
    for result in results:
        e = result.expectation
        rows.append(
            [
                _STATUS_ICON.get(result.status, "?") + " " + result.status,
                e.paper,
                e.id,
                "-" if result.value is None else _fmt(result.value),
                e.bounds(),
                e.description,
            ]
        )
    lines.extend(_table(
        ["status", "paper", "expectation", "value", "bound", "claim"], rows
    ))
    return lines


def records_section(records: List[BenchRecord]) -> List[str]:
    lines = ["## Recorded metrics", ""]
    index = index_records(records)
    rows = []
    for key in sorted(index):
        rec = best_of(index[key])
        repeats = len(index[key])
        rows.append(
            [
                rec.benchmark,
                rec.metric,
                _fmt(rec.value),
                rec.unit or "-",
                rec.direction,
                "-" if not rec.gates else "%.0f%%" % (100 * rec.effective_tolerance()),
                repeats,
            ]
        )
    lines.extend(_table(
        ["benchmark", "metric", "value", "unit", "direction", "tolerance",
         "repeats"],
        rows,
    ))
    return lines


def figures_section(figures: List[Dict[str, Any]]) -> List[str]:
    """Browsable index of the emitted Vega-Lite/CSV figure artifacts.

    ``figures`` is :func:`repro.experiments.vega.discover_figures`
    output; specs link to the Vega editor-compatible JSON and the CSV,
    and a spec that failed validation shows up as ``invalid`` rather
    than disappearing.
    """
    lines = ["## Figures", ""]
    if not figures:
        lines.append("No figure artifacts found.")
        return lines
    rows = []
    for figure in figures:
        rows.append(
            [
                figure.get("title") or figure["name"],
                "[%s](%s)" % (
                    figure["name"] + ".vl.json", figure["name"] + ".vl.json"),
                "[csv](%s)" % (figure["name"] + ".csv")
                if figure.get("csv_path") else "-",
                "invalid" if figure.get("rows") is None
                else "%d rows" % figure["rows"],
            ]
        )
    lines.extend(_table(["figure", "vega-lite", "data", "status"], rows))
    lines.append("")
    lines.append(
        "Open a `.vl.json` in any Vega-Lite viewer (data is inlined)."
    )
    return lines


def comparison_section(
    report: ComparisonReport, baseline_name: str
) -> List[str]:
    lines = [
        "## Comparison vs %s" % baseline_name,
        "",
        report.summary(),
        "",
    ]
    rows = []
    for delta in report.deltas:
        rows.append(
            [
                _STATUS_ICON.get(delta.verdict, "?") + " " + delta.verdict,
                delta.benchmark,
                delta.metric,
                _fmt(delta.baseline),
                _fmt(delta.value),
                ("%+.2f%%" % (100.0 * (delta.ratio - 1.0)))
                if delta.baseline
                else "-",
                delta.note or "-",
            ]
        )
    lines.extend(_table(
        ["verdict", "benchmark", "metric", "baseline", "value", "delta",
         "note"],
        rows,
    ))
    return lines


def render_report(
    records: List[BenchRecord],
    run_header: Optional[Dict[str, Any]] = None,
    run_name: str = "",
    comparison: Optional[ComparisonReport] = None,
    baseline_name: str = "baseline",
    figures: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """The full markdown dashboard as one string."""
    header = run_header or {}
    lines = ["# Benchmark observatory report", ""]
    meta = []
    if run_name:
        meta.append(("run", run_name))
    started = header.get("started_unix_time")
    if started:
        meta.append(
            ("started", time.strftime(
                "%Y-%m-%d %H:%M:%S UTC", time.gmtime(started)))
        )
    if "scale" in header:
        meta.append(("REPRO_SCALE", header["scale"]))
    host = header.get("host") or {}
    if host:
        meta.append(
            ("host", "%s %s, python %s, %s cpus" % (
                host.get("platform", "?"),
                host.get("machine", "?"),
                host.get("python", "?"),
                host.get("cpu_count", "?"),
            ))
        )
    meta.append(("records", len(records)))
    lines.extend(_table(["", ""], meta))
    lines.append("")
    lines.extend(scorecard_section(evaluate_expectations(records)))
    lines.append("")
    lines.extend(records_section(records))
    if figures is not None:
        lines.append("")
        lines.extend(figures_section(figures))
    if comparison is not None:
        lines.append("")
        lines.extend(comparison_section(comparison, baseline_name))
    lines.append("")
    return "\n".join(lines)
