"""The MorLog system: cores, durable transactions and the design factory.

- :mod:`repro.core.system` — assembles cores, caches, a hardware logger,
  the memory controller and the NVMM module into one simulated machine,
  and runs workloads on it.
- :mod:`repro.core.transaction` — the ``Tx_Begin``/``Tx_End`` programmer
  interface (section III-A) as a context object workloads write through.
- :mod:`repro.core.designs` — the six evaluated designs of section VI-A.
"""

from repro.core.designs import DESIGN_NAMES, make_system
from repro.core.system import System, RunResult
from repro.core.transaction import TxContext

__all__ = ["DESIGN_NAMES", "make_system", "System", "RunResult", "TxContext"]
