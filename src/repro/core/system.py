"""The simulated machine and its run loop.

A :class:`System` wires together the substrates — memory controller with
the NVMM module, three-level cache hierarchy, a hardware logger, per-core
clocks — and executes workload transactions on it.

Timing model (see DESIGN.md §3): each core owns a nanosecond clock that
advances by cache latencies, logger stalls and memory queue stalls; the run
loop always dispatches the next transaction on the core with the smallest
clock, which interleaves threads at transaction granularity.  Throughput is
transactions divided by the final maximum core time.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.bitops import WORD_BYTES
from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.core.transaction import TxContext
from repro.logging_hw.base import HardwareLogger, TransactionInfo
from repro.logging_hw.region import LiveEntry, LogRegion, LogRegionSet
from repro.memory.controller import MemoryController


class CrashInjected(Exception):
    """Raised by crash-injection hooks to cut execution mid-transaction."""


@dataclass
class RunResult:
    """Metrics from one workload run."""

    transactions: int
    elapsed_ns: float
    stats: Dict[str, float]

    @property
    def throughput_tx_per_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.transactions / (self.elapsed_ns * 1e-9)

    @property
    def nvmm_writes(self) -> int:
        return int(
            self.stats.get("data_writes", 0)
            + self.stats.get("log_writes", 0)
            + self.stats.get("commit_writes", 0)
        )

    @property
    def nvmm_write_energy_pj(self) -> float:
        return self.stats.get("energy_pj", 0.0)

    @property
    def log_bits(self) -> int:
        return int(self.stats.get("log_bits", 0) + self.stats.get("commit_bits", 0))


class System:
    """One simulated machine running one hardware logging design."""

    def __init__(
        self,
        config: SystemConfig,
        logger_factory: Callable[..., HardwareLogger],
        design_name: str = "custom",
        trace_config=None,
    ) -> None:
        config.validate()
        self.config = config
        self.design_name = design_name
        self._logger_factory = logger_factory
        self._ran = False
        self.stats = StatGroup("system")
        self.controller = MemoryController(config, self.stats)
        log_base = config.nvmm_base + config.nvm.size_bytes
        if config.logging.distributed_logs:
            self.log_region = LogRegionSet(
                self.controller,
                log_base,
                config.logging.log_region_bytes,
                config.cores.n_cores,
                self.stats,
                on_overflow=self._handle_log_overflow,
            )
        else:
            self.log_region = LogRegion(
                self.controller,
                log_base,
                config.logging.log_region_bytes,
                self.stats,
                on_overflow=self._handle_log_overflow,
            )
        self.logger = logger_factory(config, self.controller, self.log_region, self.stats)
        self.hierarchy = CacheHierarchy(config, self.controller, self.stats, self.logger)
        self.logger.hierarchy = self.hierarchy

        n = config.cores.n_cores
        self.core_time_ns: List[float] = [0.0] * n
        self.current_tx: List[Optional[TransactionInfo]] = [None] * n
        self.contexts = [TxContext(self, core) for core in range(n)]
        self._ns_per_cycle = config.cores.ns_per_cycle
        self._fwb_interval_ns = (
            config.logging.fwb_interval_cycles * self._ns_per_cycle
        )
        self._next_fwb_ns = self._fwb_interval_ns
        self._scans_done = 0
        self._commit_epoch: Dict[int, int] = {}
        self.completed_transactions = 0
        self._active_threads = n
        # Non-temporal store staging (section III-F): per-transaction
        # word values held in DRAM until commit, then written to NVMM.
        self._nt_staging: Dict[tuple, Dict[int, int]] = {}
        # Transaction-table truncation state (section III-F, option 2):
        # which cache lines still hold each transaction's updates.
        self._tx_table = config.logging.truncation == "tx-table"
        self._pending_lines: Dict[int, set] = {}
        self._line_txs: Dict[int, set] = {}
        if self._tx_table:
            self.logger.data_persisted_hook = self._on_line_persisted
        # Optional analysis tap: object with on_tx_store(tid, txid, addr,
        # old, new) (see repro.analysis.trace).
        self.trace = None
        # Optional replay-recording tap: object with on_setup_store /
        # on_tx_dispatch / on_tx_store plus the TxContext op hooks
        # (see repro.replay.recorder.TraceRecorder).
        self.recorder = None
        # Optional crash hook called before every transactional store
        # (temporal and non-temporal) and before every commit sequence.
        self.crash_hook: Optional[Callable[[], None]] = None
        # Optional fault-injection plan observing named crash points
        # (see repro.faultinject.plan); installed on every layer at once.
        self.crash_plan = None
        # Structured event tracing (see repro.trace): a TraceBus every
        # layer publishes typed events to, or None — the emission sites
        # are all guarded so a traceless run pays only the None test.
        self.tracer = None
        self.trace_config = trace_config
        if trace_config is not None and trace_config.enabled:
            self.install_tracer(trace_config.make_bus())

    def install_crash_plan(self, plan) -> None:
        """Thread a fault-injection plan through every persistence layer.

        The same plan object lands on the system, the logger, each log
        region and the NVM module, so its event indices form one global
        order across all persist boundaries.  Pass None to uninstall.
        """
        self.crash_plan = plan
        self.logger.crash_plan = plan
        self.controller.nvm.crash_plan = plan
        if isinstance(self.log_region, LogRegionSet):
            for region in self.log_region.regions:
                region.crash_plan = plan
        else:
            self.log_region.crash_plan = plan

    def install_tracer(self, bus) -> None:
        """Attach a trace bus to every event-publishing layer.

        Mirrors :meth:`install_crash_plan`: the same bus object lands on
        the system, the logger, each log region and the NVM module, so
        the exported stream is one globally-ordered sequence of events.
        Pass None to detach.
        """
        self.tracer = bus
        self.logger.tracer = bus
        self.controller.nvm.set_tracer(bus)
        if isinstance(self.log_region, LogRegionSet):
            for region in self.log_region.regions:
                region.tracer = bus
        else:
            self.log_region.tracer = bus

    # ------------------------------------------------------------------
    # Core-visible memory operations
    # ------------------------------------------------------------------

    def advance(self, core: int, cycles: float) -> None:
        self.core_time_ns[core] += cycles * self._ns_per_cycle

    def load_word(self, core: int, addr: int) -> int:
        tx = self.current_tx[core]
        if tx is not None and self._nt_staging:
            staged = self._nt_staging.get((tx.tid, tx.txid))
            if staged is not None and addr in staged:
                # Read-your-own non-temporal write (pre-commit).
                self.advance(core, self.config.cores.base_op_cycles)
                return staged[addr]
        now = self.core_time_ns[core] + self.config.cores.base_op_cycles * self._ns_per_cycle
        now = self.logger.tick(now)
        line, now = self.hierarchy.access(core, addr, now, is_store=False)
        index = (addr - line.base_addr) // WORD_BYTES
        self.core_time_ns[core] = now
        self.stats.add("loads")
        return line.word(index)

    def store_word(self, core: int, addr: int, value: int) -> None:
        now = self.core_time_ns[core] + self.config.cores.base_op_cycles * self._ns_per_cycle
        now = self.logger.tick(now)
        line, now = self.hierarchy.access(core, addr, now, is_store=True)
        index = (addr - line.base_addr) // WORD_BYTES
        old = line.word(index)
        tx = self.current_tx[core]
        if tx is not None and self.controller.is_persistent(addr):
            if self.crash_hook is not None:
                self.crash_hook()
            if self.crash_plan is not None:
                self.crash_plan.fire("tx-store", txid=tx.txid, addr=addr)
            if self.trace is not None:
                self.trace.on_tx_store(tx.tid, tx.txid, addr, old, value)
            if self.recorder is not None:
                self.recorder.on_tx_store(addr, old, value)
            tx.n_stores += 1
            now = self.logger.on_store(tx, line, index, old, value, now)
            if self._tx_table:
                self._pending_lines.setdefault(tx.txid, set()).add(line.base_addr)
                self._line_txs.setdefault(line.base_addr, set()).add(tx.txid)
        line.set_word(index, value)
        self.core_time_ns[core] = now
        self.stats.add("stores")

    def store_word_nt(self, core: int, addr: int, value: int) -> None:
        """Non-temporal (cache-bypassing) store — section III-F.

        Inside a transaction the value is staged in DRAM and redo-only
        logged; it reaches NVMM after commit.  Outside a transaction it
        writes through to memory directly.
        """
        now = self.core_time_ns[core] + self.config.cores.base_op_cycles * self._ns_per_cycle
        now = self.logger.tick(now)
        tx = self.current_tx[core]
        self.stats.add("nt_stores")
        if tx is not None and self.controller.is_persistent(addr):
            if self.crash_hook is not None:
                self.crash_hook()
            if self.crash_plan is not None:
                self.crash_plan.fire("tx-nt-store", txid=tx.txid, addr=addr)
            # Keep any cached copy coherent before bypassing the caches.
            now = self.hierarchy.flush_line(addr, now)
            if self.trace is not None or self.recorder is not None:
                old = self.controller.nvm.array.read_logical(addr)
                if self.trace is not None:
                    self.trace.on_tx_store(tx.tid, tx.txid, addr, old, value)
                if self.recorder is not None:
                    self.recorder.on_tx_store(addr, old, value)
            tx.n_stores += 1
            now = self.logger.on_nt_store(tx, addr, value, now)
            self._nt_staging.setdefault((tx.tid, tx.txid), {})[addr] = value
            from repro.memory.dram import DRAM_WRITE_NS

            now += DRAM_WRITE_NS  # staging write
        else:
            now = self.hierarchy.flush_line(addr, now)
            self._write_word_through(addr, value, now)
        self.core_time_ns[core] = now

    def _write_word_through(self, addr: int, value: int, now_ns: float) -> None:
        """Read-modify-write one word directly to memory."""
        base = addr - (addr % self.config.caches.line_bytes)
        if self.controller.is_persistent(addr):
            array = self.controller.nvm.array
            words = [
                array.read_logical(base + i * WORD_BYTES) for i in range(8)
            ]
            words[(addr - base) // WORD_BYTES] = value
            self.controller.nvm.write_data_line(base, words, now_ns)
        else:
            self.controller.dram.write_word(addr, value)

    def _flush_nt_staging(self, tx, now_ns: float) -> float:
        staged = self._nt_staging.pop((tx.tid, tx.txid), None)
        if not staged:
            return now_ns
        # Group by line so each line costs one NVMM write.
        lines: Dict[int, Dict[int, int]] = {}
        line_bytes = self.config.caches.line_bytes
        for addr, value in staged.items():
            base = addr - (addr % line_bytes)
            lines.setdefault(base, {})[addr] = value
        array = self.controller.nvm.array
        for base, words_in_line in sorted(lines.items()):
            words = [array.read_logical(base + i * WORD_BYTES) for i in range(8)]
            for addr, value in words_in_line.items():
                words[(addr - base) // WORD_BYTES] = value
            result = self.controller.nvm.write_data_line(base, words, now_ns)
            now_ns += result.schedule.stall_ns
        return now_ns

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin_tx(self, core: int) -> TransactionInfo:
        if self.current_tx[core] is not None:
            # Nested transactions flatten to the outermost (section III-A).
            self.stats.add("nested_tx_flattened")
            return self.current_tx[core]
        tx = self.logger.begin_tx(core, self.core_time_ns[core])
        self.current_tx[core] = tx
        if self.tracer is not None:
            self.tracer.emit("tx-begin", "tx", tx.begin_ns, core=core, txid=tx.txid)
        return tx

    def end_tx(self, core: int) -> None:
        tx = self.current_tx[core]
        if tx is None:
            raise RuntimeError("Tx_End without Tx_Begin on core %d" % core)
        if self.crash_hook is not None:
            self.crash_hook()
        if self.crash_plan is not None:
            self.crash_plan.fire("tx-commit", txid=tx.txid)
        now = self.logger.commit_tx(tx, self.core_time_ns[core])
        now = self._flush_nt_staging(tx, now)
        if self.tracer is not None:
            self.tracer.emit(
                "tx-commit",
                "tx",
                tx.begin_ns,
                core=core,
                txid=tx.txid,
                dur_ns=max(now - tx.begin_ns, 0.0),
                n_stores=tx.n_stores,
            )
        self.core_time_ns[core] = now
        self.current_tx[core] = None
        self._commit_epoch[tx.txid] = self._scans_done
        self.completed_transactions += 1
        if self._tx_table:
            # The table frees eligible entries as soon as their data are
            # persistent; checking at each commit keeps the prefix tight.
            self._truncate_log(now)

    def run_transaction(self, core: int, body: Callable[[TxContext], None]) -> None:
        """Execute one durable transaction on ``core``."""
        tx = self.begin_tx(core)
        try:
            body(self.contexts[core])
            self.end_tx(core)
        except CrashInjected:
            # The machine "lost power": volatile state is gone, the
            # persistence domain stays as is.  Tests call recover() next.
            if self.tracer is not None:
                self.tracer.emit(
                    "tx-crash", "tx", self.core_time_ns[core],
                    core=core, txid=tx.txid,
                )
            self.current_tx[core] = None
            raise
        self._maybe_force_write_back()

    def dispatch_transaction(
        self, core: int, body: Callable[[TxContext], None],
        arrival_ns: Optional[float] = None,
    ):
        """Dispatch one transaction on ``core``; the run loop's seam.

        The closed-loop run loop calls this with no arrival time: the
        transaction starts wherever the core's clock stands.  The
        open-loop traffic engine (:mod:`repro.traffic`) passes the
        transaction's ``arrival_ns``: an idle core first advances to the
        arrival (the core sat idle until work arrived), while a busy core
        starts it late — the gap between arrival and start is the
        queueing delay the paper's closed-loop harness can never observe.

        Returns ``(start_ns, finish_ns)`` on the core's clock.
        """
        if arrival_ns is not None and self.core_time_ns[core] < arrival_ns:
            self.core_time_ns[core] = arrival_ns
        start_ns = self.core_time_ns[core]
        if self.recorder is not None:
            self.recorder.on_tx_dispatch(core)
        self.run_transaction(core, body)
        return start_ns, self.core_time_ns[core]

    # ------------------------------------------------------------------
    # Setup-phase (untimed, unlogged) access for workload population
    # ------------------------------------------------------------------

    def setup_store(self, addr: int, value: int) -> None:
        """Install a word during workload setup, bypassing measurement."""
        if self.recorder is not None:
            self.recorder.on_setup_store(addr, value)
        if self.controller.is_persistent(addr):
            self.controller.nvm.array.write_logical(addr, value)
        else:
            self.controller.dram.write_word(addr, value)

    def setup_load(self, addr: int) -> int:
        if self.controller.is_persistent(addr):
            return self.controller.nvm.array.read_logical(addr)
        return self.controller.dram.read_word(addr)

    def reset_machine(self) -> None:
        """Rebuild every substrate, as if the System were freshly built.

        :meth:`run` cold-resets a reused machine through here so a second
        run sees exactly what a fresh System would — cold caches, an
        empty log region, pristine NVM cells — instead of inheriting the
        previous run's residue.  Rebuilding via the constructor makes
        that equivalence hold by construction; externally installed taps
        (trace, crash hook, crash plan) survive the rebuild.
        """
        trace = self.trace
        recorder = self.recorder
        crash_hook = self.crash_hook
        crash_plan = self.crash_plan
        tracer = self.tracer
        trace_config = self.trace_config
        self.__init__(self.config, self._logger_factory, self.design_name)
        self.trace = trace
        self.recorder = recorder
        self.crash_hook = crash_hook
        self.trace_config = trace_config
        if crash_plan is not None:
            self.install_crash_plan(crash_plan)
        if tracer is not None:
            # Reattach the same bus so events captured so far survive.
            self.install_tracer(tracer)

    def reset_measurement(self) -> None:
        """Zero all counters, clocks and run-loop state.

        Called after workload setup, and again at the top of every
        :meth:`run` — a reused System must not inherit the previous run's
        FWB schedule, truncation epochs, staged non-temporal stores or
        transaction-table bookkeeping, or its second run diverges from a
        fresh machine's (regression-tested in tests/test_system.py).
        """
        self.stats.reset()
        self.controller.nvm.timing.reset()
        self.core_time_ns = [0.0] * self.config.cores.n_cores
        self.completed_transactions = 0
        self._next_fwb_ns = self._fwb_interval_ns
        self._scans_done = 0
        self._commit_epoch.clear()
        self._nt_staging.clear()
        self._pending_lines.clear()
        self._line_txs.clear()

    # ------------------------------------------------------------------
    # Force-write-back and log truncation (section III-F)
    # ------------------------------------------------------------------

    def _maybe_force_write_back(self) -> None:
        now = min(self.core_time_ns[: self._active_threads])
        while now >= self._next_fwb_ns:
            self._run_fwb_scan(self._next_fwb_ns)
            self._next_fwb_ns += self._fwb_interval_ns

    def _run_fwb_scan(self, now_ns: float) -> float:
        if self.crash_plan is not None:
            self.crash_plan.fire("fwb-scan")
        done = self.hierarchy.force_write_back_scan(now_ns)
        done = self.logger.on_fwb_scan(done)
        self._scans_done += 1
        if self.tracer is not None:
            self.tracer.emit(
                "fwb-scan", "fwb", now_ns,
                dur_ns=max(done - now_ns, 0.0), index=self._scans_done,
            )
        self._truncate_log(done)
        return done

    def _on_line_persisted(self, line_addr: int) -> None:
        """Transaction-table bookkeeping: a line's data reached NVMM."""
        for txid in self._line_txs.pop(line_addr, ()):
            pending = self._pending_lines.get(txid)
            if pending is not None:
                pending.discard(line_addr)
                if not pending:
                    del self._pending_lines[txid]

    def _truncate_log(self, now_ns: float) -> None:
        if self._tx_table:
            committed = self._commit_epoch

            def can_free(entry: LiveEntry) -> bool:
                return (
                    entry.txid in committed
                    and not self._pending_lines.get(entry.txid)
                )

        else:
            horizon = self._scans_done - 2

            def can_free(entry: LiveEntry) -> bool:
                epoch = self._commit_epoch.get(entry.txid)
                return epoch is not None and epoch <= horizon

        self.log_region.truncate(can_free, now_ns)

    def _handle_log_overflow(self, now_ns: float) -> float:
        """Emergency path: scan twice so every dirty line persists, then
        truncate everything committed."""
        self.stats.add("log_overflow_scans")
        now_ns = self._run_fwb_scan(now_ns)
        now_ns = self._run_fwb_scan(now_ns)
        return now_ns

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, workload, n_transactions: int, n_threads: Optional[int] = None) -> RunResult:
        """Set up ``workload`` and execute ``n_transactions`` across threads."""
        if n_threads is None:
            n_threads = self.config.cores.n_cores
        if n_threads < 1:
            # 0 used to silently mean "all cores" via `n_threads or ...`,
            # turning a caller's arithmetic bug into an 8-thread run.
            raise ValueError("n_threads must be >= 1, got %r" % (n_threads,))
        if n_threads > self.config.cores.n_cores:
            raise ValueError("more threads than cores")
        if self._ran:
            self.reset_machine()
        self._ran = True
        workload.setup(self, n_threads)
        self.reset_measurement()
        self._active_threads = n_threads
        dispatched = 0
        while dispatched < n_transactions:
            core = min(range(n_threads), key=self.core_time_ns.__getitem__)
            body = workload.transaction(core)
            self.dispatch_transaction(core, body)
            dispatched += 1
        # Measurement ends here: the paper measures N transactions of
        # steady-state execution; the drain below (flushing every dirty
        # line and buffered entry) exists for post-run invariants and
        # recovery tests, and would otherwise swamp short runs with an
        # end-of-run write burst.
        elapsed = max(self.core_time_ns[:n_threads])
        measured = self.stats.as_dict()
        end = self.logger.drain(elapsed)
        end = self.hierarchy.drain_all(end)
        if self._tx_table:
            # Every line is persistent now; the table can free everything
            # committed.
            self._truncate_log(end)
        return RunResult(
            transactions=dispatched,
            elapsed_ns=elapsed,
            stats=measured,
        )

    # ------------------------------------------------------------------
    # Crash / recovery support
    # ------------------------------------------------------------------

    def persistent_word(self, addr: int) -> int:
        """The word's value in the persistence domain (ignores caches)."""
        return self.controller.nvm.array.read_logical(addr)

    def coherent_word(self, addr: int) -> int:
        """The word's newest architectural value (caches included)."""
        return self.hierarchy.coherent_word(addr)

    def recover(self, verify_decode: bool = True):
        """Run crash recovery against the current persistence domain."""
        from repro.logging_hw.recovery import recover

        if isinstance(self.log_region, LogRegionSet):
            bases = self.log_region.region_bases()
            region_size = self.log_region.region_bytes
        else:
            bases = self.log_region.base_addr
            region_size = self.config.logging.log_region_bytes
        state = recover(
            self.controller,
            bases,
            region_size,
            delay_persistence=self.config.logging.delay_persistence,
            verify_decode=verify_decode,
        )
        # Designs with durable state outside the central log (InCLL
        # embedded slots, CoW page tables) run their own pass here; it
        # reads only durable state, so the crashed logger instance is a
        # safe place to hang the hook.
        self.logger.recover_design_state(state)
        if self.tracer is not None:
            # Recovery runs on a fresh power-on timeline; ts 0 by design.
            self.tracer.emit(
                "recovery",
                "recovery",
                0.0,
                committed=len(state.committed_txids),
                persisted=len(state.persisted_txids),
                redone_words=state.redone_words,
                undone_words=state.undone_words,
                decode_verified_words=state.decode_verified_words,
            )
        return state
