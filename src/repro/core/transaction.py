"""The durable-transaction programming interface.

Programmers annotate transaction boundaries (``Tx_Begin`` / ``Tx_End``,
section III-A); everything in between goes through :class:`TxContext`,
which issues loads and stores against the simulated machine on behalf of
one hardware thread.  Outside a transaction the same object performs plain
(non-logged) accesses — the paper's non-critical data path.
"""

from typing import List

from repro.common.bitops import WORD_BYTES, mask_word


class TxContext:
    """Memory access handle for one hardware thread.

    Workloads treat this as "the machine": ``load``/``store`` move 64-bit
    words, the convenience helpers move runs of words.  The system tracks
    whether the thread is inside a transaction and routes stores through
    the hardware logger accordingly.
    """

    def __init__(self, system, core: int) -> None:
        self._system = system
        self.core = core

    # ------------------------------------------------------------------
    # Word accesses
    # ------------------------------------------------------------------

    def load(self, addr: int) -> int:
        """Load the 64-bit word at ``addr`` (must be word aligned)."""
        if addr % WORD_BYTES:
            raise ValueError("unaligned load at %#x" % addr)
        recorder = self._system.recorder
        if recorder is not None:
            recorder.on_load(addr)
        return self._system.load_word(self.core, addr)

    def store(self, addr: int, value: int) -> None:
        """Store a 64-bit word; logged when inside a transaction."""
        if addr % WORD_BYTES:
            raise ValueError("unaligned store at %#x" % addr)
        value = mask_word(value)
        recorder = self._system.recorder
        if recorder is not None:
            recorder.on_store(addr, value)
        self._system.store_word(self.core, addr, value)

    def store_nt(self, addr: int, value: int) -> None:
        """Non-temporal store (cache-bypassing, like ``movntq``)."""
        if addr % WORD_BYTES:
            raise ValueError("unaligned store at %#x" % addr)
        value = mask_word(value)
        recorder = self._system.recorder
        if recorder is not None:
            recorder.on_store_nt(addr, value)
        self._system.store_word_nt(self.core, addr, value)

    # ------------------------------------------------------------------
    # Convenience helpers
    # ------------------------------------------------------------------

    def load_words(self, addr: int, count: int) -> List[int]:
        return [self.load(addr + i * WORD_BYTES) for i in range(count)]

    def store_words(self, addr: int, values) -> None:
        for i, value in enumerate(values):
            self.store(addr + i * WORD_BYTES, value)

    def fill(self, addr: int, count: int, value: int = 0) -> None:
        for i in range(count):
            self.store(addr + i * WORD_BYTES, value)

    def compute(self, cycles: int) -> None:
        """Model non-memory work between accesses."""
        recorder = self._system.recorder
        if recorder is not None:
            recorder.on_compute(cycles)
        self._system.advance(self.core, cycles)
