"""Factory for the six evaluated designs (paper section VI-A).

==============  =============  ==========  =====================================
Design          Logger         Log codec   Notes
==============  =============  ==========  =====================================
FWB-CRADE       FWB, 16-entry  CRADE       the state-of-the-art baseline
FWB-Unsafe      FWB, 48-entry  CRADE       no eager eviction bound; shows that
                                           merely growing the buffer is not it
FWB-SLDE        FWB, 16-entry  SLDE        baseline logger + our codec
MorLog-CRADE    MorLog         CRADE       our logger + existing codec
MorLog-SLDE     MorLog         SLDE        our logger + our codec
MorLog-DP       MorLog         SLDE        + delay-persistence commit
==============  =============  ==========  =====================================
"""

from dataclasses import replace
from typing import Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.core.system import System
from repro.logging_hw.fwb import FwbLogger
from repro.logging_hw.morlog import MorLogLogger

DESIGN_NAMES = (
    "FWB-CRADE",
    "FWB-Unsafe",
    "FWB-SLDE",
    "MorLog-CRADE",
    "MorLog-SLDE",
    "MorLog-DP",
)

# Ablation-only baselines from the paper's section II-A taxonomy (Figure
# 1): undo-only logging (ATOM-style, forced data write-back at commit)
# and redo-only logging (ReDU/DHTM-style, DRAM-staged in-flight lines).
# Not part of the paper's evaluated set.
ABLATION_DESIGN_NAMES = ("Undo-CRADE", "Redo-CRADE")


def _design_config(name: str, base: SystemConfig) -> SystemConfig:
    logging = base.logging
    encoding = base.encoding
    if name in ("FWB-CRADE", "FWB-Unsafe", "MorLog-CRADE", "Undo-CRADE", "Redo-CRADE"):
        encoding = replace(encoding, log_codec="crade")
    elif name in ("FWB-SLDE", "MorLog-SLDE", "MorLog-DP"):
        encoding = replace(encoding, log_codec="slde")
    else:
        raise ConfigError("unknown design %r" % name)
    logging = replace(logging, delay_persistence=(name == "MorLog-DP"))
    return base.with_changes(logging=logging, encoding=encoding)


def make_system(
    name: str, config: Optional[SystemConfig] = None, trace=None
) -> System:
    """Build a :class:`System` running design ``name``.

    ``trace`` takes a :class:`repro.trace.TraceConfig`; when enabled the
    built system carries a trace bus on every event-publishing layer.
    """
    base = config if config is not None else SystemConfig()
    cfg = _design_config(name, base)

    if name == "Undo-CRADE":
        from repro.logging_hw.undo_only import UndoOnlyLogger

        return System(cfg, UndoOnlyLogger, design_name=name, trace_config=trace)
    if name == "Redo-CRADE":
        from repro.logging_hw.redo_only import RedoOnlyLogger

        return System(cfg, RedoOnlyLogger, design_name=name, trace_config=trace)

    if name.startswith("FWB"):
        if name == "FWB-Unsafe":
            # Buffer as large as undo+redo + redo combined, no age bound.
            entries = (
                cfg.logging.undo_redo_buffer_entries
                + cfg.logging.redo_buffer_entries
            )

            def factory(config, controller, region, stats):
                return FwbLogger(
                    config, controller, region, stats,
                    buffer_entries=entries, eager=False,
                )
        else:
            def factory(config, controller, region, stats):
                return FwbLogger(
                    config, controller, region, stats,
                    buffer_entries=config.logging.undo_redo_buffer_entries,
                    eager=True,
                )
    else:
        def factory(config, controller, region, stats):
            return MorLogLogger(config, controller, region, stats)

    return System(cfg, factory, design_name=name, trace_config=trace)
