"""Factory for the evaluated designs (paper section VI-A) and extensions.

==============  =============  ==========  =====================================
Design          Logger         Log codec   Notes
==============  =============  ==========  =====================================
FWB-CRADE       FWB, 16-entry  CRADE       the state-of-the-art baseline
FWB-Unsafe      FWB, 48-entry  CRADE       no eager eviction bound; shows that
                                           merely growing the buffer is not it
FWB-SLDE        FWB, 16-entry  SLDE        baseline logger + our codec
MorLog-CRADE    MorLog         CRADE       our logger + existing codec
MorLog-SLDE     MorLog         SLDE        our logger + our codec
MorLog-DP       MorLog         SLDE        + delay-persistence commit
==============  =============  ==========  =====================================

Beyond the paper's six, the comparative persistence-design testbed
(ROADMAP item 3) adds ablation baselines and three extension designs,
all built through the same factory:

==============  ==================  =====================================
Design          Logger              Mechanism
==============  ==================  =====================================
Undo-CRADE      undo-only           ATOM-style forced write-back commit
Redo-CRADE      redo-only           ReDU/DHTM-style DRAM staging
InCLL-CRADE     incll               per-line embedded undo slots with an
                                    overflow log (Cohen et al.)
CoW-Page        paging              copy-on-write shadow pages, atomic
                                    mapping flip at commit
Ckpt-Undo       ckpt-undo           undo logging + periodic checkpoint
                                    with log compaction
==============  ==================  =====================================

:func:`available_designs` is the single registry every design-name
surface (CLI ``--designs``, sweeps, traffic harness) validates against.
"""

from dataclasses import replace
from typing import Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.core.system import System
from repro.logging_hw.fwb import FwbLogger
from repro.logging_hw.morlog import MorLogLogger

DESIGN_NAMES = (
    "FWB-CRADE",
    "FWB-Unsafe",
    "FWB-SLDE",
    "MorLog-CRADE",
    "MorLog-SLDE",
    "MorLog-DP",
)

# Ablation-only baselines from the paper's section II-A taxonomy (Figure
# 1): undo-only logging (ATOM-style, forced data write-back at commit)
# and redo-only logging (ReDU/DHTM-style, DRAM-staged in-flight lines).
# Not part of the paper's evaluated set.
ABLATION_DESIGN_NAMES = ("Undo-CRADE", "Redo-CRADE")

# Extension designs: alternative persistence mechanisms evaluated as
# first-class citizens of the same harness (fault sweep, grid, traffic,
# figures).  Not part of the paper's evaluated set either.
EXTENSION_DESIGN_NAMES = ("InCLL-CRADE", "CoW-Page", "Ckpt-Undo")

_CRADE_DESIGNS = frozenset(
    ("FWB-CRADE", "FWB-Unsafe", "MorLog-CRADE")
    + ABLATION_DESIGN_NAMES
    + EXTENSION_DESIGN_NAMES
)
_SLDE_DESIGNS = frozenset(("FWB-SLDE", "MorLog-SLDE", "MorLog-DP"))


def available_designs(
    include_ablation: bool = False, include_extensions: bool = False
) -> Tuple[str, ...]:
    """The canonical design-name tuple, in presentation order.

    The paper's six always come first; ablation baselines and the
    extension designs are opt-in so figure pipelines keyed to the
    paper's set stay stable.
    """
    names = DESIGN_NAMES
    if include_ablation:
        names = names + ABLATION_DESIGN_NAMES
    if include_extensions:
        names = names + EXTENSION_DESIGN_NAMES
    return names


def _design_config(name: str, base: SystemConfig) -> SystemConfig:
    logging = base.logging
    encoding = base.encoding
    if name in _CRADE_DESIGNS:
        encoding = replace(encoding, log_codec="crade")
    elif name in _SLDE_DESIGNS:
        encoding = replace(encoding, log_codec="slde")
    else:
        raise ConfigError("unknown design %r" % name)
    logging = replace(logging, delay_persistence=(name == "MorLog-DP"))
    return base.with_changes(logging=logging, encoding=encoding)


def make_system(
    name: str, config: Optional[SystemConfig] = None, trace=None
) -> System:
    """Build a :class:`System` running design ``name``.

    ``trace`` takes a :class:`repro.trace.TraceConfig`; when enabled the
    built system carries a trace bus on every event-publishing layer.
    """
    base = config if config is not None else SystemConfig()
    cfg = _design_config(name, base)

    if name == "Undo-CRADE":
        from repro.logging_hw.undo_only import UndoOnlyLogger

        return System(cfg, UndoOnlyLogger, design_name=name, trace_config=trace)
    if name == "Redo-CRADE":
        from repro.logging_hw.redo_only import RedoOnlyLogger

        return System(cfg, RedoOnlyLogger, design_name=name, trace_config=trace)
    if name == "InCLL-CRADE":
        from repro.logging_hw.incll import InCllLogger

        return System(cfg, InCllLogger, design_name=name, trace_config=trace)
    if name == "CoW-Page":
        from repro.logging_hw.paging import PagingLogger

        return System(cfg, PagingLogger, design_name=name, trace_config=trace)
    if name == "Ckpt-Undo":
        from repro.logging_hw.checkpoint import CheckpointUndoLogger

        return System(cfg, CheckpointUndoLogger, design_name=name, trace_config=trace)

    if name.startswith("FWB"):
        if name == "FWB-Unsafe":
            # Buffer as large as undo+redo + redo combined, no age bound.
            entries = (
                cfg.logging.undo_redo_buffer_entries
                + cfg.logging.redo_buffer_entries
            )

            def factory(config, controller, region, stats):
                return FwbLogger(
                    config, controller, region, stats,
                    buffer_entries=entries, eager=False,
                )
        else:
            def factory(config, controller, region, stats):
                return FwbLogger(
                    config, controller, region, stats,
                    buffer_entries=config.logging.undo_redo_buffer_entries,
                    eager=True,
                )
    else:
        def factory(config, controller, region, stats):
            return MorLogLogger(config, controller, region, stats)

    return System(cfg, factory, design_name=name, trace_config=trace)
