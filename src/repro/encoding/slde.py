"""Selective log data encoding (SLDE) — paper section IV-B.

SLDE sits in the NVM module controller.  Every incoming write is encoded by
the alternative codec (CRADE by default) and, if the write carries log
data, by DLDC *in parallel*; the encoded form with the smaller size is the
one written to NVMM.  A per-entry encoding type flag records the winner so
the read path can decode (3 bits in undo+redo entries, 2 bits in redo
entries — we charge the conservative 3).
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.bitops import mask_word
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.crade import CradeCodec
from repro.encoding.dldc import DldcCodec

ENCODING_TYPE_FLAG_BITS = 3


@dataclass(frozen=True)
class LogWriteContext:
    """Everything SLDE knows about one word of log data.

    Attributes:
        old_word: value of the in-place data before the logged update (the
            undo value); source of the dirty comparison.
        dirty_mask: per-byte dirty flag carried by the log buffer entry.
        allow_dldc: False for the side of an undo+redo pair that must keep
            a self-contained encoding (the paper never DLDC-compresses the
            undo and redo data of one entry at the same time, section
            IV-B).
    """

    old_word: Optional[int]
    dirty_mask: int
    allow_dldc: bool = True


class SldeCodec(WordCodec):
    """Parallel CRADE + DLDC encoding with least-cost selection."""

    name = "slde"

    def __init__(self, expansion_enabled: bool = True, alternative: Optional[WordCodec] = None) -> None:
        if alternative is None:
            alternative = CradeCodec(expansion_enabled=expansion_enabled)
        self._alternative = alternative
        self._dldc = DldcCodec()
        self._expansion_enabled = expansion_enabled
        # Observation tap for the size comparator (installed by the NVM
        # module when tracing is on): called with
        # (word, chosen_method, chosen_bits, rejected_method,
        #  rejected_bits, silent) after every log-word decision.
        self.decision_hook = None

    @property
    def alternative(self) -> WordCodec:
        return self._alternative

    @property
    def dldc(self) -> DldcCodec:
        return self._dldc

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        """Non-log data bypass DLDC and use the alternative codec."""
        return self._alternative.encode(word, old_word)

    def encode_log(self, word: int, context: LogWriteContext) -> EncodedWord:
        """Encode one word of log data, choosing the cheaper codec.

        The comparison uses total encoded size (payload + tags), matching
        the paper's size comparator; the encoding type flag is charged to
        both candidates so the choice is fair.
        """
        word = mask_word(word)
        alt = self._alternative.encode(word, context.old_word)
        alt_cost = alt.total_bits + ENCODING_TYPE_FLAG_BITS
        if not context.allow_dldc:
            if self.decision_hook is not None:
                self.decision_hook(
                    word, alt.method, alt.total_bits, None, None, alt.silent
                )
            return alt
        dldc = self._dldc.encode_log(word, context.dirty_mask)
        if dldc.silent:
            if self.decision_hook is not None:
                self.decision_hook(
                    word, "dldc", dldc.total_bits, alt.method, alt.total_bits, True
                )
            return dldc
        dldc_cost = dldc.total_bits + ENCODING_TYPE_FLAG_BITS
        chosen = dldc if dldc_cost < alt_cost else alt
        if self.decision_hook is not None:
            rejected = alt if chosen is dldc else dldc
            self.decision_hook(
                word,
                chosen.method,
                chosen.total_bits,
                rejected.method,
                rejected.total_bits,
                chosen.silent,
            )
        return chosen

    def encode_undo_redo_pair(
        self,
        undo_word: int,
        redo_word: int,
        dirty_mask: int,
    ) -> Tuple[EncodedWord, EncodedWord]:
        """Encode both sides of an undo+redo entry.

        At most one side may use DLDC (section IV-B): if both would pick
        DLDC, keep it for the side where it saves more and fall back to the
        alternative codec for the other.
        """
        undo_ctx = LogWriteContext(old_word=redo_word, dirty_mask=dirty_mask)
        redo_ctx = LogWriteContext(old_word=undo_word, dirty_mask=dirty_mask)
        undo_enc = self.encode_log(undo_word, undo_ctx)
        redo_enc = self.encode_log(redo_word, redo_ctx)
        if undo_enc.method == "dldc" and redo_enc.method == "dldc":
            if undo_enc.silent or redo_enc.silent:
                # A silent side wrote nothing, so no conflict arises.
                return undo_enc, redo_enc
            undo_alt = self._alternative.encode(undo_word)
            redo_alt = self._alternative.encode(redo_word)
            undo_saving = undo_alt.total_bits - undo_enc.total_bits
            redo_saving = redo_alt.total_bits - redo_enc.total_bits
            if undo_saving > redo_saving:
                redo_enc = redo_alt
            else:
                undo_enc = undo_alt
        return undo_enc, redo_enc

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        """Dispatch on the encoding type flag (the method field here)."""
        if encoded.method == "dldc":
            return self._dldc.decode(encoded, old_word)
        return self._alternative.decode(encoded, old_word)
