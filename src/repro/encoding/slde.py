"""Selective log data encoding (SLDE) — paper section IV-B.

SLDE sits in the NVM module controller.  Every incoming write is encoded by
the alternative codec (CRADE by default) and, if the write carries log
data, by DLDC *in parallel*; the encoded form with the smaller size is the
one written to NVMM.  A per-entry encoding type flag records the winner so
the read path can decode (3 bits in undo+redo entries, 2 bits in redo
entries — we charge the conservative 3).
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.bitops import mask_word
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.crade import CradeCodec
from repro.encoding.dldc import DldcCodec
from repro.encoding.memo import MemoConfig

ENCODING_TYPE_FLAG_BITS = 3


@dataclass(frozen=True)
class LogWriteContext:
    """Everything SLDE knows about one word of log data.

    Attributes:
        old_word: value of the in-place data before the logged update (the
            undo value); source of the dirty comparison.
        dirty_mask: per-byte dirty flag carried by the log buffer entry.
        allow_dldc: False for the side of an undo+redo pair that must keep
            a self-contained encoding (the paper never DLDC-compresses the
            undo and redo data of one entry at the same time, section
            IV-B).
    """

    old_word: Optional[int]
    dirty_mask: int
    allow_dldc: bool = True


class SldeCodec(WordCodec):
    """Parallel CRADE + DLDC encoding with least-cost selection."""

    name = "slde"

    def __init__(
        self,
        expansion_enabled: bool = True,
        alternative: Optional[WordCodec] = None,
        memo: Optional[MemoConfig] = None,
    ) -> None:
        if alternative is None:
            alternative = CradeCodec(expansion_enabled=expansion_enabled, memo=memo)
        self._alternative = alternative
        self._dldc = DldcCodec(memo=memo)
        self._expansion_enabled = expansion_enabled
        # SLDE delegates non-log encodes to the alternative, so its
        # context-freeness is the alternative's.
        self.context_free = alternative.context_free
        # Decision memos.  The choice (and its hook report) is a pure
        # function of the inputs below, so a hit replays the exact hook
        # arguments the compute path would have emitted.
        self._log_memo = memo.make_memo() if memo is not None else None
        self._pair_memo = memo.make_memo() if memo is not None else None
        # Observation tap for the size comparator (installed by the NVM
        # module when tracing is on): called with
        # (word, chosen_method, chosen_bits, rejected_method,
        #  rejected_bits, silent) after every log-word decision.
        self.decision_hook = None

    @property
    def alternative(self) -> WordCodec:
        return self._alternative

    @property
    def dldc(self) -> DldcCodec:
        return self._dldc

    def memo_stats(self) -> dict:
        """All of SLDE's memo layers, member keys prefixed, sorted."""
        stats = {}
        if self._log_memo is not None:
            stats["log"] = self._log_memo.stats()
        if self._pair_memo is not None:
            stats["pair"] = self._pair_memo.stats()
        for prefix, codec in (
            ("alternative", self._alternative),
            ("dldc", self._dldc),
        ):
            for name, counters in codec.memo_stats().items():
                stats["%s.%s" % (prefix, name)] = counters
        return dict(sorted(stats.items()))

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        """Non-log data bypass DLDC and use the alternative codec."""
        return self._alternative.encode(word, old_word)

    def encode_line(
        self,
        words: Sequence[int],
        old_words: Optional[Sequence[int]] = None,
    ) -> List[EncodedWord]:
        """Non-log lines go straight to the alternative codec's batch."""
        return self._alternative.encode_line(words, old_words)

    def _choose(
        self,
        word: int,
        old_word: Optional[int],
        dirty_mask: int,
        allow_dldc: bool,
    ) -> Tuple[EncodedWord, tuple, EncodedWord]:
        """The size comparator as a pure function.

        Returns ``(chosen, hook_args, alternative_candidate)``.  The hook
        arguments are computed here — not fired — so memoized decisions can
        replay them verbatim, and the pair path can rewrite them when it
        overrides a side.  The alternative candidate is returned so the
        pair conflict resolution reuses the *same context-aware* encoding
        whose cost the comparator saw.
        """
        alt = self._alternative.encode(word, old_word)
        if not allow_dldc:
            hook = (word, alt.method, alt.total_bits, None, None, alt.silent)
            return alt, hook, alt
        dldc = self._dldc.encode_log(word, dirty_mask)
        if dldc.silent:
            hook = (word, "dldc", dldc.total_bits, alt.method, alt.total_bits, True)
            return dldc, hook, alt
        alt_cost = alt.total_bits + ENCODING_TYPE_FLAG_BITS
        dldc_cost = dldc.total_bits + ENCODING_TYPE_FLAG_BITS
        chosen = dldc if dldc_cost < alt_cost else alt
        rejected = alt if chosen is dldc else dldc
        hook = (
            word,
            chosen.method,
            chosen.total_bits,
            rejected.method,
            rejected.total_bits,
            chosen.silent,
        )
        return chosen, hook, alt

    def _choose_cached(
        self,
        word: int,
        old_word: Optional[int],
        dirty_mask: int,
        allow_dldc: bool,
    ) -> Tuple[EncodedWord, tuple, EncodedWord]:
        """:meth:`_choose` through the shared per-word decision memo.

        Both the single-word path and the pair path's per-side decisions
        come through here, so an ``encode_log`` of a word later seen in an
        undo+redo pair (or vice versa) is a hit.
        """
        memo = self._log_memo
        if memo is None:
            return self._choose(word, old_word, dirty_mask, allow_dldc)
        # A context-free alternative ignores the old word, so dropping
        # it from the key multiplies the hit rate.
        old_key = None if self._alternative.context_free else old_word
        key = (word, old_key, dirty_mask, allow_dldc)
        cached = memo.get(key)
        if cached is None:
            cached = self._choose(word, old_word, dirty_mask, allow_dldc)
            memo.put(key, cached)
        return cached

    def encode_log(self, word: int, context: LogWriteContext) -> EncodedWord:
        """Encode one word of log data, choosing the cheaper codec.

        The comparison uses total encoded size (payload + tags), matching
        the paper's size comparator; the encoding type flag is charged to
        both candidates so the choice is fair.
        """
        word = mask_word(word)
        chosen, hook, _alt = self._choose_cached(
            word, context.old_word, context.dirty_mask, context.allow_dldc
        )
        if self.decision_hook is not None:
            self.decision_hook(*hook)
        return chosen

    def _choose_pair(
        self,
        undo_word: int,
        redo_word: int,
        dirty_mask: int,
    ) -> Tuple[EncodedWord, EncodedWord, tuple, tuple]:
        """Pure pair decision: both sides, conflicts resolved, hooks built.

        Per-side decisions go through :meth:`_choose_cached`, so the pair
        path and ``encode_log`` share one per-word memo; the pair memo on
        top of it caches only the (cheap) conflict resolution.
        """
        undo_enc, undo_hook, undo_alt = self._choose_cached(
            undo_word, redo_word, dirty_mask, True
        )
        redo_enc, redo_hook, redo_alt = self._choose_cached(
            redo_word, undo_word, dirty_mask, True
        )
        if (
            undo_enc.method == "dldc"
            and redo_enc.method == "dldc"
            and not undo_enc.silent
            and not redo_enc.silent
        ):
            # Both sides picked DLDC: keep it where it saves more.  The
            # loser falls back to the alternative candidate the comparator
            # already costed (same old-word context), and its decision is
            # re-reported so traces match the bits actually written.
            undo_saving = undo_alt.total_bits - undo_enc.total_bits
            redo_saving = redo_alt.total_bits - redo_enc.total_bits
            if undo_saving > redo_saving:
                redo_hook = (
                    redo_word,
                    redo_alt.method,
                    redo_alt.total_bits,
                    "dldc",
                    redo_enc.total_bits,
                    redo_alt.silent,
                )
                redo_enc = redo_alt
            else:
                undo_hook = (
                    undo_word,
                    undo_alt.method,
                    undo_alt.total_bits,
                    "dldc",
                    undo_enc.total_bits,
                    undo_alt.silent,
                )
                undo_enc = undo_alt
        return undo_enc, redo_enc, undo_hook, redo_hook

    def encode_undo_redo_pair(
        self,
        undo_word: int,
        redo_word: int,
        dirty_mask: int,
    ) -> Tuple[EncodedWord, EncodedWord]:
        """Encode both sides of an undo+redo entry.

        At most one side may use DLDC (section IV-B): if both would pick
        DLDC, keep it for the side where it saves more and fall back to the
        alternative codec for the other.
        """
        undo_word = mask_word(undo_word)
        redo_word = mask_word(redo_word)
        memo = self._pair_memo
        if memo is None:
            result = self._choose_pair(undo_word, redo_word, dirty_mask)
        else:
            key = (undo_word, redo_word, dirty_mask)
            result = memo.get(key)
            if result is None:
                result = self._choose_pair(undo_word, redo_word, dirty_mask)
                memo.put(key, result)
        undo_enc, redo_enc, undo_hook, redo_hook = result
        hook = self.decision_hook
        if hook is not None:
            hook(*undo_hook)
            hook(*redo_hook)
        return undo_enc, redo_enc

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        """Dispatch on the encoding type flag (the method field here)."""
        if encoded.method == "dldc":
            return self._dldc.decode(encoded, old_word)
        return self._alternative.decode(encoded, old_word)
