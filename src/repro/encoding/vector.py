"""Vectorized (numpy) encoding kernels for the replay fast path.

The scalar codecs in this package encode one word at a time; a recorded
trace (:mod:`repro.replay`) presents the whole store stream at once, so
its hot path evaluates the codec *classification* work — FPC prefix
classes, the DLDC Table-II pattern search, BDI delta fits, dirty-byte
masks, DCW/Flip-N-Write bit-flip counts — as batched numpy array ops and
only materializes payloads for the (few) distinct winners.

Every kernel mirrors one scalar function bit for bit:

====================  =======================================
kernel                scalar reference
====================  =======================================
vec_dirty_byte_mask   repro.common.bitops.dirty_byte_mask
vec_bit_flips         repro.common.bitops.flipped_bits
vec_fpc_prefix        repro.encoding.fpc.fpc_match
vec_bdi_tag           repro.encoding.bdi.bdi_compress (tag)
vec_dldc_pattern      repro.encoding.dldc.dldc_compress_pattern
vec_dldc_stream_bits  repro.encoding.dldc.DldcCodec._encode_dirty
vec_flipnwrite_flip   repro.encoding.flipnwrite.FlipNWriteCodec
====================  =======================================

The equivalence is pinned by the Hypothesis differential suite in
``tests/test_vector_codecs.py``; the memo-prewarm layer built on top
(:mod:`repro.replay.prewarm`) additionally relies on the PR-4 invariant
that memoized results are bit-identical to computed ones, so a kernel
bug would surface as a replay-differential failure, never as silently
different results.

numpy is a hard requirement of the replay subsystem but not of the
scalar simulator; this module degrades to an informative ImportError at
call time when numpy is absent.
"""

from typing import Tuple

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None
    HAVE_NUMPY = False

from repro.encoding.memo import (
    BYTE_FITS_SE2,
    BYTE_FITS_SE4,
    BYTE_LOW_NIBBLE_ZERO,
    FPC_SMALL_WORD_PREFIX,
)

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "vec_dirty_byte_mask",
    "vec_bit_flips",
    "vec_flipnwrite_flip",
    "vec_fpc_prefix",
    "FPC_PREFIX_PAYLOAD_BITS",
    "vec_bdi_tag",
    "BDI_TAG_PAYLOAD_BITS",
    "vec_dldc_pattern",
    "vec_dldc_stream_bits",
]


def require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - the toolchain ships numpy
        raise ImportError(
            "the vectorized encoding kernels and trace replay need numpy; "
            "install it or use the scalar codecs directly"
        )


def _as_u64(values) -> "np.ndarray":
    require_numpy()
    return np.ascontiguousarray(values, dtype=np.uint64)


# ---------------------------------------------------------------------------
# Dirty masks and bit flips
# ---------------------------------------------------------------------------

def vec_dirty_byte_mask(old, new) -> "np.ndarray":
    """Per-byte dirty flags for word pairs (mirrors dirty_byte_mask)."""
    diff = _as_u64(old) ^ _as_u64(new)
    mask = np.zeros(diff.shape, dtype=np.uint8)
    for i in range(8):
        byte = (diff >> np.uint64(8 * i)) & np.uint64(0xFF)
        mask |= (byte != 0).astype(np.uint8) << np.uint8(i)
    return mask


def vec_bit_flips(old, new) -> "np.ndarray":
    """DCW-programmed bit count per word pair (mirrors flipped_bits)."""
    return np.bitwise_count(_as_u64(old) ^ _as_u64(new))


def vec_flipnwrite_flip(old, new) -> "np.ndarray":
    """True where Flip-N-Write would store the complement."""
    o = _as_u64(old)
    n = _as_u64(new)
    plain = np.bitwise_count(o ^ n)
    inverted = np.bitwise_count(o ^ ~n)
    return inverted < plain


# ---------------------------------------------------------------------------
# FPC prefix classes
# ---------------------------------------------------------------------------

def _vec_fits_signed(w: "np.ndarray", bits: int) -> "np.ndarray":
    """fits_signed(word, bits, 64) over a uint64 array."""
    low = w & np.uint64((1 << bits) - 1)
    sign = (low >> np.uint64(bits - 1)) & np.uint64(1)
    fill = np.uint64(((1 << (64 - bits)) - 1) << bits)
    return (low | (sign * fill)) == w


#: FPC prefix -> payload bits (parallel to fpc.FPC_PATTERNS).
FPC_PREFIX_PAYLOAD_BITS = (0, 4, 8, 16, 32, 32, 8, 64)

_FPC_SMALL = None


def vec_fpc_prefix(words) -> "np.ndarray":
    """FPC prefix class per word (mirrors fpc_match, priority included)."""
    global _FPC_SMALL
    w = _as_u64(words)
    if _FPC_SMALL is None:
        _FPC_SMALL = np.array(FPC_SMALL_WORD_PREFIX, dtype=np.uint8)
    repeated = w == (w & np.uint64(0xFF)) * np.uint64(0x0101_0101_0101_0101)
    conditions = [
        w == 0,
        _vec_fits_signed(w, 4),
        repeated,
        _vec_fits_signed(w, 8),
        _vec_fits_signed(w, 16),
        _vec_fits_signed(w, 32),
        (w & np.uint64(0xFFFF_FFFF)) == 0,
    ]
    choices = [0b000, 0b001, 0b110, 0b010, 0b011, 0b100, 0b101]
    out = np.select(conditions, choices, default=0b111).astype(np.uint8)
    small = w < 256
    if small.any():
        out[small] = _FPC_SMALL[w[small].astype(np.intp)]
    return out


# ---------------------------------------------------------------------------
# BDI scheme tags
# ---------------------------------------------------------------------------

#: BDI tag -> payload bits (tag 2 is unused, parallel to bdi_compress).
BDI_TAG_PAYLOAD_BITS = (0, 16, 0, 48, 64, 64)


def vec_bdi_tag(words) -> "np.ndarray":
    """BDI scheme tag per word (mirrors bdi_compress's tag choice)."""
    w = _as_u64(words)
    tag = np.full(w.shape, 5, dtype=np.uint8)

    # Assign in reverse priority so the scalar search's first match wins.
    lanes4 = [
        ((w >> np.uint64(32 * i)) & np.uint64(0xFFFF_FFFF)).astype(np.int64)
        for i in range(2)
    ]
    ok4 = np.ones(w.shape, dtype=bool)
    for lane in lanes4:
        delta = (lane - lanes4[0]) & (1 << 32) - 1
        signed = np.where(delta >= 1 << 31, delta - (1 << 32), delta)
        ok4 &= (signed >= -(1 << 15)) & (signed < (1 << 15))
    tag[ok4] = 4

    lanes2 = [
        ((w >> np.uint64(16 * i)) & np.uint64(0xFFFF)).astype(np.int64)
        for i in range(4)
    ]
    ok3 = np.ones(w.shape, dtype=bool)
    ok1 = np.ones(w.shape, dtype=bool)
    for lane in lanes2:
        delta = (lane - lanes2[0]) & (1 << 16) - 1
        signed = np.where(delta >= 1 << 15, delta - (1 << 16), delta)
        ok3 &= (signed >= -128) & (signed < 128)
        ok1 &= lane == lanes2[0]
    tag[ok3] = 3
    tag[ok1] = 1
    tag[w == 0] = 0
    return tag


# ---------------------------------------------------------------------------
# DLDC Table-II pattern search
# ---------------------------------------------------------------------------

_SE2_TABLE = None
_SE4_TABLE = None
_LOW_NIBBLE_ZERO_TABLE = None


def _byte_tables():
    global _SE2_TABLE, _SE4_TABLE, _LOW_NIBBLE_ZERO_TABLE
    if _SE2_TABLE is None:
        _SE2_TABLE = np.array(BYTE_FITS_SE2, dtype=bool)
        _SE4_TABLE = np.array(BYTE_FITS_SE4, dtype=bool)
        _LOW_NIBBLE_ZERO_TABLE = np.array(BYTE_LOW_NIBBLE_ZERO, dtype=bool)
    return _SE2_TABLE, _SE4_TABLE, _LOW_NIBBLE_ZERO_TABLE


def vec_dldc_pattern(words, masks) -> Tuple["np.ndarray", "np.ndarray"]:
    """Table-II pattern search over (word, dirty-mask) rows.

    Returns ``(tag, payload_bits)`` per row: ``tag`` is the winning
    Table-II tag (int8) or -1 when no pattern matches, ``payload_bits``
    the winner's payload size.  Mirrors :func:`dldc_compress_pattern`
    applied to the word's dirty-byte string: ties keep the lowest tag,
    the sign-extension patterns need strings strictly wider than their
    base.  Rows with an empty mask (silent writes, which the scalar
    search refuses) report tag -1.
    """
    w = _as_u64(words)
    m = np.ascontiguousarray(masks, dtype=np.uint8)
    se2, se4, low_nibble_zero = _byte_tables()
    n = w.shape[0]

    bytes_ = np.empty((n, 8), dtype=np.uint8)
    for i in range(8):
        bytes_[:, i] = ((w >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.uint8)
    dirty = ((m[:, None] >> np.arange(8, dtype=np.uint8)) & 1).astype(bool)
    k = dirty.sum(axis=1).astype(np.int64)
    ordinal = np.cumsum(dirty, axis=1) - 1  # only meaningful where dirty

    rows = np.arange(n)

    def byte_at(j):
        """The j-th dirty byte of each row (garbage where k <= j)."""
        sel = dirty & (ordinal == j)
        return bytes_[rows, sel.argmax(axis=1)]

    def sign_fill(b):
        return np.where(b & 0x80, 0xFF, 0).astype(np.uint8)

    def tail_is_fill(j, fill):
        """Dirty bytes with ordinal >= j all equal the row's fill byte."""
        bad = dirty & (ordinal >= j) & (bytes_ != fill[:, None])
        return ~bad.any(axis=1)

    def all_dirty(pred):
        return ~(dirty & ~pred).any(axis=1)

    b0 = byte_at(0)
    b1 = byte_at(1)
    b3 = byte_at(3)

    best_tag = np.full(n, -1, dtype=np.int8)
    best_bits = np.full(n, 1 << 30, dtype=np.int64)
    live = k > 0

    def consider(tag, valid, bits):
        better = live & valid & (bits < best_bits)
        best_tag[better] = tag
        best_bits[better] = np.broadcast_to(bits, (n,))[better]

    # Ascending tag order with a strict '<' keeps the lowest tag on ties,
    # like the scalar search.
    consider(0b000, all_dirty(bytes_ == 0), np.int64(0))
    consider(0b001, all_dirty(se2[bytes_]), 2 * k)
    consider(0b010, all_dirty(se4[bytes_]), 4 * k)
    consider(0b011, (k > 1) & tail_is_fill(1, sign_fill(b0)), np.int64(8))
    consider(0b100, (k > 2) & tail_is_fill(2, sign_fill(b1)), np.int64(16))
    consider(0b101, (k > 4) & tail_is_fill(4, sign_fill(b3)), np.int64(32))
    consider(0b110, all_dirty(low_nibble_zero[bytes_]), 4 * k)
    consider(0b111, (k > 1) & (b0 == 0), 8 * (k - 1))

    best_bits[best_tag < 0] = 0
    return best_tag, best_bits


def vec_dldc_stream_bits(words, masks):
    """Full DLDC stream sizing per (word, dirty-mask) row.

    Returns ``(tag, stream_bits, compressed)``: the payload-stream size
    exactly as :meth:`DldcCodec._encode_dirty` would charge it —
    ``[1-bit compressed][3-bit tag][pattern payload]`` when the winning
    pattern beats the raw dirty bytes, ``[1-bit][raw bytes]`` otherwise
    (``tag`` is -1 for raw rows).  Rows with an empty mask are silent
    log writes: tag -1, 0 bits, uncompressed.
    """
    m = np.ascontiguousarray(masks, dtype=np.uint8)
    tag, pattern_bits = vec_dldc_pattern(words, m)
    k = np.bitwise_count(m).astype(np.int64)
    compressed = (tag >= 0) & (pattern_bits + 3 < 8 * k)
    stream_bits = np.where(compressed, 1 + 3 + pattern_bits, 1 + 8 * k)
    stream_bits = np.where(k == 0, 0, stream_bits)
    tag = np.where(compressed, tag, -1).astype(np.int8)
    return tag, stream_bits, compressed
