"""Hot-path codec memoization: LRU result caches and lookup tables.

Every simulated NVM write funnels through a word codec, and workload word
values repeat heavily (SPS swaps the same array cells back and forth,
B-tree keys cluster, allocations zero-fill), so the same codec decisions
are recomputed over and over.  This module supplies the three ingredients
the encoding package uses to make that cheap:

- :class:`LruMemo` — a small bounded LRU mapping immutable keys (words,
  dirty masks, contexts) to immutable :class:`~repro.encoding.base.
  EncodedWord` results, with hit/miss counters for diagnostics;
- precomputed *per-byte predicate tables* for the DLDC Table-II pattern
  search (2-bit / 4-bit sign-extension fits, zero low nibble) and a
  small-word FPC prefix table, replacing per-byte Python loops on the
  match path;
- :data:`DLDC_PATTERN_BITS` — the Table-II payload cost of every pattern
  for every dirty-byte count, so the pattern search can pick the winner
  by table lookup and build only the winning payload.

Memoization is *result-inert* by construction: a cache hit returns the
same frozen ``EncodedWord`` the compute path would have produced (the
equivalence is pinned by Hypothesis property tests and a system-level
bit-identity test), and SLDE replays its trace decision hook on hits so
observability is identical too.  The knobs live on
:class:`repro.common.config.EncodingConfig` (``codec_memo``,
``codec_memo_entries``) and are excluded from the grid result-cache keys
because they cannot change results.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from repro.common.bitops import WORD_BYTES, fits_signed

__all__ = [
    "MemoConfig",
    "LruMemo",
    "BYTE_FITS_SE2",
    "BYTE_FITS_SE4",
    "BYTE_LOW_NIBBLE_ZERO",
    "DLDC_PATTERN_BITS",
    "FPC_SMALL_WORD_PREFIX",
]

#: Default bound for each per-codec LRU.  Word values in the paper's
#: workloads cluster far below this, so the default behaves like an
#: unbounded cache while still capping worst-case memory.
DEFAULT_MEMO_ENTRIES = 1 << 13


@dataclass(frozen=True)
class MemoConfig:
    """Configuration of the codec memo layer (see EncodingConfig)."""

    enabled: bool = True
    entries: int = DEFAULT_MEMO_ENTRIES

    def make_memo(self) -> Optional["LruMemo"]:
        """An :class:`LruMemo` under this config, or None when disabled."""
        return LruMemo(self.entries) if self.enabled else None


class LruMemo:
    """A bounded LRU cache for codec results.

    Keys must be hashable and fully describe the computation's inputs;
    values must be immutable (``EncodedWord`` is a frozen dataclass, and
    the tuples stored by SLDE hold only frozen members).  ``get`` refreshes
    recency; ``put`` evicts the least-recently-used entry past capacity.
    None is not a legal value (``get`` uses it as the miss sentinel).
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = DEFAULT_MEMO_ENTRIES) -> None:
        if maxsize <= 0:
            raise ValueError("memo size must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Any:
        """Return the cached value for ``key`` or None on a miss."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if value is None:
            raise ValueError("None cannot be memoized (miss sentinel)")
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/size counters, canonically (key-)ordered.

        Diagnostics only — never part of run results (memoization is
        result-inert), but surfaced through ``metrics_snapshot``'s
        ``memo`` key so benchmark records capture cache effectiveness.
        """
        return {
            "entries": len(self._data),
            "evictions": self.evictions,
            "hits": self.hits,
            "maxsize": self.maxsize,
            "misses": self.misses,
        }


# ---------------------------------------------------------------------------
# Per-byte predicate tables (DLDC Table-II pattern search)
# ---------------------------------------------------------------------------

#: byte value -> fits a 2-bit sign-extended encoding (Table II tag 001).
BYTE_FITS_SE2 = tuple(fits_signed(b, 2, 8) for b in range(256))

#: byte value -> fits a 4-bit sign-extended encoding (Table II tag 010).
BYTE_FITS_SE4 = tuple(fits_signed(b, 4, 8) for b in range(256))

#: byte value -> low nibble is zero (Table II tag 110, zero-padded).
BYTE_LOW_NIBBLE_ZERO = tuple(b & 0x0F == 0 for b in range(256))


def _pattern_bits_table() -> Dict[int, tuple]:
    """Payload bits of each Table-II pattern per dirty-byte count ``k``.

    ``DLDC_PATTERN_BITS[tag][k]`` is the payload size in bits when the
    pattern applies to a ``k``-byte dirty string; None marks counts the
    pattern is undefined for (the sign-extension patterns need strings
    strictly wider than their base).  Index 0 is always None — an empty
    dirty string is a silent write and never reaches the pattern search.
    """
    table: Dict[int, list] = {tag: [None] * (WORD_BYTES + 1) for tag in range(8)}
    for k in range(1, WORD_BYTES + 1):
        table[0b000][k] = 0           # all-zero
        table[0b001][k] = 2 * k       # 2-bit sign-extension per byte
        table[0b010][k] = 4 * k       # 4-bit sign-extension per byte
        if 8 * k > 8:
            table[0b011][k] = 8       # 1-byte sign-extended value
        if 8 * k > 16:
            table[0b100][k] = 16      # 2-byte sign-extended value
        if 8 * k > 32:
            table[0b101][k] = 32      # 4-byte sign-extended value
        table[0b110][k] = 4 * k       # zero-padded low nibbles
        if k > 1:
            table[0b111][k] = 8 * (k - 1)  # zero low byte
    return {tag: tuple(bits) for tag, bits in table.items()}


#: Table-II pattern payload costs, ``DLDC_PATTERN_BITS[tag][k]``.
DLDC_PATTERN_BITS = _pattern_bits_table()


# ---------------------------------------------------------------------------
# FPC prefix fast path
# ---------------------------------------------------------------------------

def _small_word_prefix(word: int) -> int:
    # Mirrors repro.encoding.fpc.fpc_match for words < 256, computed once
    # at import (fpc imports this table, so the logic is inlined here).
    if word == 0:
        return 0b000
    if fits_signed(word, 4):
        return 0b001
    if fits_signed(word, 8):
        return 0b010
    return 0b011  # 8 < word < 256 always fits 16-bit sign extension


#: word value (< 256) -> FPC prefix class.  Small words dominate log and
#: metadata traffic (counters, keys, flags), so the full pattern match is
#: skipped for them.
FPC_SMALL_WORD_PREFIX = tuple(_small_word_prefix(w) for w in range(256))
