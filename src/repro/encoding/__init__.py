"""Data encoding for NVMM writes (paper section IV).

This subpackage implements the full encoding pipeline the paper evaluates:

- :mod:`repro.encoding.fpc` — 64-bit frequent pattern compression, the
  general-purpose compressor CRADE builds on.
- :mod:`repro.encoding.expansion` — compression-ratio-aware expansion
  coding (incomplete data mapping onto the cheapest TLC levels).
- :mod:`repro.encoding.crade` — FPC + expansion coding, the paper's
  state-of-the-art baseline codec.
- :mod:`repro.encoding.dldc` — differential log data compression
  (Table II), the log-aware codec MorLog contributes.
- :mod:`repro.encoding.slde` — selective log data encoding: run the
  alternative codec and DLDC in parallel, keep the cheaper result.
- :mod:`repro.encoding.flipnwrite` — Flip-N-Write, an extension baseline
  used in ablations.
"""

from typing import Optional

from repro.encoding.base import EncodedWord, WordCodec, RawCodec
from repro.encoding.bdi import BdiCodec
from repro.encoding.fpc import FpcCodec
from repro.encoding.crade import CradeCodec
from repro.encoding.dldc import DldcCodec, dldc_compress_pattern
from repro.encoding.memo import LruMemo, MemoConfig
from repro.encoding.slde import SldeCodec, LogWriteContext
from repro.encoding.flipnwrite import FlipNWriteCodec
from repro.encoding.expansion import ExpansionPolicy, map_bits_to_cells, cells_to_bits

__all__ = [
    "EncodedWord",
    "WordCodec",
    "RawCodec",
    "BdiCodec",
    "FpcCodec",
    "CradeCodec",
    "DldcCodec",
    "dldc_compress_pattern",
    "LruMemo",
    "MemoConfig",
    "SldeCodec",
    "LogWriteContext",
    "FlipNWriteCodec",
    "ExpansionPolicy",
    "map_bits_to_cells",
    "cells_to_bits",
]


def make_codec(
    name: str,
    expansion_enabled: bool = True,
    memo: Optional[MemoConfig] = None,
) -> WordCodec:
    """Build a codec by configuration name (see EncodingConfig).

    ``memo`` configures the result-inert codec memoization layer; codecs
    without cacheable work (raw, Flip-N-Write) ignore it.
    """
    if name == "raw":
        return RawCodec()
    if name == "fpc":
        return FpcCodec(expansion_enabled=False, memo=memo)
    if name == "crade":
        return CradeCodec(expansion_enabled=expansion_enabled, memo=memo)
    if name == "bdi":
        return BdiCodec(expansion_enabled=expansion_enabled, memo=memo)
    if name == "flip-n-write":
        return FlipNWriteCodec()
    if name == "slde":
        return SldeCodec(expansion_enabled=expansion_enabled, memo=memo)
    if name == "slde-bdi":
        return SldeCodec(
            expansion_enabled=expansion_enabled,
            alternative=BdiCodec(expansion_enabled=expansion_enabled, memo=memo),
            memo=memo,
        )
    raise ValueError("unknown codec %r" % name)
