"""Codec interfaces and the trivial raw codec.

Encoding happens at 64-bit word granularity (the paper's log granularity).
A codec turns a word into an :class:`EncodedWord`: a payload bitstream, its
size, a tag record describing how to decode it, and the *cell mapping
policy* (how many bits each TLC cell stores).  The NVMM array turns the
encoded word into cell levels, applies data-comparison write against the
old levels, and charges latency/energy for the programmed cells only.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.bitops import WORD_BITS, mask_word
from repro.encoding.expansion import ExpansionPolicy


@dataclass(frozen=True)
class EncodedWord:
    """The result of encoding one 64-bit word for an NVMM write.

    Attributes:
        method: codec identifier, stored in the encoding type flag so the
            read path can pick the right decoder (section IV-B).
        payload: the compressed bitstream as an unsigned integer.
        payload_bits: number of meaningful bits in ``payload``.
        tag_bits: sideband tag bits this encoding needs (compression tags,
            dirty flags, encoding type flag).  They are written to NVMM too
            — into a separate per-word tag-cell group, as CompEx-style
            hardware stores compression tags in a tag array — and they
            participate in the cost model.
        tag_payload: the content of those tag bits (e.g. the FPC prefix),
            so the tag cells are programmed with real data and the decoder
            can read the prefix back.
        policy: the expansion-coding policy used to map payload bits onto
            TLC cells.
        dirty_mask: for DLDC-encoded log data, the per-byte dirty flag the
            decoder needs (also counted inside ``tag_bits``).
        silent: True when the write can be elided entirely (a *silent log
            write*, section IV-A).
    """

    method: str
    payload: int
    payload_bits: int
    tag_bits: int
    policy: ExpansionPolicy
    tag_payload: int = 0
    dirty_mask: Optional[int] = None
    silent: bool = False

    @property
    def total_bits(self) -> int:
        """Bits that must reach NVMM for this word (payload + tags)."""
        return 0 if self.silent else self.payload_bits + self.tag_bits

    def __post_init__(self) -> None:
        if self.payload_bits < 0 or self.tag_bits < 0:
            raise ValueError("bit counts cannot be negative")
        if self.payload < 0:
            raise ValueError("payload must be unsigned")
        if self.payload_bits and self.payload >> self.payload_bits:
            raise ValueError("payload wider than payload_bits")


class WordCodec:
    """Base class for word codecs.

    Subclasses implement :meth:`encode` / :meth:`decode`.  ``old_word`` is
    the word currently stored at the target location; general-purpose
    codecs ignore it, Flip-N-Write and DLDC use it.
    """

    name = "abstract"

    #: True when :meth:`encode` ignores ``old_word`` entirely (FPC, BDI,
    #: CRADE, raw).  Memoization uses this to drop the old word from its
    #: cache keys, which multiplies the hit rate; codecs whose output
    #: depends on the old contents (Flip-N-Write) must leave it False.
    context_free = False

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        raise NotImplementedError

    def encode_line(
        self,
        words: Sequence[int],
        old_words: Optional[Sequence[int]] = None,
    ) -> List[EncodedWord]:
        """Encode the words of one cache line in a single call.

        The NVM module hands a 64-byte line over as one batch instead of
        eight separate calls; memoizing codecs override this to share one
        cache probe per distinct word.  ``old_words``, when given, must be
        parallel to ``words``.
        """
        encode = self.encode
        if old_words is None or self.context_free:
            return [encode(word) for word in words]
        return [encode(word, old) for word, old in zip(words, old_words)]

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        raise NotImplementedError

    def memo_stats(self) -> dict:
        """Hit/miss/eviction counters of this codec's memo layer(s).

        Keys are memo names (canonically sorted), values the dicts from
        :meth:`repro.encoding.memo.LruMemo.stats`.  Codecs without a
        memo — or with memoization disabled — report ``{}``.  Simple
        memoizing codecs report their result cache under ``"encode"``;
        composite codecs (SLDE) prefix their members' keys.
        """
        memo = getattr(self, "_memo", None)
        return {"encode": memo.stats()} if memo is not None else {}


class RawCodec(WordCodec):
    """No compression: 64 payload bits, raw 3-bits-per-cell mapping."""

    name = "raw"
    context_free = True

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        return EncodedWord(
            method=self.name,
            payload=mask_word(word),
            payload_bits=WORD_BITS,
            tag_bits=0,
            policy=ExpansionPolicy.RAW,
        )

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        if encoded.method != self.name:
            raise ValueError("not a raw encoding: %r" % encoded.method)
        return mask_word(encoded.payload)
