"""Flip-N-Write (Cho & Lee, MICRO 2009) — extension baseline.

Flip-N-Write compares the new word against the old contents and writes the
bitwise complement (plus a flip tag) whenever that flips fewer bits.  It is
one of the bit-flip-minimizing encodings the paper cites (section VII); we
include it as an ablation baseline for the encoding comparison benches.

The codec operates at 64-bit word granularity with a 1-bit flip tag per
word.  Unlike FPC/CRADE it does not shrink the payload, so it maps raw
3 bits/cell; its benefit shows up purely through DCW (fewer differing
cells).
"""

from typing import Optional

from repro.common.bitops import WORD_BITS, WORD_MASK, flipped_bits, mask_word
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.expansion import ExpansionPolicy


class FlipNWriteCodec(WordCodec):
    """Write ``word`` or ``~word``, whichever flips fewer bits."""

    name = "flip-n-write"
    # The flip decision depends on the old contents, so results cannot be
    # memoized per-word; keep the context-sensitive default.
    context_free = False

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        word = mask_word(word)
        flip = False
        if old_word is not None:
            plain_flips = flipped_bits(old_word, word)
            inverted = word ^ WORD_MASK
            inverted_flips = flipped_bits(old_word, inverted)
            flip = inverted_flips < plain_flips
        stored = (word ^ WORD_MASK) if flip else word
        # The flip bit is a sideband tag; the stored word fills the data
        # cells.
        return EncodedWord(
            method=self.name,
            payload=stored,
            payload_bits=WORD_BITS,
            tag_bits=1,
            tag_payload=1 if flip else 0,
            policy=ExpansionPolicy.RAW,
        )

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        if encoded.method != self.name:
            raise ValueError("not a Flip-N-Write encoding: %r" % encoded.method)
        flip = bool(encoded.tag_payload & 1)
        stored = mask_word(encoded.payload)
        return (stored ^ WORD_MASK) if flip else stored
