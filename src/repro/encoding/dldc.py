"""Differential log data compression (DLDC) — paper section IV-A, Table II.

DLDC is the log-aware codec MorLog contributes.  It exploits CONSEQUENCE 2
of the paper: *the log data for clean updated data are also clean*.  Given
the per-byte dirty flag of a log entry (set by comparing the old and new
value of the write that produced it), DLDC:

1. drops the entry entirely when every byte is clean (a *silent log
   write*);
2. otherwise discards the clean bytes, keeping only the dirty ones;
3. then tries to compress the dirty-byte string with the eight
   predetermined data patterns of Table II, keeping the smallest match.

Decoding needs the dirty flag plus a *base word* supplying the clean
bytes.  During recovery the base word is the in-place data at the entry's
home address, whose clean bytes were never programmed (DCW skips them).
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.bitops import (
    WORD_BYTES,
    bytes_to_word,
    fits_signed,
    mask_word,
    scatter_bytes,
    select_bytes,
    sign_extend,
)
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.expansion import policy_for_size
from repro.encoding.memo import (
    BYTE_FITS_SE2,
    BYTE_FITS_SE4,
    BYTE_LOW_NIBBLE_ZERO,
    DLDC_PATTERN_BITS,
    MemoConfig,
)

DLDC_TAG_BITS = 3
# 1-bit header distinguishing pattern-compressed from raw dirty bytes; the
# eight Table II tags cover only compressible strings.
DLDC_HEADER_BITS = 1

#: Table II tags, for reporting.
PATTERN_NAMES = {
    0b000: "all-zero",
    0b001: "2-bit-se-per-byte",
    0b010: "4-bit-se-per-byte",
    0b011: "1-byte-se",
    0b100: "2-byte-se",
    0b101: "4-byte-se",
    0b110: "4-bit-zero-padded-per-byte",
    0b111: "zero-low-byte",
}


def _value_of(data: List[int]) -> int:
    return bytes_to_word(data) if len(data) <= WORD_BYTES else int.from_bytes(
        bytes(data), "little"
    )


def _pattern_payload(tag: int, data: List[int], value: int) -> int:
    """Build the payload of one Table II pattern (the search's winner)."""
    if tag == 0b000:
        return 0
    if tag == 0b001:
        payload = 0
        for i, b in enumerate(data):
            payload |= (b & 0b11) << (2 * i)
        return payload
    if tag == 0b010:
        payload = 0
        for i, b in enumerate(data):
            payload |= (b & 0xF) << (4 * i)
        return payload
    if tag == 0b011:
        return value & 0xFF
    if tag == 0b100:
        return value & 0xFFFF
    if tag == 0b101:
        return value & 0xFFFF_FFFF
    if tag == 0b110:
        payload = 0
        for i, b in enumerate(data):
            payload |= (b >> 4) << (4 * i)
        return payload
    payload = 0
    for i, b in enumerate(data[1:]):
        payload |= b << (8 * i)
    return payload


def dldc_compress_pattern(data: List[int]) -> Optional[Tuple[int, int, int]]:
    """Try the Table II patterns on a dirty-byte string.

    Returns ``(tag, payload, payload_bits)`` for the smallest matching
    pattern, or None when no pattern matches.  ``data`` is the little-endian
    dirty-byte sequence (clean bytes already discarded).

    Pattern applicability runs over the precomputed per-byte tables and the
    Table II cost table of :mod:`repro.encoding.memo`, so only the winning
    pattern's payload is ever materialized.  Ties keep the lowest tag, like
    the original candidate-list ``min``.
    """
    if not data:
        raise ValueError("empty dirty-byte string")
    k = len(data)
    n_bits = 8 * k
    value = _value_of(data)
    if value == 0:
        return 0b000, 0, 0

    costs = DLDC_PATTERN_BITS
    best_tag = -1
    best_bits = 1 << 30
    if all(BYTE_FITS_SE2[b] for b in data):
        best_tag, best_bits = 0b001, costs[0b001][k]
    bits = costs[0b010][k]
    if bits < best_bits and all(BYTE_FITS_SE4[b] for b in data):
        best_tag, best_bits = 0b010, bits
    for tag, from_bits in ((0b011, 8), (0b100, 16), (0b101, 32)):
        bits = costs[tag][k]
        if bits is not None and bits < best_bits and fits_signed(
            value, from_bits, n_bits
        ):
            best_tag, best_bits = tag, bits
    bits = costs[0b110][k]
    if bits < best_bits and all(BYTE_LOW_NIBBLE_ZERO[b] for b in data):
        best_tag, best_bits = 0b110, bits
    bits = costs[0b111][k]
    if bits is not None and bits < best_bits and data[0] == 0:
        best_tag, best_bits = 0b111, bits

    if best_tag < 0:
        return None
    return best_tag, _pattern_payload(best_tag, data, value), best_bits


def dldc_decompress_pattern(tag: int, payload: int, k: int) -> List[int]:
    """Inverse of :func:`dldc_compress_pattern` for ``k`` dirty bytes."""
    n_bits = 8 * k
    if tag == 0b000:
        return [0] * k
    if tag == 0b001:
        return [sign_extend((payload >> (2 * i)) & 0b11, 2, 8) for i in range(k)]
    if tag == 0b010:
        return [sign_extend((payload >> (4 * i)) & 0xF, 4, 8) for i in range(k)]
    if tag in (0b011, 0b100, 0b101):
        from_bits = {0b011: 8, 0b100: 16, 0b101: 32}[tag]
        value = sign_extend(payload, from_bits, n_bits)
        return [(value >> (8 * i)) & 0xFF for i in range(k)]
    if tag == 0b110:
        return [((payload >> (4 * i)) & 0xF) << 4 for i in range(k)]
    if tag == 0b111:
        return [0] + [(payload >> (8 * i)) & 0xFF for i in range(k - 1)]
    raise ValueError("unknown DLDC tag %d" % tag)


@dataclass(frozen=True)
class DldcEncoding:
    """Decoded view of a DLDC payload stream, for tests and reporting."""

    dirty_mask: int
    compressed: bool
    tag: Optional[int]
    dirty_bytes: List[int]


# The silent log write is input-independent, so every silent encode
# returns this one frozen instance instead of allocating a fresh result.
_SILENT_LOG_WRITE = EncodedWord(
    method="dldc",
    payload=0,
    payload_bits=0,
    tag_bits=0,
    policy=policy_for_size(0),
    dirty_mask=0,
    silent=True,
)


class DldcCodec(WordCodec):
    """DLDC as a word codec for *log data*.

    The payload stream layout is ``[1-bit compressed?][3-bit tag?][body]``.
    The per-word dirty flag (8 bits, one per byte — section VI-A) rides in
    the sideband and is charged as tag bits.
    """

    name = "dldc"
    DIRTY_FLAG_BITS = WORD_BYTES  # one flag bit per log data byte

    def __init__(self, memo: Optional[MemoConfig] = None) -> None:
        self._memo = memo.make_memo() if memo is not None else None

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        raise TypeError(
            "DLDC compresses only log data; use encode_log with a dirty mask"
        )

    def encode_log(self, word: int, dirty_mask: int) -> EncodedWord:
        """Encode one word of undo or redo data given its dirty flag."""
        if not 0 <= dirty_mask < (1 << WORD_BYTES):
            raise ValueError("dirty mask must be 8 bits")
        word = mask_word(word)
        if dirty_mask == 0:
            # Silent log write: all bytes clean, nothing reaches NVMM.
            return _SILENT_LOG_WRITE
        memo = self._memo
        if memo is None:
            return self._encode_dirty(word, dirty_mask)
        key = (word, dirty_mask)
        encoded = memo.get(key)
        if encoded is None:
            encoded = self._encode_dirty(word, dirty_mask)
            memo.put(key, encoded)
        return encoded

    def _encode_dirty(self, word: int, dirty_mask: int) -> EncodedWord:
        dirty = select_bytes(word, dirty_mask)
        k = len(dirty)
        match = dldc_compress_pattern(dirty)
        if match is not None and match[2] + DLDC_TAG_BITS < 8 * k:
            tag, payload, bits = match
            stream = 1 | (tag << DLDC_HEADER_BITS) | (
                payload << (DLDC_HEADER_BITS + DLDC_TAG_BITS)
            )
            stream_bits = DLDC_HEADER_BITS + DLDC_TAG_BITS + bits
        else:
            body = 0
            for i, b in enumerate(dirty):
                body |= b << (8 * i)
            stream = 0 | (body << DLDC_HEADER_BITS)
            stream_bits = DLDC_HEADER_BITS + 8 * k
        return EncodedWord(
            method=self.name,
            payload=stream,
            payload_bits=stream_bits,
            tag_bits=self.DIRTY_FLAG_BITS,
            policy=policy_for_size(stream_bits),
            dirty_mask=dirty_mask,
        )

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        """Reconstruct the full word; ``old_word`` supplies clean bytes."""
        if encoded.method != self.name:
            raise ValueError("not a DLDC encoding: %r" % encoded.method)
        if encoded.silent:
            if old_word is None:
                raise ValueError("silent entries decode to the in-place word")
            return mask_word(old_word)
        if encoded.dirty_mask is None:
            raise ValueError("DLDC encoding lost its dirty mask")
        if old_word is None:
            raise ValueError("DLDC decode needs the in-place (base) word")
        parsed = self.parse(encoded)
        return scatter_bytes(mask_word(old_word), parsed.dirty_mask, parsed.dirty_bytes)

    def parse(self, encoded: EncodedWord) -> DldcEncoding:
        """Split a DLDC payload stream back into its components."""
        mask = encoded.dirty_mask or 0
        k = bin(mask).count("1")
        stream = encoded.payload
        compressed = bool(stream & 1)
        if compressed:
            tag = (stream >> DLDC_HEADER_BITS) & ((1 << DLDC_TAG_BITS) - 1)
            payload = stream >> (DLDC_HEADER_BITS + DLDC_TAG_BITS)
            dirty = dldc_decompress_pattern(tag, payload, k)
            return DldcEncoding(mask, True, tag, dirty)
        body = stream >> DLDC_HEADER_BITS
        dirty = [(body >> (8 * i)) & 0xFF for i in range(k)]
        return DldcEncoding(mask, False, None, dirty)
