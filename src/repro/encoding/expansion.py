"""Compression-ratio-aware expansion coding over TLC cells.

After compression, the compressed bits occupy less space than the original
word.  Expansion coding (IDM, Niu et al. ICCD'13; CompEx, Palangappa &
Mohanram HPCA'16; CRADE, Xu et al. ICCD'17) spends that slack to store
*fewer bits per cell*, restricted to the cheapest TLC levels:

- ratio >= 3x: 1 bit per cell, using the two cheapest of the 8 levels;
- ratio >= 1.5x: 2 bits per cell, using the four cheapest levels;
- otherwise: the raw 3-bits-per-cell mapping.

A 64-bit word occupies ceil(64/3) = 22 TLC cells, so the thresholds in
bits are q <= 22 (1 bit/cell fits 22 bits in 22 cells) and q <= 44.

The level subsets are chosen by program *latency*; with the paper's
Table III numbers the latency and energy orders agree on the four cheapest
levels (111, 000, 001, 110).
"""

import enum
from functools import lru_cache
from typing import Sequence, Tuple

from repro.common.bitops import WORD_BITS
from repro.common.config import tlc_levels_sorted_by_latency

CELLS_PER_WORD = (WORD_BITS + 2) // 3  # 22 TLC cells hold one 64-bit word


class ExpansionPolicy(enum.Enum):
    """How payload bits map onto TLC cells."""

    RAW = 3       # 3 bits per cell, all 8 levels
    EXPAND2 = 2   # 2 bits per cell, 4 cheapest levels
    EXPAND1 = 1   # 1 bit per cell, 2 cheapest levels

    @property
    def bits_per_cell(self) -> int:
        return self.value


def policy_for_size(payload_bits: int, expansion_enabled: bool = True) -> ExpansionPolicy:
    """Pick the densest expansion policy whose capacity fits the payload.

    Capacity is bounded by the word's 22-cell footprint; a payload that
    does not fit an expanded mapping falls back to RAW.
    """
    if not expansion_enabled:
        return ExpansionPolicy.RAW
    if payload_bits <= CELLS_PER_WORD * 1:
        return ExpansionPolicy.EXPAND1
    if payload_bits <= CELLS_PER_WORD * 2:
        return ExpansionPolicy.EXPAND2
    return ExpansionPolicy.RAW


@lru_cache(maxsize=None)
def _level_table(policy: ExpansionPolicy) -> Tuple[int, ...]:
    """The TLC levels a policy is allowed to program, index = symbol."""
    ordered = tlc_levels_sorted_by_latency()
    return ordered[: 1 << policy.bits_per_cell]


@lru_cache(maxsize=1 << 16)
def map_bits_to_cells(payload: int, payload_bits: int, policy: ExpansionPolicy) -> Tuple[int, ...]:
    """Map a payload bitstream onto TLC cell levels under ``policy``.

    Returns the levels for the cells actually used; trailing cells of the
    word slot are left unprogrammed by the caller (that is where the
    expansion-coding write savings come from).  Memoized: payloads repeat
    heavily (zeros, small integers, pointers).
    """
    if payload < 0 or (payload_bits and payload >> payload_bits):
        raise ValueError("payload wider than declared size")
    bpc = policy.bits_per_cell
    n_cells = (payload_bits + bpc - 1) // bpc
    if n_cells > CELLS_PER_WORD:
        raise ValueError(
            "payload of %d bits does not fit a word slot under %s"
            % (payload_bits, policy)
        )
    table = _level_table(policy)
    mask = (1 << bpc) - 1
    return tuple(table[(payload >> (i * bpc)) & mask] for i in range(n_cells))


def cells_to_bits(levels: Sequence[int], payload_bits: int, policy: ExpansionPolicy) -> int:
    """Inverse of :func:`map_bits_to_cells`."""
    table = _level_table(policy)
    inverse = {level: symbol for symbol, level in enumerate(table)}
    bpc = policy.bits_per_cell
    payload = 0
    for i, level in enumerate(levels):
        if level not in inverse:
            raise ValueError("cell level %d not valid under %s" % (level, policy))
        payload |= inverse[level] << (i * bpc)
    extra = payload_bits % bpc
    if extra:
        # The final cell carries padding bits beyond payload_bits.
        payload &= (1 << payload_bits) - 1
    return payload


def cells_used(payload_bits: int, policy: ExpansionPolicy) -> int:
    """Number of cells a payload occupies under a policy."""
    bpc = policy.bits_per_cell
    return (payload_bits + bpc - 1) // bpc
