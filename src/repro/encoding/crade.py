"""CRADE: compression-ratio-aware data encoding (Xu et al., ICCD 2017).

CRADE is the paper's state-of-the-art general-purpose codec: it first
compresses each word with FPC, then expands the compressed bits with the
best-performing incomplete data mapping according to the compression ratio
(section IV-B).  In this model that means: pick the densest
:class:`ExpansionPolicy` whose cheap-level capacity fits the FPC output.
"""

from functools import lru_cache
from typing import Optional

from repro.common.bitops import mask_word
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.fpc import FPC_TAG_BITS, fpc_compress, fpc_decompress
from repro.encoding.expansion import policy_for_size
from repro.encoding.memo import MemoConfig


@lru_cache(maxsize=1 << 16)
def _crade_encode_cached(word: int, expansion_enabled: bool) -> EncodedWord:
    prefix, payload, bits = fpc_compress(word)
    policy = policy_for_size(bits, expansion_enabled)
    # Sideband tags: the 3-bit FPC prefix plus a 2-bit expansion-policy
    # tag so the read path knows how the cells were mapped (the paper's
    # "encoding tag bit[s]" stored along with the data, section IV-B).
    return EncodedWord(
        method="crade",
        payload=payload,
        payload_bits=bits,
        tag_bits=FPC_TAG_BITS + 2,
        tag_payload=prefix,
        policy=policy,
    )


class CradeCodec(WordCodec):
    """FPC + compression-ratio-aware expansion coding."""

    name = "crade"
    context_free = True

    def __init__(
        self,
        expansion_enabled: bool = True,
        memo: Optional[MemoConfig] = None,
    ) -> None:
        self._expansion_enabled = expansion_enabled
        self._memo = memo.make_memo() if memo is not None else None

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        word = mask_word(word)
        memo = self._memo
        if memo is None:
            return _crade_encode_cached(word, self._expansion_enabled)
        encoded = memo.get(word)
        if encoded is None:
            encoded = _crade_encode_cached(word, self._expansion_enabled)
            memo.put(word, encoded)
        return encoded

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        if encoded.method != self.name:
            raise ValueError("not a CRADE encoding: %r" % encoded.method)
        prefix = encoded.tag_payload & ((1 << FPC_TAG_BITS) - 1)
        return fpc_decompress(prefix, encoded.payload)
