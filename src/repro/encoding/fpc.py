"""64-bit frequent pattern compression (FPC).

The paper's baseline codecs (CompEx, CRADE) build on a 64-bit variant of
frequent pattern compression: each word is matched against a small set of
frequent patterns and, when one matches, stored as a 3-bit prefix plus a
short payload.  The pattern set below follows the classic FPC table lifted
to 64-bit words (zero word, narrow sign-extended values, a zero-padded
upper half, repeated bytes), with prefix 0b111 reserved for uncompressed
words.
"""

from functools import lru_cache
from typing import Optional

from repro.common.bitops import (
    WORD_BITS,
    fits_signed,
    mask_word,
    sign_extend,
    word_bytes,
)
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.expansion import ExpansionPolicy, policy_for_size
from repro.encoding.memo import FPC_SMALL_WORD_PREFIX, MemoConfig

FPC_TAG_BITS = 3

# prefix -> (name, payload_bits)
FPC_PATTERNS = {
    0b000: ("zero", 0),
    0b001: ("se4", 4),
    0b010: ("se8", 8),
    0b011: ("se16", 16),
    0b100: ("se32", 32),
    0b101: ("zero-low-half", 32),
    0b110: ("repeated-bytes", 8),
    0b111: ("uncompressed", WORD_BITS),
}


def fpc_match(word: int) -> int:
    """Return the FPC prefix for the smallest pattern matching ``word``."""
    word = mask_word(word)
    if word < 256:
        # Small words dominate log metadata and workload values; their
        # prefix class is a table lookup (repro.encoding.memo).
        return FPC_SMALL_WORD_PREFIX[word]
    if word == 0:
        return 0b000
    if fits_signed(word, 4):
        return 0b001
    byte_list = word_bytes(word)
    if all(b == byte_list[0] for b in byte_list):
        return 0b110
    if fits_signed(word, 8):
        return 0b010
    if fits_signed(word, 16):
        return 0b011
    if fits_signed(word, 32):
        return 0b100
    if word & 0xFFFF_FFFF == 0:
        return 0b101
    return 0b111


def fpc_compress(word: int) -> "tuple[int, int, int]":
    """Compress a word; returns (prefix, payload, payload_bits)."""
    word = mask_word(word)
    prefix = fpc_match(word)
    _name, bits = FPC_PATTERNS[prefix]
    if prefix == 0b000:
        payload = 0
    elif prefix in (0b001, 0b010, 0b011, 0b100):
        payload = word & ((1 << bits) - 1)
    elif prefix == 0b101:
        payload = word >> 32
    elif prefix == 0b110:
        payload = word & 0xFF
    else:
        payload = word
    return prefix, payload, bits


def fpc_decompress(prefix: int, payload: int) -> int:
    """Inverse of :func:`fpc_compress`."""
    name, bits = FPC_PATTERNS[prefix]
    if payload >> bits:
        raise ValueError("payload wider than pattern %s allows" % name)
    if prefix == 0b000:
        return 0
    if prefix in (0b001, 0b010, 0b011, 0b100):
        return sign_extend(payload, bits)
    if prefix == 0b101:
        return payload << 32
    if prefix == 0b110:
        return int.from_bytes(bytes([payload]) * 8, "little")
    return mask_word(payload)


@lru_cache(maxsize=1 << 16)
def _fpc_encode_cached(word: int, expansion_enabled: bool) -> EncodedWord:
    prefix, payload, bits = fpc_compress(word)
    policy = policy_for_size(bits, expansion_enabled)
    return EncodedWord(
        method="fpc",
        payload=payload,
        payload_bits=bits,
        tag_bits=FPC_TAG_BITS,
        tag_payload=prefix,
        policy=policy,
    )


class FpcCodec(WordCodec):
    """FPC as a standalone word codec.

    With ``expansion_enabled`` the codec becomes the compression front end
    of CRADE (see :mod:`repro.encoding.crade`); standalone FPC writes the
    compressed bits with the raw 3-bits-per-cell mapping, which already
    saves cells because fewer bits are programmed.
    """

    name = "fpc"
    context_free = True

    def __init__(
        self,
        expansion_enabled: bool = False,
        memo: Optional[MemoConfig] = None,
    ) -> None:
        self._expansion_enabled = expansion_enabled
        self._memo = memo.make_memo() if memo is not None else None

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        # The 3-bit prefix lives in the per-word tag cells (CompEx stores
        # compression tags in a separate tag array); the payload alone maps
        # onto the 22 data cells.
        word = mask_word(word)
        memo = self._memo
        if memo is None:
            return _fpc_encode_cached(word, self._expansion_enabled)
        encoded = memo.get(word)
        if encoded is None:
            encoded = _fpc_encode_cached(word, self._expansion_enabled)
            memo.put(word, encoded)
        return encoded

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        if encoded.method != self.name:
            raise ValueError("not an FPC encoding: %r" % encoded.method)
        prefix = encoded.tag_payload & ((1 << FPC_TAG_BITS) - 1)
        return fpc_decompress(prefix, encoded.payload)
