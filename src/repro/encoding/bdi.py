"""Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).

BDI is the other mainstream memory compressor the paper cites ([46]); we
provide it as an alternative general-purpose codec for SLDE so the
"alternative encoding method" of Figure 10 can be swapped (CRADE is the
default, as in the paper).

The classic algorithm works on 32-byte/64-byte blocks; scaled to our
64-bit word granularity it becomes *base+delta over the word's byte
lanes*: the word is split into 2/4/8-byte lanes, the first lane is the
base, and the remaining lanes are stored as narrow deltas.  A zero word
and an immediate (repeated-lane) word compress further.  The 4-bit scheme
tag rides in the sideband tag cells like the FPC prefix.

Schemes (word = 8 bytes):

====  =====================================  ============
tag   scheme                                 payload bits
====  =====================================  ============
0     zero word                              0
1     repeated 2-byte lane                   16
2     base 4 bytes + one 2-byte delta        48 (4B base, 2x 2B lanes: base + d)
3     base 8 bytes, 4x 2-byte lanes, 1B d    40
4     base 8 bytes, 2x 4-byte lanes, 2B d    48
5     uncompressed                           64
====  =====================================  ============
"""

from functools import lru_cache
from typing import Optional

from repro.common.bitops import WORD_BITS, mask_word
from repro.encoding.base import EncodedWord, WordCodec
from repro.encoding.expansion import policy_for_size
from repro.encoding.memo import MemoConfig

BDI_TAG_BITS = 4


def _lanes(word: int, lane_bytes: int):
    lane_bits = 8 * lane_bytes
    mask = (1 << lane_bits) - 1
    return [(word >> (i * lane_bits)) & mask for i in range(8 // lane_bytes)]


def _fits_delta(value: int, base: int, lane_bits: int, delta_bits: int) -> Optional[int]:
    """Signed delta of two unsigned lanes, if representable."""
    half = 1 << (lane_bits - 1)
    delta = (value - base + half) % (1 << lane_bits) - half  # wrap-aware
    if -(1 << (delta_bits - 1)) <= delta < (1 << (delta_bits - 1)):
        return delta & ((1 << delta_bits) - 1)
    return None


def bdi_compress(word: int):
    """Returns (tag, payload, payload_bits)."""
    word = mask_word(word)
    if word == 0:
        return 0, 0, 0
    lanes2 = _lanes(word, 2)
    if all(lane == lanes2[0] for lane in lanes2):
        return 1, lanes2[0], 16
    # base(2-byte lanes) + 1-byte deltas: 16-bit base + 4 x 8-bit deltas.
    deltas = [_fits_delta(lane, lanes2[0], 16, 8) for lane in lanes2]
    if all(d is not None for d in deltas):
        payload = lanes2[0]
        for i, d in enumerate(deltas):
            payload |= d << (16 + 8 * i)
        return 3, payload, 16 + 8 * 4
    lanes4 = _lanes(word, 4)
    deltas4 = [_fits_delta(lane, lanes4[0], 32, 16) for lane in lanes4]
    if all(d is not None for d in deltas4):
        payload = lanes4[0]
        for i, d in enumerate(deltas4):
            payload |= d << (32 + 16 * i)
        return 4, payload, 32 + 16 * 2
    return 5, word, WORD_BITS


def bdi_decompress(tag: int, payload: int) -> int:
    if tag == 0:
        return 0
    if tag == 1:
        lane = payload & 0xFFFF
        return lane | (lane << 16) | (lane << 32) | (lane << 48)
    if tag == 3:
        base = payload & 0xFFFF
        word = 0
        for i in range(4):
            delta = (payload >> (16 + 8 * i)) & 0xFF
            if delta & 0x80:
                delta -= 0x100
            word |= ((base + delta) & 0xFFFF) << (16 * i)
        return word
    if tag == 4:
        base = payload & 0xFFFF_FFFF
        word = 0
        for i in range(2):
            delta = (payload >> (32 + 16 * i)) & 0xFFFF
            if delta & 0x8000:
                delta -= 0x10000
            word |= ((base + delta) & 0xFFFF_FFFF) << (32 * i)
        return word
    if tag == 5:
        return mask_word(payload)
    raise ValueError("unknown BDI tag %d" % tag)


@lru_cache(maxsize=1 << 16)
def _bdi_encode_cached(word: int, expansion_enabled: bool) -> EncodedWord:
    tag, payload, bits = bdi_compress(word)
    return EncodedWord(
        method="bdi",
        payload=payload,
        payload_bits=bits,
        tag_bits=BDI_TAG_BITS,
        tag_payload=tag,
        policy=policy_for_size(bits, expansion_enabled),
    )


class BdiCodec(WordCodec):
    """BDI + expansion coding, as an alternative to CRADE in SLDE."""

    name = "bdi"
    context_free = True

    def __init__(
        self,
        expansion_enabled: bool = True,
        memo: Optional[MemoConfig] = None,
    ) -> None:
        self._expansion_enabled = expansion_enabled
        self._memo = memo.make_memo() if memo is not None else None

    def encode(self, word: int, old_word: Optional[int] = None) -> EncodedWord:
        word = mask_word(word)
        memo = self._memo
        if memo is None:
            return _bdi_encode_cached(word, self._expansion_enabled)
        encoded = memo.get(word)
        if encoded is None:
            encoded = _bdi_encode_cached(word, self._expansion_enabled)
            memo.put(word, encoded)
        return encoded

    def decode(self, encoded: EncodedWord, old_word: Optional[int] = None) -> int:
        if encoded.method != self.name:
            raise ValueError("not a BDI encoding: %r" % encoded.method)
        return bdi_decompress(encoded.tag_payload, encoded.payload)
