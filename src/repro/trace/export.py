"""Chrome ``trace_event`` export — loadable in Perfetto / about:tracing.

The exported document follows the JSON Object Format of the Trace Event
spec: ``{"traceEvents": [...], "displayTimeUnit": ..., "otherData": ...}``.
Simulated nanoseconds become Chrome microseconds (the spec's unit); the
exact ``ts_ns``/``dur_ns`` are additionally kept inside ``args`` so a
parsed trace round-trips bit-exactly (property-tested with Hypothesis).

Mapping:

- events with a duration export as complete events (``ph: "X"``);
- instantaneous events export as thread-scoped instants (``ph: "i"``);
- one ``process_name`` metadata record labels the simulated machine;
- ``pid`` is always 0 (one simulated machine), ``tid`` is the simulated
  core (events without a core land on a synthetic lane).
"""

import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Optional

from repro.trace.events import (
    CATEGORIES,
    EVENT_SCHEMA,
    RESERVED_ARG_KEYS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event,
)

#: ``tid`` lane for events with no owning core (truncation, recovery).
MACHINE_LANE = 255


def to_chrome_events(events: Iterable[TraceEvent], process: str = "repro") -> List[Dict[str, Any]]:
    """Convert bus events to Chrome trace_event dicts (plus metadata)."""
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process},
        }
    ]
    for event in events:
        args = dict(event.args)
        if event.txid is not None:
            args["txid"] = event.txid
        if event.addr is not None:
            args["addr"] = "0x%x" % event.addr
        args["ts_ns"] = event.ts_ns
        args["dur_ns"] = event.dur_ns
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ts": event.ts_ns / 1000.0,
            "pid": 0,
            "tid": event.core if event.core is not None else MACHINE_LANE,
            "args": args,
        }
        if event.dur_ns > 0:
            record["ph"] = "X"
            record["dur"] = event.dur_ns / 1000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    return out


def chrome_document(
    events: Iterable[TraceEvent],
    design: str = "",
    workload: str = "",
    extra: Optional[Dict[str, Any]] = None,
    dropped: int = 0,
) -> Dict[str, Any]:
    """Build the full Chrome JSON Object Format document.

    ``dropped`` is the bus's drop counter: when the bounded ring
    overflowed, the exported stream is missing that many events, and the
    document says so in ``otherData`` instead of posing as complete.
    """
    process = "%s/%s" % (design, workload) if design or workload else "repro"
    other: Dict[str, Any] = {
        "tool": "repro.trace",
        "schema_version": SCHEMA_VERSION,
        "design": design,
        "workload": workload,
        "dropped_events": dropped,
        "truncated": dropped > 0,
    }
    if extra:
        other.update(extra)
    return {
        "traceEvents": to_chrome_events(events, process=process),
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def write_chrome_trace(
    path: str,
    events: Iterable[TraceEvent],
    design: str = "",
    workload: str = "",
    extra: Optional[Dict[str, Any]] = None,
    dropped: int = 0,
) -> int:
    """Validate and atomically write a Chrome trace file.

    Returns the number of (non-metadata) events written.  The write goes
    through a temp file + ``os.replace`` so a crashed exporter never
    leaves a torn artifact (the grid runner checks artifact existence).
    """
    document = chrome_document(
        events, design=design, workload=workload, extra=extra, dropped=dropped)
    count = validate_chrome_trace(document)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-trace-", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return count


def validate_chrome_trace(document: Dict[str, Any]) -> int:
    """Validate an exported document against the event schema.

    Returns the number of schema events checked; raises ValueError on the
    first violation.  Used by the CLI (before writing), the tests, and
    the CI trace-smoke job (after reading the artifact back).
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    records = document.get("traceEvents")
    if not isinstance(records, list):
        raise ValueError("trace document lacks a traceEvents list")
    checked = 0
    for record in records:
        if not isinstance(record, dict):
            raise ValueError("traceEvents entries must be objects")
        ph = record.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "i"):
            raise ValueError("unsupported phase %r" % ph)
        if record.get("cat") not in CATEGORIES:
            raise ValueError("unknown category %r" % record.get("cat"))
        if not isinstance(record.get("ts"), (int, float)) or record["ts"] < 0:
            raise ValueError("event %r has a bad ts" % record.get("name"))
        args = record.get("args")
        if not isinstance(args, dict):
            raise ValueError("event %r has no args object" % record.get("name"))
        validate_event(_event_from_record(record))
        checked += 1
    return checked


def _event_from_record(record: Dict[str, Any]) -> TraceEvent:
    args = dict(record["args"])
    txid = args.pop("txid", None)
    addr = args.pop("addr", None)
    if isinstance(addr, str):
        addr = int(addr, 16)
    ts_ns = args.pop("ts_ns", record["ts"] * 1000.0)
    dur_ns = args.pop("dur_ns", record.get("dur", 0.0) * 1000.0)
    tid = record.get("tid", MACHINE_LANE)
    return TraceEvent(
        name=record["name"],
        category=record["cat"],
        ts_ns=ts_ns,
        core=None if tid == MACHINE_LANE else tid,
        txid=txid,
        addr=addr,
        dur_ns=dur_ns,
        args=args,
    )


def parse_chrome_trace(document: Dict[str, Any]) -> List[TraceEvent]:
    """Inverse of :func:`chrome_document` (metadata records are skipped).

    The exact simulated timestamps are recovered from ``args.ts_ns`` /
    ``args.dur_ns``, so ``parse(export(events)) == events``.
    """
    events: List[TraceEvent] = []
    for record in document.get("traceEvents", ()):
        if record.get("ph") == "M":
            continue
        events.append(_event_from_record(record))
    return events


def write_event_lines(path: str, events: Iterable[TraceEvent]) -> int:
    """Write raw events as JSON lines (one schema-checked event each)."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            validate_event(event)
            fh.write(
                json.dumps(
                    {
                        "name": event.name,
                        "cat": event.category,
                        "ts_ns": event.ts_ns,
                        "core": event.core,
                        "txid": event.txid,
                        "addr": event.addr,
                        "dur_ns": event.dur_ns,
                        "args": dict(event.args),
                    },
                    sort_keys=True,
                )
            )
            fh.write("\n")
            count += 1
    return count


def read_event_lines(path: str) -> List[TraceEvent]:
    """Inverse of :func:`write_event_lines`."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(
                TraceEvent(
                    name=data["name"],
                    category=data["cat"],
                    ts_ns=data["ts_ns"],
                    core=data["core"],
                    txid=data["txid"],
                    addr=data["addr"],
                    dur_ns=data["dur_ns"],
                    args=data["args"],
                )
            )
    return events
