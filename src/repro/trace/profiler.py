"""Host-side phase profiler: where does simulation *wall time* go?

Distinct from the trace bus, which records *simulated* time.  The
profiler wraps the hot entry points of a built :class:`System` with
timing shims and attributes host wall-clock time to phases:

- ``logging``  — the hardware logger's hooks (on_store, commit, tick,
  eviction callbacks, drain);
- ``encoding`` — every codec encode/decode call (SLDE, CRADE, FPC, ...);
- ``nvm``      — the NVM module's write/read paths and bank timing;
- ``cache``    — the cache-hierarchy access path;
- ``workload`` — everything else (transaction bodies, run loop), computed
  as total wall time minus the accounted phases.

Nested calls attribute exclusively: codec time spent inside an NVM write
counts as ``encoding``, not twice.  Wrapping costs real overhead, so the
profiler is strictly an opt-in diagnosis tool (``repro profile``); it
never touches simulated timing, only observes host time.
"""

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_table

PHASES = ("logging", "encoding", "nvm", "cache", "workload")


@dataclass
class PhaseStat:
    calls: int = 0
    seconds: float = 0.0


@dataclass
class ProfileReport:
    """Per-phase host wall time for one profiled run."""

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def accounted_seconds(self) -> float:
        return sum(stat.seconds for stat in self.phases.values())

    @property
    def workload_seconds(self) -> float:
        return max(self.wall_seconds - self.accounted_seconds, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Stable flat dict (sorted keys) for snapshots and CI artifacts."""
        out = {"wall_seconds": self.wall_seconds}
        for phase, stat in self.phases.items():
            out["%s_seconds" % phase] = stat.seconds
            out["%s_calls" % phase] = float(stat.calls)
        out["workload_seconds"] = self.workload_seconds
        return dict(sorted(out.items()))

    def format(self, title: str = "profile") -> str:
        wall = self.wall_seconds or 1.0
        rows: List[List[Any]] = []
        for phase, stat in sorted(
            self.phases.items(), key=lambda item: -item[1].seconds
        ):
            rows.append(
                [phase, stat.calls, stat.seconds, 100.0 * stat.seconds / wall]
            )
        rows.append(
            ["workload", "-", self.workload_seconds,
             100.0 * self.workload_seconds / wall]
        )
        rows.append(["total (wall)", "-", self.wall_seconds, 100.0])
        return format_table(
            ["phase", "calls", "seconds", "% of wall"], rows, title
        )


class PhaseProfiler:
    """Wraps a System's components with exclusive-time shims."""

    def __init__(self) -> None:
        self.stats: Dict[str, PhaseStat] = {}
        self._stack: List[List[Any]] = []   # [phase, child_seconds]
        self._wrapped: List[Tuple[Any, str, Any]] = []
        self._run_started: Optional[float] = None
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Wrapping machinery
    # ------------------------------------------------------------------

    def _wrap(self, fn, phase: str):
        stats = self.stats.setdefault(phase, PhaseStat())
        stack = self._stack

        def shim(*args, **kwargs):
            start = time.perf_counter()
            frame = [phase, 0.0]
            stack.append(frame)
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                stack.pop()
                stats.calls += 1
                stats.seconds += elapsed - frame[1]
                if stack:
                    stack[-1][1] += elapsed

        return shim

    def _install_method(self, obj: Any, attr: str, phase: str) -> None:
        fn = getattr(obj, attr, None)
        if fn is None:
            return
        self._wrapped.append((obj, attr, fn))
        setattr(obj, attr, self._wrap(fn, phase))

    def install(self, system) -> "PhaseProfiler":
        """Shim a built (not yet run) System's hot paths."""
        logger = system.logger
        for attr in (
            "begin_tx", "on_store", "on_nt_store", "commit_tx", "tick",
            "drain", "on_l1_evict", "before_llc_write_back",
        ):
            self._install_method(logger, attr, "logging")
        module = system.controller.nvm
        for attr in ("write_data_line", "write_log_entry", "read_line",
                     "decode_word"):
            self._install_method(module, attr, "nvm")
        codecs = {id(module.data_codec): module.data_codec,
                  id(module.log_codec): module.log_codec}
        for codec in codecs.values():
            for attr in ("encode", "encode_line", "encode_log",
                         "encode_undo_redo_pair", "decode"):
                self._install_method(codec, attr, "encoding")
        self._install_method(system.hierarchy, "access", "cache")
        self._install_method(system.hierarchy, "force_write_back_scan", "cache")
        return self

    def uninstall(self) -> None:
        """Restore every wrapped method (instance attribute deletion)."""
        for obj, attr, _fn in reversed(self._wrapped):
            try:
                delattr(obj, attr)
            except AttributeError:
                pass
        self._wrapped.clear()

    # ------------------------------------------------------------------
    # Whole-run timing
    # ------------------------------------------------------------------

    def __enter__(self) -> "PhaseProfiler":
        self._run_started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_seconds += time.perf_counter() - (self._run_started or 0.0)
        self._run_started = None

    def report(self) -> ProfileReport:
        phases = {
            phase: PhaseStat(stat.calls, stat.seconds)
            for phase, stat in sorted(self.stats.items())
        }
        return ProfileReport(phases=phases, wall_seconds=self.wall_seconds)


def profile_design(
    design: str,
    workload_name: str,
    dataset=None,
    n_transactions: Optional[int] = None,
    n_threads: Optional[int] = None,
    config=None,
    params=None,
):
    """Run one cell under the profiler; returns (RunResult, ProfileReport).

    Builds a fresh system (the shims do not survive ``reset_machine``,
    so the profiled run must be the machine's first).
    """
    from repro.core.designs import make_system
    from repro.experiments.runner import (
        ExperimentScale,
        MACRO_NAMES,
        default_config,
        resolve_params,
    )
    from repro.workloads.base import DatasetSize, make_workload

    dataset = dataset or DatasetSize.SMALL
    scale = ExperimentScale()
    macro = workload_name in MACRO_NAMES
    system = make_system(design, config if config is not None else default_config())
    workload = make_workload(workload_name, resolve_params(params, dataset))
    profiler = PhaseProfiler().install(system)
    try:
        with profiler:
            result = system.run(
                workload,
                n_transactions or scale.transactions(macro, dataset),
                n_threads or scale.threads(macro),
            )
    finally:
        profiler.uninstall()
    return result, profiler.report()
