"""Stable metrics snapshots: counters + histograms as one plain dict.

``metrics_snapshot`` flattens a run's outcome — the StatGroup counters,
derived headline metrics, the trace-bus accounting and (when a trace is
present) a transaction-duration histogram — into a single JSON-safe dict
with *canonical key order*, so snapshots diff cleanly across runs and
can be hashed, cached, or asserted on by the benchmark harness.
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.common.stats import Histogram
from repro.core.system import RunResult
from repro.trace.bus import TraceBus
from repro.trace.events import SCHEMA_VERSION
from repro.trace.timeline import assemble_timelines, timeline_summary

#: Power-of-two microsecond buckets for transaction durations.  The
#: first bucket holds every duration under one microsecond (the floor
#: division below maps them all to 0), hence the ``<1us`` label.
_DURATION_BUCKETS: Tuple[Tuple[int, Optional[int], str], ...] = tuple(
    [(0, 0, "<1us")]
    + [
        (1 << i, (1 << (i + 1)) - 1, "%d-%dus" % (1 << i, (1 << (i + 1)) - 1))
        for i in range(10)
    ]
    + [(1 << 10, None, ">=1024us")]
)


def duration_histogram(durations_ns: List[float]) -> Histogram:
    """Histogram transaction durations (simulated ns) into us buckets.

    Durations must be finite and non-negative: a negative or NaN value
    means the caller paired begin/commit timestamps wrong, and silently
    flooring it into a bucket would hide that, so reject it loudly.
    """
    histogram = Histogram(buckets=_DURATION_BUCKETS)
    for duration in durations_ns:
        if duration != duration:  # NaN — the only value unequal to itself
            raise ValueError("NaN transaction duration")
        if duration < 0:
            raise ValueError(
                "negative transaction duration %r ns" % (duration,))
        histogram.observe(int(duration // 1000))
    return histogram


def metrics_snapshot(
    result: RunResult,
    bus: Optional[TraceBus] = None,
    design: str = "",
    workload: str = "",
    memo: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One stable dict describing a run (counters, derived, trace).

    ``memo`` takes the dict from :meth:`repro.nvm.module.NvmModule.
    memo_stats` (codec-memo hit/miss/eviction counters); it lands under
    the ``memo`` key with canonical key order.  Memo counters are host-
    visible diagnostics, not simulated results, so they appear only when
    the caller opts in.
    """
    snapshot: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "design": design,
        "workload": workload,
        "transactions": result.transactions,
        "elapsed_ns": result.elapsed_ns,
        "counters": dict(sorted(result.stats.items())),
        "derived": {
            "log_bits": result.log_bits,
            "nvmm_write_energy_pj": result.nvmm_write_energy_pj,
            "nvmm_writes": result.nvmm_writes,
            "throughput_tx_per_s": result.throughput_tx_per_s,
        },
    }
    if memo is not None:
        snapshot["memo"] = {
            name: dict(sorted(counters.items()))
            for name, counters in sorted(memo.items())
        }
    if bus is not None:
        timelines = assemble_timelines(bus.events)
        durations = [
            t.duration_ns for t in timelines.values() if t.duration_ns is not None
        ]
        snapshot["trace"] = {
            "bus": bus.summary(),
            # A bounded ring that dropped events yields timelines and
            # histograms computed from a truncated stream; the flag lets
            # consumers refuse to trust them instead of guessing.
            "truncated": bus.dropped > 0,
            "timelines": timeline_summary(timelines),
            "histograms": {
                "tx_duration_us": dict(duration_histogram(durations).counts())
            },
        }
    return snapshot
