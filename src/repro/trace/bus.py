"""The trace bus: a bounded ring buffer components publish events to.

Design constraints (see ISSUE 3 / docs/tracing.md):

- **Zero cost when disabled.**  Components hold a ``tracer`` attribute
  that is ``None`` unless tracing was requested, and every emission site
  is guarded by ``if self.tracer is not None`` — the same pattern the
  fault-injection plan uses.  A disabled run executes no tracing code
  beyond that attribute test.
- **Inert when enabled.**  The bus only observes: it never mutates
  simulator state, never advances clocks, and drops (never blocks) when
  full, so a traced run is bit-identical to a traceless one
  (regression-tested in ``tests/test_trace_inert.py``).
- **Bounded.**  The ring keeps the newest ``capacity`` events and counts
  drops, so tracing a long run cannot exhaust memory.
"""

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro.trace.events import TraceEvent


@dataclass(frozen=True)
class TraceConfig:
    """Opt-in tracing knobs, threaded through ``make_system``."""

    enabled: bool = False
    #: Ring capacity in events; 0 means unbounded (tests, short runs).
    capacity: int = 65536
    #: Restrict collection to these categories; None collects everything.
    categories: Optional[frozenset] = None

    def make_bus(self) -> Optional["TraceBus"]:
        return TraceBus(self) if self.enabled else None


class TraceBus:
    """Bounded single-process event ring with drop accounting."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig(enabled=True)
        maxlen = self.config.capacity or None
        self.events: Deque[TraceEvent] = deque(maxlen=maxlen)
        self.emitted = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        name: str,
        category: str,
        ts_ns: float,
        core: Optional[int] = None,
        txid: Optional[int] = None,
        addr: Optional[int] = None,
        dur_ns: float = 0.0,
        **args: Any,
    ) -> None:
        """Publish one event; never raises on a full ring (drops oldest)."""
        categories = self.config.categories
        if categories is not None and category not in categories:
            return
        ring = self.events
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(
            TraceEvent(
                name=name,
                category=category,
                ts_ns=ts_ns,
                core=core,
                txid=txid,
                addr=addr,
                dur_ns=dur_ns,
                args=args,
            )
        )
        self.emitted += 1

    def clear(self) -> None:
        self.events.clear()
        self.emitted = 0
        self.dropped = 0

    def summary(self) -> Dict[str, Any]:
        """Stable dict of bus-level accounting (sorted sub-keys)."""
        by_category: Dict[str, int] = {}
        by_name: Dict[str, int] = {}
        for event in self.events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
            by_name[event.name] = by_name.get(event.name, 0) + 1
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "retained": len(self.events),
            "by_category": dict(sorted(by_category.items())),
            "by_name": dict(sorted(by_name.items())),
        }
