"""``repro.trace`` — structured event tracing, timelines and profiling.

The observability layer of the simulator (ISSUE 3):

- :class:`TraceConfig` / :class:`TraceBus` — the opt-in, bounded,
  zero-cost-when-disabled event bus components publish to;
- :mod:`repro.trace.events` — the typed event taxonomy and its schema;
- :mod:`repro.trace.timeline` — per-transaction timeline assembly;
- :mod:`repro.trace.export` — Chrome ``trace_event`` JSON export
  (loadable in Perfetto), JSON-lines raw dumps, and schema validation;
- :mod:`repro.trace.metrics` — stable counters+histograms snapshots;
- :mod:`repro.trace.profiler` — host wall-time attribution by phase.

Enable tracing by passing a config to the factory::

    from repro.trace import TraceConfig
    system = make_system("MorLog-SLDE", trace=TraceConfig(enabled=True))
    result = system.run(workload, 100)
    events = list(system.tracer.events)
"""

from repro.trace.bus import TraceBus, TraceConfig
from repro.trace.events import (
    CATEGORIES,
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event,
)
from repro.trace.export import (
    chrome_document,
    parse_chrome_trace,
    read_event_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_lines,
)
from repro.trace.metrics import metrics_snapshot
from repro.trace.profiler import PhaseProfiler, ProfileReport, profile_design
from repro.trace.timeline import TxTimeline, assemble_timelines, timeline_summary

__all__ = [
    "CATEGORIES",
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "PhaseProfiler",
    "ProfileReport",
    "TraceBus",
    "TraceConfig",
    "TraceEvent",
    "TxTimeline",
    "assemble_timelines",
    "chrome_document",
    "metrics_snapshot",
    "parse_chrome_trace",
    "profile_design",
    "read_event_lines",
    "timeline_summary",
    "validate_chrome_trace",
    "validate_event",
    "write_chrome_trace",
    "write_event_lines",
]
