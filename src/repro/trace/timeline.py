"""Per-transaction timeline assembly over a captured event stream.

A timeline groups every event correlated to one transaction — begin,
word-state transitions, log-entry persists, the commit — in emission
order, answering "what happened to transaction N and when".  The CLI's
``repro trace`` summary and the examples build on this; the export module
writes the raw stream, so timelines can also be reassembled offline from
a parsed trace file.
"""

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.trace.events import TraceEvent


@dataclass
class TxTimeline:
    """Everything the trace saw about one transaction."""

    txid: int
    core: Optional[int] = None
    begin_ns: Optional[float] = None
    commit_ns: Optional[float] = None
    crashed: bool = False
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def duration_ns(self) -> Optional[float]:
        if self.begin_ns is None or self.commit_ns is None:
            return None
        return self.commit_ns - self.begin_ns

    def count(self, name: str) -> int:
        return sum(1 for event in self.events if event.name == name)

    def first(self, name: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.name == name:
                return event
        return None


def assemble_timelines(events: Iterable[TraceEvent]) -> "OrderedDict[int, TxTimeline]":
    """Group events by transaction ID, preserving emission order.

    Events without a ``txid`` (NVM writes, FWB scans, truncation) are
    machine-level and excluded; use the raw stream for those.
    """
    timelines: "OrderedDict[int, TxTimeline]" = OrderedDict()
    for event in events:
        if event.txid is None:
            continue
        timeline = timelines.get(event.txid)
        if timeline is None:
            timeline = timelines[event.txid] = TxTimeline(txid=event.txid)
        timeline.events.append(event)
        if event.core is not None and timeline.core is None:
            timeline.core = event.core
        if event.name == "tx-begin":
            timeline.begin_ns = event.ts_ns
        elif event.name == "tx-commit":
            # The complete event spans begin -> commit.
            timeline.commit_ns = event.ts_ns + event.dur_ns
        elif event.name == "tx-crash":
            timeline.crashed = True
    return timelines


def timeline_summary(timelines: Dict[int, TxTimeline]) -> Dict[str, float]:
    """Stable aggregate over assembled timelines (sorted keys)."""
    durations = [
        t.duration_ns for t in timelines.values() if t.duration_ns is not None
    ]
    committed = sum(1 for t in timelines.values() if t.commit_ns is not None)
    summary = {
        "transactions": float(len(timelines)),
        "committed": float(committed),
        "crashed": float(sum(1 for t in timelines.values() if t.crashed)),
    }
    if durations:
        summary["mean_duration_ns"] = sum(durations) / len(durations)
        summary["max_duration_ns"] = max(durations)
        summary["min_duration_ns"] = min(durations)
    return dict(sorted(summary.items()))
