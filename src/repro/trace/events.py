"""Typed trace events and their schema.

Every component of the simulator can publish :class:`TraceEvent` records
to the trace bus (:mod:`repro.trace.bus`).  The taxonomy is fixed here so
exports stay machine-checkable: each event name maps to a category and a
set of *required* argument keys (extra arguments are allowed, reserved
keys are not).  The schema doubles as documentation — see
``docs/tracing.md`` — and as the validator the CI trace-smoke job runs
against exported files.

Timestamps are *simulated* nanoseconds (the same clock domain as
``System.core_time_ns``), not host wall time; host time belongs to the
profiler (:mod:`repro.trace.profiler`).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

SCHEMA_VERSION = 1

#: Event categories, used for filtering (``TraceConfig.categories``) and
#: as the Chrome ``cat`` field.
CATEGORIES: Tuple[str, ...] = (
    "tx",          # transaction lifecycle
    "word-state",  # per-word L1 log-state transitions (Figure 8)
    "log",         # log-entry create / persist / truncate / append
    "codec",       # SLDE chosen-vs-rejected encoding decisions
    "nvm",         # NVM module write breakdowns
    "fwb",         # force-write-back scans
    "recovery",    # crash-recovery runs
)


@dataclass(frozen=True)
class EventSpec:
    """Schema row: where an event belongs and what it must carry."""

    category: str
    required_args: Tuple[str, ...] = ()


#: The event taxonomy.  Adding an event means adding a row here; the
#: round-trip property test fuzzes every row.
EVENT_SCHEMA: Dict[str, EventSpec] = {
    # -- transaction lifecycle -----------------------------------------
    "tx-begin": EventSpec("tx"),
    "tx-commit": EventSpec("tx", ("n_stores",)),
    "tx-crash": EventSpec("tx"),
    # -- per-word log-state machine (MorLog, Figure 8) ------------------
    "word-state": EventSpec("word-state", ("from", "to")),
    # -- logging --------------------------------------------------------
    "log-create": EventSpec("log", ("entry",)),
    "undo-persist": EventSpec("log", ("slots",)),
    "redo-persist": EventSpec("log", ("slots",)),
    "commit-persist": EventSpec("log", ("timestamp",)),
    "wal-flush": EventSpec("log", ("entries",)),
    "nt-flush": EventSpec("log", ("entries",)),
    "log-append": EventSpec("log", ("entry", "slots", "seq")),
    "log-truncate": EventSpec("log", ("freed",)),
    "log-wrap": EventSpec("log"),
    # -- encoding pipeline ---------------------------------------------
    "slde-decision": EventSpec("codec", ("chosen", "chosen_bits")),
    # -- NVM module -----------------------------------------------------
    "nvm-write": EventSpec("nvm", ("kind", "bits", "energy_pj")),
    # -- background machinery ------------------------------------------
    "fwb-scan": EventSpec("fwb", ("index",)),
    # -- recovery -------------------------------------------------------
    "recovery": EventSpec(
        "recovery", ("committed", "redone_words", "undone_words")
    ),
}

#: Keys the exporter owns inside the Chrome ``args`` object; event
#: payloads must not collide with them (enforced by validate_event).
#: ``core`` is reserved too: it is a named ``TraceBus.emit`` parameter,
#: so an event carrying it as an arg key could never be re-emitted.
RESERVED_ARG_KEYS = ("txid", "addr", "ts_ns", "dur_ns", "core")


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the bus.

    ``core`` is the hardware-thread ID (or None for uncored machinery
    like truncation), ``txid``/``addr`` are optional correlation keys,
    ``args`` carries the event-specific payload from the schema.
    """

    name: str
    category: str
    ts_ns: float
    core: Optional[int] = None
    txid: Optional[int] = None
    addr: Optional[int] = None
    dur_ns: float = 0.0
    args: Mapping[str, Any] = field(default_factory=dict)


def validate_event(event: TraceEvent) -> None:
    """Check one event against the taxonomy; raises ValueError."""
    spec = EVENT_SCHEMA.get(event.name)
    if spec is None:
        raise ValueError("unknown event name %r" % event.name)
    if event.category != spec.category:
        raise ValueError(
            "event %r belongs to category %r, not %r"
            % (event.name, spec.category, event.category)
        )
    if event.ts_ns < 0:
        raise ValueError("event %r has negative timestamp" % event.name)
    if event.dur_ns < 0:
        raise ValueError("event %r has negative duration" % event.name)
    for key in spec.required_args:
        if key not in event.args:
            raise ValueError(
                "event %r is missing required arg %r" % (event.name, key)
            )
    for key in RESERVED_ARG_KEYS:
        if key in event.args:
            raise ValueError(
                "event %r uses reserved arg key %r" % (event.name, key)
            )
