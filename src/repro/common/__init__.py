"""Shared utilities for the MorLog reproduction.

This subpackage holds the pieces every layer of the simulator needs:
bit/byte manipulation helpers (:mod:`repro.common.bitops`), configuration
dataclasses mirroring the paper's Table III (:mod:`repro.common.config`),
statistics counters and histograms (:mod:`repro.common.stats`) and the
exception hierarchy (:mod:`repro.common.errors`).
"""

from repro.common.errors import (
    ConfigError,
    LogOverflowError,
    RecoveryError,
    SimulationError,
)

__all__ = [
    "ConfigError",
    "LogOverflowError",
    "RecoveryError",
    "SimulationError",
]
