"""Bit- and byte-level helpers used throughout the simulator.

Data values travel through the simulator as unsigned Python integers:
64-bit *words* (the paper logs at 64-bit word granularity, section III-A)
and 64-byte *lines* represented as tuples of eight words.  All helpers here
are pure functions so they can be property-tested in isolation.
"""

from typing import Iterable, List, Sequence, Tuple

WORD_BITS = 64
WORD_BYTES = 8
WORD_MASK = (1 << WORD_BITS) - 1
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


def mask_word(value: int) -> int:
    """Truncate ``value`` to an unsigned 64-bit word."""
    return value & WORD_MASK


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return bin(value).count("1")


def flipped_bits(old: int, new: int) -> int:
    """Number of bit positions that differ between two words.

    This is the quantity DCW (data-comparison write) programs when writing
    SLC cells, and the basis of the paper's "clean bit" observation.
    """
    return popcount((old ^ new) & WORD_MASK)


def word_bytes(value: int) -> List[int]:
    """Split a 64-bit word into 8 little-endian bytes (byte 0 first)."""
    value = mask_word(value)
    return [(value >> (8 * i)) & 0xFF for i in range(WORD_BYTES)]


def bytes_to_word(data: Sequence[int]) -> int:
    """Inverse of :func:`word_bytes`."""
    if len(data) > WORD_BYTES:
        raise ValueError("at most 8 bytes fit in a word")
    value = 0
    for i, byte in enumerate(data):
        if not 0 <= byte <= 0xFF:
            raise ValueError("byte out of range: %r" % (byte,))
        value |= byte << (8 * i)
    return value


def dirty_byte_mask(old: int, new: int) -> int:
    """8-bit mask with bit *i* set when byte *i* of the word changed.

    This is exactly the *dirty flag* DLDC attaches to each log buffer entry
    (section IV-A): one flag bit per byte of undo/redo data.
    """
    diff = (old ^ new) & WORD_MASK
    mask = 0
    for i in range(WORD_BYTES):
        if diff & (0xFF << (8 * i)):
            mask |= 1 << i
    return mask


def dirty_byte_count(old: int, new: int) -> int:
    """Number of bytes of the word that changed."""
    return popcount(dirty_byte_mask(old, new))


def select_bytes(value: int, mask: int) -> List[int]:
    """Return the bytes of ``value`` whose bit is set in ``mask``, in order."""
    all_bytes = word_bytes(value)
    return [all_bytes[i] for i in range(WORD_BYTES) if mask & (1 << i)]


def scatter_bytes(base: int, mask: int, dirty: Sequence[int]) -> int:
    """Write ``dirty`` bytes into ``base`` at the positions set in ``mask``.

    Inverse of :func:`select_bytes` given the clean bytes of ``base``; used
    by the DLDC decoder to reconstruct a word from its dirty bytes during
    recovery (section IV-A, "the dirty flags indicate which bytes of the
    in-place data need to be written").
    """
    out = word_bytes(base)
    it = iter(dirty)
    for i in range(WORD_BYTES):
        if mask & (1 << i):
            out[i] = next(it)
    remaining = sum(1 for _ in it)
    if remaining:
        raise ValueError("more dirty bytes than mask positions")
    return bytes_to_word(out)


def line_to_words(data: bytes) -> Tuple[int, ...]:
    """Convert a 64-byte buffer to a tuple of eight little-endian words."""
    if len(data) != LINE_BYTES:
        raise ValueError("a cache line is exactly 64 bytes")
    return tuple(
        int.from_bytes(data[i * WORD_BYTES:(i + 1) * WORD_BYTES], "little")
        for i in range(WORDS_PER_LINE)
    )


def words_to_line(words: Sequence[int]) -> bytes:
    """Inverse of :func:`line_to_words`."""
    if len(words) != WORDS_PER_LINE:
        raise ValueError("a cache line is exactly 8 words")
    return b"".join(mask_word(w).to_bytes(WORD_BYTES, "little") for w in words)


def iter_bits(value: int, width: int) -> Iterable[int]:
    """Yield the ``width`` low bits of ``value``, LSB first."""
    for i in range(width):
        yield (value >> i) & 1


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`iter_bits`."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        value |= bit << i
    return value


def split_cells(value: int, width_bits: int, bits_per_cell: int) -> List[int]:
    """Split a ``width_bits``-wide value into cell levels, LSB-first.

    A TLC cell stores 3 bits (``bits_per_cell=3``).  When ``width_bits`` is
    not a multiple of ``bits_per_cell`` the final cell is zero-padded, which
    matches how a 512-bit line maps onto ceil(512/3) = 171 TLC cells.
    """
    if bits_per_cell <= 0:
        raise ValueError("bits_per_cell must be positive")
    n_cells = (width_bits + bits_per_cell - 1) // bits_per_cell
    cell_mask = (1 << bits_per_cell) - 1
    return [(value >> (i * bits_per_cell)) & cell_mask for i in range(n_cells)]


def join_cells(cells: Sequence[int], bits_per_cell: int) -> int:
    """Inverse of :func:`split_cells` (padding bits come back as zeros)."""
    value = 0
    for i, cell in enumerate(cells):
        if not 0 <= cell < (1 << bits_per_cell):
            raise ValueError("cell level out of range")
        value |= cell << (i * bits_per_cell)
    return value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend the ``from_bits`` low bits of ``value`` to ``to_bits``.

    Returned as an unsigned integer in ``to_bits`` bits (two's complement).
    """
    if from_bits <= 0 or from_bits > to_bits:
        raise ValueError("invalid bit widths")
    value &= (1 << from_bits) - 1
    if value & (1 << (from_bits - 1)):
        value |= ((1 << (to_bits - from_bits)) - 1) << from_bits
    return value


def fits_signed(value: int, bits: int, width: int = WORD_BITS) -> bool:
    """True when the ``width``-bit unsigned ``value``, read as two's
    complement, is representable in ``bits`` signed bits."""
    return sign_extend(value & ((1 << bits) - 1), bits, width) == (
        value & ((1 << width) - 1)
    )


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int) -> int:
    """Round ``addr`` up to a multiple of ``granularity``."""
    return align_down(addr + granularity - 1, granularity)
