"""Exception hierarchy for the simulator."""


class SimulationError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(SimulationError):
    """An invalid or inconsistent configuration value."""


class LogOverflowError(SimulationError):
    """The write set of an in-flight transaction exceeded the log region.

    The paper (section III-A) prevents this by allocating a large-enough log
    region or chaining a temporary region; we surface it as an error so the
    caller can grow the region.
    """


class RecoveryError(SimulationError):
    """The recovery routine found an inconsistent log region."""


class AllocationError(SimulationError):
    """The persistent heap could not satisfy an allocation."""
